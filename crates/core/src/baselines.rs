//! Baseline checkpoint strategies for the comparison experiments.
//!
//! The paper's transparency claims are relative to conventional designs
//! (§3, §8). The reproduction makes those designs runnable so the
//! evaluation can show *who wins and why*:
//!
//! - [`Strategy::Transparent`] — the paper: clock-scheduled coordinated
//!   checkpoint, downtime concealed by time virtualization.
//! - [`Strategy::EventDriven`] — "checkpoint now" notifications: each node
//!   suspends on receipt, so synchronization error is delivery spread plus
//!   per-node stack/VMM processing jitter (§4.3 explains why this is
//!   worse), but time is still virtualized.
//! - [`Strategy::NonConcealing`] — conventional stop-and-copy: coordinated
//!   suspension but real downtime leaks into guest time, so guests observe
//!   clock jumps; TCP fires retransmission timeouts, timers fire late.

use sim::SimDuration;

use crate::coordinator::TriggerMode;

/// A checkpointing strategy under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's transparent coordinated checkpoint.
    Transparent,
    /// Event-driven triggering with per-node processing jitter.
    EventDriven,
    /// Time leaks into the guest (no concealment).
    NonConcealing,
}

impl Strategy {
    /// The coordinator trigger mode this strategy uses.
    pub fn trigger_mode(self) -> TriggerMode {
        match self {
            Strategy::Transparent | Strategy::NonConcealing => TriggerMode::Scheduled {
                lead: SimDuration::from_millis(200),
            },
            Strategy::EventDriven => TriggerMode::EventDriven,
        }
    }

    /// Whether hosts conceal downtime from the guest.
    pub fn conceals_downtime(self) -> bool {
        !matches!(self, Strategy::NonConcealing)
    }

    /// Mean of the exponential per-node processing delay applied to
    /// "checkpoint now" notifications (network stack, XenBus, domain
    /// scheduling — the delays §4.3 lists). Zero for scheduled modes,
    /// where all processing happens ahead of the checkpoint instant.
    pub fn processing_jitter_mean(self) -> SimDuration {
        match self {
            Strategy::EventDriven => SimDuration::from_millis(2),
            _ => SimDuration::ZERO,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Transparent => "transparent",
            Strategy::EventDriven => "event-driven",
            Strategy::NonConcealing => "non-concealing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_differ_where_claimed() {
        assert!(Strategy::Transparent.conceals_downtime());
        assert!(!Strategy::NonConcealing.conceals_downtime());
        assert!(Strategy::EventDriven.processing_jitter_mean() > SimDuration::ZERO);
        assert_eq!(
            Strategy::Transparent.processing_jitter_mean(),
            SimDuration::ZERO
        );
    }
}
