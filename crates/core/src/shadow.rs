//! Shadow model of the coordinator's two-phase epoch protocol.
//!
//! [`ShadowEpochState`] is an *independent* re-implementation of the
//! protocol's state machine, stepped from the per-node `shadow.*` trace
//! instants the coordinator emits on its timeline track. Because the
//! shadow never shares code or state with the coordinator, a bookkeeping
//! bug in either one surfaces as a divergence between them — the
//! FoundationDB-style safety net behind the randomized fault explorer.
//!
//! Invariants checked after every transition:
//!
//! - **Ack-complete commits** — a clean commit requires every
//!   participant to have acked and reported done.
//! - **Exact degraded exclusion** — a degraded commit excludes exactly
//!   the nodes that never acked (presumed crashed), at least one node,
//!   and never all of them; every survivor reported done.
//! - **Unique terminal outcome** — no epoch is both committed and
//!   aborted, and no epoch terminates twice.
//! - **Monotone, non-overlapping epochs** — per group, epoch ids only
//!   grow and a new round cannot publish while one is undecided.
//! - **Resume discipline** — resumes follow commits; aborted epochs
//!   never resume.
//! - **No wedged epochs** — at [`ShadowEpochState::finish`], every
//!   published epoch has reached a terminal outcome.

use std::collections::{HashMap, HashSet};

use sim::telemetry::names;
use sim::TraceEvent;

/// Bits of the packed shadow `arg` holding the node address.
const NODE_BITS: u32 = 20;
/// Bits holding the epoch id.
const EPOCH_BITS: u32 = 24;

/// Packs `(group, epoch, node)` into a trace-event `arg`.
///
/// Layout (low to high): 20 bits node, 24 bits epoch, 19 bits group.
/// All three are far below their widths in any simulated testbed.
pub fn pack(group: u32, epoch: u64, node: u32) -> i64 {
    debug_assert!(node < (1 << NODE_BITS), "node {node} overflows shadow arg");
    debug_assert!(epoch < (1 << EPOCH_BITS), "epoch {epoch} overflows shadow arg");
    ((group as i64) << (NODE_BITS + EPOCH_BITS))
        | (((epoch as i64) & ((1 << EPOCH_BITS) - 1)) << NODE_BITS)
        | ((node as i64) & ((1 << NODE_BITS) - 1))
}

/// Inverse of [`pack`].
pub fn unpack(arg: i64) -> (u32, u64, u32) {
    let node = (arg & ((1 << NODE_BITS) - 1)) as u32;
    let epoch = ((arg >> NODE_BITS) & ((1 << EPOCH_BITS) - 1)) as u64;
    let group = (arg >> (NODE_BITS + EPOCH_BITS)) as u32;
    (group, epoch, node)
}

/// Terminal fate of an epoch, as the shadow saw it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowOutcome {
    /// Clean commit: every participant acked and reported done.
    Committed,
    /// Commit with the never-acked set excluded.
    Degraded,
    /// Deadline abort.
    Aborted,
    /// Round abandoned (its state was replaced behind the protocol).
    Abandoned,
}

/// One protocol-invariant violation. The explorer treats any of these
/// as a failed iteration and dumps the full trace for replay.
#[derive(Clone, Debug, PartialEq)]
pub enum ShadowViolation {
    /// A new epoch published while the previous one was undecided.
    OverlappingRound { group: u32, open_epoch: u64, new_epoch: u64 },
    /// Epoch ids moved backwards (or repeated) within a group.
    NonMonotoneEpoch { group: u32, last: u64, epoch: u64 },
    /// An ack was accepted from a node outside the epoch's barrier.
    AckOutsideRound { group: u32, epoch: u64, node: u32 },
    /// A done report was accepted from a node outside the barrier.
    DoneOutsideRound { group: u32, epoch: u64, node: u32 },
    /// A done report was accepted from an excluded (presumed crashed)
    /// node — its state must not enter the global checkpoint.
    DoneFromExcluded { group: u32, epoch: u64, node: u32 },
    /// A node that acked (provably alive) was excluded: degrading away
    /// live state breaks global consistency.
    ExcludedLiveNode { group: u32, epoch: u64, node: u32 },
    /// A clean commit with acks or done reports missing.
    CommitIncomplete { group: u32, epoch: u64, missing: Vec<u32> },
    /// The commit event's excluded count disagrees with the exclusions
    /// the shadow observed.
    ExclusionMismatch { group: u32, epoch: u64, reported: u32, observed: u32 },
    /// A degraded commit that excluded every participant (nothing was
    /// actually checkpointed) — must abort instead.
    DegradedToEmpty { group: u32, epoch: u64 },
    /// An epoch reached a second terminal outcome.
    DoubleTerminal {
        group: u32,
        epoch: u64,
        first: ShadowOutcome,
        second: ShadowOutcome,
    },
    /// A resume published for an epoch that did not commit.
    ResumeWithoutCommit { group: u32, epoch: u64 },
    /// A terminal event for an epoch the shadow never saw publish.
    TerminalWithoutRound { group: u32, epoch: u64 },
    /// A recovering coordinator classified a round the shadow does not
    /// consider open — recovery invented (or resurrected) an epoch.
    RecoverOutsideRound { group: u32, epoch: u64 },
    /// An epoch still undecided when the run ended.
    Wedged { group: u32, epoch: u64 },
}

impl std::fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ShadowViolation::*;
        match self {
            OverlappingRound { group, open_epoch, new_epoch } => write!(
                f,
                "group {group}: epoch {new_epoch} published while epoch {open_epoch} undecided"
            ),
            NonMonotoneEpoch { group, last, epoch } => {
                write!(f, "group {group}: epoch {epoch} published after epoch {last}")
            }
            AckOutsideRound { group, epoch, node } => {
                write!(f, "group {group} epoch {epoch}: ack from non-participant node {node}")
            }
            DoneOutsideRound { group, epoch, node } => {
                write!(f, "group {group} epoch {epoch}: done from non-participant node {node}")
            }
            DoneFromExcluded { group, epoch, node } => {
                write!(f, "group {group} epoch {epoch}: done accepted from excluded node {node}")
            }
            ExcludedLiveNode { group, epoch, node } => {
                write!(f, "group {group} epoch {epoch}: excluded node {node} had acked")
            }
            CommitIncomplete { group, epoch, missing } => write!(
                f,
                "group {group} epoch {epoch}: clean commit missing {missing:?}"
            ),
            ExclusionMismatch { group, epoch, reported, observed } => write!(
                f,
                "group {group} epoch {epoch}: commit reports {reported} excluded, shadow saw {observed}"
            ),
            DegradedToEmpty { group, epoch } => {
                write!(f, "group {group} epoch {epoch}: degraded commit excluded every node")
            }
            DoubleTerminal { group, epoch, first, second } => write!(
                f,
                "group {group} epoch {epoch}: terminal {second:?} after {first:?}"
            ),
            ResumeWithoutCommit { group, epoch } => {
                write!(f, "group {group} epoch {epoch}: resume without a commit")
            }
            TerminalWithoutRound { group, epoch } => {
                write!(f, "group {group} epoch {epoch}: terminal event for unknown round")
            }
            RecoverOutsideRound { group, epoch } => {
                write!(f, "group {group} epoch {epoch}: recovery classified a round never published")
            }
            Wedged { group, epoch } => {
                write!(f, "group {group} epoch {epoch}: undecided at end of run")
            }
        }
    }
}

/// One in-flight epoch as the shadow tracks it.
#[derive(Clone, Debug)]
struct EpochShadow {
    epoch: u64,
    participants: HashSet<u32>,
    acked: HashSet<u32>,
    done: HashSet<u32>,
    excluded: HashSet<u32>,
    outcome: Option<ShadowOutcome>,
}

/// Per-group shadow state.
#[derive(Clone, Debug, Default)]
struct GroupShadow {
    current: Option<EpochShadow>,
    last_epoch: u64,
    /// Terminal outcomes of closed epochs, for double-terminal checks.
    closed: HashMap<u64, ShadowOutcome>,
}

/// The shadow state machine. Feed it the coordinator's trace events (in
/// ring order) with [`ShadowEpochState::step`]; collected violations are
/// in [`ShadowEpochState::violations`].
#[derive(Clone, Default)]
pub struct ShadowEpochState {
    groups: HashMap<u32, GroupShadow>,
    violations: Vec<ShadowViolation>,
    /// Epochs that reached a terminal outcome under the shadow's eyes.
    pub epochs_checked: u64,
}

impl ShadowEpochState {
    /// A fresh shadow with no protocol knowledge yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays a full event slice and runs the end-of-run checks.
    /// Convenience for `new` + `step`* + `finish`.
    pub fn replay(events: &[TraceEvent]) -> Vec<ShadowViolation> {
        let mut s = ShadowEpochState::new();
        for ev in events {
            s.step(ev);
        }
        s.finish();
        s.violations
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[ShadowViolation] {
        &self.violations
    }

    /// Steps the model over one trace event; non-shadow events are
    /// ignored, so the whole ring can be fed unfiltered.
    pub fn step(&mut self, ev: &TraceEvent) {
        let name: &str = &ev.name;
        if !name.starts_with("shadow.") {
            return;
        }
        let (group, epoch, node) = unpack(ev.arg);
        match name {
            names::EV_SHADOW_JOIN => self.on_join(group, epoch, node),
            names::EV_SHADOW_ACK => self.on_ack(group, epoch, node),
            names::EV_SHADOW_DONE => self.on_done(group, epoch, node),
            names::EV_SHADOW_EXCLUDE => self.on_exclude(group, epoch, node),
            names::EV_SHADOW_COMMIT => self.on_commit(group, epoch, node),
            names::EV_SHADOW_ABORT => self.on_terminal(group, epoch, ShadowOutcome::Aborted),
            names::EV_SHADOW_ABANDON => self.on_terminal(group, epoch, ShadowOutcome::Abandoned),
            names::EV_SHADOW_RESUME => self.on_resume(group, epoch),
            names::EV_SHADOW_REJOIN => {} // Membership change; no epoch state.
            names::EV_SHADOW_RECOVER => self.on_recover(group, epoch),
            _ => {}
        }
    }

    /// End-of-run check: every published epoch must have terminated.
    /// Call once after the simulation drained.
    pub fn finish(&mut self) {
        let mut wedged = Vec::new();
        for (g, gs) in &self.groups {
            if let Some(cur) = &gs.current {
                if cur.outcome.is_none() {
                    wedged.push(ShadowViolation::Wedged { group: *g, epoch: cur.epoch });
                }
            }
        }
        wedged.sort_by_key(|v| match v {
            ShadowViolation::Wedged { group, epoch } => (*group, *epoch),
            _ => unreachable!(),
        });
        self.violations.extend(wedged);
    }

    fn group(&mut self, group: u32) -> &mut GroupShadow {
        self.groups.entry(group).or_default()
    }

    fn on_join(&mut self, group: u32, epoch: u64, node: u32) {
        let gs = self.groups.entry(group).or_default();
        if let Some(cur) = gs.current.as_mut() {
            if cur.epoch == epoch {
                // Another participant of the same publication burst.
                cur.participants.insert(node);
                return;
            }
        }
        // First join of a new epoch: the previous round must be decided
        // (a held-but-committed round may legally be superseded).
        if let Some(prev) = gs.current.take() {
            match prev.outcome {
                None => self.violations.push(ShadowViolation::OverlappingRound {
                    group,
                    open_epoch: prev.epoch,
                    new_epoch: epoch,
                }),
                Some(o) => {
                    gs.closed.insert(prev.epoch, o);
                }
            }
        }
        let gs = self.groups.entry(group).or_default();
        if epoch <= gs.last_epoch {
            let last = gs.last_epoch;
            self.violations
                .push(ShadowViolation::NonMonotoneEpoch { group, last, epoch });
        }
        let gs = self.groups.entry(group).or_default();
        gs.last_epoch = gs.last_epoch.max(epoch);
        gs.current = Some(EpochShadow {
            epoch,
            participants: HashSet::from([node]),
            acked: HashSet::new(),
            done: HashSet::new(),
            excluded: HashSet::new(),
            outcome: None,
        });
    }

    /// The open round of `group` iff it is `epoch`. A free function over
    /// the field so callers can push violations while holding it.
    fn current_of(
        groups: &mut HashMap<u32, GroupShadow>,
        group: u32,
        epoch: u64,
    ) -> Option<&mut EpochShadow> {
        groups
            .get_mut(&group)
            .and_then(|gs| gs.current.as_mut())
            .filter(|cur| cur.epoch == epoch)
    }

    fn on_ack(&mut self, group: u32, epoch: u64, node: u32) {
        match Self::current_of(&mut self.groups, group, epoch) {
            Some(cur) if cur.participants.contains(&node) => {
                cur.acked.insert(node);
            }
            _ => self
                .violations
                .push(ShadowViolation::AckOutsideRound { group, epoch, node }),
        }
    }

    fn on_done(&mut self, group: u32, epoch: u64, node: u32) {
        match Self::current_of(&mut self.groups, group, epoch) {
            Some(cur) if cur.excluded.contains(&node) => {
                self.violations
                    .push(ShadowViolation::DoneFromExcluded { group, epoch, node });
            }
            Some(cur) if cur.participants.contains(&node) => {
                // Done implies ack (the report proves delivery).
                cur.acked.insert(node);
                cur.done.insert(node);
            }
            _ => self
                .violations
                .push(ShadowViolation::DoneOutsideRound { group, epoch, node }),
        }
    }

    fn on_exclude(&mut self, group: u32, epoch: u64, node: u32) {
        match Self::current_of(&mut self.groups, group, epoch) {
            Some(cur) if cur.participants.contains(&node) => {
                let acked = cur.acked.contains(&node);
                cur.excluded.insert(node);
                if acked {
                    self.violations
                        .push(ShadowViolation::ExcludedLiveNode { group, epoch, node });
                }
            }
            _ => self
                .violations
                .push(ShadowViolation::DoneOutsideRound { group, epoch, node }),
        }
    }

    fn on_commit(&mut self, group: u32, epoch: u64, reported_excluded: u32) {
        let Some(cur) = Self::current_of(&mut self.groups, group, epoch) else {
            return self.on_terminal_unknown(group, epoch, ShadowOutcome::Committed);
        };
        if let Some(first) = cur.outcome {
            let second = if reported_excluded == 0 {
                ShadowOutcome::Committed
            } else {
                ShadowOutcome::Degraded
            };
            self.violations
                .push(ShadowViolation::DoubleTerminal { group, epoch, first, second });
            return;
        }
        let observed = cur.excluded.len() as u32;
        if observed != reported_excluded {
            self.violations.push(ShadowViolation::ExclusionMismatch {
                group,
                epoch,
                reported: reported_excluded,
                observed,
            });
        }
        if observed == 0 {
            // Clean commit: ack-complete and done-complete.
            let mut missing: Vec<u32> = cur
                .participants
                .iter()
                .filter(|n| !cur.acked.contains(n) || !cur.done.contains(n))
                .copied()
                .collect();
            missing.sort_unstable();
            cur.outcome = Some(ShadowOutcome::Committed);
            if !missing.is_empty() {
                self.violations
                    .push(ShadowViolation::CommitIncomplete { group, epoch, missing });
            }
        } else {
            // Degraded: some — but not all — participants excluded, and
            // every survivor reported done. (Excluded-yet-acked nodes
            // were already flagged by `on_exclude`.)
            if cur.excluded.len() == cur.participants.len() {
                cur.outcome = Some(ShadowOutcome::Degraded);
                self.violations
                    .push(ShadowViolation::DegradedToEmpty { group, epoch });
                return;
            }
            let mut missing: Vec<u32> = cur
                .participants
                .iter()
                .filter(|n| !cur.excluded.contains(n) && !cur.done.contains(n))
                .copied()
                .collect();
            missing.sort_unstable();
            cur.outcome = Some(ShadowOutcome::Degraded);
            if !missing.is_empty() {
                self.violations
                    .push(ShadowViolation::CommitIncomplete { group, epoch, missing });
            }
        }
        self.epochs_checked += 1;
    }

    fn on_terminal(&mut self, group: u32, epoch: u64, outcome: ShadowOutcome) {
        let Some(cur) = Self::current_of(&mut self.groups, group, epoch) else {
            return self.on_terminal_unknown(group, epoch, outcome);
        };
        if let Some(first) = cur.outcome {
            self.violations
                .push(ShadowViolation::DoubleTerminal { group, epoch, first, second: outcome });
            return;
        }
        cur.outcome = Some(outcome);
        self.epochs_checked += 1;
        // Aborted/abandoned rounds close immediately: no resume follows.
        let gs = self.group(group);
        if let Some(cur) = gs.current.take() {
            gs.closed.insert(cur.epoch, outcome);
        }
    }

    /// A terminal event with no matching open round: either a protocol
    /// bug, or a second terminal for an already-closed epoch.
    fn on_terminal_unknown(&mut self, group: u32, epoch: u64, outcome: ShadowOutcome) {
        let gs = self.group(group);
        if let Some(&first) = gs.closed.get(&epoch) {
            self.violations
                .push(ShadowViolation::DoubleTerminal { group, epoch, first, second: outcome });
        } else {
            self.violations
                .push(ShadowViolation::TerminalWithoutRound { group, epoch });
        }
    }

    /// A restarted coordinator announced its WAL-derived classification
    /// of this round (the node field carries the classification code and
    /// is not checked here). The round itself must still be open in the
    /// shadow's eyes: the terminal events recovery emits next are judged
    /// by the ordinary invariants.
    fn on_recover(&mut self, group: u32, epoch: u64) {
        if Self::current_of(&mut self.groups, group, epoch).is_none() {
            self.violations
                .push(ShadowViolation::RecoverOutsideRound { group, epoch });
        }
    }

    fn on_resume(&mut self, group: u32, epoch: u64) {
        let gs = self.group(group);
        match &gs.current {
            Some(cur) if cur.epoch == epoch => match cur.outcome {
                Some(ShadowOutcome::Committed) | Some(ShadowOutcome::Degraded) => {
                    let cur = gs.current.take().expect("checked");
                    gs.closed.insert(cur.epoch, cur.outcome.expect("checked"));
                }
                _ => self
                    .violations
                    .push(ShadowViolation::ResumeWithoutCommit { group, epoch }),
            },
            _ => {
                // Resume for a closed epoch: legal only if that epoch
                // committed (e.g. resume repeats on a lossy LAN would be
                // published together, but a *later* duplicate is fine).
                match gs.closed.get(&epoch) {
                    Some(ShadowOutcome::Committed) | Some(ShadowOutcome::Degraded) => {}
                    _ => self
                        .violations
                        .push(ShadowViolation::ResumeWithoutCommit { group, epoch }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{SimTime, TracePhase};

    fn ev(name: &str, arg: i64) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            host: 100,
            subsystem: "coordinator".into(),
            name: name.into(),
            phase: TracePhase::Instant,
            arg,
        }
    }

    fn join(g: u32, e: u64, n: u32) -> TraceEvent {
        ev(names::EV_SHADOW_JOIN, pack(g, e, n))
    }
    fn ack(g: u32, e: u64, n: u32) -> TraceEvent {
        ev(names::EV_SHADOW_ACK, pack(g, e, n))
    }
    fn done(g: u32, e: u64, n: u32) -> TraceEvent {
        ev(names::EV_SHADOW_DONE, pack(g, e, n))
    }
    fn exclude(g: u32, e: u64, n: u32) -> TraceEvent {
        ev(names::EV_SHADOW_EXCLUDE, pack(g, e, n))
    }
    fn commit(g: u32, e: u64, excluded: u32) -> TraceEvent {
        ev(names::EV_SHADOW_COMMIT, pack(g, e, excluded))
    }
    fn abort(g: u32, e: u64) -> TraceEvent {
        ev(names::EV_SHADOW_ABORT, pack(g, e, 0))
    }
    fn resume(g: u32, e: u64) -> TraceEvent {
        ev(names::EV_SHADOW_RESUME, pack(g, e, 0))
    }
    fn recover(g: u32, e: u64, code: u32) -> TraceEvent {
        ev(names::EV_SHADOW_RECOVER, pack(g, e, code))
    }

    #[test]
    fn pack_round_trips() {
        for &(g, e, n) in &[(0u32, 0u64, 0u32), (3, 17, 42), (511, 1 << 20, 99_999)] {
            assert_eq!(unpack(pack(g, e, n)), (g, e, n));
        }
    }

    #[test]
    fn clean_epoch_passes() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            ack(0, 1, 1),
            ack(0, 1, 2),
            done(0, 1, 1),
            done(0, 1, 2),
            commit(0, 1, 0),
            resume(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn implicit_ack_via_done_passes() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            done(0, 1, 1),
            done(0, 1, 2),
            commit(0, 1, 0),
            resume(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn commit_without_done_is_flagged() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            done(0, 1, 1),
            commit(0, 1, 0),
            resume(0, 1),
        ];
        let v = ShadowEpochState::replay(&evs);
        assert_eq!(
            v,
            vec![ShadowViolation::CommitIncomplete { group: 0, epoch: 1, missing: vec![2] }]
        );
    }

    #[test]
    fn degraded_epoch_passes_when_exclusion_is_exact() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            join(0, 1, 3),
            done(0, 1, 1),
            done(0, 1, 3),
            exclude(0, 1, 2),
            commit(0, 1, 1),
            resume(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn excluding_an_acked_node_is_flagged() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            ack(0, 1, 2),
            done(0, 1, 1),
            exclude(0, 1, 2),
            commit(0, 1, 1),
            resume(0, 1),
        ];
        let v = ShadowEpochState::replay(&evs);
        assert_eq!(
            v,
            vec![ShadowViolation::ExcludedLiveNode { group: 0, epoch: 1, node: 2 }]
        );
    }

    #[test]
    fn exclusion_count_mismatch_is_flagged() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            done(0, 1, 1),
            done(0, 1, 2),
            commit(0, 1, 1), // Claims one excluded; shadow saw none.
            resume(0, 1),
        ];
        let v = ShadowEpochState::replay(&evs);
        assert!(v.contains(&ShadowViolation::ExclusionMismatch {
            group: 0,
            epoch: 1,
            reported: 1,
            observed: 0,
        }));
    }

    #[test]
    fn commit_then_abort_is_double_terminal() {
        let evs = vec![
            join(0, 1, 1),
            done(0, 1, 1),
            commit(0, 1, 0),
            resume(0, 1),
            abort(0, 1),
        ];
        let v = ShadowEpochState::replay(&evs);
        assert_eq!(
            v,
            vec![ShadowViolation::DoubleTerminal {
                group: 0,
                epoch: 1,
                first: ShadowOutcome::Committed,
                second: ShadowOutcome::Aborted,
            }]
        );
    }

    #[test]
    fn aborted_epoch_resuming_is_flagged() {
        let evs = vec![join(0, 1, 1), abort(0, 1), resume(0, 1)];
        let v = ShadowEpochState::replay(&evs);
        assert_eq!(v, vec![ShadowViolation::ResumeWithoutCommit { group: 0, epoch: 1 }]);
    }

    #[test]
    fn overlapping_rounds_are_flagged() {
        let evs = vec![join(0, 1, 1), join(0, 2, 1)];
        let v = ShadowEpochState::replay(&evs);
        assert!(v.contains(&ShadowViolation::OverlappingRound {
            group: 0,
            open_epoch: 1,
            new_epoch: 2,
        }));
    }

    #[test]
    fn non_monotone_epoch_is_flagged() {
        let evs = vec![
            join(0, 5, 1),
            done(0, 5, 1),
            commit(0, 5, 0),
            resume(0, 5),
            join(0, 3, 1),
            done(0, 3, 1),
            commit(0, 3, 0),
            resume(0, 3),
        ];
        let v = ShadowEpochState::replay(&evs);
        assert!(v.contains(&ShadowViolation::NonMonotoneEpoch { group: 0, last: 5, epoch: 3 }));
    }

    #[test]
    fn undecided_epoch_wedges_at_finish() {
        let evs = vec![join(0, 1, 1), ack(0, 1, 1)];
        let v = ShadowEpochState::replay(&evs);
        assert_eq!(v, vec![ShadowViolation::Wedged { group: 0, epoch: 1 }]);
    }

    #[test]
    fn groups_are_independent() {
        let evs = vec![
            join(0, 1, 1),
            join(1, 2, 5),
            done(0, 1, 1),
            done(1, 2, 5),
            commit(1, 2, 0),
            resume(1, 2),
            commit(0, 1, 0),
            resume(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn non_shadow_events_are_ignored() {
        let evs = vec![
            ev("epoch.notify", 1),
            join(0, 1, 1),
            ev("vm.freeze", 7),
            done(0, 1, 1),
            commit(0, 1, 0),
            resume(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn recovery_abort_of_an_open_round_passes() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            ack(0, 1, 1),
            recover(0, 1, 3), // crash + restart: classified as abort
            abort(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn recovery_roll_forward_passes() {
        let evs = vec![
            join(0, 1, 1),
            join(0, 1, 2),
            done(0, 1, 1),
            done(0, 1, 2),
            recover(0, 1, 1), // barrier was complete: roll forward
            commit(0, 1, 0),
            resume(0, 1),
        ];
        assert_eq!(ShadowEpochState::replay(&evs), vec![]);
    }

    #[test]
    fn recovery_of_an_unpublished_round_is_flagged() {
        let evs = vec![recover(0, 7, 3), abort(0, 7)];
        let v = ShadowEpochState::replay(&evs);
        assert!(v.contains(&ShadowViolation::RecoverOutsideRound { group: 0, epoch: 7 }));
    }

    #[test]
    fn degrading_away_every_node_is_flagged() {
        let evs = vec![
            join(0, 1, 1),
            exclude(0, 1, 1),
            commit(0, 1, 1),
            resume(0, 1),
        ];
        let v = ShadowEpochState::replay(&evs);
        assert!(v.contains(&ShadowViolation::DegradedToEmpty { group: 0, epoch: 1 }));
    }
}
