//! The scale lab: the coordinated-epoch protocol run over the sharded
//! engine at thousands of nodes.
//!
//! The full coordinator ([`crate::Coordinator`]) drives real VM hosts
//! with capture caches, WALs, and store traffic — rich, but built on the
//! single-shard engine and O(hosts) state per epoch message. This module
//! is the protocol's *scale silhouette*: the same two-phase shape
//! (notify → capture → done-barrier → commit → resume) with per-node
//! cost driven toward O(1) and fan-out/fan-in aggregated through
//! per-group relays, so a 1,000–10,000-node star or tree topology runs
//! as `groups + 1` cross-shard conversations per epoch instead of
//! `nodes` of them.
//!
//! Placement is derived from the topology, never from the shard count:
//! a group (relay plus its leaf nodes) is an atomic placement unit on
//! shard `group % shards`, the coordinator rides shard 0, and all
//! cross-group traffic traverses hub links whose latency is the engine
//! lookahead. Node behavior (partners, jitter draws, dirty-size draws)
//! depends only on global ids, so the same seed produces byte-identical
//! merged telemetry for any shard count — the invariant the
//! cross-shard determinism suite and `bench_scale` both pin.

use sim::{
    ComponentId, Payload, ShardComponent, ShardCtx, ShardedEngine, SimDuration, SimTime,
    Telemetry,
};

/// Topology and cadence of a scale-lab run.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Leaf nodes per group; one relay fronts each group. Group
    /// placement unit = relay + its leaves.
    pub group_sizes: Vec<u32>,
    /// Epoch cadence (start-to-start target).
    pub epoch_period: SimDuration,
    /// Rounds to drive.
    pub epochs: u32,
    /// Coordinator ↔ relay latency: the minimum cross-group latency,
    /// and therefore the engine lookahead.
    pub hub_latency: SimDuration,
    /// Relay ↔ node latency (intra-group, may be below the lookahead).
    pub leaf_latency: SimDuration,
    /// Self-posted steps each node's capture takes (its O(1)-per-event
    /// work chain).
    pub capture_steps: u32,
    /// Background node gossip cadence; `ZERO` disables gossip.
    pub gossip_period: SimDuration,
    /// Mean dirty set per node capture, in KiB (drawn uniformly from
    /// `[mean/2, 3*mean/2)` per node per epoch).
    pub dirty_kb_mean: u64,
}

impl ScaleConfig {
    /// A uniform topology: `groups` groups of `per_group` nodes with
    /// bench-friendly defaults (5 ms hub links, 300 µs leaf links,
    /// 200 ms epochs, light gossip).
    pub fn uniform(groups: u32, per_group: u32) -> ScaleConfig {
        ScaleConfig {
            group_sizes: vec![per_group; groups as usize],
            epoch_period: SimDuration::from_millis(200),
            epochs: 4,
            hub_latency: SimDuration::from_millis(5),
            leaf_latency: SimDuration::from_micros(300),
            capture_steps: 4,
            gossip_period: SimDuration::from_millis(20),
            dirty_kb_mean: 256,
        }
    }

    /// Total leaf nodes.
    pub fn nodes(&self) -> u32 {
        self.group_sizes.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Messages (all small + `Send`; cross-shard ones ride the mailboxes).
// ---------------------------------------------------------------------------

/// Driver → coordinator: start the next epoch round.
struct StartRound;
/// Coordinator → relay: begin capturing `epoch`.
struct Notify {
    epoch: u64,
}
/// Relay → node: begin capturing `epoch`.
struct NodeNotify {
    epoch: u64,
}
/// Node self-post: one step of the local capture chain.
struct CaptureStep {
    epoch: u64,
    left: u32,
}
/// Node → relay: local capture done, `bytes` of dirty state.
struct NodeDone {
    epoch: u64,
    bytes: u64,
}
/// Relay → coordinator: every node of the group reported.
struct GroupDone {
    epoch: u64,
    nodes: u32,
    bytes: u64,
}
/// Coordinator → relay: epoch committed, resume normal operation.
struct Resume {
    epoch: u64,
}
/// Node self-post: gossip tick.
struct Tick;
/// Node → node (intra-group): background traffic.
struct Ping;

// ---------------------------------------------------------------------------
// Components.
// ---------------------------------------------------------------------------

/// One committed round, as recorded by the coordinator.
#[derive(Clone, Copy, Debug)]
pub struct ScaleEpochRecord {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Commit time.
    pub committed_at: SimTime,
    /// Nodes that reported a capture.
    pub nodes: u32,
    /// Dirty bytes captured across all nodes.
    pub bytes: u64,
}

/// Lazily-registered telemetry ids (components are `Send`, so they hold
/// `Copy` ids, never the registry handle).
#[derive(Clone, Copy)]
struct CoordIds {
    track: sim::TrackId,
    tag_notify: sim::TraceTag,
    tag_commit: sim::TraceTag,
    c_commits: sim::CounterId,
    c_bytes: sim::CounterId,
    h_round_ns: sim::HistogramId,
}

struct ScaleCoordinator {
    relays: Vec<ComponentId>,
    period: SimDuration,
    hub_latency: SimDuration,
    epochs_target: u32,
    epoch: u64,
    round_started: SimTime,
    pending_groups: u32,
    round_nodes: u32,
    round_bytes: u64,
    records: Vec<ScaleEpochRecord>,
    ids: Option<CoordIds>,
}

impl ScaleCoordinator {
    fn ids(&mut self, t: &Telemetry) -> CoordIds {
        *self.ids.get_or_insert_with(|| CoordIds {
            track: t.track(0, "scale.coord"),
            tag_notify: t.trace_tag("epoch.notify"),
            tag_commit: t.trace_tag("epoch.commit"),
            c_commits: t.counter("scale.coord.commits"),
            c_bytes: t.counter("scale.coord.bytes"),
            h_round_ns: t.histogram("scale.coord.round_ns"),
        })
    }
}

impl ShardComponent for ScaleCoordinator {
    fn handle(&mut self, ctx: &mut ShardCtx<'_>, payload: Payload) {
        let ids = self.ids(ctx.telemetry());
        let payload = match payload.downcast::<StartRound>() {
            Ok(StartRound) => {
                self.epoch += 1;
                self.round_started = ctx.now();
                self.pending_groups = self.relays.len() as u32;
                self.round_nodes = 0;
                self.round_bytes = 0;
                ctx.telemetry()
                    .trace_instant(ids.track, ids.tag_notify, ctx.now(), self.epoch as i64);
                let (epoch, hub) = (self.epoch, self.hub_latency);
                for &relay in &self.relays.clone() {
                    ctx.post(relay, hub, Notify { epoch });
                }
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<GroupDone>() {
            Ok(GroupDone {
                epoch,
                nodes,
                bytes,
            }) => {
                assert_eq!(epoch, self.epoch, "group done for a stale round");
                self.pending_groups -= 1;
                self.round_nodes += nodes;
                self.round_bytes += bytes;
                if self.pending_groups > 0 {
                    return;
                }
                // Barrier complete: commit, resume, schedule the next round.
                let t = ctx.telemetry();
                t.trace_instant(ids.track, ids.tag_commit, ctx.now(), self.round_bytes as i64);
                t.inc(ids.c_commits);
                t.add(ids.c_bytes, self.round_bytes);
                let round = ctx.now().saturating_duration_since(self.round_started);
                t.record(ids.h_round_ns, round.as_nanos() as f64);
                self.records.push(ScaleEpochRecord {
                    epoch: self.epoch,
                    committed_at: ctx.now(),
                    nodes: self.round_nodes,
                    bytes: self.round_bytes,
                });
                let (epoch, hub) = (self.epoch, self.hub_latency);
                for &relay in &self.relays.clone() {
                    ctx.post(relay, hub, Resume { epoch });
                }
                if self.epoch < self.epochs_target as u64 {
                    // Aim for start-to-start cadence; if the round ran
                    // long, start the next one a hub latency out.
                    let next_in = if round < self.period {
                        self.period - round
                    } else {
                        self.hub_latency
                    };
                    ctx.post_self(next_in, StartRound);
                }
            }
            Err(p) => panic!("coordinator got unexpected payload {p:?}"),
        }
    }
    sim::component_boilerplate!();
}

#[derive(Clone, Copy)]
struct RelayIds {
    track: sim::TrackId,
    tag_done: sim::TraceTag,
    tag_resume: sim::TraceTag,
    c_rounds: sim::CounterId,
}

/// Per-group aggregation point: fans a notify out to its nodes, fans
/// node completions in, and reports one `GroupDone` upward — the O(G)
/// cross-shard traffic pattern that keeps 10,000-node epochs cheap.
struct ScaleRelay {
    group: u32,
    coordinator: ComponentId,
    nodes: Vec<ComponentId>,
    hub_latency: SimDuration,
    leaf_latency: SimDuration,
    epoch: u64,
    pending: u32,
    bytes: u64,
    ids: Option<RelayIds>,
}

impl ScaleRelay {
    fn ids(&mut self, t: &Telemetry) -> RelayIds {
        let group = self.group;
        *self.ids.get_or_insert_with(|| RelayIds {
            // Hosts 1.. are relays (host 0 is the coordinator).
            track: t.track(group + 1, "scale.relay"),
            tag_done: t.trace_tag("group.done"),
            tag_resume: t.trace_tag("group.resume"),
            c_rounds: t.counter("scale.relay.rounds"),
        })
    }
}

impl ShardComponent for ScaleRelay {
    fn handle(&mut self, ctx: &mut ShardCtx<'_>, payload: Payload) {
        let ids = self.ids(ctx.telemetry());
        let payload = match payload.downcast::<Notify>() {
            Ok(Notify { epoch }) => {
                self.epoch = epoch;
                self.pending = self.nodes.len() as u32;
                self.bytes = 0;
                let leaf = self.leaf_latency;
                for &node in &self.nodes.clone() {
                    ctx.post(node, leaf, NodeNotify { epoch });
                }
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<NodeDone>() {
            Ok(NodeDone { epoch, bytes }) => {
                assert_eq!(epoch, self.epoch, "node done for a stale round");
                self.pending -= 1;
                self.bytes += bytes;
                if self.pending == 0 {
                    let t = ctx.telemetry();
                    t.trace_instant(ids.track, ids.tag_done, ctx.now(), self.bytes as i64);
                    t.inc(ids.c_rounds);
                    ctx.post(
                        self.coordinator,
                        self.hub_latency,
                        GroupDone {
                            epoch,
                            nodes: self.nodes.len() as u32,
                            bytes: self.bytes,
                        },
                    );
                }
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<Resume>() {
            Ok(Resume { epoch }) => {
                ctx.telemetry()
                    .trace_instant(ids.track, ids.tag_resume, ctx.now(), epoch as i64);
            }
            Err(p) => panic!("relay got unexpected payload {p:?}"),
        }
    }
    sim::component_boilerplate!();
}

#[derive(Clone, Copy)]
struct NodeIds {
    c_captures: sim::CounterId,
    c_bytes: sim::CounterId,
    c_pings: sim::CounterId,
    h_capture_ns: sim::HistogramId,
}

/// A leaf node: O(1) state, a short self-posted capture chain per
/// epoch, and optional background gossip to its in-group neighbor.
/// While capturing, gossip sends pause (the closed world is frozen).
struct ScaleNode {
    relay: ComponentId,
    neighbor: ComponentId,
    leaf_latency: SimDuration,
    capture_steps: u32,
    gossip_period: SimDuration,
    dirty_kb_mean: u64,
    capture_started: Option<SimTime>,
    ids: Option<NodeIds>,
}

impl ScaleNode {
    fn ids(&mut self, t: &Telemetry) -> NodeIds {
        *self.ids.get_or_insert_with(|| NodeIds {
            c_captures: t.counter("scale.node.captures"),
            c_bytes: t.counter("scale.node.bytes"),
            c_pings: t.counter("scale.node.pings"),
            h_capture_ns: t.histogram("scale.node.capture_ns"),
        })
    }
}

impl ShardComponent for ScaleNode {
    fn handle(&mut self, ctx: &mut ShardCtx<'_>, payload: Payload) {
        let ids = self.ids(ctx.telemetry());
        let payload = match payload.downcast::<NodeNotify>() {
            Ok(NodeNotify { epoch }) => {
                self.capture_started = Some(ctx.now());
                let step_ns = ctx.rng().range_u64(20_000, 120_000);
                ctx.post_self(
                    SimDuration::from_nanos(step_ns),
                    CaptureStep {
                        epoch,
                        left: self.capture_steps,
                    },
                );
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<CaptureStep>() {
            Ok(CaptureStep { epoch, left }) => {
                if left > 1 {
                    let step_ns = ctx.rng().range_u64(20_000, 120_000);
                    ctx.post_self(
                        SimDuration::from_nanos(step_ns),
                        CaptureStep {
                            epoch,
                            left: left - 1,
                        },
                    );
                    return;
                }
                let mean = self.dirty_kb_mean.max(2);
                let kb = ctx.rng().range_u64(mean / 2, mean + mean / 2);
                let bytes = kb * 1024;
                let started = self.capture_started.take().expect("capture chain started");
                let t = ctx.telemetry();
                t.inc(ids.c_captures);
                t.add(ids.c_bytes, bytes);
                t.record(
                    ids.h_capture_ns,
                    ctx.now().saturating_duration_since(started).as_nanos() as f64,
                );
                ctx.post(self.relay, self.leaf_latency, NodeDone { epoch, bytes });
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Tick>() {
            Ok(Tick) => {
                if self.capture_started.is_none() {
                    ctx.post(self.neighbor, self.leaf_latency, Ping);
                }
                let period = self.gossip_period.as_nanos();
                let jitter = ctx.rng().range_u64(0, period.max(4) / 4);
                ctx.post_self(SimDuration::from_nanos(period + jitter), Tick);
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<Ping>() {
            Ok(Ping) => ctx.telemetry().inc(ids.c_pings),
            Err(p) => panic!("node got unexpected payload {p:?}"),
        }
    }
    sim::component_boilerplate!();
}

// ---------------------------------------------------------------------------
// Lab assembly.
// ---------------------------------------------------------------------------

/// A built scale experiment: the sharded engine plus the ids needed to
/// drive and interrogate it.
pub struct ScaleLab {
    /// The engine; exposed so drivers (benches) can flip parallel mode
    /// or inspect counters directly.
    pub engine: ShardedEngine,
    coordinator: ComponentId,
    cfg: ScaleConfig,
}

/// Result summary of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaleOutcome {
    /// Epochs committed (must equal `cfg.epochs`).
    pub epochs_committed: u64,
    /// Dirty bytes captured across all nodes and epochs.
    pub bytes_captured: u64,
    /// Leaf nodes in the topology.
    pub nodes: u32,
    /// Total events dispatched.
    pub events: u64,
    /// Gossip pings received across all nodes.
    pub pings: u64,
    /// FNV-1a fingerprint of the merged telemetry CSV.
    pub fingerprint_metrics: u64,
    /// FNV-1a fingerprint of the merged Perfetto trace export.
    pub fingerprint_trace: u64,
}

/// Builds the lab on `shards` shards. Identical `cfg` + `seed` produce
/// identical runs for every `shards` value — placement varies, global
/// component ids and behavior do not.
pub fn build_scale_lab(cfg: &ScaleConfig, seed: u64, shards: u32) -> ScaleLab {
    assert!(!cfg.group_sizes.is_empty(), "need at least one group");
    assert!(
        cfg.leaf_latency <= cfg.hub_latency,
        "leaf latency above hub latency would understate the lookahead"
    );
    let mut engine = ShardedEngine::new(seed, shards, cfg.hub_latency);
    // Registration order is topology order: coordinator, then each
    // group's relay followed by its nodes. Only `shard` varies with S.
    let coordinator = engine.add_component_on(
        0,
        Box::new(ScaleCoordinator {
            relays: Vec::new(),
            period: cfg.epoch_period,
            hub_latency: cfg.hub_latency,
            epochs_target: cfg.epochs,
            epoch: 0,
            round_started: SimTime::ZERO,
            pending_groups: 0,
            round_nodes: 0,
            round_bytes: 0,
            records: Vec::new(),
            ids: None,
        }),
    );
    let mut relays = Vec::new();
    for (g, &size) in cfg.group_sizes.iter().enumerate() {
        assert!(size >= 1, "empty group {g}");
        let shard = g as u32 % shards;
        let relay = engine.add_component_on(
            shard,
            Box::new(ScaleRelay {
                group: g as u32,
                coordinator,
                nodes: Vec::new(),
                hub_latency: cfg.hub_latency,
                leaf_latency: cfg.leaf_latency,
                epoch: 0,
                pending: 0,
                bytes: 0,
                ids: None,
            }),
        );
        let nodes: Vec<ComponentId> = (0..size)
            .map(|_| {
                engine.add_component_on(
                    shard,
                    Box::new(ScaleNode {
                        relay,
                        neighbor: relay, // rewired below
                        leaf_latency: cfg.leaf_latency,
                        capture_steps: cfg.capture_steps.max(1),
                        gossip_period: cfg.gossip_period,
                        dirty_kb_mean: cfg.dirty_kb_mean,
                        capture_started: None,
                        ids: None,
                    }),
                )
            })
            .collect();
        for (i, &node) in nodes.iter().enumerate() {
            let neighbor = nodes[(i + 1) % nodes.len()];
            engine.component_mut::<ScaleNode>(node).unwrap().neighbor = neighbor;
        }
        engine.component_mut::<ScaleRelay>(relay).unwrap().nodes = nodes.clone();
        relays.push(relay);
        // Gossip kickoff: deterministic per-node stagger spreads ticks
        // across the period (a function of the global node index).
        if cfg.gossip_period > SimDuration::ZERO {
            let period = cfg.gossip_period.as_nanos();
            for (i, &node) in nodes.iter().enumerate() {
                let stagger = (node.0 as u64 * 97 + i as u64) % period.max(1);
                engine.post(node, SimDuration::from_nanos(stagger), Tick);
            }
        }
    }
    engine
        .component_mut::<ScaleCoordinator>(coordinator)
        .unwrap()
        .relays = relays;
    // First round starts one period in, leaving gossip time to spin up.
    engine.post(coordinator, cfg.epoch_period, StartRound);
    ScaleLab {
        engine,
        coordinator,
        cfg: cfg.clone(),
    }
}

impl ScaleLab {
    /// The fixed run horizon: identical across shard counts (it must
    /// be — fingerprints are compared across layouts), generous enough
    /// for every round to commit.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.cfg.epoch_period * (self.cfg.epochs as u64 + 2)
    }

    /// Runs the experiment to its horizon.
    pub fn run(&mut self) {
        let horizon = self.horizon();
        self.engine.run_until(horizon);
    }

    /// The committed rounds, in order.
    pub fn records(&self) -> &[ScaleEpochRecord] {
        &self
            .engine
            .component_ref::<ScaleCoordinator>(self.coordinator)
            .expect("coordinator exists")
            .records
    }

    /// Merged (deterministic) telemetry across shards.
    pub fn merged_telemetry(&self) -> Telemetry {
        self.engine.merged_telemetry()
    }

    /// Summarizes the run and fingerprints its exports.
    pub fn outcome(&self) -> ScaleOutcome {
        let m = self.merged_telemetry();
        ScaleOutcome {
            epochs_committed: m.counter_value("scale.coord.commits").unwrap_or(0),
            bytes_captured: m.counter_value("scale.coord.bytes").unwrap_or(0),
            nodes: self.cfg.nodes(),
            events: self.engine.events_dispatched(),
            pings: m.counter_value("scale.node.pings").unwrap_or(0),
            fingerprint_metrics: fnv1a(m.to_csv().as_bytes()),
            fingerprint_trace: fnv1a(m.trace_to_perfetto().as_bytes()),
        }
    }

    /// Protocol invariants every run must satisfy; returns the first
    /// violation as an error string.
    pub fn check_invariants(&self) -> Result<(), String> {
        let records = self.records();
        if records.len() != self.cfg.epochs as usize {
            return Err(format!(
                "committed {} epochs, wanted {}",
                records.len(),
                self.cfg.epochs
            ));
        }
        let nodes = self.cfg.nodes();
        let mut last_commit = SimTime::ZERO;
        for r in records {
            if r.nodes != nodes {
                return Err(format!(
                    "epoch {}: {} nodes reported, topology has {nodes}",
                    r.epoch, r.nodes
                ));
            }
            if r.bytes == 0 {
                return Err(format!("epoch {}: zero bytes captured", r.epoch));
            }
            if r.committed_at <= last_commit {
                return Err(format!("epoch {}: commits not monotone", r.epoch));
            }
            last_commit = r.committed_at;
        }
        let m = self.merged_telemetry();
        let node_bytes = m.counter_value("scale.node.bytes").unwrap_or(0);
        let coord_bytes = m.counter_value("scale.coord.bytes").unwrap_or(0);
        if node_bytes != coord_bytes {
            return Err(format!(
                "byte conservation broken: nodes captured {node_bytes}, \
                 coordinator committed {coord_bytes}"
            ));
        }
        Ok(())
    }
}

/// FNV-1a over a byte string; the workspace's standard cheap
/// fingerprint (same constants as the explorer's).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_lab_commits_all_epochs() {
        let cfg = ScaleConfig {
            epochs: 3,
            ..ScaleConfig::uniform(4, 4)
        };
        let mut lab = build_scale_lab(&cfg, 11, 2);
        lab.run();
        lab.check_invariants().unwrap();
        let o = lab.outcome();
        assert_eq!(o.epochs_committed, 3);
        assert_eq!(o.nodes, 16);
        assert!(o.pings > 0, "gossip ran");
        assert!(o.bytes_captured > 0);
    }

    #[test]
    fn outcome_is_shard_count_invariant() {
        let cfg = ScaleConfig {
            epochs: 2,
            ..ScaleConfig::uniform(6, 3)
        };
        let run = |shards: u32| {
            let mut lab = build_scale_lab(&cfg, 42, shards);
            lab.run();
            lab.check_invariants().unwrap();
            lab.outcome()
        };
        let base = run(1);
        assert_eq!(run(2), base);
        assert_eq!(run(3), base);
    }

    #[test]
    fn ragged_group_sizes_work() {
        let cfg = ScaleConfig {
            group_sizes: vec![5, 1, 9, 2],
            epochs: 2,
            ..ScaleConfig::uniform(1, 1)
        };
        let mut lab = build_scale_lab(&cfg, 3, 3);
        lab.run();
        lab.check_invariants().unwrap();
        assert_eq!(lab.outcome().nodes, 17);
    }
}
