//! The delay-node host: Dummynet shaping plus its live checkpoint (§4.4).
//!
//! A delay node is a dedicated testbed machine interposed on experiment
//! links, shaping traffic with Dummynet. Checkpointing the set of delay
//! nodes checkpoints the *network core*: all bandwidth-delay-product
//! packets live in their pipes, so endpoints never need a delay-accurate
//! replay mechanism. The paper implements this natively (no Xen) because
//! "the overhead of virtualization seems to be prohibitive for
//! implementing an accurate, high-speed delay emulation" — so this
//! component drives the `dummynet` state machine directly.

use std::collections::HashMap;

use clocksync::{NtpClient, NtpResponse};
use dummynet::{Dummynet, DummynetImage, PipeConfig, PipeId};
use hwsim::{
    Frame, HardwareClock, IfaceId, LanTransmit, LinkDeliver, LinkTransmit, NodeAddr,
};
use sim::buggify;
use sim::buggify::points as bg_points;
use sim::telemetry::names;
use sim::{
    transmission_time, Component, ComponentId, Ctx, EventId, Payload, SimDuration, SimTime,
    TraceCtx,
};

use crate::bus::{BusMsg, BUS_MSG_BYTES};

/// Where shaped frames leave the delay node.
#[derive(Clone, Copy, Debug)]
pub struct OutPort {
    pub link: ComponentId,
    pub end: usize,
}

enum DnMsg {
    NtpPoll,
    PipeWake,
    AgentWake { token: u64 },
    CaptureDone { epoch: u64 },
    /// Suspension watchdog: if the epoch is still unresolved when this
    /// fires, the coordinator is presumed dead and the hold is released.
    Watchdog { epoch: u64 },
    Replay { pipe: PipeId, frame: Frame },
}

/// Per-node statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DelayNodeStats {
    pub forwarded: u64,
    pub checkpoints: u64,
    pub logged_in_flight: u64,
    /// Epochs rolled back on coordinator abort.
    pub aborted: u64,
    /// Suspensions released by the watchdog (resolution never arrived).
    pub watchdog_releases: u64,
}

/// A delay node participating in coordinated checkpoints.
pub struct DelayNodeHost {
    addr: NodeAddr,
    lan: ComponentId,
    coordinator: NodeAddr,
    clock: HardwareClock,
    ntp: NtpClient,
    dn: Dummynet,
    routes: HashMap<IfaceId, (PipeId, OutPort)>,
    wake: Option<(SimTime, EventId)>,
    /// End of the post-resume replay window: new arrivals queue behind the
    /// replayed in-flight packets to preserve order (§3.2).
    replay_until: SimTime,
    epoch: u64,
    /// Serialization throughput for the checkpoint (bytes/s of pipe state).
    capture_bps: u64,
    last_image: Option<DummynetImage>,
    /// Image displaced by an in-flight capture, kept until the epoch
    /// commits so an abort can roll the local sequence back.
    prev_image: Option<DummynetImage>,
    /// Causal context of the current epoch's round, taken from the
    /// notification and echoed on replies; suspend/drain flow steps
    /// link this node into the round's cross-host flow.
    trace: TraceCtx,
    /// Epoch aborted by the coordinator; its stale wakes are suppressed.
    aborted_epoch: Option<u64>,
    /// Re-send the done report at this interval until the epoch resolves
    /// (at-least-once completion reporting for lossy control planes).
    done_resend: Option<SimDuration>,
    /// Release a suspension whose epoch is still unresolved after this
    /// long: the coordinator crashed mid-round and its recovery may have
    /// abandoned us, so roll back and drain rather than wedge forever.
    /// Must exceed the epoch deadline plus the worst-case coordinator
    /// downtime, or healthy held rounds would self-release.
    suspend_watchdog: Option<SimDuration>,
    /// Counters.
    pub stats: DelayNodeStats,
}

impl DelayNodeHost {
    /// Creates a delay node.
    pub fn new(
        addr: NodeAddr,
        lan: ComponentId,
        coordinator: NodeAddr,
        clock_offset_ns: i64,
        clock_drift_ppm: f64,
    ) -> Self {
        DelayNodeHost {
            addr,
            lan,
            coordinator,
            clock: HardwareClock::new(clock_offset_ns, clock_drift_ppm),
            ntp: NtpClient::emulab_default(),
            dn: Dummynet::new(),
            routes: HashMap::new(),
            wake: None,
            replay_until: SimTime::ZERO,
            epoch: 0,
            capture_bps: 500_000_000,
            last_image: None,
            prev_image: None,
            trace: TraceCtx::NONE,
            aborted_epoch: None,
            done_resend: None,
            suspend_watchdog: None,
            stats: DelayNodeStats::default(),
        }
    }

    /// Enables done-report retransmission every `interval` until a resume
    /// or abort resolves the epoch.
    pub fn set_done_resend(&mut self, interval: Option<SimDuration>) {
        self.done_resend = interval;
    }

    /// Arms the suspension watchdog: a round still unresolved `timeout`
    /// after its suspension began is treated as aborted — the captured
    /// image rolls back and the pipes drain. Off by default (held
    /// swap-out/time-travel rounds legitimately stay suspended for
    /// arbitrarily long).
    pub fn set_suspend_watchdog(&mut self, timeout: Option<SimDuration>) {
        self.suspend_watchdog = timeout;
    }

    /// Adds a shaped unidirectional path: frames arriving on `in_iface`
    /// pass through a new pipe with `cfg` and leave via `out`.
    pub fn add_path(&mut self, in_iface: IfaceId, cfg: PipeConfig, out: OutPort) -> PipeId {
        let pipe = self.dn.add_pipe(cfg);
        self.routes.insert(in_iface, (pipe, out));
        pipe
    }

    /// The node's control address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The shaping instance (reconfiguration, stats).
    pub fn dummynet(&self) -> &Dummynet {
        &self.dn
    }

    /// Mutable shaping access.
    pub fn dummynet_mut(&mut self) -> &mut Dummynet {
        &mut self.dn
    }

    /// The last captured image (swap-out / time-travel).
    pub fn last_image(&self) -> Option<&DummynetImage> {
        self.last_image.as_ref()
    }

    /// Resumes a restored, suspended instance outside the bus protocol
    /// (stateful swap-in): shifts deadlines and schedules the replay.
    pub fn resume_from_restore(&mut self, ctx: &mut Ctx<'_>) {
        if self.dn.suspended() {
            self.resume(ctx);
        }
    }

    /// Takes the suspension-window arrival log (swap-out preservation).
    ///
    /// # Panics
    ///
    /// Panics if the node is not suspended.
    pub fn take_suspended_log(&mut self) -> Vec<(SimDuration, dummynet::PipeId, Frame)> {
        self.dn.take_log()
    }

    /// Installs a preserved arrival log; the node must be suspended (a
    /// fresh restore can be re-suspended first).
    pub fn install_suspended_log(
        &mut self,
        log: Vec<(SimDuration, dummynet::PipeId, Frame)>,
    ) {
        self.dn.install_log(log);
    }

    /// Abandons a suspension without replay (time travel discards the
    /// current execution before installing a snapshot).
    pub fn abandon_checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        if self.dn.suspended() {
            let _ = self.dn.resume(ctx.now());
        }
    }

    /// Installs restored shaping state (swap-in / time-travel); pipe ids
    /// keep their meaning because paths are re-added in spec order.
    pub fn install_dummynet(&mut self, ctx: &mut Ctx<'_>, dn: Dummynet) {
        if let Some((_, ev)) = self.wake.take() {
            ctx.cancel(ev);
        }
        self.dn = dn;
        // Restored instances arrive without telemetry; re-attach.
        self.dn.attach_telemetry(ctx.telemetry(), self.addr.0);
        self.reschedule_wake(ctx);
    }

    /// Boots the node (NTP).
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.dn.attach_telemetry(ctx.telemetry(), self.addr.0);
        let d = SimDuration::from_millis(ctx.rng().range_u64(50, 500));
        ctx.post_self(d, DnMsg::NtpPoll);
    }

    fn reschedule_wake(&mut self, ctx: &mut Ctx<'_>) {
        if self.dn.suspended() {
            // Queued packets keep their (stale) deadlines while suspended;
            // emission restarts at resume, which shifts them by the
            // downtime. Re-arming here would spin on a past deadline.
            return;
        }
        let next = self.dn.next_ready();
        match (next, self.wake) {
            (None, _) => {}
            (Some(t), Some((wt, _))) if wt <= t => {}
            (Some(t), prev) => {
                if let Some((_, ev)) = prev {
                    ctx.cancel(ev);
                }
                let at = t.max(ctx.now());
                let ev = ctx.post_at(ctx.self_id(), at, DnMsg::PipeWake);
                self.wake = Some((at, ev));
            }
        }
    }

    fn emit_ready(&mut self, ctx: &mut Ctx<'_>) {
        let ready = self.dn.pop_ready(ctx.now());
        for (pipe, frame) in ready {
            // Find the out port for this pipe.
            let out = self
                .routes
                .values()
                .find(|(p, _)| *p == pipe)
                .map(|&(_, o)| o)
                .expect("pipe has a route");
            self.stats.forwarded += 1;
            ctx.post(
                out.link,
                SimDuration::ZERO,
                LinkTransmit {
                    from_end: out.end,
                    frame,
                },
            );
        }
        self.wake = None;
        self.reschedule_wake(ctx);
    }

    fn on_exp_rx(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: Frame) {
        let Some(&(pipe, _)) = self.routes.get(&iface) else {
            return;
        };
        let now = ctx.now();
        if !self.dn.suspended() && now < self.replay_until {
            // Replay in progress: queue the fresh arrival behind it, paced
            // at roughly wire speed so the replay tail does not become an
            // instantaneous burst that overfills the pipe queue (§3.2).
            self.replay_until += SimDuration::from_micros(12);
            ctx.post_at(ctx.self_id(), self.replay_until, DnMsg::Replay { pipe, frame });
            return;
        }
        let _outcome = self.dn.enqueue(now, pipe, frame, ctx.rng());
        if self.dn.suspended() {
            self.stats.logged_in_flight += 1;
        }
        self.reschedule_wake(ctx);
    }

    fn on_ctrl(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
        if let Some(resp) = frame.payload::<NtpResponse>() {
            let t4 = self.clock.read_ns(ctx.now());
            let action = self.ntp.on_response(*resp, t4);
            let now = ctx.now();
            self.ntp.apply(&mut self.clock, now, action);
            return;
        }
        let Some(&msg) = frame.payload::<BusMsg>() else {
            return;
        };
        match msg {
            // Delay nodes always serialize their complete state (§4.4), so
            // the `full` flag is meaningless here and ignored.
            BusMsg::CheckpointAt { epoch, at_clock_ns, full: _, trace } => {
                if epoch < self.epoch {
                    return; // Stale retry of a finished epoch.
                }
                self.send_ctrl(ctx, BusMsg::NotifyAck { epoch, trace });
                if epoch == self.epoch {
                    return; // Duplicate: the timer is already armed.
                }
                if self.dn.suspended() {
                    // A new round means the previous epoch terminated
                    // without this node seeing its resolution (the resume
                    // or abort was lost): release the pipes and join.
                    self.resume(ctx);
                }
                self.epoch = epoch;
                self.trace = trace;
                // Clamp: a retried notification may target the past.
                let at = self.clock.when_reads(ctx.now(), at_clock_ns).max(ctx.now());
                ctx.post_at(ctx.self_id(), at, DnMsg::AgentWake { token: epoch });
            }
            BusMsg::CheckpointNow { epoch, full: _, trace } => {
                if epoch < self.epoch {
                    return;
                }
                self.send_ctrl(ctx, BusMsg::NotifyAck { epoch, trace });
                if epoch == self.epoch {
                    return;
                }
                if self.dn.suspended() {
                    self.resume(ctx); // Lost resolution; see above.
                }
                self.epoch = epoch;
                self.trace = trace;
                self.begin_checkpoint(ctx);
            }
            BusMsg::Resume { epoch, .. } => {
                if epoch == self.epoch
                    && self.aborted_epoch != Some(epoch)
                    && self.dn.suspended()
                {
                    self.resume(ctx);
                }
            }
            BusMsg::Abort { epoch, .. } => {
                if epoch != self.epoch || self.aborted_epoch == Some(epoch) {
                    return; // Stale or duplicated abort.
                }
                self.aborted_epoch = Some(epoch);
                self.stats.aborted += 1;
                if self.dn.suspended() {
                    // Roll back the captured image and resume through the
                    // firewall as if the epoch had never been triggered.
                    self.last_image = self.prev_image.take();
                    self.stats.checkpoints = self.stats.checkpoints.saturating_sub(1);
                    self.resume(ctx);
                }
            }
            BusMsg::NotifyAck { .. } | BusMsg::NodeDone { .. } | BusMsg::RequestCheckpoint => {}
        }
    }

    fn begin_checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        if self.dn.suspended() {
            return;
        }
        // Suspend Dummynet and serialize non-destructively.
        self.dn.suspend(ctx.now());
        {
            let t = ctx.telemetry();
            let track = t.track(self.addr.0, names::TRACK_DUMMYNET);
            let tag = t.trace_tag(names::FLOW_DN_SUSPEND);
            t.flow_step(track, tag, ctx.now(), self.trace);
        }
        if let Some((_, ev)) = self.wake.take() {
            ctx.cancel(ev);
        }
        let image = self.dn.serialize(ctx.now());
        let mut cost = SimDuration::from_millis(1)
            + transmission_time(image.byte_size(), self.capture_bps * 8);
        // Buggified suspend stall: the serialization hiccups (page-outs,
        // a contended disk) and the done report arrives late — the kind
        // of straggler that stresses the coordinator's deadline logic.
        let bg = ctx.buggify().clone();
        if buggify!(bg, bg_points::DN_SUSPEND_STALL) {
            cost += SimDuration::from_micros(bg.magnitude(bg_points::DN_SUSPEND_STALL, 500, 50_000));
        }
        self.prev_image = self.last_image.take();
        self.last_image = Some(image);
        self.stats.checkpoints += 1;
        ctx.post_self(cost, DnMsg::CaptureDone { epoch: self.epoch });
        if let Some(timeout) = self.suspend_watchdog {
            ctx.post_self(timeout, DnMsg::Watchdog { epoch: self.epoch });
        }
    }

    fn resume(&mut self, ctx: &mut Ctx<'_>) {
        // The epoch outlives its rollback window once traffic flows again.
        self.prev_image = None;
        let actions = self.dn.resume(ctx.now());
        // Replay preserving inter-arrival pacing, gap-clamped so dead time
        // (skew-to-resume) does not stall delivery; new arrivals queue
        // behind via `replay_until`.
        let mut at = ctx.now();
        // Buggified drain stall: the whole replay window slips, so fresh
        // arrivals queue behind a later tail (order still preserved).
        let bg = ctx.buggify().clone();
        if buggify!(bg, bg_points::DN_DRAIN_STALL) {
            at += SimDuration::from_micros(bg.magnitude(bg_points::DN_DRAIN_STALL, 500, 20_000));
        }
        let mut prev: Option<SimTime> = None;
        for a in actions {
            let gap = match prev {
                Some(p) => a
                    .at
                    .saturating_duration_since(p)
                    .min(SimDuration::from_millis(1)),
                None => SimDuration::ZERO,
            };
            prev = Some(a.at);
            at += gap;
            ctx.post_at(
                ctx.self_id(),
                at,
                DnMsg::Replay {
                    pipe: a.pipe,
                    frame: a.frame,
                },
            );
        }
        self.replay_until = at;
        // The drain's end: stamped at the replay window's close (the ring
        // tolerates near-future stamps) so the flow arrow lands where the
        // node actually rejoins live traffic.
        {
            let t = ctx.telemetry();
            let track = t.track(self.addr.0, names::TRACK_DUMMYNET);
            let tag = t.trace_tag(names::FLOW_DN_DRAIN);
            t.flow_step(track, tag, at, self.trace);
        }
        self.reschedule_wake(ctx);
    }

    fn send_ctrl(&mut self, ctx: &mut Ctx<'_>, msg: BusMsg) {
        let frame = Frame::new(self.addr, self.coordinator, BUS_MSG_BYTES, msg);
        ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
    }
}

impl Component for DelayNodeHost {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.downcast::<LinkDeliver>() {
            Ok(del) => {
                if del.iface == IfaceId::CONTROL {
                    self.on_ctrl(ctx, del.frame);
                } else {
                    self.on_exp_rx(ctx, del.iface, del.frame);
                }
                return;
            }
            Err(p) => p,
        };
        let msg = match payload.downcast::<DnMsg>() {
            Ok(m) => m,
            Err(_) => panic!("DelayNodeHost received an unknown message"),
        };
        match msg {
            DnMsg::NtpPoll => {
                let t1 = self.clock.read_ns(ctx.now());
                let req = self.ntp.begin_poll(t1);
                let frame = Frame::new(self.addr, self.coordinator, 90, req);
                ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
                ctx.post_self(self.ntp.next_poll_in(), DnMsg::NtpPoll);
            }
            DnMsg::PipeWake => self.emit_ready(ctx),
            DnMsg::AgentWake { token } => {
                if token == self.epoch && self.aborted_epoch != Some(token) {
                    self.begin_checkpoint(ctx);
                }
            }
            DnMsg::CaptureDone { epoch } => {
                if epoch != self.epoch
                    || self.aborted_epoch == Some(epoch)
                    || !self.dn.suspended()
                {
                    return; // The epoch resolved while this event was due.
                }
                let image_bytes = self.last_image().map(|i| i.byte_size()).unwrap_or(0);
                let trace = self.trace;
                self.send_ctrl(ctx, BusMsg::NodeDone { epoch, image_bytes, trace });
                if let Some(interval) = self.done_resend {
                    // At-least-once: repeat until resume/abort resolves it.
                    ctx.post_self(interval, DnMsg::CaptureDone { epoch });
                }
            }
            DnMsg::Watchdog { epoch } => {
                if epoch != self.epoch
                    || self.aborted_epoch == Some(epoch)
                    || !self.dn.suspended()
                {
                    return; // The round resolved; the watchdog is moot.
                }
                // No resume or abort ever arrived: a recovering
                // coordinator abandoned this round (its abort publication
                // was lost, or it classified the round before this node's
                // done report landed). Locally adopt the abort outcome —
                // roll back the capture and drain the queued packets.
                self.aborted_epoch = Some(epoch);
                self.stats.aborted += 1;
                self.stats.watchdog_releases += 1;
                self.last_image = self.prev_image.take();
                self.stats.checkpoints = self.stats.checkpoints.saturating_sub(1);
                self.resume(ctx);
            }
            DnMsg::Replay { pipe, frame } => {
                let now = ctx.now();
                let _ = self.dn.enqueue(now, pipe, frame, ctx.rng());
                self.reschedule_wake(ctx);
            }
        }
    }

    sim::component_boilerplate!();
}
