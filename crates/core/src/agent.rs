//! The per-node checkpoint agent plugged into each VM host.
//!
//! The agent is the node-side half of §4.3's protocol: it receives bus
//! notifications on the control interface, arms a local timer for
//! scheduled checkpoints ("Upon receiving the notification, nodes schedule
//! their checkpoints locally. Accurate local timers and clock
//! synchronization algorithms ensure precise checkpoint synchronization"),
//! reports completion for the barrier, and resumes on command.

use hwsim::Frame;
use sim::{Ctx, SimDuration};
use vmm::{HostAgent, VmHost};

use crate::bus::{BusMsg, BUS_MSG_BYTES};

/// The coordinated-checkpoint agent for a VM host.
pub struct CheckpointAgent {
    coordinator: hwsim::NodeAddr,
    epoch: u64,
    /// Mean of the exponential processing delay applied to event-driven
    /// ("checkpoint now") triggers; zero for pure scheduled operation.
    processing_jitter_mean: SimDuration,
    /// Checkpoints this agent has completed.
    pub completed: u64,
}

impl CheckpointAgent {
    /// Creates an agent reporting to `coordinator`.
    pub fn new(coordinator: hwsim::NodeAddr) -> Self {
        CheckpointAgent {
            coordinator,
            epoch: 0,
            processing_jitter_mean: SimDuration::ZERO,
            completed: 0,
        }
    }

    /// Adds per-node processing jitter for event-driven triggers (the
    /// stack/VMM delays of §4.3 that make "checkpoint now" imprecise).
    pub fn with_processing_jitter(mut self, mean: SimDuration) -> Self {
        self.processing_jitter_mean = mean;
        self
    }
}

impl HostAgent for CheckpointAgent {
    fn on_ctrl_frame(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>, frame: &Frame) {
        let Some(&msg) = frame.payload::<BusMsg>() else {
            return;
        };
        match msg {
            BusMsg::CheckpointAt { epoch, at_clock_ns } => {
                self.epoch = epoch;
                host.agent_wake_at_clock_ns(ctx, at_clock_ns, epoch);
            }
            BusMsg::CheckpointNow { epoch } => {
                self.epoch = epoch;
                if self.processing_jitter_mean.is_zero() {
                    host.begin_checkpoint(ctx);
                } else {
                    let d = SimDuration::from_nanos(
                        ctx.rng()
                            .exponential(self.processing_jitter_mean.as_nanos() as f64)
                            as u64,
                    );
                    host.agent_wake_after(ctx, d, epoch);
                }
            }
            BusMsg::Resume { epoch } => {
                if epoch == self.epoch {
                    host.resume_guest(ctx);
                }
            }
            BusMsg::NodeDone { .. } | BusMsg::RequestCheckpoint => {}
        }
    }

    fn on_wake(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>, token: u64) {
        if token == self.epoch {
            host.begin_checkpoint(ctx);
        }
    }

    fn on_checkpoint_captured(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>) {
        self.completed += 1;
        let epoch = self.epoch;
        let image_bytes = host.last_image().map(|i| i.dirty_bytes).unwrap_or(0);
        host.send_ctrl(
            ctx,
            self.coordinator,
            BUS_MSG_BYTES,
            BusMsg::NodeDone { epoch, image_bytes },
        );
    }

    fn on_guest_trigger(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>) {
        host.send_ctrl(
            ctx,
            self.coordinator,
            BUS_MSG_BYTES,
            BusMsg::RequestCheckpoint,
        );
    }
}
