//! The per-node checkpoint agent plugged into each VM host.
//!
//! The agent is the node-side half of §4.3's protocol: it receives bus
//! notifications on the control interface, acks them (the coordinator's
//! failure detector retries unacked nodes), arms a local timer for
//! scheduled checkpoints ("Upon receiving the notification, nodes schedule
//! their checkpoints locally. Accurate local timers and clock
//! synchronization algorithms ensure precise checkpoint synchronization"),
//! reports completion for the barrier, resumes on command, and rolls the
//! local sequence back when the coordinator aborts the epoch. Duplicate
//! notifications (failure-detector retries, a lossy LAN's duplicated
//! frames) are absorbed by epoch ids: only the first copy of an epoch
//! arms the local timer.

use hwsim::Frame;
use sim::telemetry::names;
use sim::{Ctx, SimDuration, TraceCtx};
use vmm::{HostAgent, VmHost};

use crate::bus::{BusMsg, BUS_MSG_BYTES};

/// Distinguishes a deferred done-report wake (straggler stall) from a
/// checkpoint-start wake carrying the same epoch.
const DONE_TOKEN_BIT: u64 = 1 << 63;

/// The coordinated-checkpoint agent for a VM host.
pub struct CheckpointAgent {
    coordinator: hwsim::NodeAddr,
    epoch: u64,
    /// Mean of the exponential processing delay applied to event-driven
    /// ("checkpoint now") triggers; zero for pure scheduled operation.
    processing_jitter_mean: SimDuration,
    /// Fault injection: hold the done report this long after capture (a
    /// straggler node as seen by the coordinator).
    done_stall: Option<SimDuration>,
    /// Re-send the done report at this interval until the coordinator
    /// resolves the epoch (resume or abort) — at-least-once completion
    /// reporting for lossy control planes.
    done_resend: Option<SimDuration>,
    /// Causal context of the current epoch's round, taken from the
    /// notification and echoed on every reply; flow steps recorded
    /// node-side (ack, capture) link into the coordinator's flow.
    trace: TraceCtx,
    /// Epoch whose local checkpoint was aborted; stale wakes and done
    /// reports for it are suppressed.
    aborted_epoch: Option<u64>,
    /// Epoch counted in `completed` (un-counted again if it aborts).
    counted_epoch: Option<u64>,
    /// Checkpoints this agent has completed.
    pub completed: u64,
    /// Epochs this agent rolled back on coordinator abort.
    pub aborted: u64,
}

impl CheckpointAgent {
    /// Creates an agent reporting to `coordinator`.
    pub fn new(coordinator: hwsim::NodeAddr) -> Self {
        CheckpointAgent {
            coordinator,
            epoch: 0,
            processing_jitter_mean: SimDuration::ZERO,
            done_stall: None,
            done_resend: None,
            trace: TraceCtx::NONE,
            aborted_epoch: None,
            counted_epoch: None,
            completed: 0,
            aborted: 0,
        }
    }

    /// Adds per-node processing jitter for event-driven triggers (the
    /// stack/VMM delays of §4.3 that make "checkpoint now" imprecise).
    pub fn with_processing_jitter(mut self, mean: SimDuration) -> Self {
        self.processing_jitter_mean = mean;
        self
    }

    /// Makes this node a straggler: its done report is held for `stall`
    /// after the local capture completes (fault injection).
    pub fn with_done_stall(mut self, stall: SimDuration) -> Self {
        self.done_stall = Some(stall);
        self
    }

    /// Enables done-report retransmission: the report repeats every
    /// `interval` until a resume or abort resolves the epoch, so a lossy
    /// control LAN cannot lose a node's completion.
    pub fn with_done_resend(mut self, interval: SimDuration) -> Self {
        self.done_resend = Some(interval);
        self
    }

    fn send_ack(&self, host: &mut VmHost, ctx: &mut Ctx<'_>, epoch: u64, trace: TraceCtx) {
        let t = ctx.telemetry();
        let track = t.track(host.node().0, names::TRACK_VMHOST);
        let tag = t.trace_tag(names::FLOW_ACK);
        t.flow_step(track, tag, ctx.now(), trace);
        host.send_ctrl(
            ctx,
            self.coordinator,
            BUS_MSG_BYTES,
            BusMsg::NotifyAck { epoch, trace },
        );
    }

    fn send_done(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>, epoch: u64) {
        if self.counted_epoch != Some(epoch) {
            self.completed += 1;
            self.counted_epoch = Some(epoch);
        }
        let image_bytes = host.last_image().map(|i| i.dirty_bytes).unwrap_or(0);
        host.send_ctrl(
            ctx,
            self.coordinator,
            BUS_MSG_BYTES,
            BusMsg::NodeDone {
                epoch,
                image_bytes,
                trace: self.trace,
            },
        );
        if let Some(interval) = self.done_resend {
            host.agent_wake_after(ctx, interval, epoch | DONE_TOKEN_BIT);
        }
    }
}

impl HostAgent for CheckpointAgent {
    fn on_ctrl_frame(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>, frame: &Frame) {
        let Some(&msg) = frame.payload::<BusMsg>() else {
            return;
        };
        match msg {
            BusMsg::CheckpointAt { epoch, at_clock_ns, full, trace } => {
                if epoch < self.epoch {
                    return; // Stale retry of a finished epoch.
                }
                if full {
                    // The coordinator says our incremental chain is broken
                    // (e.g. we were re-admitted after a crash): capture the
                    // whole memory image this epoch. Safe on retries — the
                    // latch is idempotent.
                    host.request_full_checkpoint();
                }
                self.send_ack(host, ctx, epoch, trace);
                if epoch == self.epoch {
                    return; // Duplicate: the timer is already armed.
                }
                if host.awaiting_resume() {
                    // A new round means the previous epoch terminated
                    // without this node seeing its resolution (the resume
                    // or abort was lost): release the guest and join.
                    host.resume_guest(ctx);
                }
                self.epoch = epoch;
                self.trace = trace;
                host.set_flow_ctx(trace);
                host.agent_wake_at_clock_ns(ctx, at_clock_ns, epoch);
            }
            BusMsg::CheckpointNow { epoch, full, trace } => {
                if epoch < self.epoch {
                    return;
                }
                if full {
                    host.request_full_checkpoint(); // See CheckpointAt.
                }
                self.send_ack(host, ctx, epoch, trace);
                if epoch == self.epoch {
                    return;
                }
                if host.awaiting_resume() {
                    host.resume_guest(ctx); // Lost resolution; see above.
                }
                self.epoch = epoch;
                self.trace = trace;
                host.set_flow_ctx(trace);
                if self.processing_jitter_mean.is_zero() {
                    host.begin_checkpoint(ctx);
                } else {
                    let d = SimDuration::from_nanos(
                        ctx.rng()
                            .exponential(self.processing_jitter_mean.as_nanos() as f64)
                            as u64,
                    );
                    host.agent_wake_after(ctx, d, epoch);
                }
            }
            BusMsg::Resume { epoch, .. } => {
                // `awaiting_resume` absorbs duplicated resume frames.
                if epoch == self.epoch
                    && self.aborted_epoch != Some(epoch)
                    && host.awaiting_resume()
                {
                    host.resume_guest(ctx);
                }
            }
            BusMsg::Abort { epoch, .. } => {
                if epoch != self.epoch || self.aborted_epoch == Some(epoch) {
                    return; // Stale or duplicated abort.
                }
                self.aborted_epoch = Some(epoch);
                self.aborted += 1;
                if host.abort_checkpoint(ctx) && self.counted_epoch == Some(epoch) {
                    // The captured image was rolled back: un-count it.
                    self.completed -= 1;
                    self.counted_epoch = None;
                }
            }
            BusMsg::NotifyAck { .. } | BusMsg::NodeDone { .. } | BusMsg::RequestCheckpoint => {}
        }
    }

    fn on_wake(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>, token: u64) {
        let epoch = token & !DONE_TOKEN_BIT;
        if epoch != self.epoch || self.aborted_epoch == Some(epoch) {
            return; // A wake for an epoch that aborted or moved on.
        }
        if token & DONE_TOKEN_BIT != 0 {
            if self.counted_epoch == Some(epoch) && !host.awaiting_resume() {
                return; // Resolved while the resend timer was pending.
            }
            // The stalled first report comes due, or a resend fires.
            self.send_done(host, ctx, epoch);
        } else {
            host.begin_checkpoint(ctx);
        }
    }

    fn on_checkpoint_captured(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>) {
        let epoch = self.epoch;
        match self.done_stall {
            Some(stall) => host.agent_wake_after(ctx, stall, epoch | DONE_TOKEN_BIT),
            None => self.send_done(host, ctx, epoch),
        }
    }

    fn on_guest_trigger(&mut self, host: &mut VmHost, ctx: &mut Ctx<'_>) {
        host.send_ctrl(
            ctx,
            self.coordinator,
            BUS_MSG_BYTES,
            BusMsg::RequestCheckpoint,
        );
    }
}
