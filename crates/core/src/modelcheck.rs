//! Exhaustive small-scope model check of the two-phase epoch protocol.
//!
//! The randomized explorer (`tcd-bench explore`) samples deep
//! interleavings of the full simulator; this module does the opposite
//! trade: it enumerates **every** interleaving of an abstract
//! single-round model — notify/ack/done delivery, the ack-timeout and
//! deadline failure detectors, coordinator crash/recovery, and the
//! delay-node suspension watchdog — for a 2–3 node group, by BFS with
//! visited-state dedup on a canonical bit-packed key.
//!
//! The property set is not hand-written for the model: every transition
//! emits the same `shadow.*` trace instants the real coordinator emits,
//! and a cloned [`ShadowEpochState`] is stepped alongside each path.
//! Whatever invariant the shadow enforces on the simulator, it enforces
//! here over the *complete* state space. Because the shadow's state is a
//! function of the model state (single round, single group), dedup on
//! the model key alone is sound.
//!
//! A second, model-level property closes the gap the shadow cannot see:
//! at every quiescent (deadlock) state, the round must be decided and no
//! node may be left suspended — the "no wedged epochs / no wedged
//! nodes" liveness bound that motivated the WAL in the first place.
//!
//! The `sabotage` knob makes recovery roll forward on acks instead of
//! done reports — a deliberately planted bug that the checker must
//! catch (see the self-test), proving the harness can fail.

use std::collections::{HashMap, VecDeque};

use sim::telemetry::names;
use sim::{SimTime, TraceEvent, TracePhase};

use crate::shadow::{self, ShadowEpochState};
use crate::wal::recover_code;

/// The one group and epoch of the modeled round.
const GROUP: u32 = 0;
const EPOCH: u64 = 1;
/// Host id stamped on emitted events (cosmetic; the shadow ignores it).
const COORD_HOST: u32 = 100;

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Nodes in the checkpoint group (2–4; the state space is
    /// exponential in this).
    pub nodes: u8,
    /// Coordinator crashes to inject along a single path.
    pub max_crashes: u8,
    /// Stop expanding paths longer than this many actions (`None` =
    /// exhaustive; the model is finite so this always terminates).
    pub depth_bound: Option<u32>,
    /// Plant a recovery bug: roll forward when every participant acked,
    /// even if done reports are missing. The checker must find it.
    pub sabotage: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { nodes: 2, max_crashes: 1, depth_bound: None, sabotage: false }
    }
}

/// What the checker found.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// Distinct canonical states reached.
    pub states_explored: u64,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: u64,
    /// Quiescent states (no action enabled) — each was liveness-checked.
    pub deadlocks: u64,
    /// Longest action sequence explored.
    pub max_depth_seen: u32,
    /// States cut off by the depth bound (0 on an exhaustive run).
    pub truncated: u64,
    /// First property violation, if any, as a replayable trace.
    pub counterexample: Option<Counterexample>,
}

/// A replayable property violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The action sequence from the initial state.
    pub actions: Vec<String>,
    /// The violated properties (shadow violations or liveness wedges).
    pub problems: Vec<String>,
    /// The shadow event sequence of the path, one `name,group,epoch,node`
    /// line per event — feed it back through `ShadowEpochState` to
    /// reproduce the verdict.
    pub events_csv: String,
}

/// One protocol action. `u8` operands are node indices `0..nodes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    /// The notification frames leave the coordinator (the WAL round-open
    /// and shadow joins happened in the initial state, before this — a
    /// crash in between is the `coord.crash_pre_notify` window).
    Publish,
    /// The notification reaches node *i*, which acks and arms capture.
    DeliverNotify(u8),
    /// The coordinator accepts node *i*'s ack (durable).
    CoordAck(u8),
    /// Node *i* suspends and captures locally.
    Capture(u8),
    /// The coordinator accepts node *i*'s done report (durable).
    CoordDone(u8),
    /// The epoch deadline fires: degrade (exclude never-acked stragglers)
    /// or abort.
    Deadline,
    /// The completed barrier commits (durable). The gap before this is
    /// the `coord.crash_pre_resume` window.
    Commit,
    /// The resume publication (durable). The gap after `Commit` is the
    /// `coord.crash_post_commit` window.
    PublishResume,
    /// The resume reaches suspended node *i*.
    DeliverResume(u8),
    /// The abort reaches node *i*, which rolls back if captured.
    DeliverAbort(u8),
    /// Node *i*'s suspension watchdog fires before the (lost) resolution
    /// reaches it: local rollback and drain.
    Watchdog(u8),
    /// The coordinator process crashes.
    Crash,
    /// The coordinator restarts and classifies the round from its WAL.
    Recover,
}

impl Action {
    fn label(self) -> String {
        match self {
            Action::Publish => "publish".into(),
            Action::DeliverNotify(i) => format!("deliver_notify({i})"),
            Action::CoordAck(i) => format!("coord_ack({i})"),
            Action::Capture(i) => format!("capture({i})"),
            Action::CoordDone(i) => format!("coord_done({i})"),
            Action::Deadline => "deadline".into(),
            Action::Commit => "commit".into(),
            Action::PublishResume => "publish_resume".into(),
            Action::DeliverResume(i) => format!("deliver_resume({i})"),
            Action::DeliverAbort(i) => format!("deliver_abort({i})"),
            Action::Watchdog(i) => format!("watchdog({i})"),
            Action::Crash => "crash".into(),
            Action::Recover => "recover".into(),
        }
    }
}

/// The canonical model state. Node sets are bitmasks over `0..nodes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct State {
    /// Notification frames are in flight.
    published: bool,
    /// Nodes that received the notification.
    notified: u8,
    /// Acks durably accepted by the coordinator (WAL).
    acked: u8,
    /// Nodes that suspended and captured (node-local, crash-immune).
    captured: u8,
    /// Done reports durably accepted (WAL); implies `acked`.
    done: u8,
    /// Nodes excluded by the deadline's degrade path (WAL).
    excluded: u8,
    /// The commit decision is durable (WAL).
    committed: bool,
    /// The resume publication is durable and in flight (WAL).
    resumed: bool,
    /// The abort decision is durable and in flight (WAL).
    aborted: bool,
    /// Suspended nodes released by a resume delivery.
    released: u8,
    /// Nodes that saw the abort (or their watchdog) and rolled back.
    rolled_back: u8,
    /// The coordinator process is up.
    up: bool,
    /// Crash injections left on this path.
    crashes_left: u8,
    /// The (single) epoch deadline already fired.
    deadline_fired: bool,
}

impl State {
    fn initial(cfg: &ModelConfig) -> State {
        State {
            published: false,
            notified: 0,
            acked: 0,
            captured: 0,
            done: 0,
            excluded: 0,
            committed: false,
            resumed: false,
            aborted: false,
            released: 0,
            rolled_back: 0,
            up: true,
            crashes_left: cfg.max_crashes,
            deadline_fired: false,
        }
    }

    /// Bit-packs the state into a dedup key (fits easily in 64 bits for
    /// up to 4 nodes: 7 masks x 4 bits + 7 flags/counters).
    fn key(&self) -> u64 {
        let mut k = 0u64;
        for (i, m) in [
            self.notified,
            self.acked,
            self.captured,
            self.done,
            self.excluded,
            self.released,
            self.rolled_back,
        ]
        .into_iter()
        .enumerate()
        {
            k |= u64::from(m) << (i * 4);
        }
        k |= u64::from(self.published) << 28;
        k |= u64::from(self.committed) << 29;
        k |= u64::from(self.resumed) << 30;
        k |= u64::from(self.aborted) << 31;
        k |= u64::from(self.up) << 32;
        k |= u64::from(self.deadline_fired) << 33;
        k |= u64::from(self.crashes_left) << 34;
        k
    }

    /// The round has reached a durable terminal decision.
    fn decided(&self) -> bool {
        self.committed || self.aborted
    }

    /// Suspended nodes that have seen neither a resume nor an abort.
    fn stuck(&self, all: u8) -> u8 {
        self.captured & !self.released & !self.rolled_back & all
    }
}

fn ev(name: &'static str, arg: i64) -> TraceEvent {
    TraceEvent {
        at: SimTime::ZERO,
        host: COORD_HOST,
        subsystem: "coordinator".into(),
        name: name.into(),
        phase: TracePhase::Instant,
        arg,
    }
}

fn node_ev(name: &'static str, node: u32) -> TraceEvent {
    ev(name, shadow::pack(GROUP, EPOCH, node))
}

/// Node index → the address the events carry (1-based, matching the rigs).
fn addr(i: u8) -> u32 {
    u32::from(i) + 1
}

/// Enumerates the actions enabled in `s`, in a fixed order so runs are
/// deterministic.
fn enabled(s: &State, cfg: &ModelConfig) -> Vec<Action> {
    let n = cfg.nodes;
    let all: u8 = (1 << n) - 1;
    let mut out = Vec::new();
    let open = !s.decided();
    if s.up && open && !s.published {
        out.push(Action::Publish);
    }
    for i in 0..n {
        let b = 1 << i;
        if s.published && open && s.notified & b == 0 {
            out.push(Action::DeliverNotify(i));
        }
        if s.up && open && s.notified & b != 0 && s.acked & b == 0 {
            out.push(Action::CoordAck(i));
        }
        if s.notified & b != 0
            && s.captured & b == 0
            && s.rolled_back & b == 0
            && s.released & b == 0
        {
            out.push(Action::Capture(i));
        }
        if s.up && open && s.captured & b != 0 && s.done & b == 0 && s.excluded & b == 0 {
            out.push(Action::CoordDone(i));
        }
        if s.resumed && s.captured & b != 0 && s.released & b == 0 && s.rolled_back & b == 0 {
            out.push(Action::DeliverResume(i));
        }
        if s.aborted && s.notified & b != 0 && s.rolled_back & b == 0 && s.released & b == 0 {
            out.push(Action::DeliverAbort(i));
        }
        // The watchdog races the (possibly lost) resolution delivery; it
        // only fires after the round decided, mirroring its timeout being
        // far beyond the epoch deadline plus recovery downtime.
        if (s.aborted || s.resumed)
            && s.captured & b != 0
            && s.released & b == 0
            && s.rolled_back & b == 0
        {
            out.push(Action::Watchdog(i));
        }
    }
    if s.up && open && s.published && !s.deadline_fired && all & !(s.done | s.excluded) != 0 {
        out.push(Action::Deadline);
    }
    if s.up && open && (s.done | s.excluded) == all && s.done != 0 {
        out.push(Action::Commit);
    }
    if s.up && s.committed && !s.resumed {
        out.push(Action::PublishResume);
    }
    if s.up && s.crashes_left > 0 && !s.aborted && !(s.committed && s.resumed) {
        out.push(Action::Crash);
    }
    if !s.up {
        out.push(Action::Recover);
    }
    out
}

/// Applies `a` to `s`, pushing the shadow events the real coordinator
/// would emit for the same transition.
fn apply(s: &mut State, a: Action, cfg: &ModelConfig, events: &mut Vec<TraceEvent>) {
    let n = cfg.nodes;
    let all: u8 = (1 << n) - 1;
    match a {
        Action::Publish => s.published = true,
        Action::DeliverNotify(i) => s.notified |= 1 << i,
        Action::CoordAck(i) => {
            s.acked |= 1 << i;
            events.push(node_ev(names::EV_SHADOW_ACK, addr(i)));
        }
        Action::Capture(i) => s.captured |= 1 << i,
        Action::CoordDone(i) => {
            // A done report is an implicit ack.
            s.acked |= 1 << i;
            s.done |= 1 << i;
            events.push(node_ev(names::EV_SHADOW_DONE, addr(i)));
        }
        Action::Deadline => {
            s.deadline_fired = true;
            let missing = all & !(s.done | s.excluded);
            let missing_never_acked = missing & s.acked == 0;
            let some_completed = s.done != 0;
            if missing_never_acked && some_completed {
                for i in 0..n {
                    if missing & (1 << i) != 0 {
                        s.excluded |= 1 << i;
                        events.push(node_ev(names::EV_SHADOW_EXCLUDE, addr(i)));
                    }
                }
                // The real handler commits in the same breath; the model
                // leaves `Commit` as the (now-enabled) next action so a
                // crash can land in the pre-resume window.
            } else {
                s.aborted = true;
                events.push(node_ev(names::EV_SHADOW_ABORT, 0));
            }
        }
        Action::Commit => {
            s.committed = true;
            events.push(node_ev(names::EV_SHADOW_COMMIT, s.excluded.count_ones()));
        }
        Action::PublishResume => {
            s.resumed = true;
            events.push(node_ev(names::EV_SHADOW_RESUME, 0));
        }
        Action::DeliverResume(i) => s.released |= 1 << i,
        Action::DeliverAbort(i) => s.rolled_back |= 1 << i,
        Action::Watchdog(i) => s.rolled_back |= 1 << i,
        Action::Crash => {
            s.up = false;
            s.crashes_left -= 1;
        }
        Action::Recover => {
            s.up = true;
            let barrier_complete = if cfg.sabotage {
                // Planted bug: recovery trusts acks as completions.
                (s.acked | s.done | s.excluded) == all
            } else {
                (s.done | s.excluded) == all
            };
            if s.committed && !s.resumed {
                // The decision was durable; only the release was lost.
                events.push(node_ev(names::EV_SHADOW_RECOVER, recover_code::RELEASE));
                s.resumed = true;
                events.push(node_ev(names::EV_SHADOW_RESUME, 0));
            } else if !s.decided() && barrier_complete && s.done != 0 {
                events.push(node_ev(names::EV_SHADOW_RECOVER, recover_code::ROLL_FORWARD));
                s.committed = true;
                events
                    .push(node_ev(names::EV_SHADOW_COMMIT, s.excluded.count_ones()));
                s.resumed = true;
                events.push(node_ev(names::EV_SHADOW_RESUME, 0));
            } else if !s.decided() {
                let code = if s.acked == 0 && s.done == 0 {
                    recover_code::ABORT
                } else {
                    recover_code::ABORT_FORCE_FULL
                };
                events.push(node_ev(names::EV_SHADOW_RECOVER, code));
                s.aborted = true;
                events.push(node_ev(names::EV_SHADOW_ABORT, 0));
            }
            // A fully closed round recovers to an idle coordinator.
        }
    }
}

/// One BFS node: a reached state, the congruent shadow, and the edge
/// that produced it (for counterexample trails).
struct SearchNode {
    state: State,
    shadow: ShadowEpochState,
    parent: usize,
    action: Option<Action>,
    depth: u32,
}

/// Runs the exhaustive check. Stops at the first property violation.
pub fn check(cfg: &ModelConfig) -> ModelReport {
    assert!((1..=4).contains(&cfg.nodes), "model scope is 1-4 nodes");
    let all: u8 = (1 << cfg.nodes) - 1;

    // Root: the round is durably open and every participant joined —
    // exactly what `trigger_round` does before the first crash window.
    let mut root_shadow = ShadowEpochState::new();
    let mut root_events = Vec::new();
    for i in 0..cfg.nodes {
        root_events.push(node_ev(names::EV_SHADOW_JOIN, addr(i)));
    }
    for e in &root_events {
        root_shadow.step(e);
    }

    let mut arena: Vec<SearchNode> = vec![SearchNode {
        state: State::initial(cfg),
        shadow: root_shadow,
        parent: usize::MAX,
        action: None,
        depth: 0,
    }];
    let mut visited: HashMap<u64, ()> = HashMap::new();
    visited.insert(arena[0].state.key(), ());
    let mut queue: VecDeque<usize> = VecDeque::from([0]);

    let mut report = ModelReport {
        states_explored: 1,
        transitions: 0,
        deadlocks: 0,
        max_depth_seen: 0,
        truncated: 0,
        counterexample: None,
    };

    while let Some(idx) = queue.pop_front() {
        let actions = enabled(&arena[idx].state, cfg);
        let depth = arena[idx].depth;
        report.max_depth_seen = report.max_depth_seen.max(depth);

        if actions.is_empty() {
            // Quiescent: the liveness properties must hold here.
            report.deadlocks += 1;
            let mut problems = Vec::new();
            let mut fin = arena[idx].shadow.clone();
            fin.finish();
            for v in fin.violations() {
                problems.push(v.to_string());
            }
            let stuck = arena[idx].state.stuck(all);
            for i in 0..cfg.nodes {
                if stuck & (1 << i) != 0 {
                    problems.push(format!(
                        "node {} wedged: suspended with no resolution reachable",
                        addr(i)
                    ));
                }
            }
            if !arena[idx].state.decided() {
                // `finish` flags this as Wedged too, but say it plainly.
                problems.push("round quiescent but undecided".into());
            }
            if !problems.is_empty() {
                report.counterexample = Some(build_counterexample(&arena, idx, cfg, problems));
                return report;
            }
            continue;
        }

        if cfg.depth_bound.is_some_and(|b| depth >= b) {
            report.truncated += 1;
            continue;
        }

        for a in actions {
            report.transitions += 1;
            let mut state = arena[idx].state;
            let mut shadow = arena[idx].shadow.clone();
            let before = shadow.violations().len();
            let mut events = Vec::new();
            apply(&mut state, a, cfg, &mut events);
            for e in &events {
                shadow.step(e);
            }
            if shadow.violations().len() > before {
                let problems: Vec<String> = shadow.violations()[before..]
                    .iter()
                    .map(|v| v.to_string())
                    .collect();
                arena.push(SearchNode { state, shadow, parent: idx, action: Some(a), depth: depth + 1 });
                let leaf = arena.len() - 1;
                report.counterexample = Some(build_counterexample(&arena, leaf, cfg, problems));
                return report;
            }
            let key = state.key();
            if let std::collections::hash_map::Entry::Vacant(v) = visited.entry(key) {
                v.insert(());
                report.states_explored += 1;
                arena.push(SearchNode {
                    state,
                    shadow,
                    parent: idx,
                    action: Some(a),
                    depth: depth + 1,
                });
                queue.push_back(arena.len() - 1);
            }
        }
    }
    report
}

/// Rebuilds the action trail and its shadow event sequence from the
/// arena's parent pointers.
fn build_counterexample(
    arena: &[SearchNode],
    leaf: usize,
    cfg: &ModelConfig,
    problems: Vec<String>,
) -> Counterexample {
    let mut trail = Vec::new();
    let mut at = leaf;
    while at != 0 {
        if let Some(a) = arena[at].action {
            trail.push(a);
        }
        at = arena[at].parent;
    }
    trail.reverse();

    // Replay the trail from the initial state to regenerate the exact
    // event sequence (joins first, then per-action emissions).
    let mut events = Vec::new();
    for i in 0..cfg.nodes {
        events.push(node_ev(names::EV_SHADOW_JOIN, addr(i)));
    }
    let mut s = State::initial(cfg);
    for &a in &trail {
        apply(&mut s, a, cfg, &mut events);
    }
    let mut csv = String::from("event,group,epoch,node\n");
    for e in &events {
        let (g, ep, node) = shadow::unpack(e.arg);
        csv.push_str(&format!("{},{g},{ep},{node}\n", e.name));
    }
    Counterexample {
        actions: trail.iter().map(|a| a.label()).collect(),
        problems,
        events_csv: csv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_one_crash_is_clean() {
        let report = check(&ModelConfig { nodes: 2, max_crashes: 1, ..Default::default() });
        assert!(
            report.counterexample.is_none(),
            "unexpected counterexample: {:?}",
            report.counterexample
        );
        assert!(report.states_explored > 100, "suspiciously small space");
        assert_eq!(report.truncated, 0);
    }

    #[test]
    fn two_nodes_two_crashes_is_clean() {
        let report = check(&ModelConfig { nodes: 2, max_crashes: 2, ..Default::default() });
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn three_nodes_one_crash_is_clean() {
        let report = check(&ModelConfig { nodes: 3, max_crashes: 1, ..Default::default() });
        assert!(
            report.counterexample.is_none(),
            "unexpected counterexample: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn sabotaged_recovery_is_caught() {
        let report = check(&ModelConfig {
            nodes: 2,
            max_crashes: 1,
            sabotage: true,
            ..Default::default()
        });
        let cx = report.counterexample.expect("the planted bug must be found");
        assert!(
            cx.problems.iter().any(|p| p.contains("missing")),
            "expected an incomplete-commit problem, got {:?}",
            cx.problems
        );
        assert!(!cx.actions.is_empty());
        assert!(cx.events_csv.contains("shadow.recover"));
    }

    #[test]
    fn depth_bound_truncates_without_counterexamples() {
        let report = check(&ModelConfig {
            nodes: 2,
            max_crashes: 1,
            depth_bound: Some(4),
            ..Default::default()
        });
        assert!(report.counterexample.is_none());
        assert!(report.truncated > 0);
    }

    #[test]
    fn crashless_model_is_clean_and_smaller() {
        let with = check(&ModelConfig { nodes: 2, max_crashes: 1, ..Default::default() });
        let without = check(&ModelConfig { nodes: 2, max_crashes: 0, ..Default::default() });
        assert!(without.counterexample.is_none());
        assert!(without.states_explored < with.states_explored);
    }
}
