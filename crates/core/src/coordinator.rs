//! The checkpoint coordinator on the ops node.
//!
//! Runs the distributed protocol of §4.3 as a **two-phase epoch state
//! machine**: publishes scheduled or event-driven checkpoint notifications
//! to every subscribed node, collects per-node acks (phase one, failure
//! detection), gathers per-node "done" reports behind a barrier (phase
//! two), and publishes the resume. Notifications carry epoch ids and are
//! retried with exponential backoff while acks are missing; an epoch that
//! cannot assemble its barrier before a deadline is aborted — nodes roll
//! back their local checkpoint sequence and resume through the temporal
//! firewall — or, per [`FailurePolicy`], committed *degraded* with a
//! crashed node excluded. The component doubles as the testbed's NTP
//! server (its clock is the reference the whole experiment disciplines
//! against), because scheduled checkpoints only make sense relative to the
//! clock the nodes chase.

use std::collections::{HashMap, HashSet};

use clocksync::{NtpRequest, NtpServer};
use hwsim::{Frame, HardwareClock, LanTransmit, LinkDeliver, NodeAddr};
use sim::buggify;
use sim::buggify::points as buggify_points;
use sim::telemetry::names;
use sim::{
    ActiveSpan, Component, ComponentId, CounterId, Ctx, HistogramId, Payload, SimDuration,
    SimTime, SpanId, TraceCtx, TraceTag, TrackId,
};

use crate::bus::{BusMsg, BUS_MSG_BYTES};
use crate::shadow;
use crate::wal::{recover_code, Wal, WalRecord};

/// Internal coordinator events. Every timer carries the incarnation
/// (`gen`) that armed it: timers of a crashed incarnation are discarded
/// on delivery instead of firing into the recovered protocol state.
#[derive(Clone, Copy)]
enum CoordMsg {
    /// Fire the next periodic checkpoint.
    PeriodicKick { gen: u32 },
    /// Per-round ack timer: re-notify nodes whose ack is still missing.
    AckTimeout { group: GroupId, epoch: u64, attempt: u32, gen: u32 },
    /// Per-round deadline: degrade or abort an epoch that has not
    /// assembled its barrier.
    EpochDeadline { group: GroupId, epoch: u64, gen: u32 },
    /// The crashed process comes back up and replays its WAL.
    Restart { gen: u32 },
}

/// How a checkpoint epoch terminated. Every epoch reaches exactly one of
/// these — the failure detector guarantees no epoch wedges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochOutcome {
    /// Every participant captured and resumed: a globally consistent
    /// checkpoint exists for this epoch.
    Committed,
    /// The barrier could not be assembled before the deadline; all
    /// participants rolled back and resumed as if the epoch had never
    /// been triggered.
    Aborted,
    /// Committed with one or more unresponsive (never-acked, presumed
    /// crashed) nodes excluded from the barrier, per experiment policy.
    Degraded,
}

/// Failure-handling policy for checkpoint rounds.
#[derive(Clone, Copy, Debug)]
pub struct FailurePolicy {
    /// Re-notify a node that has not acked within this much true time;
    /// subsequent retries back off exponentially (2x per attempt).
    pub ack_timeout: SimDuration,
    /// Give up re-notifying after this many retries (the deadline then
    /// decides the epoch's fate).
    pub max_notify_retries: u32,
    /// An epoch whose barrier is incomplete this long after publication
    /// is degraded or aborted.
    pub epoch_deadline: SimDuration,
    /// Deadline for *held* rounds (suspend for swap-out / time travel).
    /// Those are operator-paced stop-the-world operations whose barrier
    /// legitimately takes as long as the slowest node's drain + capture
    /// under load — the transparent-epoch deadline above would abort a
    /// healthy suspension whose disk drain runs long. Kept finite as a
    /// last-resort bound on truly wedged suspensions.
    pub suspend_deadline: SimDuration,
    /// Allow committing an epoch with never-acked (presumed crashed)
    /// nodes excluded from the barrier. When false — or when a missing
    /// node *did* ack, proving it alive — the epoch aborts instead.
    pub allow_degraded: bool,
    /// Extra back-to-back copies of each Resume/Abort publication. Frozen
    /// nodes can only be thawed by these messages, so on a lossy control
    /// LAN repeats bound the chance of a wedged node. Zero by default:
    /// healthy runs then put exactly the baseline frame load on the LAN.
    pub resume_repeats: u32,
    /// Evict nodes excluded by a degraded commit from group membership:
    /// later epochs then commit cleanly over the survivors instead of
    /// re-timing-out against a corpse every round. An evicted node that
    /// recovers is re-admitted through [`Coordinator::rejoin`], which
    /// forces its next checkpoint to be full (non-incremental). Off by
    /// default: the classic behaviour keeps excluding per-epoch.
    pub evict_excluded: bool,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            ack_timeout: SimDuration::from_millis(25),
            max_notify_retries: 5,
            epoch_deadline: SimDuration::from_secs(2),
            suspend_deadline: SimDuration::from_secs(120),
            allow_degraded: true,
            resume_repeats: 0,
            evict_excluded: false,
        }
    }
}

/// Per-epoch record for analysis.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    pub epoch: u64,
    /// Checkpoint group the round ran in.
    pub group: GroupId,
    /// True time the notification was published.
    pub published: SimTime,
    /// True time the last ack arrived (all participants notified).
    pub acked: Option<SimTime>,
    /// True time the barrier completed (all nodes done).
    pub barrier_done: Option<SimTime>,
    /// True time the resume was published.
    pub resumed: Option<SimTime>,
    /// Total image bytes reported by nodes for this epoch.
    pub captured_bytes: u64,
    /// How the epoch terminated; `None` while still in flight.
    pub outcome: Option<EpochOutcome>,
    /// Notification retries the failure detector issued.
    pub retries: u32,
    /// Participants excluded from the barrier (degraded commit).
    pub excluded: u32,
}

impl EpochRecord {
    /// Notify→all-acks latency: how long failure detection took to cover
    /// every participant.
    pub fn notify_to_acks(&self) -> Option<SimDuration> {
        self.acked
            .map(|t| t.saturating_duration_since(self.published))
    }

    /// Barrier hold time: how long the system stayed suspended between
    /// barrier completion and the resume publication.
    pub fn barrier_hold(&self) -> Option<SimDuration> {
        match (self.barrier_done, self.resumed) {
            (Some(b), Some(r)) => Some(r.saturating_duration_since(b)),
            _ => None,
        }
    }
}

/// Checkpoint trigger style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerMode {
    /// "Checkpoint at time t": scheduled through synchronized clocks.
    Scheduled {
        /// How far in the future to schedule, as a local-clock delta.
        lead: SimDuration,
    },
    /// "Checkpoint now": delivery-limited synchronization.
    EventDriven,
}

/// A checkpoint group: one experiment's set of nodes. Emulab coordinates
/// per experiment; nodes of different experiments never share a barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The default group for single-experiment setups.
    pub const DEFAULT: GroupId = GroupId(0);
}

/// An in-flight checkpoint round.
struct Round {
    epoch: u64,
    /// The published notification, kept verbatim for retries (a retried
    /// scheduled notification carries the *original* target time; node
    /// wake timers clamp past targets to "now").
    notify: BusMsg,
    /// Participants whose ack is still missing.
    await_ack: HashSet<NodeAddr>,
    /// Participants whose done report is still missing.
    await_done: HashSet<NodeAddr>,
    /// Participants excluded from the barrier (degraded commit).
    excluded: HashSet<NodeAddr>,
    /// Participants notified with the full-capture flag raised; cleared
    /// from the standing force-full set once their capture commits.
    forced_full: HashSet<NodeAddr>,
    /// Barrier size at publication time.
    participants: usize,
    /// Withhold the resume at the barrier (swap-out / time travel).
    hold: bool,
    /// Telemetry span opened at publication, closed at resume or abort.
    span: Option<ActiveSpan>,
}

/// Telemetry instrument handles, registered lazily on the first event
/// (ids are `Copy`; recording through them allocates nothing).
#[derive(Clone, Copy)]
struct CoordTele {
    notify_to_acks: HistogramId,
    barrier_hold: HistogramId,
    retries: CounterId,
    committed: CounterId,
    aborted: CounterId,
    degraded: CounterId,
    excluded: CounterId,
    captured_bytes: CounterId,
    crashes: CounterId,
    recoveries: CounterId,
    epoch_span: SpanId,
    /// Epoch-phase timeline row (on the ops node's pid).
    track: TrackId,
    ev_epoch: TraceTag,
    ev_notify: TraceTag,
    ev_all_acked: TraceTag,
    ev_barrier: TraceTag,
    ev_resume_released: TraceTag,
    ev_abandoned: TraceTag,
    /// Causal flow anchors for the round (start at notify, step at the
    /// barrier, end at the resume publication).
    ev_flow_notify: TraceTag,
    ev_flow_barrier: TraceTag,
    ev_flow_resume: TraceTag,
    /// Per-node shadow-protocol instants (consumed by `shadow`).
    ev_s_join: TraceTag,
    ev_s_ack: TraceTag,
    ev_s_done: TraceTag,
    ev_s_exclude: TraceTag,
    ev_s_commit: TraceTag,
    ev_s_abort: TraceTag,
    ev_s_resume: TraceTag,
    ev_s_abandon: TraceTag,
    ev_s_rejoin: TraceTag,
    ev_s_recover: TraceTag,
    ev_crash: TraceTag,
}

/// Construction-time configuration for [`Coordinator`], assembled by
/// [`CoordinatorBuilder`].
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// Control address of the ops node.
    pub addr: NodeAddr,
    /// Control LAN the coordinator publishes on.
    pub lan: ComponentId,
    /// Checkpoint trigger style (default: scheduled, 200 ms lead).
    pub mode: TriggerMode,
    /// Failure-handling policy.
    pub policy: FailurePolicy,
    /// Withhold resumes at the barrier by default (swap-out rigs).
    pub hold_resume: bool,
    /// Group the first `start_periodic` call drives.
    pub periodic_group: Option<GroupId>,
}

/// Builder for [`Coordinator`]; obtained from [`Coordinator::builder`].
#[derive(Clone, Debug)]
pub struct CoordinatorBuilder {
    cfg: CoordinatorConfig,
    wal: Option<Wal>,
}

impl CoordinatorBuilder {
    /// Checkpoint trigger style.
    pub fn mode(mut self, mode: TriggerMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Failure-handling policy.
    pub fn policy(mut self, policy: FailurePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Withhold resumes at the barrier by default. Prefer
    /// [`Coordinator::suspend_in`] for a single held round.
    pub fn hold_resume(mut self, hold: bool) -> Self {
        self.cfg.hold_resume = hold;
        self
    }

    /// Group the first `start_periodic` call drives.
    pub fn periodic_group(mut self, group: GroupId) -> Self {
        self.cfg.periodic_group = Some(group);
        self
    }

    /// Attaches the durable epoch WAL. The log outlives the coordinator
    /// process (the handle is shared with the testbed), which is what
    /// makes [`Coordinator::crash`] recoverable; without a WAL the
    /// coordinator is immortal, as before this existed.
    pub fn wal(mut self, wal: Wal) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Coordinator {
        let mut c = Coordinator::from_config(self.cfg);
        c.wal = self.wal;
        c
    }
}

/// The coordinator component.
pub struct Coordinator {
    addr: NodeAddr,
    lan: ComponentId,
    clock: HardwareClock,
    ntp: NtpServer,
    /// Member → group.
    members: Vec<(NodeAddr, GroupId)>,
    epoch: u64,
    /// In-flight rounds by group.
    pending: HashMap<GroupId, Round>,
    mode: TriggerMode,
    policy: FailurePolicy,
    periodic: Option<(GroupId, SimDuration)>,
    /// Complete the barrier but do not publish the resume (swap-out and
    /// time-travel hold the system suspended to collect its state).
    hold_resume: bool,
    pending_periodic_group: Option<GroupId>,
    /// Completed and in-progress epoch records.
    pub records: Vec<EpochRecord>,
    /// Nodes evicted from their group after degraded commits (under
    /// [`FailurePolicy::evict_excluded`]), remembered for re-admission.
    evicted: Vec<(NodeAddr, GroupId)>,
    /// Nodes whose next checkpoint notification demands a full capture
    /// (their incremental chain broke while they were away).
    force_full: HashSet<NodeAddr>,
    /// Durable epoch WAL; `None` leaves the coordinator crash-immortal.
    wal: Option<Wal>,
    /// Process incarnation; bumped at every crash so timers armed by a
    /// dead incarnation are discarded on delivery.
    gen: u32,
    /// True between [`Coordinator::crash`] and the restart: every
    /// message (bus traffic, NTP requests, stale timers) is dropped.
    crashed: bool,
    /// True while [`Coordinator::recover`] replays the WAL: the crash
    /// buggify points are disarmed so recovery itself is atomic.
    recovering: bool,
    crashes: u64,
    recoveries: u64,
    tele: Option<CoordTele>,
}

impl Coordinator {
    /// Starts a [`CoordinatorBuilder`] with defaults: a perfect reference
    /// clock, scheduled triggering with a 200 ms lead, the default
    /// [`FailurePolicy`], resumes published at the barrier.
    pub fn builder(addr: NodeAddr, lan: ComponentId) -> CoordinatorBuilder {
        CoordinatorBuilder {
            cfg: CoordinatorConfig {
                addr,
                lan,
                mode: TriggerMode::Scheduled { lead: SimDuration::from_millis(200) },
                policy: FailurePolicy::default(),
                hold_resume: false,
                periodic_group: None,
            },
            wal: None,
        }
    }

    /// Creates a coordinator from an explicit configuration (the builder's
    /// terminal step; usable directly when the config is data-driven).
    pub fn from_config(cfg: CoordinatorConfig) -> Self {
        Coordinator {
            addr: cfg.addr,
            lan: cfg.lan,
            clock: HardwareClock::new(0, 0.0),
            ntp: NtpServer,
            members: Vec::new(),
            epoch: 0,
            pending: HashMap::new(),
            mode: cfg.mode,
            policy: cfg.policy,
            periodic: None,
            hold_resume: cfg.hold_resume,
            pending_periodic_group: cfg.periodic_group,
            records: Vec::new(),
            evicted: Vec::new(),
            force_full: HashSet::new(),
            wal: None,
            gen: 0,
            crashed: false,
            recovering: false,
            crashes: 0,
            recoveries: 0,
            tele: None,
        }
    }

    /// Creates a coordinator with a perfect reference clock.
    #[deprecated(note = "use Coordinator::builder(addr, lan).mode(mode).build()")]
    pub fn new(addr: NodeAddr, lan: ComponentId, mode: TriggerMode) -> Self {
        Coordinator::builder(addr, lan).mode(mode).build()
    }

    /// Sets the failure-handling policy (applies to rounds triggered
    /// afterwards; in-flight timers keep the policy they started with).
    #[deprecated(note = "use Coordinator::builder(..).policy(..)")]
    pub fn set_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// The active failure-handling policy.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Holds the resume after the barrier (stateful swap-out, §5).
    #[deprecated(note = "use Coordinator::suspend_in for a held round, or \
                         Coordinator::builder(..).hold_resume(..) for a standing default")]
    pub fn set_hold_resume(&mut self, hold: bool) {
        self.hold_resume = hold;
    }

    fn tele(&mut self, ctx: &Ctx<'_>) -> CoordTele {
        let addr = self.addr.0;
        *self.tele.get_or_insert_with(|| {
            let t = ctx.telemetry();
            CoordTele {
                notify_to_acks: t.histogram(names::COORD_NOTIFY_TO_ACKS_NS),
                barrier_hold: t.histogram(names::COORD_BARRIER_HOLD_NS),
                retries: t.counter(names::COORD_RETRIES),
                committed: t.counter(names::COORD_EPOCHS_COMMITTED),
                aborted: t.counter(names::COORD_EPOCHS_ABORTED),
                degraded: t.counter(names::COORD_EPOCHS_DEGRADED),
                excluded: t.counter(names::COORD_NODES_EXCLUDED),
                captured_bytes: t.counter(names::COORD_CAPTURED_BYTES),
                crashes: t.counter(names::COORD_CRASHES),
                recoveries: t.counter(names::COORD_RECOVERIES),
                epoch_span: t.span(names::SPAN_COORDINATOR, names::SPAN_EPOCH),
                track: t.track(addr, names::TRACK_COORDINATOR),
                ev_epoch: t.trace_tag(names::EV_EPOCH),
                ev_notify: t.trace_tag(names::EV_EPOCH_NOTIFY),
                ev_all_acked: t.trace_tag(names::EV_EPOCH_ALL_ACKED),
                ev_barrier: t.trace_tag(names::EV_EPOCH_BARRIER),
                ev_resume_released: t.trace_tag(names::EV_EPOCH_RESUME_RELEASED),
                ev_abandoned: t.trace_tag(names::EV_EPOCH_ABANDONED),
                ev_flow_notify: t.trace_tag(names::FLOW_NOTIFY),
                ev_flow_barrier: t.trace_tag(names::FLOW_BARRIER),
                ev_flow_resume: t.trace_tag(names::FLOW_RESUME),
                ev_s_join: t.trace_tag(names::EV_SHADOW_JOIN),
                ev_s_ack: t.trace_tag(names::EV_SHADOW_ACK),
                ev_s_done: t.trace_tag(names::EV_SHADOW_DONE),
                ev_s_exclude: t.trace_tag(names::EV_SHADOW_EXCLUDE),
                ev_s_commit: t.trace_tag(names::EV_SHADOW_COMMIT),
                ev_s_abort: t.trace_tag(names::EV_SHADOW_ABORT),
                ev_s_resume: t.trace_tag(names::EV_SHADOW_RESUME),
                ev_s_abandon: t.trace_tag(names::EV_SHADOW_ABANDON),
                ev_s_rejoin: t.trace_tag(names::EV_SHADOW_REJOIN),
                ev_s_recover: t.trace_tag(names::EV_SHADOW_RECOVER),
                ev_crash: t.trace_tag(names::EV_COORD_CRASH),
            }
        })
    }

    /// Appends one durable epoch transition (no-op without a WAL).
    fn wal_append(&self, rec: WalRecord) {
        if let Some(w) = &self.wal {
            w.append(&rec);
        }
    }

    /// Records one shadow-protocol instant on the coordinator track.
    fn shadow_instant(
        &mut self,
        ctx: &mut Ctx<'_>,
        tag: fn(&CoordTele) -> TraceTag,
        group: GroupId,
        epoch: u64,
        node: u32,
    ) {
        let t = self.tele(ctx);
        ctx.telemetry().trace_instant(
            t.track,
            tag(&t),
            ctx.now(),
            shadow::pack(group.0, epoch, node),
        );
    }

    /// The causal context of `group`'s in-flight round
    /// ([`TraceCtx::NONE`] when the group is idle). Control paths that
    /// act on behalf of a held round — e.g. swap-out image puts — fetch
    /// the context here to link their work into the round's flow.
    pub fn trace_ctx_in(&self, group: GroupId) -> TraceCtx {
        self.pending
            .get(&group)
            .map(|r| TraceCtx::for_round(group.0, r.epoch))
            .unwrap_or(TraceCtx::NONE)
    }

    /// True once every node of `group` reported done for its round.
    pub fn barrier_complete_in(&self, group: GroupId) -> bool {
        self.pending
            .get(&group)
            .map(|r| r.await_done.is_empty())
            .unwrap_or(false)
    }

    /// True once the default group's barrier completed.
    pub fn barrier_complete(&self) -> bool {
        self.barrier_complete_in(GroupId::DEFAULT)
    }

    /// Publishes the held resume for `group`.
    ///
    /// # Panics
    ///
    /// Panics if that group's barrier has not completed.
    pub fn release_resume_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId) {
        assert!(
            self.barrier_complete_in(group),
            "release before barrier completion"
        );
        let round = self.pending.remove(&group).expect("checked");
        let epoch = round.epoch;
        let now = ctx.now();
        let mut hold = SimDuration::ZERO;
        if let Some(rec) = self.record_mut(epoch) {
            rec.resumed = Some(now);
            if let Some(b) = rec.barrier_done {
                hold = now.saturating_duration_since(b);
            }
        }
        let t = self.tele(ctx);
        ctx.telemetry().record_duration(t.barrier_hold, hold);
        if let Some(span) = round.span {
            ctx.telemetry().span_exit(span, now);
        }
        let trace = TraceCtx::for_round(group.0, epoch);
        ctx.telemetry()
            .trace_instant(t.track, t.ev_resume_released, now, epoch as i64);
        ctx.telemetry()
            .flow_end(t.track, t.ev_flow_resume, now, trace);
        ctx.telemetry()
            .trace_end(t.track, t.ev_epoch, now, epoch as i64);
        self.shadow_instant(ctx, |t| t.ev_s_resume, group, epoch, 0);
        self.wal_append(WalRecord::Resume { at_ns: now.as_nanos(), group: group.0, epoch });
        self.publish_repeated(ctx, group, BusMsg::Resume { epoch, trace });
    }

    /// Publishes the held resume (default group).
    pub fn release_resume(&mut self, ctx: &mut Ctx<'_>) {
        self.release_resume_in(ctx, GroupId::DEFAULT);
    }

    /// Drops `group`'s held (or in-flight) round without resuming: the
    /// suspended state was replaced behind the coordinator's back (time
    /// travel installs a restored image and resumes the hosts directly).
    /// The epoch keeps its record but never resumes; its telemetry span
    /// is discarded so abandoned epochs leave no duration sample.
    pub fn abandon_round_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId) {
        if let Some(round) = self.pending.remove(&group) {
            if let Some(span) = round.span {
                ctx.telemetry().span_discard(span);
            }
            let t = self.tele(ctx);
            let now = ctx.now();
            ctx.telemetry()
                .trace_instant(t.track, t.ev_abandoned, now, round.epoch as i64);
            ctx.telemetry()
                .trace_end(t.track, t.ev_epoch, now, round.epoch as i64);
            self.shadow_instant(ctx, |t| t.ev_s_abandon, group, round.epoch, 0);
            self.wal_append(WalRecord::Abandon {
                at_ns: now.as_nanos(),
                group: group.0,
                epoch: round.epoch,
            });
        }
    }

    /// Subscribes a node to the bus in the default group.
    pub fn subscribe(&mut self, node: NodeAddr) {
        self.subscribe_in(node, GroupId::DEFAULT);
    }

    /// Subscribes a node to the bus in `group`.
    pub fn subscribe_in(&mut self, node: NodeAddr, group: GroupId) {
        if !self.members.iter().any(|&(n, _)| n == node) {
            self.members.push((node, group));
        }
    }

    /// Unsubscribes a node (swap-out teardown).
    pub fn unsubscribe(&mut self, node: NodeAddr) {
        self.members.retain(|&(n, _)| n != node);
    }

    fn group_of(&self, node: NodeAddr) -> Option<GroupId> {
        self.members
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, g)| g)
    }

    /// The coordinator's control address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Number of completed checkpoints.
    pub fn completed(&self) -> u64 {
        self.records.iter().filter(|r| r.resumed.is_some()).count() as u64
    }

    /// (committed, aborted, degraded) epoch counts.
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for r in &self.records {
            match r.outcome {
                Some(EpochOutcome::Committed) => counts.0 += 1,
                Some(EpochOutcome::Aborted) => counts.1 += 1,
                Some(EpochOutcome::Degraded) => counts.2 += 1,
                None => {}
            }
        }
        counts
    }

    /// (committed, aborted, degraded) epoch counts for one group.
    pub fn outcome_counts_in(&self, group: GroupId) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for r in self.records.iter().filter(|r| r.group == group) {
            match r.outcome {
                Some(EpochOutcome::Committed) => counts.0 += 1,
                Some(EpochOutcome::Aborted) => counts.1 += 1,
                Some(EpochOutcome::Degraded) => counts.2 += 1,
                None => {}
            }
        }
        counts
    }

    /// Total notification retries across all epochs.
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.retries)).sum()
    }

    /// True if no checkpoint round is mid-flight in any group.
    pub fn idle(&self) -> bool {
        self.pending.values().all(|r| r.await_done.is_empty())
    }

    /// True if `group` has no round in flight.
    pub fn idle_in(&self, group: GroupId) -> bool {
        self.pending
            .get(&group)
            .map(|r| r.await_done.is_empty())
            .unwrap_or(true)
    }

    fn record_mut(&mut self, epoch: u64) -> Option<&mut EpochRecord> {
        self.records.iter_mut().rev().find(|r| r.epoch == epoch)
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>, group: GroupId, msg: BusMsg) {
        for &(m, g) in &self.members {
            if g == group {
                // A member with a broken incremental chain (rejoined
                // after eviction) gets its notification upgraded to a
                // full capture; other message kinds pass through.
                let msg = if self.force_full.contains(&m) { msg.with_full() } else { msg };
                let frame = Frame::new(self.addr, m, BUS_MSG_BYTES, msg);
                ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
            }
        }
    }

    /// Publishes `msg` once plus `resume_repeats` extra copies: each copy
    /// sees an independent loss draw on a faulty LAN.
    fn publish_repeated(&mut self, ctx: &mut Ctx<'_>, group: GroupId, msg: BusMsg) {
        for _ in 0..=self.policy.resume_repeats {
            self.publish(ctx, group, msg);
        }
    }

    /// Triggers one checkpoint round for the default group.
    pub fn trigger(&mut self, ctx: &mut Ctx<'_>) {
        self.trigger_in(ctx, GroupId::DEFAULT);
    }

    /// Triggers one checkpoint round for `group`.
    ///
    /// # Panics
    ///
    /// Panics if that group has a round in flight or no members.
    pub fn trigger_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId) {
        let hold = self.hold_resume;
        self.trigger_round(ctx, group, hold);
    }

    /// Triggers a round for `group` whose resume is withheld at the
    /// barrier — the system stays suspended until [`Coordinator::release_resume_in`]
    /// (stateful swap-out §5, time travel §6).
    ///
    /// # Panics
    ///
    /// Panics if that group has a round in flight or no members.
    pub fn suspend_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId) {
        self.trigger_round(ctx, group, true);
    }

    /// [`Coordinator::suspend_in`] for the default group.
    pub fn suspend(&mut self, ctx: &mut Ctx<'_>) {
        self.suspend_in(ctx, GroupId::DEFAULT);
    }

    fn trigger_round(&mut self, ctx: &mut Ctx<'_>, group: GroupId, hold: bool) {
        assert!(!self.crashed, "trigger on a crashed coordinator");
        assert!(self.idle_in(group), "checkpoint round already in flight");
        let nodes: HashSet<NodeAddr> = self
            .members
            .iter()
            .filter(|&&(_, g)| g == group)
            .map(|&(n, _)| n)
            .collect();
        assert!(!nodes.is_empty(), "no subscribed nodes in group");
        self.epoch += 1;
        let epoch = self.epoch;
        let trace = TraceCtx::for_round(group.0, epoch);
        let msg = match self.mode {
            TriggerMode::Scheduled { lead } => BusMsg::CheckpointAt {
                epoch,
                at_clock_ns: self.clock.read_ns(ctx.now()) + lead.as_nanos() as f64,
                full: false,
                trace,
            },
            TriggerMode::EventDriven => BusMsg::CheckpointNow { epoch, full: false, trace },
        };
        let t = self.tele(ctx);
        let span = ctx.telemetry().span_enter(t.epoch_span, ctx.now());
        let e = epoch as i64;
        ctx.telemetry().trace_begin(t.track, t.ev_epoch, ctx.now(), e);
        ctx.telemetry().trace_instant(t.track, t.ev_notify, ctx.now(), e);
        ctx.telemetry()
            .flow_start(t.track, t.ev_flow_notify, ctx.now(), trace);
        // Per-node join instants for the shadow checker, in address order
        // so seeded traces are byte-stable.
        let mut sorted: Vec<NodeAddr> = nodes.iter().copied().collect();
        sorted.sort_by_key(|a| a.0);
        for n in &sorted {
            self.shadow_instant(ctx, |t| t.ev_s_join, group, epoch, n.0);
        }
        let forced_full: HashSet<NodeAddr> =
            nodes.intersection(&self.force_full).copied().collect();
        self.pending.insert(
            group,
            Round {
                epoch,
                notify: msg,
                await_ack: nodes.clone(),
                await_done: nodes.clone(),
                excluded: HashSet::new(),
                forced_full,
                participants: nodes.len(),
                hold,
                span: Some(span),
            },
        );
        self.records.push(EpochRecord {
            epoch,
            group,
            published: ctx.now(),
            acked: None,
            barrier_done: None,
            resumed: None,
            captured_bytes: 0,
            outcome: None,
            retries: 0,
            excluded: 0,
        });
        let mut forced_sorted: Vec<u32> = self
            .pending
            .get(&group)
            .map(|r| r.forced_full.iter().map(|n| n.0).collect())
            .unwrap_or_default();
        forced_sorted.sort_unstable();
        self.wal_append(WalRecord::RoundOpen {
            at_ns: ctx.now().as_nanos(),
            group: group.0,
            epoch,
            hold,
            notify_at_clock_ns: match msg {
                BusMsg::CheckpointAt { at_clock_ns, .. } => Some(at_clock_ns),
                _ => None,
            },
            participants: sorted.iter().map(|n| n.0).collect(),
            forced_full: forced_sorted,
            trace: (trace.trace_id, trace.span_id),
        });
        if self.maybe_crash(ctx, buggify_points::COORD_CRASH_PRE_NOTIFY) {
            return; // Round durable, notification never left the process.
        }
        self.publish(ctx, group, msg);
        let gen = self.gen;
        ctx.post_self(
            self.policy.ack_timeout,
            CoordMsg::AckTimeout { group, epoch, attempt: 1, gen },
        );
        let deadline = if hold {
            self.policy.suspend_deadline
        } else {
            self.policy.epoch_deadline
        };
        ctx.post_self(deadline, CoordMsg::EpochDeadline { group, epoch, gen });
    }

    /// Selects which group the next `start_periodic` drives (default:
    /// [`GroupId::DEFAULT`]); also retargets an already-running schedule.
    #[deprecated(note = "use Coordinator::start_periodic_in(ctx, group, interval), or \
                         Coordinator::builder(..).periodic_group(..)")]
    pub fn set_periodic_group(&mut self, group: GroupId) {
        if let Some((g, _)) = self.periodic.as_mut() {
            *g = group;
        }
        self.pending_periodic_group = Some(group);
    }

    /// Starts periodic checkpointing of the selected (or default) group.
    pub fn start_periodic(&mut self, ctx: &mut Ctx<'_>, interval: SimDuration) {
        let group = self.pending_periodic_group.take().unwrap_or(GroupId::DEFAULT);
        self.start_periodic_in(ctx, group, interval);
    }

    /// Starts (or retargets) periodic checkpointing of `group`. An
    /// already-running schedule keeps its timer and switches groups.
    pub fn start_periodic_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId, interval: SimDuration) {
        let running = self.periodic.is_some();
        self.periodic = Some((group, interval));
        if !running {
            ctx.post_self(interval, CoordMsg::PeriodicKick { gen: self.gen });
        }
    }

    /// Stops periodic checkpointing after the current round.
    pub fn stop_periodic(&mut self) {
        self.periodic = None;
    }

    /// Stamps the all-acked time on first completion and records the
    /// notify→all-acks latency histogram sample.
    fn mark_all_acked(&mut self, ctx: &mut Ctx<'_>, epoch: u64) {
        let now = ctx.now();
        let latency = match self.record_mut(epoch) {
            Some(rec) if rec.acked.is_none() => {
                rec.acked = Some(now);
                now.saturating_duration_since(rec.published)
            }
            _ => return,
        };
        let t = self.tele(ctx);
        ctx.telemetry().record_duration(t.notify_to_acks, latency);
        ctx.telemetry()
            .trace_instant(t.track, t.ev_all_acked, now, epoch as i64);
    }

    fn on_notify_ack(&mut self, ctx: &mut Ctx<'_>, epoch: u64, node: NodeAddr) {
        let Some(group) = self.group_of(node) else {
            return;
        };
        let Some(round) = self.pending.get_mut(&group) else {
            return;
        };
        if epoch != round.epoch {
            return; // Stale ack (e.g. for a retried, already-aborted round).
        }
        if round.await_ack.remove(&node) {
            let all_acked = round.await_ack.is_empty();
            self.shadow_instant(ctx, |t| t.ev_s_ack, group, epoch, node.0);
            self.wal_append(WalRecord::Ack {
                at_ns: ctx.now().as_nanos(),
                group: group.0,
                epoch,
                node: node.0,
            });
            if all_acked {
                self.mark_all_acked(ctx, epoch);
            }
            self.maybe_crash(ctx, buggify_points::COORD_CRASH_MID_ACKS);
        }
    }

    fn on_node_done(&mut self, ctx: &mut Ctx<'_>, epoch: u64, node: NodeAddr, image_bytes: u64) {
        let Some(group) = self.group_of(node) else {
            return; // Unsubscribed mid-round (swap-out).
        };
        let Some(round) = self.pending.get_mut(&group) else {
            return;
        };
        if epoch != round.epoch {
            return; // Stale report.
        }
        // A done report is an implicit ack.
        let all_acked = round.await_ack.remove(&node) && round.await_ack.is_empty();
        if !round.await_done.remove(&node) {
            // Duplicate report (don't double-count bytes) or an excluded
            // node surfacing late; the implicit ack still counts.
            if all_acked {
                self.mark_all_acked(ctx, epoch);
            }
            return;
        }
        let barrier = round.await_done.is_empty();
        if let Some(rec) = self.record_mut(epoch) {
            rec.captured_bytes += image_bytes;
        }
        let t = self.tele(ctx);
        ctx.telemetry().add(t.captured_bytes, image_bytes);
        self.shadow_instant(ctx, |t| t.ev_s_done, group, epoch, node.0);
        self.wal_append(WalRecord::Done {
            at_ns: ctx.now().as_nanos(),
            group: group.0,
            epoch,
            node: node.0,
            image_bytes,
        });
        if all_acked {
            self.mark_all_acked(ctx, epoch);
        }
        if barrier {
            self.complete_barrier(ctx, group, epoch);
        } else {
            self.maybe_crash(ctx, buggify_points::COORD_CRASH_MID_ACKS);
        }
    }

    /// Finishes a round whose `await_done` just emptied: records the
    /// outcome and publishes the resume (unless held).
    fn complete_barrier(&mut self, ctx: &mut Ctx<'_>, group: GroupId, epoch: u64) {
        if self.maybe_crash(ctx, buggify_points::COORD_CRASH_PRE_RESUME) {
            return; // Barrier complete, commit not durable: recovery rolls forward.
        }
        let (excluded, hold) = self
            .pending
            .get(&group)
            .map(|r| (r.excluded.len() as u32, r.hold))
            .unwrap_or((0, false));
        let outcome = if excluded == 0 {
            EpochOutcome::Committed
        } else {
            EpochOutcome::Degraded
        };
        let now = ctx.now();
        if let Some(rec) = self.record_mut(epoch) {
            rec.barrier_done = Some(now);
            rec.outcome = Some(outcome);
            rec.excluded = excluded;
        }
        let t = self.tele(ctx);
        match outcome {
            EpochOutcome::Committed => ctx.telemetry().inc(t.committed),
            EpochOutcome::Degraded => ctx.telemetry().inc(t.degraded),
            EpochOutcome::Aborted => unreachable!("barrier completion cannot abort"),
        }
        ctx.telemetry().add(t.excluded, u64::from(excluded));
        let trace = TraceCtx::for_round(group.0, epoch);
        ctx.telemetry()
            .trace_instant(t.track, t.ev_barrier, now, epoch as i64);
        ctx.telemetry()
            .flow_step(t.track, t.ev_flow_barrier, now, trace);
        self.shadow_instant(ctx, |t| t.ev_s_commit, group, epoch, excluded);
        self.wal_append(WalRecord::Commit {
            at_ns: now.as_nanos(),
            group: group.0,
            epoch,
            excluded,
        });
        // A forced-full participant whose capture just committed has a
        // fresh full image: its incremental chain is whole again.
        if let Some(round) = self.pending.get(&group) {
            let mut healed: Vec<NodeAddr> = round
                .forced_full
                .iter()
                .filter(|n| !round.excluded.contains(n))
                .copied()
                .collect();
            healed.sort_by_key(|a| a.0);
            for n in healed {
                self.force_full.remove(&n);
                self.wal_append(WalRecord::ForceFullHealed { at_ns: now.as_nanos(), node: n.0 });
            }
        }
        // Under the eviction policy, degraded commits expel the presumed
        // corpses from membership so later epochs barrier on survivors.
        if self.policy.evict_excluded && excluded > 0 {
            let mut expelled: Vec<NodeAddr> = self
                .pending
                .get(&group)
                .map(|r| r.excluded.iter().copied().collect())
                .unwrap_or_default();
            expelled.sort_by_key(|a| a.0);
            for n in expelled {
                self.unsubscribe(n);
                self.evicted.push((n, group));
                self.wal_append(WalRecord::Evict {
                    at_ns: now.as_nanos(),
                    group: group.0,
                    node: n.0,
                });
            }
        }
        if hold {
            return; // Span and barrier-hold sample close at release time.
        }
        if self.maybe_crash(ctx, buggify_points::COORD_CRASH_POST_COMMIT) {
            return; // Commit durable, resume never published: recovery releases.
        }
        let round = self.pending.remove(&group);
        if let Some(rec) = self.record_mut(epoch) {
            rec.resumed = Some(now);
        }
        ctx.telemetry().record_duration(t.barrier_hold, SimDuration::ZERO);
        if let Some(span) = round.and_then(|r| r.span) {
            ctx.telemetry().span_exit(span, now);
        }
        ctx.telemetry()
            .flow_end(t.track, t.ev_flow_resume, now, trace);
        ctx.telemetry()
            .trace_end(t.track, t.ev_epoch, now, epoch as i64);
        self.shadow_instant(ctx, |t| t.ev_s_resume, group, epoch, 0);
        self.wal_append(WalRecord::Resume { at_ns: now.as_nanos(), group: group.0, epoch });
        self.publish_repeated(ctx, group, BusMsg::Resume { epoch, trace });
    }

    fn on_ack_timeout(&mut self, ctx: &mut Ctx<'_>, group: GroupId, epoch: u64, attempt: u32) {
        if attempt > self.policy.max_notify_retries {
            return;
        }
        let Some(round) = self.pending.get(&group) else {
            return;
        };
        if round.epoch != epoch || round.await_ack.is_empty() {
            return;
        }
        let notify = round.notify;
        // Deterministic retry order: HashSet iteration order is not.
        let mut targets: Vec<NodeAddr> = round.await_ack.iter().copied().collect();
        targets.sort_by_key(|a| a.0);
        if let Some(rec) = self.record_mut(epoch) {
            rec.retries += 1;
        }
        self.wal_append(WalRecord::Retry { at_ns: ctx.now().as_nanos(), group: group.0, epoch });
        let t = self.tele(ctx);
        ctx.telemetry().inc(t.retries);
        for m in targets {
            let msg = if self.force_full.contains(&m) { notify.with_full() } else { notify };
            let frame = Frame::new(self.addr, m, BUS_MSG_BYTES, msg);
            ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
        }
        let mut backoff =
            SimDuration::from_nanos(self.policy.ack_timeout.as_nanos() << attempt.min(16));
        let bg = ctx.buggify().clone();
        if buggify!(bg, buggify_points::COORD_RETRY_SKEW) {
            // A late failure-detector timer: the retry round slips by up
            // to one extra base timeout.
            backoff += SimDuration::from_nanos(bg.magnitude(
                    buggify_points::COORD_RETRY_SKEW,
                    0,
                    self.policy.ack_timeout.as_nanos().max(2),
                ));
        }
        ctx.post_self(
            backoff,
            CoordMsg::AckTimeout { group, epoch, attempt: attempt + 1, gen: self.gen },
        );
    }

    fn on_epoch_deadline(&mut self, ctx: &mut Ctx<'_>, group: GroupId, epoch: u64) {
        let policy = self.policy;
        let Some(round) = self.pending.get_mut(&group) else {
            return;
        };
        if round.epoch != epoch || round.await_done.is_empty() {
            return; // Round already finished (possibly held at the barrier).
        }
        // Degrade only when every missing node never acked (presumed
        // crashed) and at least one participant completed; a missing node
        // that *did* ack is alive-but-slow, and excluding live state would
        // break global consistency — abort instead.
        let missing_never_acked = round.await_done.is_subset(&round.await_ack);
        let some_completed = round.await_done.len() + round.excluded.len() < round.participants;
        if policy.allow_degraded && missing_never_acked && some_completed {
            let mut missing: Vec<NodeAddr> = round.await_done.drain().collect();
            missing.sort_by_key(|a| a.0);
            round.excluded.extend(missing.iter().copied());
            for n in missing {
                self.shadow_instant(ctx, |t| t.ev_s_exclude, group, epoch, n.0);
                self.wal_append(WalRecord::Exclude {
                    at_ns: ctx.now().as_nanos(),
                    group: group.0,
                    epoch,
                    node: n.0,
                });
            }
            self.complete_barrier(ctx, group, epoch);
        } else {
            self.abort_round(ctx, group, epoch);
        }
    }

    /// Aborts `group`'s in-flight round: participants roll back their
    /// local checkpoint sequence and resume as if the epoch had never
    /// been triggered. Shared by the deadline path and WAL recovery.
    fn abort_round(&mut self, ctx: &mut Ctx<'_>, group: GroupId, epoch: u64) {
        let round = self.pending.remove(&group);
        if let Some(rec) = self.record_mut(epoch) {
            rec.outcome = Some(EpochOutcome::Aborted);
        }
        let t = self.tele(ctx);
        ctx.telemetry().inc(t.aborted);
        if let Some(span) = round.and_then(|r| r.span) {
            // No duration sample for an epoch that never resumed.
            ctx.telemetry().span_discard(span);
        }
        let now = ctx.now();
        ctx.telemetry()
            .trace_instant(t.track, t.ev_abandoned, now, epoch as i64);
        ctx.telemetry()
            .trace_end(t.track, t.ev_epoch, now, epoch as i64);
        self.shadow_instant(ctx, |t| t.ev_s_abort, group, epoch, 0);
        self.wal_append(WalRecord::Abort { at_ns: now.as_nanos(), group: group.0, epoch });
        // Aborted rounds deliberately leave their causal flow without a
        // FlowEnd: an unterminated flow in the export *is* the signal
        // that the round never resumed.
        let trace = TraceCtx::for_round(group.0, epoch);
        self.publish_repeated(ctx, group, BusMsg::Abort { epoch, trace });
    }

    /// Re-admits a previously evicted (crashed, now recovered) node: it
    /// rejoins its old group's bus subscription, and its next checkpoint
    /// notification is upgraded to demand a **full** capture — the
    /// node's incremental chain broke while it was excluded, so an
    /// incremental image would checkpoint against a base the store never
    /// committed for it. Returns false if the node was never evicted.
    pub fn rejoin(&mut self, ctx: &mut Ctx<'_>, node: NodeAddr) -> bool {
        let Some(pos) = self.evicted.iter().position(|&(n, _)| n == node) else {
            return false;
        };
        let (n, g) = self.evicted.remove(pos);
        self.subscribe_in(n, g);
        self.force_full.insert(n);
        let epoch = self.epoch;
        self.shadow_instant(ctx, |t| t.ev_s_rejoin, g, epoch, n.0);
        self.wal_append(WalRecord::Rejoin { at_ns: ctx.now().as_nanos(), group: g.0, node: n.0 });
        true
    }

    /// Nodes currently evicted from their groups, in eviction order.
    pub fn evicted(&self) -> &[(NodeAddr, GroupId)] {
        &self.evicted
    }

    /// True while `node`'s next notification will demand a full capture.
    pub fn full_capture_pending(&self, node: NodeAddr) -> bool {
        self.force_full.contains(&node)
    }

    /// True while the coordinator process is down.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Process crashes injected so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }

    /// Restarts that replayed the WAL so far.
    pub fn recovery_count(&self) -> u64 {
        self.recoveries
    }

    /// The attached epoch WAL, if any.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Evaluates one coordinator-crash buggify point. Returns true when
    /// the process crashed; the caller must stop touching round state.
    /// Crash points only arm on WAL-backed coordinators (an amnesiac
    /// restart would wedge every suspended node) and never re-enter
    /// during recovery itself.
    fn maybe_crash(&mut self, ctx: &mut Ctx<'_>, point: &'static str) -> bool {
        if self.wal.is_none() || self.recovering {
            return false;
        }
        let bg = ctx.buggify().clone();
        if !buggify!(bg, point) {
            return false;
        }
        // 5 ms – 400 ms of control-plane downtime: long enough for acks,
        // dones and deadline timers of the dead incarnation to pile up,
        // short enough that suspended guests survive to be released.
        let downtime =
            SimDuration::from_nanos(bg.magnitude(point, 5_000_000, 400_000_000));
        self.crash(ctx, downtime);
        true
    }

    /// Crashes the coordinator process for `downtime`: all volatile
    /// protocol state is lost (the WAL is not), every message — bus
    /// traffic, NTP requests, timers of the dead incarnation — is
    /// dropped until the restart, then the recovery path replays
    /// the log. No-op if already down.
    ///
    /// # Panics
    ///
    /// Panics if no WAL is attached: an amnesiac coordinator would reuse
    /// epoch ids and wedge every suspended node, so crash injection is
    /// only modeled for WAL-backed coordinators.
    pub fn crash(&mut self, ctx: &mut Ctx<'_>, downtime: SimDuration) {
        assert!(self.wal.is_some(), "coordinator crash requires an attached WAL");
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.gen += 1;
        self.crashes += 1;
        // Volatile state dies with the process: open rounds, epoch
        // records, the epoch counter. Telemetry spans of in-flight
        // epochs are discarded (their trace rows re-terminate when
        // recovery classifies them).
        let mut groups: Vec<GroupId> = self.pending.keys().copied().collect();
        groups.sort_by_key(|g| g.0);
        for g in groups {
            if let Some(span) = self.pending.remove(&g).and_then(|r| r.span) {
                ctx.telemetry().span_discard(span);
            }
        }
        self.records.clear();
        self.epoch = 0;
        // The roster is experiment configuration — the testbed database
        // survives the process — while eviction and force-full deltas
        // are protocol state that re-derives from the WAL at recovery.
        for (n, g) in std::mem::take(&mut self.evicted) {
            self.subscribe_in(n, g);
        }
        self.force_full.clear();
        let t = self.tele(ctx);
        ctx.telemetry().inc(t.crashes);
        ctx.telemetry()
            .trace_instant(t.track, t.ev_crash, ctx.now(), downtime.as_nanos() as i64);
        ctx.post_self(downtime, CoordMsg::Restart { gen: self.gen });
    }

    /// Restart path: replays the WAL, rebuilds records and membership
    /// deltas, then classifies each round left open at the crash —
    /// committed-but-unresumed rounds release their barrier, rounds
    /// whose barrier had silently completed roll forward and commit,
    /// everything else aborts (conservatively force-fulling any node
    /// that had already captured, since its incremental chain now spans
    /// a rolled-back epoch).
    fn recover(&mut self, ctx: &mut Ctx<'_>) {
        /// Volatile image of one WAL round still open at the crash.
        #[derive(Default)]
        struct OpenRound {
            epoch: u64,
            hold: bool,
            notify_at_clock_ns: Option<f64>,
            participants: Vec<u32>,
            forced_full: Vec<u32>,
            acked: HashSet<u32>,
            done: HashSet<u32>,
            excluded: HashSet<u32>,
            committed: bool,
        }
        let wal = self.wal.clone().expect("recovery requires an attached WAL");
        self.crashed = false;
        self.recovering = true;
        self.recoveries += 1;
        let t = self.tele(ctx);
        ctx.telemetry().inc(t.recoveries);

        let mut open: HashMap<u32, OpenRound> = HashMap::new();
        for rec in wal.replay() {
            match rec {
                WalRecord::RoundOpen {
                    at_ns,
                    group,
                    epoch,
                    hold,
                    trace: _, // Re-derived via TraceCtx::for_round below.
                    notify_at_clock_ns,
                    participants,
                    forced_full,
                } => {
                    self.epoch = self.epoch.max(epoch);
                    self.records.push(EpochRecord {
                        epoch,
                        group: GroupId(group),
                        published: SimTime::from_nanos(at_ns),
                        acked: None,
                        barrier_done: None,
                        resumed: None,
                        captured_bytes: 0,
                        outcome: None,
                        retries: 0,
                        excluded: 0,
                    });
                    open.insert(
                        group,
                        OpenRound {
                            epoch,
                            hold,
                            notify_at_clock_ns,
                            participants,
                            forced_full,
                            ..OpenRound::default()
                        },
                    );
                }
                WalRecord::Ack { at_ns, group, epoch, node } => {
                    if let Some(r) = open.get_mut(&group).filter(|r| r.epoch == epoch) {
                        r.acked.insert(node);
                        let covered = r.participants.iter().all(|n| r.acked.contains(n));
                        if covered {
                            if let Some(rec) = self.record_mut(epoch) {
                                if rec.acked.is_none() {
                                    rec.acked = Some(SimTime::from_nanos(at_ns));
                                }
                            }
                        }
                    }
                }
                WalRecord::Done { at_ns, group, epoch, node, image_bytes } => {
                    if let Some(r) = open.get_mut(&group).filter(|r| r.epoch == epoch) {
                        r.acked.insert(node); // A done report is an implicit ack.
                        r.done.insert(node);
                        let covered = r.participants.iter().all(|n| r.acked.contains(n));
                        if let Some(rec) = self.record_mut(epoch) {
                            rec.captured_bytes += image_bytes;
                            if covered && rec.acked.is_none() {
                                rec.acked = Some(SimTime::from_nanos(at_ns));
                            }
                        }
                    }
                }
                WalRecord::Retry { group, epoch, .. } => {
                    if open.get(&group).is_some_and(|r| r.epoch == epoch) {
                        if let Some(rec) = self.record_mut(epoch) {
                            rec.retries += 1;
                        }
                    }
                }
                WalRecord::Exclude { group, epoch, node, .. } => {
                    if let Some(r) = open.get_mut(&group).filter(|r| r.epoch == epoch) {
                        r.excluded.insert(node);
                    }
                }
                WalRecord::Commit { at_ns, group, epoch, excluded } => {
                    if let Some(r) = open.get_mut(&group).filter(|r| r.epoch == epoch) {
                        r.committed = true;
                    }
                    if let Some(rec) = self.record_mut(epoch) {
                        rec.barrier_done = Some(SimTime::from_nanos(at_ns));
                        rec.outcome = Some(if excluded == 0 {
                            EpochOutcome::Committed
                        } else {
                            EpochOutcome::Degraded
                        });
                        rec.excluded = excluded;
                    }
                }
                WalRecord::Resume { at_ns, group, epoch } => {
                    if open.get(&group).is_some_and(|r| r.epoch == epoch) {
                        open.remove(&group);
                    }
                    if let Some(rec) = self.record_mut(epoch) {
                        rec.resumed = Some(SimTime::from_nanos(at_ns));
                    }
                }
                WalRecord::Abort { group, epoch, .. } => {
                    if open.get(&group).is_some_and(|r| r.epoch == epoch) {
                        open.remove(&group);
                    }
                    if let Some(rec) = self.record_mut(epoch) {
                        rec.outcome = Some(EpochOutcome::Aborted);
                    }
                }
                WalRecord::Abandon { group, epoch, .. } => {
                    if open.get(&group).is_some_and(|r| r.epoch == epoch) {
                        open.remove(&group);
                    }
                }
                WalRecord::Evict { group, node, .. } => {
                    let n = NodeAddr(node);
                    self.unsubscribe(n);
                    self.evicted.push((n, GroupId(group)));
                }
                WalRecord::Rejoin { group, node, .. } => {
                    let n = NodeAddr(node);
                    if let Some(pos) = self.evicted.iter().position(|&(m, _)| m == n) {
                        self.evicted.remove(pos);
                    }
                    self.subscribe_in(n, GroupId(group));
                    self.force_full.insert(n);
                }
                WalRecord::ForceFull { node, .. } => {
                    self.force_full.insert(NodeAddr(node));
                }
                WalRecord::ForceFullHealed { node, .. } => {
                    self.force_full.remove(&NodeAddr(node));
                }
            }
        }

        // Classify every round the crash left open, in group order so
        // recovery traffic is byte-stable across same-seed runs.
        let mut groups: Vec<u32> = open.keys().copied().collect();
        groups.sort_unstable();
        let now = ctx.now();
        for g in groups {
            let r = open.remove(&g).expect("listed above");
            let group = GroupId(g);
            let epoch = r.epoch;
            // The restarted process re-derives the round's context the
            // same way the dead incarnation minted it, so recovery
            // publications join the original flow.
            let trace = TraceCtx::for_round(g, epoch);
            let notify = match r.notify_at_clock_ns {
                Some(at_clock_ns) => {
                    BusMsg::CheckpointAt { epoch, at_clock_ns, full: false, trace }
                }
                None => BusMsg::CheckpointNow { epoch, full: false, trace },
            };
            let await_ack: HashSet<NodeAddr> = r
                .participants
                .iter()
                .filter(|n| !r.acked.contains(n))
                .map(|&n| NodeAddr(n))
                .collect();
            let await_done: HashSet<NodeAddr> = r
                .participants
                .iter()
                .filter(|n| !r.done.contains(n) && !r.excluded.contains(n))
                .map(|&n| NodeAddr(n))
                .collect();
            let barrier_complete = await_done.is_empty();
            let some_done = !r.done.is_empty();
            let mid_flight = !r.acked.is_empty() || some_done;
            self.pending.insert(
                group,
                Round {
                    epoch,
                    notify,
                    await_ack,
                    await_done,
                    excluded: r.excluded.iter().map(|&n| NodeAddr(n)).collect(),
                    forced_full: r.forced_full.iter().map(|&n| NodeAddr(n)).collect(),
                    participants: r.participants.len(),
                    hold: r.hold,
                    span: None,
                },
            );
            if r.committed {
                // The decision is durable; only the release was lost.
                self.shadow_instant(ctx, |t| t.ev_s_recover, group, epoch, recover_code::RELEASE);
                if !r.hold {
                    self.release_resume_in(ctx, group);
                }
                // A held committed round stays pending: the testbed
                // releases it through the normal barrier API.
            } else if barrier_complete && some_done {
                // Every participant reported (or was excluded) before the
                // crash: the checkpoint exists in full, so roll forward.
                self.shadow_instant(
                    ctx,
                    |t| t.ev_s_recover,
                    group,
                    epoch,
                    recover_code::ROLL_FORWARD,
                );
                self.complete_barrier(ctx, group, epoch);
            } else if !mid_flight {
                // Nothing ever happened: plain abort (nodes that got the
                // notification are released by the Abort publication).
                self.shadow_instant(ctx, |t| t.ev_s_recover, group, epoch, recover_code::ABORT);
                self.abort_round(ctx, group, epoch);
            } else {
                // Mid-flight: some nodes captured, some did not. Abort,
                // and force the capturers' next checkpoint to be full —
                // their rollback leaves the incremental chain spanning an
                // epoch the store never committed.
                self.shadow_instant(
                    ctx,
                    |t| t.ev_s_recover,
                    group,
                    epoch,
                    recover_code::ABORT_FORCE_FULL,
                );
                let mut done_nodes: Vec<u32> = r.done.iter().copied().collect();
                done_nodes.sort_unstable();
                for n in done_nodes {
                    self.force_full.insert(NodeAddr(n));
                    self.wal_append(WalRecord::ForceFull { at_ns: now.as_nanos(), node: n });
                }
                self.abort_round(ctx, group, epoch);
            }
        }
        // Timers of the dead incarnation are gen-stale; re-arm the
        // periodic trigger under the new generation.
        if let Some((_, interval)) = self.periodic {
            ctx.post_self(interval, CoordMsg::PeriodicKick { gen: self.gen });
        }
        self.recovering = false;
    }
}

impl Component for Coordinator {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        if self.crashed {
            // A dead process answers nothing — not even NTP. The only
            // event that reaches it is its own restart; everything else
            // (bus traffic, stale timers) is silently dropped, exactly
            // like frames to a powered-off ops node.
            if let Ok(CoordMsg::Restart { gen }) = payload.downcast::<CoordMsg>() {
                if gen == self.gen {
                    self.recover(ctx);
                }
            }
            return;
        }
        let payload = match payload.downcast::<LinkDeliver>() {
            Ok(del) => {
                if let Some(req) = del.frame.payload::<NtpRequest>() {
                    let t = self.clock.read_ns(ctx.now());
                    let resp = self.ntp.respond(*req, t, t);
                    let frame = Frame::new(self.addr, del.frame.src, 90, resp);
                    ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
                } else if let Some(&msg) = del.frame.payload::<BusMsg>() {
                    match msg {
                        BusMsg::NotifyAck { epoch, .. } => {
                            self.on_notify_ack(ctx, epoch, del.frame.src);
                        }
                        BusMsg::NodeDone { epoch, image_bytes, .. } => {
                            self.on_node_done(ctx, epoch, del.frame.src, image_bytes);
                        }
                        BusMsg::RequestCheckpoint => {
                            // Event-driven trigger from a node: checkpoint
                            // its whole group now (if idle).
                            if let Some(group) = self.group_of(del.frame.src) {
                                if self.idle_in(group) {
                                    let saved = self.mode;
                                    self.mode = TriggerMode::EventDriven;
                                    self.trigger_in(ctx, group);
                                    self.mode = saved;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                return;
            }
            Err(p) => p,
        };
        if let Ok(msg) = payload.downcast::<CoordMsg>() {
            match msg {
                CoordMsg::PeriodicKick { gen } => {
                    if gen != self.gen {
                        return; // A dead incarnation's tick; recovery re-armed its own.
                    }
                    if let Some((group, interval)) = self.periodic {
                        if self.idle_in(group) {
                            self.trigger_in(ctx, group);
                        }
                        let mut next = interval;
                        let bg = ctx.buggify().clone();
                        if buggify!(bg, buggify_points::COORD_KICK_SKEW) {
                            // The scheduler tick drifts: up to half an
                            // interval of extra cadence jitter.
                            next += SimDuration::from_nanos(bg.magnitude(
                                    buggify_points::COORD_KICK_SKEW,
                                    0,
                                    (interval.as_nanos() / 2).max(2),
                                ));
                        }
                        ctx.post_self(next, CoordMsg::PeriodicKick { gen: self.gen });
                    }
                }
                CoordMsg::AckTimeout { group, epoch, attempt, gen } => {
                    if gen == self.gen {
                        self.on_ack_timeout(ctx, group, epoch, attempt);
                    }
                }
                CoordMsg::EpochDeadline { group, epoch, gen } => {
                    if gen == self.gen {
                        self.on_epoch_deadline(ctx, group, epoch);
                    }
                }
                CoordMsg::Restart { .. } => {
                    // Already recovered (or never crashed): stale restart.
                }
            }
        }
    }

    sim::component_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::{ControlLan, Frame, LanTransmit};
    use sim::{Component, Engine, FaultPlan};

    /// A fake node agent: records notifications, reports done after a
    /// fixed local delay; optionally acks notifications explicitly.
    struct FakeNode {
        addr: NodeAddr,
        lan: ComponentId,
        coord_addr: NodeAddr,
        capture_ms: u64,
        ack: bool,
        pub notified: u64,
        /// Notifications that demanded a full (non-incremental) capture.
        pub full_notified: u64,
        pub resumed: u64,
        pub aborted: u64,
    }

    struct CaptureDone {
        epoch: u64,
        trace: TraceCtx,
    }

    impl Component for FakeNode {
        fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            let payload = match payload.downcast::<hwsim::LinkDeliver>() {
                Ok(del) => {
                    if let Some(&msg) = del.frame.payload::<BusMsg>() {
                        match msg {
                            BusMsg::CheckpointAt { epoch, full, trace, .. }
                            | BusMsg::CheckpointNow { epoch, full, trace } => {
                                self.notified += 1;
                                if full {
                                    self.full_notified += 1;
                                }
                                if self.ack {
                                    let frame = Frame::new(
                                        self.addr,
                                        self.coord_addr,
                                        BUS_MSG_BYTES,
                                        BusMsg::NotifyAck { epoch, trace },
                                    );
                                    ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
                                }
                                ctx.post_self(
                                    SimDuration::from_millis(self.capture_ms),
                                    CaptureDone { epoch, trace },
                                );
                            }
                            BusMsg::Resume { .. } => self.resumed += 1,
                            BusMsg::Abort { .. } => self.aborted += 1,
                            _ => {}
                        }
                    }
                    return;
                }
                Err(p) => p,
            };
            if let Ok(done) = payload.downcast::<CaptureDone>() {
                let frame = Frame::new(
                    self.addr,
                    self.coord_addr,
                    BUS_MSG_BYTES,
                    BusMsg::NodeDone {
                        epoch: done.epoch,
                        image_bytes: 1 << 20,
                        trace: done.trace,
                    },
                );
                ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
            }
        }
        sim::component_boilerplate!();
    }

    fn rig(capture_ms: &[u64]) -> (Engine, ComponentId, Vec<ComponentId>) {
        rig_full(capture_ms, false, None)
    }

    fn rig_full(
        capture_ms: &[u64],
        ack: bool,
        policy: Option<FailurePolicy>,
    ) -> (Engine, ComponentId, Vec<ComponentId>) {
        let mut e = Engine::new(9);
        let lan = e.add_component(Box::new(ControlLan::new(
            100_000_000,
            SimDuration::from_micros(40),
            SimDuration::from_micros(60),
        )));
        let coord_addr = NodeAddr(100);
        let mut b = Coordinator::builder(coord_addr, lan).mode(TriggerMode::EventDriven);
        if let Some(policy) = policy {
            b = b.policy(policy);
        }
        let coord = e.add_component(Box::new(b.build()));
        let mut nodes = Vec::new();
        for (i, &ms) in capture_ms.iter().enumerate() {
            let addr = NodeAddr(i as u32 + 1);
            let n = e.add_component(Box::new(FakeNode {
                addr,
                lan,
                coord_addr,
                capture_ms: ms,
                ack,
                notified: 0,
                full_notified: 0,
                resumed: 0,
                aborted: 0,
            }));
            e.with_component::<ControlLan, _>(lan, |l, _| {
                l.attach(addr, hwsim::Endpoint { component: n, iface: hwsim::IfaceId::CONTROL });
            });
            e.with_component::<Coordinator, _>(coord, |c, _| c.subscribe(addr));
            nodes.push(n);
        }
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.attach(coord_addr, hwsim::Endpoint { component: coord, iface: hwsim::IfaceId::CONTROL });
        });
        (e, coord, nodes)
    }

    #[test]
    fn barrier_waits_for_the_slowest_node() {
        let (mut e, coord, nodes) = rig(&[5, 50, 20]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        // After 30 ms: two nodes done, barrier incomplete, no resume.
        e.run_for(SimDuration::from_millis(30));
        assert!(!e.component_ref::<Coordinator>(coord).unwrap().barrier_complete());
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 0);
        }
        // After the slowest (50 ms) reports: everyone resumes.
        e.run_for(SimDuration::from_millis(40));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.completed(), 1);
        assert_eq!(
            c.records[0].captured_bytes,
            3 << 20,
            "each node reports 1 MiB of captured image"
        );
        assert_eq!(c.records[0].outcome, Some(EpochOutcome::Committed));
        assert!(c.records[0].notify_to_acks().is_some(), "implicit acks recorded");
        assert_eq!(
            c.records[0].barrier_hold(),
            Some(SimDuration::ZERO),
            "resume published at barrier completion when not held"
        );
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 1);
        }
    }

    #[test]
    fn hold_resume_blocks_until_released() {
        let (mut e, coord, nodes) = rig(&[5, 10]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.suspend(ctx));
        e.run_for(SimDuration::from_millis(100));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert!(c.barrier_complete());
        assert_eq!(c.completed(), 0, "resume withheld");
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.release_resume(ctx));
        e.run_for(SimDuration::from_millis(10));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert!(c.records[0].barrier_hold().unwrap() >= SimDuration::from_millis(50));
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 1);
        }
    }

    #[test]
    fn held_round_outlives_the_epoch_deadline() {
        // Regression (tab_swap): a suspend round under disk-intensive
        // load — the frozen guest's in-flight I/O drain pushes the local
        // capture far past the 2 s epoch deadline — must NOT be
        // deadline-aborted. Held rounds run against the much longer
        // suspend deadline; only the resume-path deadline is tight.
        let (mut e, coord, nodes) = rig(&[3_000, 5]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.suspend(ctx));
        e.run_for(SimDuration::from_secs(4));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert!(
            c.barrier_complete(),
            "slow capture must still reach the barrier (outcomes {:?})",
            c.outcome_counts()
        );
        assert_eq!(c.outcome_counts().1, 0, "no deadline abort on a held round");
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.release_resume(ctx));
        e.run_for(SimDuration::from_millis(10));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.records[0].outcome, Some(EpochOutcome::Committed));
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 1);
        }
    }

    #[test]
    fn periodic_mode_keeps_triggering() {
        let (mut e, coord, nodes) = rig(&[5, 5]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| {
            c.start_periodic(ctx, SimDuration::from_millis(200))
        });
        e.run_for(SimDuration::from_millis(1100));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert!(c.completed() >= 4, "completed {}", c.completed());
        e.with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
        let before = e.component_ref::<Coordinator>(coord).unwrap().completed();
        e.run_for(SimDuration::from_millis(600));
        assert_eq!(
            e.component_ref::<Coordinator>(coord).unwrap().completed(),
            before,
            "kept triggering after stop"
        );
        let _ = nodes;
    }

    #[test]
    fn request_checkpoint_from_a_node_triggers_a_round() {
        let (mut e, coord, nodes) = rig(&[5, 5]);
        // A node publishes RequestCheckpoint on the bus.
        let lan = {
            // Reach into the rig: the LAN is component 0 by construction.
            sim::ComponentId(0)
        };
        e.post(
            lan,
            SimDuration::from_millis(1),
            LanTransmit {
                frame: Frame::new(NodeAddr(1), NodeAddr(100), BUS_MSG_BYTES, BusMsg::RequestCheckpoint),
            },
        );
        e.run_for(SimDuration::from_millis(100));
        assert_eq!(e.component_ref::<Coordinator>(coord).unwrap().completed(), 1);
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().notified, 1);
        }
    }

    #[test]
    fn lost_notifications_are_retried_until_acked() {
        let (mut e, coord, nodes) = rig(&[5, 5]);
        let lan = sim::ComponentId(0);
        // Total loss at first: the initial notification and the 25 ms
        // retry both vanish (draw-free at p=1, so swapping plans below
        // cannot shift any rng stream).
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.inject_faults(FaultPlan::new(1).with_loss(1.0));
        });
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(60));
        assert_eq!(
            e.component_ref::<Coordinator>(coord).unwrap().completed(),
            0,
            "nothing can complete while the LAN eats every frame"
        );
        // Heal the LAN: the next backoff retry (75 ms) gets through.
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.inject_faults(FaultPlan::new(1));
        });
        e.run_for(SimDuration::from_millis(200));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.completed(), 1);
        assert_eq!(c.records[0].outcome, Some(EpochOutcome::Committed));
        assert!(c.records[0].retries >= 2, "retries {}", c.records[0].retries);
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 1);
        }
    }

    #[test]
    fn crashed_node_degrades_the_epoch() {
        let (mut e, coord, nodes) = rig_full(
            &[5, 5, 5],
            false,
            Some(FailurePolicy {
                ack_timeout: SimDuration::from_millis(10),
                epoch_deadline: SimDuration::from_millis(100),
                ..FailurePolicy::default()
            }),
        );
        let lan = sim::ComponentId(0);
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.inject_faults(FaultPlan::new(2).with_crash(2, SimTime::ZERO));
        });
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(200));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.records[0].outcome, Some(EpochOutcome::Degraded));
        assert_eq!(c.records[0].excluded, 1);
        assert!(c.records[0].retries >= 1, "crashed node was re-notified");
        assert_eq!(c.completed(), 1, "degraded epochs still resume");
        assert_eq!(c.outcome_counts(), (0, 0, 1));
        assert_eq!(e.component_ref::<FakeNode>(nodes[0]).unwrap().resumed, 1);
        assert_eq!(e.component_ref::<FakeNode>(nodes[1]).unwrap().resumed, 0, "crashed");
        assert_eq!(e.component_ref::<FakeNode>(nodes[2]).unwrap().resumed, 1);
    }

    #[test]
    fn unacked_straggler_aborts_when_degraded_commits_are_disallowed() {
        let (mut e, coord, nodes) = rig_full(
            &[5, 400],
            false,
            Some(FailurePolicy {
                epoch_deadline: SimDuration::from_millis(100),
                allow_degraded: false,
                ..FailurePolicy::default()
            }),
        );
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(600));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.records[0].outcome, Some(EpochOutcome::Aborted));
        assert_eq!(c.completed(), 0);
        assert!(c.idle(), "aborted round fully cleared");
        assert_eq!(e.component_ref::<FakeNode>(nodes[0]).unwrap().aborted, 1);
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 0);
        }
    }

    #[test]
    fn acked_straggler_forces_abort_not_degrade() {
        // The slow node acks (it is alive): excluding it would discard
        // live state, so the epoch must abort even though degraded commits
        // are allowed.
        let (mut e, coord, nodes) = rig_full(
            &[5, 400],
            true,
            Some(FailurePolicy {
                epoch_deadline: SimDuration::from_millis(100),
                allow_degraded: true,
                ..FailurePolicy::default()
            }),
        );
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(600));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.records[0].outcome, Some(EpochOutcome::Aborted));
        assert!(
            c.records[0].notify_to_acks().unwrap() < SimDuration::from_millis(5),
            "both nodes acked promptly"
        );
        assert_eq!(c.outcome_counts(), (0, 1, 0));
        let _ = nodes;
    }

    #[test]
    fn evicted_node_rejoins_with_a_forced_full_capture() {
        // Crash → degraded commit evicts the corpse → survivors commit
        // cleanly without retrying it → the node recovers, rejoins, and
        // its next notification demands a full capture; once that epoch
        // commits the chain is healed and notifications go incremental
        // again. The shadow checker replays the whole run and must find
        // nothing wrong.
        let (mut e, coord, nodes) = rig_full(
            &[5, 5, 5],
            false,
            Some(FailurePolicy {
                ack_timeout: SimDuration::from_millis(10),
                epoch_deadline: SimDuration::from_millis(100),
                evict_excluded: true,
                ..FailurePolicy::default()
            }),
        );
        let lan = sim::ComponentId(0);
        let crashed = NodeAddr(2);
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.inject_faults(FaultPlan::new(2).with_crash(crashed.0, SimTime::ZERO));
        });

        // Epoch 1: degraded, the corpse is expelled.
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(200));
        {
            let c = e.component_ref::<Coordinator>(coord).unwrap();
            assert_eq!(c.records[0].outcome, Some(EpochOutcome::Degraded));
            assert_eq!(c.evicted(), &[(crashed, GroupId(0))]);
        }

        // Epoch 2: the survivors barrier cleanly — no retries against the
        // corpse, no degradation.
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(200));
        {
            let c = e.component_ref::<Coordinator>(coord).unwrap();
            assert_eq!(c.records[1].outcome, Some(EpochOutcome::Committed));
            assert_eq!(c.records[1].excluded, 0);
            assert_eq!(c.records[1].retries, 0, "nobody retries a corpse");
        }

        // The node recovers (LAN heals) and is re-admitted.
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.inject_faults(FaultPlan::new(2));
        });
        e.with_component::<Coordinator, _>(coord, |c, ctx| {
            assert!(c.rejoin(ctx, crashed), "was evicted, must re-admit");
            assert!(!c.rejoin(ctx, crashed), "second rejoin is a no-op");
            assert!(c.full_capture_pending(crashed));
        });

        // Epoch 3: all three commit; exactly the rejoined node saw a
        // full-capture demand, and the commit heals its chain.
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(200));
        {
            let c = e.component_ref::<Coordinator>(coord).unwrap();
            assert_eq!(c.records[2].outcome, Some(EpochOutcome::Committed));
            assert_eq!(c.records[2].excluded, 0);
            assert_eq!(
                c.records[2].captured_bytes,
                3 << 20,
                "all three nodes reported at the barrier"
            );
            assert!(!c.full_capture_pending(crashed), "commit healed the chain");
        }
        assert_eq!(e.component_ref::<FakeNode>(nodes[1]).unwrap().full_notified, 1);
        assert_eq!(e.component_ref::<FakeNode>(nodes[0]).unwrap().full_notified, 0);
        assert_eq!(e.component_ref::<FakeNode>(nodes[2]).unwrap().full_notified, 0);

        // Epoch 4: back to incremental for everyone.
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(200));
        assert_eq!(e.component_ref::<FakeNode>(nodes[1]).unwrap().full_notified, 1);

        // The shadow checker agrees with everything that happened.
        let events = e.telemetry().trace_events();
        let mut shadow = crate::shadow::ShadowEpochState::new();
        for ev in &events {
            shadow.step(ev);
        }
        shadow.finish();
        assert!(
            shadow.violations().is_empty(),
            "shadow violations: {:?}",
            shadow.violations()
        );
        assert_eq!(shadow.epochs_checked, 4);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_behave_like_the_builder() {
        // One release of compatibility: new/set_policy/set_hold_resume/
        // set_periodic_group must keep working for out-of-tree callers.
        let lan = ComponentId(0);
        let mut old = Coordinator::new(NodeAddr(7), lan, TriggerMode::EventDriven);
        let policy = FailurePolicy {
            max_notify_retries: 9,
            ..FailurePolicy::default()
        };
        old.set_policy(policy);
        old.set_hold_resume(true);
        old.set_periodic_group(GroupId(3));
        let new = Coordinator::builder(NodeAddr(7), lan)
            .mode(TriggerMode::EventDriven)
            .policy(policy)
            .hold_resume(true)
            .periodic_group(GroupId(3))
            .build();
        assert_eq!(old.addr(), new.addr());
        assert_eq!(old.policy().max_notify_retries, new.policy().max_notify_retries);
        assert_eq!(old.hold_resume, new.hold_resume);
        assert_eq!(old.pending_periodic_group, new.pending_periodic_group);
        assert_eq!(old.mode, new.mode);
    }

    #[test]
    fn telemetry_records_epoch_lifecycle() {
        let (mut e, coord, _nodes) = rig(&[5, 10]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        e.run_for(SimDuration::from_millis(100));
        let t = e.telemetry();
        assert_eq!(t.counter_value("coordinator.epochs_committed"), Some(1));
        assert_eq!(t.counter_value("coordinator.epochs_aborted"), Some(0));
        assert_eq!(
            t.counter_value("coordinator.captured_bytes"),
            Some(2 << 20),
            "both fake nodes report 1 MiB"
        );
        let acks = t.histogram_summary("coordinator.notify_to_acks_ns").unwrap();
        assert_eq!(acks.count, 1);
        assert!(acks.max > 0.0, "implicit acks take LAN time");
        let hold = t.histogram_summary("coordinator.barrier_hold_ns").unwrap();
        assert_eq!(hold.count, 1);
        assert_eq!(hold.max, 0.0, "non-held rounds resume at the barrier");
        let span = t.span_summary("coordinator", "epoch").unwrap();
        assert_eq!(span.count, 1);
        assert!(span.min >= 10_000_000.0, "epoch spans the slowest capture");
    }

    #[test]
    fn telemetry_records_held_round_hold_time() {
        let (mut e, coord, _nodes) = rig(&[5, 5]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.suspend(ctx));
        e.run_for(SimDuration::from_millis(80));
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.release_resume(ctx));
        let t = e.telemetry();
        let hold = t.histogram_summary("coordinator.barrier_hold_ns").unwrap();
        assert_eq!(hold.count, 1);
        assert!(
            hold.max >= 50_000_000.0,
            "held round's barrier hold is the suspension window, got {}",
            hold.max
        );
    }
}
