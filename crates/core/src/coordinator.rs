//! The checkpoint coordinator on the ops node.
//!
//! Runs the distributed protocol of §4.3: publishes scheduled or
//! event-driven checkpoint notifications to every subscribed node, gathers
//! per-node "done" reports behind a barrier, and publishes the resume.
//! The component doubles as the testbed's NTP server (its clock is the
//! reference the whole experiment disciplines against), because scheduled
//! checkpoints only make sense relative to the clock the nodes chase.

use std::any::Any;
use std::collections::{HashMap, HashSet};

use clocksync::{NtpRequest, NtpServer};
use hwsim::{Frame, HardwareClock, LanTransmit, LinkDeliver, NodeAddr};
use sim::{Component, ComponentId, Ctx, SimDuration, SimTime};

use crate::bus::{BusMsg, BUS_MSG_BYTES};

/// Internal coordinator events.
enum CoordMsg {
    /// Fire the next periodic checkpoint.
    PeriodicKick,
}

/// Per-epoch record for analysis.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    pub epoch: u64,
    /// True time the notification was published.
    pub published: SimTime,
    /// True time the barrier completed (all nodes done).
    pub barrier_done: Option<SimTime>,
    /// True time the resume was published.
    pub resumed: Option<SimTime>,
    /// Total image bytes reported by nodes for this epoch.
    pub captured_bytes: u64,
}

/// Checkpoint trigger style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerMode {
    /// "Checkpoint at time t": scheduled through synchronized clocks.
    Scheduled {
        /// How far in the future to schedule, as a local-clock delta.
        lead: SimDuration,
    },
    /// "Checkpoint now": delivery-limited synchronization.
    EventDriven,
}

/// A checkpoint group: one experiment's set of nodes. Emulab coordinates
/// per experiment; nodes of different experiments never share a barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The default group for single-experiment setups.
    pub const DEFAULT: GroupId = GroupId(0);
}

/// The coordinator component.
pub struct Coordinator {
    addr: NodeAddr,
    lan: ComponentId,
    clock: HardwareClock,
    ntp: NtpServer,
    /// Member → group.
    members: Vec<(NodeAddr, GroupId)>,
    epoch: u64,
    /// In-flight rounds: group → (epoch, nodes still pending).
    pending: HashMap<GroupId, (u64, HashSet<NodeAddr>)>,
    mode: TriggerMode,
    periodic: Option<(GroupId, SimDuration)>,
    /// Complete the barrier but do not publish the resume (swap-out and
    /// time-travel hold the system suspended to collect its state).
    hold_resume: bool,
    pending_periodic_group: Option<GroupId>,
    /// Completed and in-progress epoch records.
    pub records: Vec<EpochRecord>,
}

impl Coordinator {
    /// Creates a coordinator with a perfect reference clock.
    pub fn new(addr: NodeAddr, lan: ComponentId, mode: TriggerMode) -> Self {
        Coordinator {
            addr,
            lan,
            clock: HardwareClock::new(0, 0.0),
            ntp: NtpServer,
            members: Vec::new(),
            epoch: 0,
            pending: HashMap::new(),
            mode,
            periodic: None,
            hold_resume: false,
            pending_periodic_group: None,
            records: Vec::new(),
        }
    }

    /// Holds the resume after the barrier (stateful swap-out, §5).
    pub fn set_hold_resume(&mut self, hold: bool) {
        self.hold_resume = hold;
    }

    /// True once every node of `group` reported done for its round.
    pub fn barrier_complete_in(&self, group: GroupId) -> bool {
        self.pending
            .get(&group)
            .map(|(_, p)| p.is_empty())
            .unwrap_or(false)
    }

    /// True once the default group's barrier completed.
    pub fn barrier_complete(&self) -> bool {
        self.barrier_complete_in(GroupId::DEFAULT)
    }

    /// Publishes the held resume for `group`.
    ///
    /// # Panics
    ///
    /// Panics if that group's barrier has not completed.
    pub fn release_resume_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId) {
        assert!(
            self.barrier_complete_in(group),
            "release before barrier completion"
        );
        let (epoch, _) = self.pending.remove(&group).expect("checked");
        if let Some(rec) = self.records.iter_mut().rev().find(|r| r.epoch == epoch) {
            rec.resumed = Some(ctx.now());
        }
        self.publish(ctx, group, BusMsg::Resume { epoch });
    }

    /// Publishes the held resume (default group).
    pub fn release_resume(&mut self, ctx: &mut Ctx<'_>) {
        self.release_resume_in(ctx, GroupId::DEFAULT);
    }

    /// Subscribes a node to the bus in the default group.
    pub fn subscribe(&mut self, node: NodeAddr) {
        self.subscribe_in(node, GroupId::DEFAULT);
    }

    /// Subscribes a node to the bus in `group`.
    pub fn subscribe_in(&mut self, node: NodeAddr, group: GroupId) {
        if !self.members.iter().any(|&(n, _)| n == node) {
            self.members.push((node, group));
        }
    }

    /// Unsubscribes a node (swap-out teardown).
    pub fn unsubscribe(&mut self, node: NodeAddr) {
        self.members.retain(|&(n, _)| n != node);
    }

    fn group_of(&self, node: NodeAddr) -> Option<GroupId> {
        self.members
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, g)| g)
    }

    /// The coordinator's control address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Number of completed checkpoints.
    pub fn completed(&self) -> u64 {
        self.records.iter().filter(|r| r.resumed.is_some()).count() as u64
    }

    /// True if no checkpoint round is mid-flight in any group.
    pub fn idle(&self) -> bool {
        self.pending.values().all(|(_, p)| p.is_empty())
    }

    /// True if `group` has no round in flight.
    pub fn idle_in(&self, group: GroupId) -> bool {
        self.pending
            .get(&group)
            .map(|(_, p)| p.is_empty())
            .unwrap_or(true)
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>, group: GroupId, msg: BusMsg) {
        for &(m, g) in &self.members {
            if g == group {
                let frame = Frame::new(self.addr, m, BUS_MSG_BYTES, msg);
                ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
            }
        }
    }

    /// Triggers one checkpoint round for the default group.
    pub fn trigger(&mut self, ctx: &mut Ctx<'_>) {
        self.trigger_in(ctx, GroupId::DEFAULT);
    }

    /// Triggers one checkpoint round for `group`.
    ///
    /// # Panics
    ///
    /// Panics if that group has a round in flight or no members.
    pub fn trigger_in(&mut self, ctx: &mut Ctx<'_>, group: GroupId) {
        assert!(self.idle_in(group), "checkpoint round already in flight");
        let nodes: HashSet<NodeAddr> = self
            .members
            .iter()
            .filter(|&&(_, g)| g == group)
            .map(|&(n, _)| n)
            .collect();
        assert!(!nodes.is_empty(), "no subscribed nodes in group");
        self.epoch += 1;
        let epoch = self.epoch;
        self.pending.insert(group, (epoch, nodes));
        let msg = match self.mode {
            TriggerMode::Scheduled { lead } => BusMsg::CheckpointAt {
                epoch,
                at_clock_ns: self.clock.read_ns(ctx.now()) + lead.as_nanos() as f64,
            },
            TriggerMode::EventDriven => BusMsg::CheckpointNow { epoch },
        };
        self.records.push(EpochRecord {
            epoch,
            published: ctx.now(),
            barrier_done: None,
            resumed: None,
            captured_bytes: 0,
        });
        self.publish(ctx, group, msg);
    }

    /// Selects which group the next `start_periodic` drives (default:
    /// [`GroupId::DEFAULT`]); also retargets an already-running schedule.
    pub fn set_periodic_group(&mut self, group: GroupId) {
        if let Some((g, _)) = self.periodic.as_mut() {
            *g = group;
        }
        self.pending_periodic_group = Some(group);
    }

    /// Starts periodic checkpointing of the selected (or default) group.
    pub fn start_periodic(&mut self, ctx: &mut Ctx<'_>, interval: SimDuration) {
        let group = self.pending_periodic_group.take().unwrap_or(GroupId::DEFAULT);
        self.periodic = Some((group, interval));
        ctx.post_self(interval, CoordMsg::PeriodicKick);
    }

    /// Stops periodic checkpointing after the current round.
    pub fn stop_periodic(&mut self) {
        self.periodic = None;
    }

    fn on_node_done(&mut self, ctx: &mut Ctx<'_>, epoch: u64, node: NodeAddr, image_bytes: u64) {
        let Some(group) = self.group_of(node) else {
            return; // Unsubscribed mid-round (swap-out).
        };
        let Some((cur_epoch, pending)) = self.pending.get_mut(&group) else {
            return;
        };
        if epoch != *cur_epoch {
            return; // Stale report.
        }
        if !pending.remove(&node) {
            return; // Duplicate report: don't double-count bytes.
        }
        if let Some(rec) = self.records.iter_mut().rev().find(|r| r.epoch == epoch) {
            rec.captured_bytes += image_bytes;
        }
        if pending.is_empty() {
            if let Some(rec) = self.records.iter_mut().rev().find(|r| r.epoch == epoch) {
                rec.barrier_done = Some(ctx.now());
            }
            if self.hold_resume {
                return;
            }
            // Barrier complete: resume the group.
            self.pending.remove(&group);
            if let Some(rec) = self.records.iter_mut().rev().find(|r| r.epoch == epoch) {
                rec.resumed = Some(ctx.now());
            }
            self.publish(ctx, group, BusMsg::Resume { epoch });
        }
    }
}

impl Component for Coordinator {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Box<dyn Any>) {
        let payload = match payload.downcast::<LinkDeliver>() {
            Ok(del) => {
                if let Some(req) = del.frame.payload::<NtpRequest>() {
                    let t = self.clock.read_ns(ctx.now());
                    let resp = self.ntp.respond(*req, t, t);
                    let frame = Frame::new(self.addr, del.frame.src, 90, resp);
                    ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
                } else if let Some(&msg) = del.frame.payload::<BusMsg>() {
                    match msg {
                        BusMsg::NodeDone { epoch, image_bytes } => {
                            self.on_node_done(ctx, epoch, del.frame.src, image_bytes);
                        }
                        BusMsg::RequestCheckpoint => {
                            // Event-driven trigger from a node: checkpoint
                            // its whole group now (if idle).
                            if let Some(group) = self.group_of(del.frame.src) {
                                if self.idle_in(group) {
                                    let saved = self.mode;
                                    self.mode = TriggerMode::EventDriven;
                                    self.trigger_in(ctx, group);
                                    self.mode = saved;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                return;
            }
            Err(p) => p,
        };
        if payload.downcast::<CoordMsg>().is_ok() {
            if let Some((group, interval)) = self.periodic {
                if self.idle_in(group) {
                    self.trigger_in(ctx, group);
                }
                ctx.post_self(interval, CoordMsg::PeriodicKick);
            }
        }
    }

    sim::component_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::{ControlLan, Frame, LanTransmit};
    use sim::{Component, Engine};
    use std::any::Any;

    /// A fake node agent: records notifications, reports done after a
    /// fixed local delay.
    struct FakeNode {
        addr: NodeAddr,
        lan: ComponentId,
        coord_addr: NodeAddr,
        capture_ms: u64,
        pub notified: u64,
        pub resumed: u64,
    }

    struct CaptureDone {
        epoch: u64,
    }

    impl Component for FakeNode {
        fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Box<dyn Any>) {
            let payload = match payload.downcast::<hwsim::LinkDeliver>() {
                Ok(del) => {
                    if let Some(&msg) = del.frame.payload::<BusMsg>() {
                        match msg {
                            BusMsg::CheckpointAt { epoch, .. } | BusMsg::CheckpointNow { epoch } => {
                                self.notified += 1;
                                ctx.post_self(
                                    SimDuration::from_millis(self.capture_ms),
                                    CaptureDone { epoch },
                                );
                            }
                            BusMsg::Resume { .. } => self.resumed += 1,
                            _ => {}
                        }
                    }
                    return;
                }
                Err(p) => p,
            };
            if let Ok(done) = payload.downcast::<CaptureDone>() {
                let frame = Frame::new(
                    self.addr,
                    self.coord_addr,
                    BUS_MSG_BYTES,
                    BusMsg::NodeDone {
                        epoch: done.epoch,
                        image_bytes: 1 << 20,
                    },
                );
                ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
            }
        }
        sim::component_boilerplate!();
    }

    fn rig(capture_ms: &[u64]) -> (Engine, ComponentId, Vec<ComponentId>) {
        let mut e = Engine::new(9);
        let lan = e.add_component(Box::new(ControlLan::new(
            100_000_000,
            SimDuration::from_micros(40),
            SimDuration::from_micros(60),
        )));
        let coord_addr = NodeAddr(100);
        let coord = e.add_component(Box::new(Coordinator::new(
            coord_addr,
            lan,
            TriggerMode::EventDriven,
        )));
        let mut nodes = Vec::new();
        for (i, &ms) in capture_ms.iter().enumerate() {
            let addr = NodeAddr(i as u32 + 1);
            let n = e.add_component(Box::new(FakeNode {
                addr,
                lan,
                coord_addr,
                capture_ms: ms,
                notified: 0,
                resumed: 0,
            }));
            e.with_component::<ControlLan, _>(lan, |l, _| {
                l.attach(addr, hwsim::Endpoint { component: n, iface: hwsim::IfaceId::CONTROL });
            });
            e.with_component::<Coordinator, _>(coord, |c, _| c.subscribe(addr));
            nodes.push(n);
        }
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.attach(coord_addr, hwsim::Endpoint { component: coord, iface: hwsim::IfaceId::CONTROL });
        });
        (e, coord, nodes)
    }

    #[test]
    fn barrier_waits_for_the_slowest_node() {
        let (mut e, coord, nodes) = rig(&[5, 50, 20]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        // After 30 ms: two nodes done, barrier incomplete, no resume.
        e.run_for(SimDuration::from_millis(30));
        assert!(!e.component_ref::<Coordinator>(coord).unwrap().barrier_complete());
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 0);
        }
        // After the slowest (50 ms) reports: everyone resumes.
        e.run_for(SimDuration::from_millis(40));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert_eq!(c.completed(), 1);
        assert_eq!(
            c.records[0].captured_bytes,
            3 << 20,
            "each node reports 1 MiB of captured image"
        );
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 1);
        }
    }

    #[test]
    fn hold_resume_blocks_until_released() {
        let (mut e, coord, nodes) = rig(&[5, 10]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| {
            c.set_hold_resume(true);
            c.trigger(ctx);
        });
        e.run_for(SimDuration::from_millis(100));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert!(c.barrier_complete());
        assert_eq!(c.completed(), 0, "resume withheld");
        e.with_component::<Coordinator, _>(coord, |c, ctx| c.release_resume(ctx));
        e.run_for(SimDuration::from_millis(10));
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().resumed, 1);
        }
    }

    #[test]
    fn periodic_mode_keeps_triggering() {
        let (mut e, coord, nodes) = rig(&[5, 5]);
        e.with_component::<Coordinator, _>(coord, |c, ctx| {
            c.start_periodic(ctx, SimDuration::from_millis(200))
        });
        e.run_for(SimDuration::from_millis(1100));
        let c = e.component_ref::<Coordinator>(coord).unwrap();
        assert!(c.completed() >= 4, "completed {}", c.completed());
        e.with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
        let before = e.component_ref::<Coordinator>(coord).unwrap().completed();
        e.run_for(SimDuration::from_millis(600));
        assert_eq!(
            e.component_ref::<Coordinator>(coord).unwrap().completed(),
            before,
            "kept triggering after stop"
        );
        let _ = nodes;
    }

    #[test]
    fn request_checkpoint_from_a_node_triggers_a_round() {
        let (mut e, coord, nodes) = rig(&[5, 5]);
        // A node publishes RequestCheckpoint on the bus.
        let lan = {
            // Reach into the rig: the LAN is component 0 by construction.
            sim::ComponentId(0)
        };
        e.post(
            lan,
            SimDuration::from_millis(1),
            LanTransmit {
                frame: Frame::new(NodeAddr(1), NodeAddr(100), BUS_MSG_BYTES, BusMsg::RequestCheckpoint),
            },
        );
        e.run_for(SimDuration::from_millis(100));
        assert_eq!(e.component_ref::<Coordinator>(coord).unwrap().completed(), 1);
        for &n in &nodes {
            assert_eq!(e.component_ref::<FakeNode>(n).unwrap().notified, 1);
        }
    }
}
