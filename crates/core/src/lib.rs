//! Transparent coordinated checkpointing of closed distributed systems —
//! the paper's primary contribution (§4).
//!
//! The pieces, mapped to the paper:
//!
//! - [`BusMsg`] — the publish-subscribe checkpoint notification bus on the
//!   control network (§4.3);
//! - [`Coordinator`] — the ops-side protocol driver: scheduled
//!   ("checkpoint at time t") or event-driven ("checkpoint now") triggers,
//!   completion barrier, resume notification; doubles as the NTP
//!   reference;
//! - [`CheckpointAgent`] — the node-side agent plugged into each
//!   [`vmm::VmHost`], arming local timers against the NTP-disciplined
//!   clock and driving the host's local live checkpoint;
//! - [`DelayNodeHost`] — the network-core checkpoint: Dummynet suspension,
//!   non-destructive serialization, and time-virtualized resume (§4.4);
//! - [`Strategy`] — the runnable baselines (event-driven triggering,
//!   non-concealing stop-and-copy) the evaluation compares against.
//!
//! Transparency is an end-to-end property of this stack: the integration
//! tests assert the paper's §7.1 observation — a TCP stream checkpointed
//! repeatedly shows **no retransmissions, no duplicate ACKs, no window
//! changes** — and that the baselines violate it.

mod agent;
mod baselines;
mod bus;
mod coordinator;
mod delaynode;
pub mod modelcheck;
pub mod scale;
pub mod shadow;
pub mod wal;

pub use agent::CheckpointAgent;
pub use baselines::Strategy;
pub use bus::{BusMsg, BUS_MSG_BYTES};
pub use coordinator::{
    Coordinator, CoordinatorBuilder, CoordinatorConfig, EpochOutcome, EpochRecord, FailurePolicy,
    GroupId, TriggerMode,
};
pub use delaynode::{DelayNodeHost, DelayNodeStats, OutPort};
pub use scale::{build_scale_lab, ScaleConfig, ScaleLab, ScaleOutcome};
pub use shadow::{ShadowEpochState, ShadowOutcome, ShadowViolation};
pub use wal::{MemWalStore, Wal, WalRecord, WalStore};
