//! The coordinator's durable epoch write-ahead log.
//!
//! Every fault PR so far assumed the coordinator was immortal: the
//! two-phase epoch state machine lived entirely in coordinator memory,
//! so a control-plane crash mid-round would wedge the experiment. This
//! module is the durable half of the fix — the coordinator appends a
//! [`WalRecord`] at every epoch transition (round-open, per-node
//! ack/done, exclusion, commit/abort, resume-release, membership
//! changes), and [`Coordinator::recover`](crate::Coordinator) replays
//! the log after a crash to classify the in-flight round and rebuild
//! the epoch counter, the per-epoch records, and the membership deltas.
//!
//! Records are encoded with the same hand-rolled [`Enc`]/[`Dec`] codec
//! the checkpoint image store uses, one tagged frame per record, so a
//! log survives byte-identically across same-seed runs. The backing
//! store is pluggable behind [`WalStore`] (the same split `ckptstore`
//! makes with its `ChunkBackend` trait — in-mem plus an append-only
//! segment log); the in-sim default is [`MemWalStore`].

use std::cell::RefCell;
use std::rc::Rc;

use ckptstore::{Dec, DecodeError, Enc};

/// Recovery classification codes, carried in the node field of the
/// `shadow.recover` trace instant so the shadow checker (and failure
/// artifacts) can see *how* a restarted coordinator resolved a round.
pub mod recover_code {
    /// Barrier was complete but the commit was not durable: rolled
    /// forward and committed.
    pub const ROLL_FORWARD: u32 = 1;
    /// Commit was durable but the resume never published: released.
    pub const RELEASE: u32 = 2;
    /// No participant had acked: aborted (nodes never suspended).
    pub const ABORT: u32 = 3;
    /// Mid-flight (some acks or dones): aborted, and every participant
    /// that had reported done gets its next capture forced full — the
    /// rollback may have raced its local sequence.
    pub const ABORT_FORCE_FULL: u32 = 4;
}

/// One durable epoch transition. `at_ns` is the true-time stamp of the
/// transition so recovery rebuilds [`EpochRecord`](crate::EpochRecord)
/// timestamps exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A round opened: notification published to `participants`.
    RoundOpen {
        at_ns: u64,
        group: u32,
        epoch: u64,
        /// Resume withheld at the barrier (swap-out / time travel).
        hold: bool,
        /// Scheduled target clock reading; `None` for event-driven.
        notify_at_clock_ns: Option<f64>,
        /// Participant addresses, sorted.
        participants: Vec<u32>,
        /// Participants notified with the full-capture flag, sorted.
        forced_full: Vec<u32>,
        /// The round's causal trace context, `(trace_id, span_id)` as
        /// minted by `TraceCtx::for_round` — lets a flight-recorder WAL
        /// tail be joined against the trace ring's flow events without
        /// re-deriving the packing.
        trace: (u32, u32),
    },
    /// A participant's notification ack was accepted.
    Ack { at_ns: u64, group: u32, epoch: u64, node: u32 },
    /// A participant's done report was accepted (implies ack).
    Done { at_ns: u64, group: u32, epoch: u64, node: u32, image_bytes: u64 },
    /// The failure detector re-published the notification.
    Retry { at_ns: u64, group: u32, epoch: u64 },
    /// A participant was excluded from the barrier (presumed crashed).
    Exclude { at_ns: u64, group: u32, epoch: u64, node: u32 },
    /// The epoch committed; `excluded` is the exclusion count (zero =
    /// clean, nonzero = degraded).
    Commit { at_ns: u64, group: u32, epoch: u64, excluded: u32 },
    /// The epoch aborted.
    Abort { at_ns: u64, group: u32, epoch: u64 },
    /// The resume was published for a committed epoch.
    Resume { at_ns: u64, group: u32, epoch: u64 },
    /// The round was abandoned (time travel replaced its state).
    Abandon { at_ns: u64, group: u32, epoch: u64 },
    /// A node was evicted from its group after a degraded commit.
    Evict { at_ns: u64, group: u32, node: u32 },
    /// An evicted node was re-admitted (next capture forced full).
    Rejoin { at_ns: u64, group: u32, node: u32 },
    /// A node's next capture was force-full'd outside a rejoin (e.g. a
    /// recovery abort after the node had reported done).
    ForceFull { at_ns: u64, node: u32 },
    /// A forced-full node's capture committed: its chain is whole again.
    ForceFullHealed { at_ns: u64, node: u32 },
}

const TAG_ROUND_OPEN: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_RETRY: u8 = 4;
const TAG_EXCLUDE: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;
const TAG_RESUME: u8 = 8;
const TAG_ABANDON: u8 = 9;
const TAG_EVICT: u8 = 10;
const TAG_REJOIN: u8 = 11;
const TAG_FORCE_FULL: u8 = 12;
const TAG_FORCE_FULL_HEALED: u8 = 13;

impl WalRecord {
    /// Encodes the record as one self-contained WAL frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::RoundOpen {
                at_ns,
                group,
                epoch,
                hold,
                notify_at_clock_ns,
                participants,
                forced_full,
                trace,
            } => {
                e.u8(TAG_ROUND_OPEN);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
                e.bool(*hold);
                e.u32(trace.0);
                e.u32(trace.1);
                match notify_at_clock_ns {
                    Some(t) => {
                        e.bool(true);
                        e.f64(*t);
                    }
                    None => e.bool(false),
                }
                e.seq(participants.len());
                for n in participants {
                    e.u32(*n);
                }
                e.seq(forced_full.len());
                for n in forced_full {
                    e.u32(*n);
                }
            }
            WalRecord::Ack { at_ns, group, epoch, node } => {
                e.u8(TAG_ACK);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
                e.u32(*node);
            }
            WalRecord::Done { at_ns, group, epoch, node, image_bytes } => {
                e.u8(TAG_DONE);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
                e.u32(*node);
                e.u64(*image_bytes);
            }
            WalRecord::Retry { at_ns, group, epoch } => {
                e.u8(TAG_RETRY);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
            }
            WalRecord::Exclude { at_ns, group, epoch, node } => {
                e.u8(TAG_EXCLUDE);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
                e.u32(*node);
            }
            WalRecord::Commit { at_ns, group, epoch, excluded } => {
                e.u8(TAG_COMMIT);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
                e.u32(*excluded);
            }
            WalRecord::Abort { at_ns, group, epoch } => {
                e.u8(TAG_ABORT);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
            }
            WalRecord::Resume { at_ns, group, epoch } => {
                e.u8(TAG_RESUME);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
            }
            WalRecord::Abandon { at_ns, group, epoch } => {
                e.u8(TAG_ABANDON);
                e.u64(*at_ns);
                e.u32(*group);
                e.u64(*epoch);
            }
            WalRecord::Evict { at_ns, group, node } => {
                e.u8(TAG_EVICT);
                e.u64(*at_ns);
                e.u32(*group);
                e.u32(*node);
            }
            WalRecord::Rejoin { at_ns, group, node } => {
                e.u8(TAG_REJOIN);
                e.u64(*at_ns);
                e.u32(*group);
                e.u32(*node);
            }
            WalRecord::ForceFull { at_ns, node } => {
                e.u8(TAG_FORCE_FULL);
                e.u64(*at_ns);
                e.u32(*node);
            }
            WalRecord::ForceFullHealed { at_ns, node } => {
                e.u8(TAG_FORCE_FULL_HEALED);
                e.u64(*at_ns);
                e.u32(*node);
            }
        }
        e.into_bytes()
    }

    /// Decodes one WAL frame.
    pub fn decode(frame: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut d = Dec::new(frame);
        let at = d.position();
        let tag = d.u8()?;
        let rec = match tag {
            TAG_ROUND_OPEN => {
                let at_ns = d.u64()?;
                let group = d.u32()?;
                let epoch = d.u64()?;
                let hold = d.bool()?;
                let trace = (d.u32()?, d.u32()?);
                let notify_at_clock_ns = if d.bool()? { Some(d.f64()?) } else { None };
                let n = d.seq()?;
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(d.u32()?);
                }
                let n = d.seq()?;
                let mut forced_full = Vec::with_capacity(n);
                for _ in 0..n {
                    forced_full.push(d.u32()?);
                }
                WalRecord::RoundOpen {
                    at_ns,
                    group,
                    epoch,
                    hold,
                    notify_at_clock_ns,
                    participants,
                    forced_full,
                    trace,
                }
            }
            TAG_ACK => WalRecord::Ack {
                at_ns: d.u64()?,
                group: d.u32()?,
                epoch: d.u64()?,
                node: d.u32()?,
            },
            TAG_DONE => WalRecord::Done {
                at_ns: d.u64()?,
                group: d.u32()?,
                epoch: d.u64()?,
                node: d.u32()?,
                image_bytes: d.u64()?,
            },
            TAG_RETRY => WalRecord::Retry { at_ns: d.u64()?, group: d.u32()?, epoch: d.u64()? },
            TAG_EXCLUDE => WalRecord::Exclude {
                at_ns: d.u64()?,
                group: d.u32()?,
                epoch: d.u64()?,
                node: d.u32()?,
            },
            TAG_COMMIT => WalRecord::Commit {
                at_ns: d.u64()?,
                group: d.u32()?,
                epoch: d.u64()?,
                excluded: d.u32()?,
            },
            TAG_ABORT => WalRecord::Abort { at_ns: d.u64()?, group: d.u32()?, epoch: d.u64()? },
            TAG_RESUME => WalRecord::Resume { at_ns: d.u64()?, group: d.u32()?, epoch: d.u64()? },
            TAG_ABANDON => {
                WalRecord::Abandon { at_ns: d.u64()?, group: d.u32()?, epoch: d.u64()? }
            }
            TAG_EVICT => WalRecord::Evict { at_ns: d.u64()?, group: d.u32()?, node: d.u32()? },
            TAG_REJOIN => WalRecord::Rejoin { at_ns: d.u64()?, group: d.u32()?, node: d.u32()? },
            TAG_FORCE_FULL => WalRecord::ForceFull { at_ns: d.u64()?, node: d.u32()? },
            TAG_FORCE_FULL_HEALED => {
                WalRecord::ForceFullHealed { at_ns: d.u64()?, node: d.u32()? }
            }
            tag => return Err(DecodeError::BadTag { at, tag, what: "wal record" }),
        };
        if d.remaining() != 0 {
            return Err(DecodeError::Invalid("trailing bytes after wal record"));
        }
        Ok(rec)
    }
}

/// Pluggable durable backing for the epoch WAL. The store survives the
/// coordinator process; in the simulation that means it lives outside
/// the component and is reattached at restart.
pub trait WalStore {
    /// Appends one encoded record frame.
    fn append(&mut self, frame: Vec<u8>);
    /// All frames, in append order.
    fn frames(&self) -> Vec<Vec<u8>>;
    /// Number of appended frames.
    fn len(&self) -> usize;
    /// True when no frame was ever appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total encoded bytes (for stats and experiments).
    fn byte_len(&self) -> usize;
    /// Discards all frames (experiment teardown).
    fn clear(&mut self);
}

/// The in-sim durable store: an append-only vector of frames.
#[derive(Default, Debug)]
pub struct MemWalStore {
    frames: Vec<Vec<u8>>,
    bytes: usize,
}

impl WalStore for MemWalStore {
    fn append(&mut self, frame: Vec<u8>) {
        self.bytes += frame.len();
        self.frames.push(frame);
    }

    fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.clone()
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn byte_len(&self) -> usize {
        self.bytes
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.bytes = 0;
    }
}

/// Cheap-clone handle to a [`WalStore`], mirroring the `Buggify` and
/// `Telemetry` handle idiom: the testbed owns one, the coordinator holds
/// a clone, and the log therefore survives a coordinator crash/restart.
#[derive(Clone)]
pub struct Wal {
    store: Rc<RefCell<dyn WalStore>>,
}

impl Wal {
    /// A WAL over the in-sim memory store.
    pub fn in_memory() -> Self {
        Wal::with_store(MemWalStore::default())
    }

    /// A WAL over a caller-provided store.
    pub fn with_store<S: WalStore + 'static>(store: S) -> Self {
        Wal { store: Rc::new(RefCell::new(store)) }
    }

    /// Appends one record.
    pub fn append(&self, rec: &WalRecord) {
        self.store.borrow_mut().append(rec.encode());
    }

    /// Decodes the whole log, in append order.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt frame: the WAL is the recovery source of
    /// truth, and in the simulation a decode failure is always a bug.
    pub fn replay(&self) -> Vec<WalRecord> {
        self.store
            .borrow()
            .frames()
            .iter()
            .map(|f| WalRecord::decode(f).expect("corrupt wal frame"))
            .collect()
    }

    /// Number of records appended.
    pub fn len(&self) -> usize {
        self.store.borrow().len()
    }

    /// True when nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.store.borrow().is_empty()
    }

    /// Total encoded bytes.
    pub fn byte_len(&self) -> usize {
        self.store.borrow().byte_len()
    }

    /// Discards the log (experiment teardown).
    pub fn clear(&self) {
        self.store.borrow_mut().clear();
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.store.borrow();
        f.debug_struct("Wal")
            .field("records", &s.len())
            .field("bytes", &s.byte_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::RoundOpen {
                at_ns: 12,
                group: 0,
                epoch: 1,
                hold: false,
                notify_at_clock_ns: Some(1.5e9),
                participants: vec![1, 2, 3],
                forced_full: vec![2],
                trace: (0, 1),
            },
            WalRecord::RoundOpen {
                at_ns: 13,
                group: 7,
                epoch: 2,
                hold: true,
                notify_at_clock_ns: None,
                participants: vec![9],
                forced_full: vec![],
                trace: (7, 2),
            },
            WalRecord::Ack { at_ns: 20, group: 0, epoch: 1, node: 2 },
            WalRecord::Done { at_ns: 30, group: 0, epoch: 1, node: 2, image_bytes: 1 << 20 },
            WalRecord::Retry { at_ns: 35, group: 0, epoch: 1 },
            WalRecord::Exclude { at_ns: 40, group: 0, epoch: 1, node: 3 },
            WalRecord::Commit { at_ns: 50, group: 0, epoch: 1, excluded: 1 },
            WalRecord::Abort { at_ns: 60, group: 0, epoch: 2 },
            WalRecord::Resume { at_ns: 70, group: 0, epoch: 1 },
            WalRecord::Abandon { at_ns: 80, group: 0, epoch: 3 },
            WalRecord::Evict { at_ns: 90, group: 0, node: 3 },
            WalRecord::Rejoin { at_ns: 95, group: 0, node: 3 },
            WalRecord::ForceFull { at_ns: 96, node: 3 },
            WalRecord::ForceFullHealed { at_ns: 99, node: 3 },
        ]
    }

    #[test]
    fn every_record_round_trips() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_truncation() {
        assert!(matches!(
            WalRecord::decode(&[200, 0, 0]),
            Err(DecodeError::BadTag { tag: 200, .. })
        ));
        let good = WalRecord::Ack { at_ns: 1, group: 0, epoch: 1, node: 2 }.encode();
        assert!(WalRecord::decode(&good[..good.len() - 1]).is_err());
        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(
            WalRecord::decode(&padded),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn wal_replays_in_append_order_and_survives_clones() {
        let wal = Wal::in_memory();
        let handle = wal.clone();
        for rec in samples() {
            wal.append(&rec);
        }
        // The clone sees everything the original appended: the log
        // outlives any one holder (the crash-survival property).
        assert_eq!(handle.replay(), samples());
        assert_eq!(handle.len(), samples().len());
        assert!(handle.byte_len() > 0);
        handle.clear();
        assert!(wal.is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        let a: Vec<Vec<u8>> = samples().iter().map(|r| r.encode()).collect();
        let b: Vec<Vec<u8>> = samples().iter().map(|r| r.encode()).collect();
        assert_eq!(a, b);
    }
}
