//! The checkpoint notification bus (§4.3).
//!
//! "We have implemented a fast publish-subscribe checkpoint notification
//! bus. All nodes in the system subscribe to the bus, and any node can
//! publish a notification in order to trigger an action on all nodes."
//!
//! Messages ride the Emulab control network as typed frames. The bus
//! supports both checkpoint styles the paper describes: *scheduled*
//! ("checkpoint at time t", converted to a true event time through each
//! node's NTP-disciplined clock) and *event-driven* ("checkpoint now",
//! limited by notification delivery spread).

/// A notification published on the bus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BusMsg {
    /// Schedule a checkpoint at the given *local clock* reading (ns since
    /// the testbed epoch). The time is "far enough in the future to allow
    /// for propagation and processing of the notifications". `full`
    /// demands a full (non-incremental) capture: sent to a node whose
    /// incremental chain broke, e.g. one re-admitted after a crash.
    CheckpointAt { epoch: u64, at_clock_ns: f64, full: bool },
    /// Take a checkpoint immediately on receipt (event-driven mode).
    /// `full` as in [`BusMsg::CheckpointAt`].
    CheckpointNow { epoch: u64, full: bool },
    /// A node acknowledges receipt of a checkpoint notification. The
    /// coordinator's failure detector re-publishes the notification (with
    /// exponential backoff) to nodes whose ack is missing, so a lost
    /// notification costs one retry round-trip instead of a wedged epoch.
    NotifyAck { epoch: u64 },
    /// A node finished capturing its local checkpoint. `image_bytes`
    /// reports the size of the captured state so the coordinator can
    /// account per-epoch image volume. Doubles as an implicit ack.
    NodeDone { epoch: u64, image_bytes: u64 },
    /// All nodes are done: resume execution.
    Resume { epoch: u64 },
    /// The epoch failed to assemble its barrier before the deadline:
    /// nodes roll back their local checkpoint sequence and resume through
    /// the temporal firewall as if the epoch had never been triggered.
    Abort { epoch: u64 },
    /// A node asks the coordinator for an immediate checkpoint round
    /// (event-driven trigger raised inside a guest).
    RequestCheckpoint,
}

impl BusMsg {
    /// Returns the notification with its full-capture flag raised;
    /// non-notification messages pass through unchanged. Used by the
    /// coordinator to upgrade the copy sent to a rejoining node.
    pub fn with_full(self) -> BusMsg {
        match self {
            BusMsg::CheckpointAt { epoch, at_clock_ns, .. } => {
                BusMsg::CheckpointAt { epoch, at_clock_ns, full: true }
            }
            BusMsg::CheckpointNow { epoch, .. } => BusMsg::CheckpointNow { epoch, full: true },
            other => other,
        }
    }
}

/// Wire size of a bus notification (UDP datagram on the control net).
pub const BUS_MSG_BYTES: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_value_types() {
        let m = BusMsg::CheckpointAt {
            epoch: 3,
            at_clock_ns: 1.5e9,
            full: false,
        };
        assert_eq!(m, m);
        assert_ne!(m, BusMsg::Resume { epoch: 3 });
    }

    #[test]
    fn with_full_upgrades_notifications_only() {
        let at = BusMsg::CheckpointAt { epoch: 1, at_clock_ns: 2.0, full: false };
        assert_eq!(
            at.with_full(),
            BusMsg::CheckpointAt { epoch: 1, at_clock_ns: 2.0, full: true }
        );
        let now = BusMsg::CheckpointNow { epoch: 4, full: false };
        assert_eq!(now.with_full(), BusMsg::CheckpointNow { epoch: 4, full: true });
        let resume = BusMsg::Resume { epoch: 9 };
        assert_eq!(resume.with_full(), resume);
    }
}
