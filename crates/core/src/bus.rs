//! The checkpoint notification bus (§4.3).
//!
//! "We have implemented a fast publish-subscribe checkpoint notification
//! bus. All nodes in the system subscribe to the bus, and any node can
//! publish a notification in order to trigger an action on all nodes."
//!
//! Messages ride the Emulab control network as typed frames. The bus
//! supports both checkpoint styles the paper describes: *scheduled*
//! ("checkpoint at time t", converted to a true event time through each
//! node's NTP-disciplined clock) and *event-driven* ("checkpoint now",
//! limited by notification delivery spread).
//!
//! Every round-scoped message carries the round's [`TraceCtx`] so the
//! causal flow the coordinator mints at publication survives the hop to
//! agents and back: receivers record flow steps against the carried
//! context and echo it on their replies. The context is two `u32`s and
//! every message stays `Copy`, so propagation costs nothing on the wire
//! model ([`BUS_MSG_BYTES`] already budgets a generous datagram).

use sim::TraceCtx;

/// A notification published on the bus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BusMsg {
    /// Schedule a checkpoint at the given *local clock* reading (ns since
    /// the testbed epoch). The time is "far enough in the future to allow
    /// for propagation and processing of the notifications". `full`
    /// demands a full (non-incremental) capture: sent to a node whose
    /// incremental chain broke, e.g. one re-admitted after a crash.
    CheckpointAt {
        epoch: u64,
        at_clock_ns: f64,
        full: bool,
        trace: TraceCtx,
    },
    /// Take a checkpoint immediately on receipt (event-driven mode).
    /// `full` as in [`BusMsg::CheckpointAt`].
    CheckpointNow { epoch: u64, full: bool, trace: TraceCtx },
    /// A node acknowledges receipt of a checkpoint notification. The
    /// coordinator's failure detector re-publishes the notification (with
    /// exponential backoff) to nodes whose ack is missing, so a lost
    /// notification costs one retry round-trip instead of a wedged epoch.
    /// `trace` echoes the notification's context.
    NotifyAck { epoch: u64, trace: TraceCtx },
    /// A node finished capturing its local checkpoint. `image_bytes`
    /// reports the size of the captured state so the coordinator can
    /// account per-epoch image volume. Doubles as an implicit ack.
    /// `trace` echoes the notification's context.
    NodeDone {
        epoch: u64,
        image_bytes: u64,
        trace: TraceCtx,
    },
    /// All nodes are done: resume execution.
    Resume { epoch: u64, trace: TraceCtx },
    /// The epoch failed to assemble its barrier before the deadline:
    /// nodes roll back their local checkpoint sequence and resume through
    /// the temporal firewall as if the epoch had never been triggered.
    Abort { epoch: u64, trace: TraceCtx },
    /// A node asks the coordinator for an immediate checkpoint round
    /// (event-driven trigger raised inside a guest). Carries no context:
    /// the round it provokes mints its own.
    RequestCheckpoint,
}

impl BusMsg {
    /// Returns the notification with its full-capture flag raised;
    /// non-notification messages pass through unchanged. Used by the
    /// coordinator to upgrade the copy sent to a rejoining node.
    pub fn with_full(self) -> BusMsg {
        match self {
            BusMsg::CheckpointAt { epoch, at_clock_ns, trace, .. } => BusMsg::CheckpointAt {
                epoch,
                at_clock_ns,
                full: true,
                trace,
            },
            BusMsg::CheckpointNow { epoch, trace, .. } => BusMsg::CheckpointNow {
                epoch,
                full: true,
                trace,
            },
            other => other,
        }
    }

    /// The causal context the message carries ([`TraceCtx::NONE`] for
    /// [`BusMsg::RequestCheckpoint`]).
    pub fn trace(&self) -> TraceCtx {
        match *self {
            BusMsg::CheckpointAt { trace, .. }
            | BusMsg::CheckpointNow { trace, .. }
            | BusMsg::NotifyAck { trace, .. }
            | BusMsg::NodeDone { trace, .. }
            | BusMsg::Resume { trace, .. }
            | BusMsg::Abort { trace, .. } => trace,
            BusMsg::RequestCheckpoint => TraceCtx::NONE,
        }
    }
}

/// Wire size of a bus notification (UDP datagram on the control net).
pub const BUS_MSG_BYTES: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_value_types() {
        let m = BusMsg::CheckpointAt {
            epoch: 3,
            at_clock_ns: 1.5e9,
            full: false,
            trace: TraceCtx::for_round(1, 3),
        };
        assert_eq!(m, m);
        assert_ne!(
            m,
            BusMsg::Resume {
                epoch: 3,
                trace: TraceCtx::for_round(1, 3)
            }
        );
    }

    #[test]
    fn with_full_upgrades_notifications_only() {
        let ctx = TraceCtx::for_round(2, 1);
        let at = BusMsg::CheckpointAt {
            epoch: 1,
            at_clock_ns: 2.0,
            full: false,
            trace: ctx,
        };
        assert_eq!(
            at.with_full(),
            BusMsg::CheckpointAt {
                epoch: 1,
                at_clock_ns: 2.0,
                full: true,
                trace: ctx,
            }
        );
        let now = BusMsg::CheckpointNow {
            epoch: 4,
            full: false,
            trace: TraceCtx::NONE,
        };
        assert_eq!(
            now.with_full(),
            BusMsg::CheckpointNow {
                epoch: 4,
                full: true,
                trace: TraceCtx::NONE,
            }
        );
        let resume = BusMsg::Resume {
            epoch: 9,
            trace: TraceCtx::NONE,
        };
        assert_eq!(resume.with_full(), resume);
    }

    #[test]
    fn trace_accessor_reads_the_carried_context() {
        let ctx = TraceCtx::for_round(7, 42);
        assert_eq!(
            BusMsg::NodeDone {
                epoch: 42,
                image_bytes: 1,
                trace: ctx,
            }
            .trace(),
            ctx
        );
        assert!(BusMsg::RequestCheckpoint.trace().is_none());
    }
}
