//! Scale-lab integration: a ≥64-node epoch protocol must commit every
//! round and export byte-identical telemetry for every shard layout,
//! sequential or threaded.

use checkpoint::{build_scale_lab, ScaleConfig, ScaleOutcome};

fn run(cfg: &ScaleConfig, seed: u64, shards: u32, parallel: bool) -> ScaleOutcome {
    let mut lab = build_scale_lab(cfg, seed, shards);
    lab.engine.set_parallel(parallel);
    lab.run();
    lab.check_invariants().unwrap_or_else(|e| {
        panic!("seed {seed} shards {shards} parallel {parallel}: {e}")
    });
    lab.outcome()
}

#[test]
fn sixty_four_node_lab_is_layout_invariant() {
    // 8 groups of 8 = 64 leaf nodes (+ relays + coordinator).
    let cfg = ScaleConfig {
        epochs: 3,
        ..ScaleConfig::uniform(8, 8)
    };
    for seed in [7u64, 1009] {
        let base = run(&cfg, seed, 1, false);
        assert_eq!(base.nodes, 64);
        assert_eq!(base.epochs_committed, 3);
        assert!(base.pings > 0, "background gossip must run");
        for shards in [2u32, 4] {
            assert_eq!(run(&cfg, seed, shards, false), base, "seed {seed} S={shards}");
            assert_eq!(
                run(&cfg, seed, shards, true),
                base,
                "seed {seed} S={shards} threaded"
            );
        }
    }
}

#[test]
fn larger_lab_scales_and_stays_invariant() {
    // 16 groups of 16 = 256 nodes; one cross-layout comparison.
    let cfg = ScaleConfig {
        epochs: 2,
        ..ScaleConfig::uniform(16, 16)
    };
    let base = run(&cfg, 99, 1, false);
    assert_eq!(base.nodes, 256);
    assert_eq!(run(&cfg, 99, 4, true), base);
}

#[test]
fn gossip_can_be_disabled() {
    let cfg = ScaleConfig {
        epochs: 2,
        gossip_period: sim::SimDuration::ZERO,
        ..ScaleConfig::uniform(4, 16)
    };
    let o = run(&cfg, 5, 2, false);
    assert_eq!(o.pings, 0);
    assert_eq!(o.epochs_committed, 2);
}
