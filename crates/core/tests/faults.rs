//! Fault-injection tests for the failure-tolerant coordinator: epochs
//! under control-plane loss, stragglers, and crashes must terminate
//! (commit, abort, or degrade — never wedge), abort deterministically,
//! and leave the guests untouched when they do commit.

use std::any::Any;
use std::sync::Arc;

use checkpoint::{
    CheckpointAgent, Coordinator, DelayNodeHost, EpochOutcome, FailurePolicy, GroupId, OutPort,
    Strategy,
};
use cowstore::{BranchingStore, CowMode, GoldenImageBuilder, StoreLayout};
use dummynet::PipeConfig;
use guestos::{GuestProg, Kernel, KernelConfig, Syscall, SysRet};
use hwsim::{ControlLan, Endpoint, IfaceId, Link, NodeAddr, Pc3000};
use sim::{ComponentId, Engine, FaultPlan, SimDuration};
use vmm::{ExpPort, VmHost, VmHostConfig, VmmTuning};

// ---------------------------------------------------------------------
// Workload programs (iperf shape).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Sender {
    dst: NodeAddr,
    port: u16,
    fd: Option<guestos::prog::SockFd>,
}

impl GuestProg for Sender {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Connect {
                dst: self.dst,
                port: self.port,
            },
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Send {
                    fd,
                    bytes: 64 * 1024,
                    msg: None,
                }
            }
            SysRet::Sent(_) => Syscall::Send {
                fd: self.fd.expect("connected"),
                bytes: 64 * 1024,
                msg: None,
            },
            other => panic!("sender: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[derive(Clone)]
struct Receiver {
    port: u16,
    fd: Option<guestos::prog::SockFd>,
    listening: bool,
}

impl GuestProg for Receiver {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Listen { port: self.port },
            SysRet::Ok if !self.listening => {
                self.listening = true;
                Syscall::Accept { port: self.port }
            }
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Recv { fd, max: u64::MAX }
            }
            SysRet::Recvd { .. } => Syscall::Recv {
                fd: self.fd.expect("accepted"),
                max: u64::MAX,
            },
            other => panic!("receiver: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Rig: the coordinated-checkpoint lab plus fault knobs.
// ---------------------------------------------------------------------

struct FaultCfg {
    seed: u64,
    faults: Option<FaultPlan>,
    /// Done-report stall on host B (straggler).
    stall: Option<SimDuration>,
    policy: Option<FailurePolicy>,
    /// Subscribe host A in `GroupId(1)` and host B + delay node in
    /// `GroupId(2)` instead of putting everyone in the default group.
    split_groups: bool,
}

struct Lab {
    e: Engine,
    coord: ComponentId,
    host_a: ComponentId,
    host_b: ComponentId,
    dn: ComponentId,
}

/// hostA --link-- delaynode --link-- hostB, ops LAN + coordinator, with
/// the configured fault plan injected into the control LAN.
fn build_lab(cfg: &FaultCfg) -> Lab {
    let mut e = Engine::new(cfg.seed);
    let profile = Pc3000::default();

    let lan_id = e.add_component(Box::new(ControlLan::new(
        profile.ctrl_lan_bps,
        profile.ctrl_lan_latency,
        profile.ctrl_lan_jitter,
    )));
    if let Some(plan) = cfg.faults.clone() {
        e.with_component::<ControlLan, _>(lan_id, |l, _| l.inject_faults(plan));
    }

    let ops_addr = NodeAddr(1000);
    let mut coord_builder =
        Coordinator::builder(ops_addr, lan_id).mode(Strategy::Transparent.trigger_mode());
    if let Some(policy) = cfg.policy {
        coord_builder = coord_builder.policy(policy);
    }
    let coord = e.add_component(Box::new(coord_builder.build()));

    let addr_a = NodeAddr(1);
    let addr_b = NodeAddr(2);
    let addr_dn = NodeAddr(3);

    let mk_host =
        |e: &mut Engine, node: NodeAddr, off: i64, drift: f64, stall: Option<SimDuration>| {
            let golden = Arc::new(GoldenImageBuilder::new("fc4", 100_000, 4096, 7).build());
            let layout = StoreLayout::for_image(&golden);
            let store = BranchingStore::new(golden, CowMode::Branch, layout);
            let mut kcfg = KernelConfig::pc3000_guest(node);
            kcfg.disk_blocks = 100_000;
            kcfg.cache_blocks = 8192;
            let kernel = Kernel::new(kcfg);
            let mut agent = CheckpointAgent::new(ops_addr);
            if let Some(stall) = stall {
                agent = agent.with_done_stall(stall);
            }
            if cfg.faults.is_some() {
                agent = agent.with_done_resend(SimDuration::from_millis(100));
            }
            let host = VmHost::new(
                VmHostConfig {
                    node,
                    profile: Pc3000::default(),
                    tuning: VmmTuning::default(),
                    lan: lan_id,
                    ntp_server: ops_addr,
                    services: ops_addr,
                    clock_offset_ns: off,
                    clock_drift_ppm: drift,
                    auto_resume: false,
                    conceal_downtime: true,
                },
                store,
                kernel,
                Some(Box::new(agent)),
            );
            e.add_component(Box::new(host))
        };

    let host_a = mk_host(&mut e, addr_a, 2_000_000, 40.0, None);
    let host_b = mk_host(&mut e, addr_b, -3_000_000, -25.0, cfg.stall);
    let dn = e.add_component(Box::new(DelayNodeHost::new(
        addr_dn, lan_id, ops_addr, 1_000_000, 15.0,
    )));

    let link_a = e.add_component(Box::new(Link::new(
        Endpoint { component: host_a, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(1) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));
    let link_b = e.add_component(Box::new(Link::new(
        Endpoint { component: host_b, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(2) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));

    let shape = PipeConfig {
        bandwidth_bps: Some(1_000_000_000),
        delay: SimDuration::from_micros(100),
        plr: 0.0,
        queue_slots: 512,
    };
    e.with_component::<DelayNodeHost, _>(dn, |d, _| {
        if cfg.faults.is_some() {
            d.set_done_resend(Some(SimDuration::from_millis(100)));
        }
        d.add_path(IfaceId(1), shape, OutPort { link: link_b, end: 1 });
        d.add_path(IfaceId(2), shape, OutPort { link: link_a, end: 1 });
    });

    e.with_component::<VmHost, _>(host_a, |h, _| {
        h.add_exp_route(addr_b, ExpPort::LinkEnd { link: link_a, end: 0 });
    });
    e.with_component::<VmHost, _>(host_b, |h, _| {
        h.add_exp_route(addr_a, ExpPort::LinkEnd { link: link_b, end: 0 });
    });

    e.with_component::<ControlLan, _>(lan_id, |lan, _| {
        lan.attach(ops_addr, Endpoint { component: coord, iface: IfaceId::CONTROL });
        lan.attach(addr_a, Endpoint { component: host_a, iface: IfaceId::CONTROL });
        lan.attach(addr_b, Endpoint { component: host_b, iface: IfaceId::CONTROL });
        lan.attach(addr_dn, Endpoint { component: dn, iface: IfaceId::CONTROL });
    });
    e.with_component::<Coordinator, _>(coord, |c, _| {
        if cfg.split_groups {
            c.subscribe_in(addr_a, GroupId(1));
            c.subscribe_in(addr_b, GroupId(2));
            c.subscribe_in(addr_dn, GroupId(2));
        } else {
            c.subscribe(addr_a);
            c.subscribe(addr_b);
            c.subscribe(addr_dn);
        }
    });

    e.with_component::<VmHost, _>(host_a, |h, ctx| h.start(ctx));
    e.with_component::<VmHost, _>(host_b, |h, ctx| h.start(ctx));
    e.with_component::<DelayNodeHost, _>(dn, |d, ctx| d.start(ctx));

    Lab { e, coord, host_a, host_b, dn }
}

/// Warm-up, iperf, periodic checkpoints for `secs`, then a drain window so
/// every in-flight epoch reaches a terminal outcome.
fn run_iperf(cfg: &FaultCfg, secs: u64) -> Lab {
    let mut lab = build_lab(cfg);
    lab.e.run_for(SimDuration::from_secs(20));
    let (a, b) = (lab.host_a, lab.host_b);
    lab.e.with_component::<VmHost, _>(b, |h, _| {
        h.kernel_mut().trace.enable();
        h.kernel_mut().spawn(Box::new(Receiver {
            port: 5001,
            fd: None,
            listening: false,
        }));
    });
    lab.e.with_component::<VmHost, _>(a, |h, _| {
        h.kernel_mut().spawn(Box::new(Sender {
            dst: NodeAddr(2),
            port: 5001,
            fd: None,
        }));
    });
    lab.e.run_for(SimDuration::from_secs(2));
    let coord = lab.coord;
    lab.e.with_component::<Coordinator, _>(coord, |c, ctx| {
        c.start_periodic(ctx, SimDuration::from_secs(5))
    });
    lab.e.run_for(SimDuration::from_secs(secs));
    lab.e
        .with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    lab.e.run_for(SimDuration::from_secs(4));
    lab
}

fn unresolved(c: &Coordinator) -> usize {
    c.records.iter().filter(|r| r.outcome.is_none()).count()
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

/// The acceptance scenario: 10% control-plane loss plus a straggler node.
/// Every epoch terminates, the failure detector retries cover the loss,
/// and the committed epochs leave the guest TCP stream untouched.
#[test]
fn epochs_terminate_under_loss_and_straggler() {
    let cfg = FaultCfg {
        seed: 61,
        faults: Some(FaultPlan::new(61).with_loss(0.10)),
        stall: Some(SimDuration::from_millis(50)),
        policy: Some(FailurePolicy {
            resume_repeats: 2,
            ..FailurePolicy::default()
        }),
        split_groups: false,
    };
    let lab = run_iperf(&cfg, 25);
    let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
    assert_eq!(unresolved(coord), 0, "an epoch wedged");
    let (committed, aborted, degraded) = coord.outcome_counts();
    assert!(committed >= 4, "only {committed} commits under 10% loss");
    assert_eq!((aborted, degraded), (0, 0), "loss alone must not abort");

    // Transparency of committed epochs (§7.1 under faults).
    let a = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
    let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
    let sender = a.kernel().net_totals();
    let receiver = b.kernel().net_totals();
    assert_eq!(sender.retransmissions, 0, "retransmissions");
    assert_eq!(sender.timeouts, 0, "RTO timeouts");
    assert_eq!(sender.dup_acks, 0, "duplicate ACKs");
    assert_eq!(
        sender.window_shrinks + receiver.window_shrinks,
        0,
        "window shrinkage"
    );
    assert!(receiver.bytes_delivered > 50 << 20, "stream made progress");
    let dn = lab.e.component_ref::<DelayNodeHost>(lab.dn).unwrap();
    assert!(
        dn.stats.checkpoints >= 4,
        "the network core checkpointed through the loss"
    );
}

/// Same seed + same fault plan ⇒ the same aborts, the same world: the
/// abort path is as deterministic as the commit path.
#[test]
fn abort_path_is_deterministic() {
    let observe = |seed: u64| {
        let cfg = FaultCfg {
            seed,
            faults: Some(FaultPlan::new(17).with_loss(0.05)),
            stall: Some(SimDuration::from_secs(3)),
            policy: Some(FailurePolicy {
                resume_repeats: 2,
                ..FailurePolicy::default()
            }),
            split_groups: false,
        };
        let lab = run_iperf(&cfg, 15);
        let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
        assert_eq!(unresolved(coord), 0);
        let dn = lab.e.component_ref::<DelayNodeHost>(lab.dn).unwrap();
        assert!(dn.stats.aborted >= 1, "the delay node rolled back too");
        let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
        let a = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
        (
            coord.outcome_counts(),
            coord.total_retries(),
            a.kernel().state_fingerprint(),
            b.kernel().state_fingerprint(),
            format!("{:?}", b.kernel().trace.records()),
        )
    };
    let first = observe(62);
    assert!(first.0 .1 >= 1, "the over-deadline straggler must abort");
    assert_eq!(first, observe(62), "identical seeds, identical aborts");
    assert_ne!(observe(63).2, first.2, "different seeds diverge");
}

/// An epoch that dies entirely on the wire (100% loss) is recorded as
/// aborted by the coordinator, and — because draw-free drops consume no
/// randomness — the guests end up byte-identical to a run where the
/// checkpoint was never attempted.
#[test]
fn fully_lost_epoch_aborts_without_touching_guests() {
    let observe = |trigger: bool| {
        let cfg = FaultCfg {
            seed: 64,
            faults: Some(FaultPlan::new(5).with_loss(1.0)),
            stall: None,
            policy: None,
            split_groups: false,
        };
        let mut lab = build_lab(&cfg);
        lab.e.run_for(SimDuration::from_secs(20));
        let (a, b) = (lab.host_a, lab.host_b);
        lab.e.with_component::<VmHost, _>(b, |h, _| {
            h.kernel_mut().trace.enable();
            h.kernel_mut().spawn(Box::new(Receiver {
                port: 5001,
                fd: None,
                listening: false,
            }));
        });
        lab.e.with_component::<VmHost, _>(a, |h, _| {
            h.kernel_mut().spawn(Box::new(Sender {
                dst: NodeAddr(2),
                port: 5001,
                fd: None,
            }));
        });
        lab.e.run_for(SimDuration::from_secs(2));
        if trigger {
            let coord = lab.coord;
            lab.e
                .with_component::<Coordinator, _>(coord, |c, ctx| c.trigger(ctx));
        }
        lab.e.run_for(SimDuration::from_secs(5));
        let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
        let outcomes = coord.outcome_counts();
        let ha = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
        let hb = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
        (
            outcomes,
            ha.kernel().state_fingerprint(),
            hb.kernel().state_fingerprint(),
            format!("{:?}", hb.kernel().trace.records()),
            ha.stats.checkpoints + hb.stats.checkpoints,
        )
    };
    let attempted = observe(true);
    let untouched = observe(false);
    assert_eq!(attempted.0, (0, 1, 0), "the lost epoch aborted");
    assert_eq!(untouched.0, (0, 0, 0), "no epoch ran at all");
    assert_eq!(attempted.4, 0, "no node ever checkpointed");
    assert_eq!(attempted.1, untouched.1, "kernel A diverged");
    assert_eq!(attempted.2, untouched.2, "kernel B diverged");
    assert_eq!(attempted.3, untouched.3, "packet traces diverged");
}

/// A node whose control interface dies is excluded after the deadline:
/// the epoch commits degraded, and the survivors keep checkpointing.
#[test]
fn crashed_node_degrades_epochs_and_survivors_continue() {
    let cfg = FaultCfg {
        seed: 65,
        faults: Some(
            FaultPlan::new(65).with_crash(2, sim::SimTime::from_nanos(30_000_000_000)),
        ),
        stall: None,
        policy: Some(FailurePolicy {
            epoch_deadline: SimDuration::from_millis(500),
            resume_repeats: 2,
            ..FailurePolicy::default()
        }),
        split_groups: false,
    };
    let lab = run_iperf(&cfg, 25);
    let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
    assert_eq!(unresolved(coord), 0, "an epoch wedged");
    let (committed, aborted, degraded) = coord.outcome_counts();
    assert!(committed >= 1, "epochs before the crash commit");
    assert!(degraded >= 2, "epochs after the crash degrade");
    assert_eq!(aborted, 0, "a crashed (never-acked) node degrades, not aborts");
    assert!(
        coord
            .records
            .iter()
            .filter(|r| r.outcome == Some(EpochOutcome::Degraded))
            .all(|r| r.excluded == 1),
        "degraded epochs excluded exactly the crashed node"
    );
    let a = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
    let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
    assert!(
        a.stats.checkpoints > b.stats.checkpoints,
        "survivor kept checkpointing ({} vs {})",
        a.stats.checkpoints,
        b.stats.checkpoints
    );
}

/// Two concurrent rounds in different groups under loss + straggler:
/// group 1 (host A) is clean, group 2 (host B + delay node) carries an
/// over-deadline straggler. Each group's epochs must resolve on their own
/// — group 1 commits while group 2's concurrent round is still in flight,
/// and group 2's aborts never leak into group 1's records.
#[test]
fn concurrent_group_rounds_fail_independently() {
    let cfg = FaultCfg {
        seed: 67,
        faults: Some(FaultPlan::new(67).with_loss(0.10)),
        // Host B stalls its done report past the 2 s epoch deadline, so
        // every group-2 round aborts; group 1 never sees that straggler.
        stall: Some(SimDuration::from_secs(3)),
        policy: Some(FailurePolicy {
            resume_repeats: 2,
            ..FailurePolicy::default()
        }),
        split_groups: true,
    };
    let mut lab = build_lab(&cfg);
    lab.e.run_for(SimDuration::from_secs(20));
    let (a, b) = (lab.host_a, lab.host_b);
    lab.e.with_component::<VmHost, _>(b, |h, _| {
        h.kernel_mut().spawn(Box::new(Receiver {
            port: 5001,
            fd: None,
            listening: false,
        }));
    });
    lab.e.with_component::<VmHost, _>(a, |h, _| {
        h.kernel_mut().spawn(Box::new(Sender {
            dst: NodeAddr(2),
            port: 5001,
            fd: None,
        }));
    });
    lab.e.run_for(SimDuration::from_secs(2));

    // Three rounds of simultaneous triggers: both groups get a round at
    // the same instant, then 6 s for each to reach a terminal outcome.
    let coord = lab.coord;
    for _ in 0..3 {
        lab.e.with_component::<Coordinator, _>(coord, |c, ctx| {
            c.trigger_in(ctx, GroupId(1));
            c.trigger_in(ctx, GroupId(2));
        });
        lab.e.run_for(SimDuration::from_secs(6));
    }

    let c = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
    assert_eq!(unresolved(c), 0, "an epoch wedged");
    let g1: Vec<_> = c.records.iter().filter(|r| r.group == GroupId(1)).collect();
    let g2: Vec<_> = c.records.iter().filter(|r| r.group == GroupId(2)).collect();
    assert_eq!((g1.len(), g2.len()), (3, 3), "three rounds per group");

    // The clean group commits every round; the straggler group aborts
    // every round. Neither outcome contaminates the other's records.
    assert_eq!(
        c.outcome_counts_in(GroupId(1)),
        (3, 0, 0),
        "group 1 must commit despite group 2's straggler"
    );
    assert_eq!(
        c.outcome_counts_in(GroupId(2)),
        (0, 3, 0),
        "group 2's over-deadline straggler must abort every round"
    );

    // The rounds really were concurrent: each pair was published at the
    // same instant, and group 1 resumed while group 2's round was still
    // unresolved (group 2 holds until its 2 s deadline).
    for (r1, r2) in g1.iter().zip(&g2) {
        assert_eq!(r1.published, r2.published, "triggers fired together");
        let resumed = r1.resumed.expect("group 1 committed");
        assert!(
            resumed.saturating_duration_since(r1.published) < SimDuration::from_secs(2),
            "group 1 resolved before any deadline"
        );
    }
    // Degraded never appears in either group and the totals line up with
    // the per-group views.
    assert_eq!(c.outcome_counts(), (3, 3, 0));
}

/// The full loss × straggler matrix (CI `--features props`): every cell
/// terminates, and cells whose epochs all committed are transparent.
#[cfg(feature = "props")]
#[test]
fn fault_matrix_terminates_everywhere() {
    for &loss in &[0.0, 0.05, 0.10, 0.20] {
        for &stall_ms in &[0u64, 50, 3000] {
            let cfg = FaultCfg {
                seed: 66,
                faults: Some(FaultPlan::new(66).with_loss(loss)),
                stall: (stall_ms > 0).then(|| SimDuration::from_millis(stall_ms)),
                policy: Some(FailurePolicy {
                    resume_repeats: 2,
                    ..FailurePolicy::default()
                }),
                split_groups: false,
            };
            let lab = run_iperf(&cfg, 15);
            let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
            assert_eq!(
                unresolved(coord),
                0,
                "epoch wedged at loss {loss} stall {stall_ms} ms"
            );
            let (committed, aborted, degraded) = coord.outcome_counts();
            assert!(
                committed + aborted + degraded > 0,
                "no epochs ran at loss {loss} stall {stall_ms} ms"
            );
            if stall_ms >= 3000 {
                assert!(aborted >= 1, "over-deadline straggler must abort");
            }
            if aborted == 0 && degraded == 0 {
                let a = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
                let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
                let s = a.kernel().net_totals();
                let r = b.kernel().net_totals();
                assert_eq!(
                    s.retransmissions + s.timeouts + s.dup_acks + s.window_shrinks + r.window_shrinks,
                    0,
                    "committed epochs disturbed the guest at loss {loss} stall {stall_ms} ms"
                );
            }
        }
    }
}
