//! End-to-end coordinated-checkpoint tests: two VM hosts joined through a
//! delay node, a coordinator on the ops LAN, a bulk TCP stream under
//! periodic checkpoints. These assert the paper's §7.1 transparency
//! metrics and that the baselines measurably violate them.

use std::any::Any;
use std::sync::Arc;

use checkpoint::{CheckpointAgent, Coordinator, DelayNodeHost, OutPort, Strategy};
use cowstore::{BranchingStore, CowMode, GoldenImageBuilder, StoreLayout};
use dummynet::PipeConfig;
use guestos::{GuestProg, Kernel, KernelConfig, Syscall, SysRet};
use hwsim::{ControlLan, Endpoint, IfaceId, Link, NodeAddr, Pc3000};
use sim::{ComponentId, Engine, SimDuration};
use vmm::{ExpPort, VmHost, VmHostConfig, VmmTuning};

// ---------------------------------------------------------------------
// Workload programs (iperf shape).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Sender {
    dst: NodeAddr,
    port: u16,
    fd: Option<guestos::prog::SockFd>,
}

impl GuestProg for Sender {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Connect {
                dst: self.dst,
                port: self.port,
            },
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Send {
                    fd,
                    bytes: 64 * 1024,
                    msg: None,
                }
            }
            SysRet::Sent(_) => Syscall::Send {
                fd: self.fd.expect("connected"),
                bytes: 64 * 1024,
                msg: None,
            },
            other => panic!("sender: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[derive(Clone)]
struct Receiver {
    port: u16,
    fd: Option<guestos::prog::SockFd>,
    listening: bool,
}

impl GuestProg for Receiver {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Listen { port: self.port },
            SysRet::Ok if !self.listening => {
                self.listening = true;
                Syscall::Accept { port: self.port }
            }
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Recv { fd, max: u64::MAX }
            }
            SysRet::Recvd { .. } => Syscall::Recv {
                fd: self.fd.expect("accepted"),
                max: u64::MAX,
            },
            other => panic!("receiver: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Testbed assembly.
// ---------------------------------------------------------------------

struct Lab {
    e: Engine,
    coord: ComponentId,
    host_a: ComponentId,
    host_b: ComponentId,
    dn: ComponentId,
}

/// Builds: hostA --link-- delaynode --link-- hostB, ops LAN + coordinator.
fn build_lab(seed: u64, strategy: Strategy) -> Lab {
    let mut e = Engine::new(seed);
    let profile = Pc3000::default();

    let lan_id = e.add_component(Box::new(ControlLan::new(
        profile.ctrl_lan_bps,
        profile.ctrl_lan_latency,
        profile.ctrl_lan_jitter,
    )));

    let ops_addr = NodeAddr(1000);
    let coord = e.add_component(Box::new(
        Coordinator::builder(ops_addr, lan_id)
            .mode(strategy.trigger_mode())
            .build(),
    ));

    let addr_a = NodeAddr(1);
    let addr_b = NodeAddr(2);
    let addr_dn = NodeAddr(3);

    let mk_host = |e: &mut Engine, node: NodeAddr, off: i64, drift: f64| {
        let golden = Arc::new(GoldenImageBuilder::new("fc4", 100_000, 4096, 7).build());
        let layout = StoreLayout::for_image(&golden);
        let store = BranchingStore::new(golden, CowMode::Branch, layout);
        let mut kcfg = KernelConfig::pc3000_guest(node);
        kcfg.disk_blocks = 100_000;
        kcfg.cache_blocks = 8192;
        let kernel = Kernel::new(kcfg);
        let agent = CheckpointAgent::new(ops_addr)
            .with_processing_jitter(strategy.processing_jitter_mean());
        let host = VmHost::new(
            VmHostConfig {
                node,
                profile: Pc3000::default(),
                tuning: VmmTuning::default(),
                lan: lan_id,
                ntp_server: ops_addr,
            services: ops_addr,
                clock_offset_ns: off,
                clock_drift_ppm: drift,
                auto_resume: false,
                conceal_downtime: strategy.conceals_downtime(),
            },
            store,
            kernel,
            Some(Box::new(agent)),
        );
        e.add_component(Box::new(host))
    };

    let host_a = mk_host(&mut e, addr_a, 2_000_000, 40.0);
    let host_b = mk_host(&mut e, addr_b, -3_000_000, -25.0);
    let dn = e.add_component(Box::new(DelayNodeHost::new(
        addr_dn, lan_id, ops_addr, 1_000_000, 15.0,
    )));

    // Experiment links: A <-> DN (iface 1), B <-> DN (iface 2).
    let link_a = e.add_component(Box::new(Link::new(
        Endpoint { component: host_a, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(1) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));
    let link_b = e.add_component(Box::new(Link::new(
        Endpoint { component: host_b, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(2) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));

    // Delay-node pipes: 1 Gbps, 100 µs each way (the "1 Gbps network").
    let shape = PipeConfig {
        bandwidth_bps: Some(1_000_000_000),
        delay: SimDuration::from_micros(100),
        plr: 0.0,
        queue_slots: 512,
    };
    e.with_component::<DelayNodeHost, _>(dn, |d, _| {
        d.add_path(IfaceId(1), shape, OutPort { link: link_b, end: 1 });
        d.add_path(IfaceId(2), shape, OutPort { link: link_a, end: 1 });
    });

    // Host routing: everything goes out the experiment link.
    e.with_component::<VmHost, _>(host_a, |h, _| {
        h.add_exp_route(addr_b, ExpPort::LinkEnd { link: link_a, end: 0 });
    });
    e.with_component::<VmHost, _>(host_b, |h, _| {
        h.add_exp_route(addr_a, ExpPort::LinkEnd { link: link_b, end: 0 });
    });

    // Control LAN attachment + bus subscription.
    e.with_component::<ControlLan, _>(lan_id, |lan, _| {
        lan.attach(ops_addr, Endpoint { component: coord, iface: IfaceId::CONTROL });
        lan.attach(addr_a, Endpoint { component: host_a, iface: IfaceId::CONTROL });
        lan.attach(addr_b, Endpoint { component: host_b, iface: IfaceId::CONTROL });
        lan.attach(addr_dn, Endpoint { component: dn, iface: IfaceId::CONTROL });
    });
    e.with_component::<Coordinator, _>(coord, |c, _| {
        c.subscribe(addr_a);
        c.subscribe(addr_b);
        c.subscribe(addr_dn);
    });

    // Boot.
    e.with_component::<VmHost, _>(host_a, |h, ctx| h.start(ctx));
    e.with_component::<VmHost, _>(host_b, |h, ctx| h.start(ctx));
    e.with_component::<DelayNodeHost, _>(dn, |d, ctx| d.start(ctx));

    Lab {
        e,
        coord,
        host_a,
        host_b,
        dn,
    }
}

/// Runs the iperf workload with periodic checkpoints; returns the lab.
fn run_iperf_with_checkpoints(seed: u64, strategy: Strategy, secs: u64) -> Lab {
    let mut lab = build_lab(seed, strategy);
    // Let NTP take its boot step and settle briefly.
    lab.e.run_for(SimDuration::from_secs(20));
    let (a, b) = (lab.host_a, lab.host_b);
    lab.e.with_component::<VmHost, _>(b, |h, _| {
        h.kernel_mut().trace.enable();
        h.kernel_mut().spawn(Box::new(Receiver {
            port: 5001,
            fd: None,
            listening: false,
        }));
    });
    lab.e.with_component::<VmHost, _>(a, |h, _| {
        h.kernel_mut().spawn(Box::new(Sender {
            dst: NodeAddr(2),
            port: 5001,
            fd: None,
        }));
    });
    // 2 s of steady state, then checkpoints every 5 s.
    lab.e.run_for(SimDuration::from_secs(2));
    let coord = lab.coord;
    lab.e
        .with_component::<Coordinator, _>(coord, |c, ctx| c.start_periodic(ctx, SimDuration::from_secs(5)));
    lab.e.run_for(SimDuration::from_secs(secs));
    lab
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[test]
fn transparent_checkpoints_leave_tcp_undisturbed() {
    let lab = run_iperf_with_checkpoints(21, Strategy::Transparent, 25);
    let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
    assert!(coord.completed() >= 4, "completed {} rounds", coord.completed());

    let a = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
    let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
    assert!(a.stats.checkpoints >= 4);
    assert!(b.stats.checkpoints >= 4);

    // §7.1: "checkpoints caused no retransmissions, double
    // acknowledgements, or changes of window size".
    let sender = a.kernel().net_totals();
    let receiver = b.kernel().net_totals();
    assert_eq!(sender.retransmissions, 0, "retransmissions");
    assert_eq!(sender.timeouts, 0, "RTO timeouts");
    assert_eq!(sender.dup_acks, 0, "duplicate ACKs");
    assert_eq!(sender.window_shrinks + receiver.window_shrinks, 0, "window shrinkage");
    assert!(receiver.bytes_delivered > 100 << 20, "stream made progress: {}", receiver.bytes_delivered);

    let dn = lab.e.component_ref::<DelayNodeHost>(lab.dn).unwrap();
    assert!(dn.stats.checkpoints >= 4, "delay node checkpointed too");
}

#[test]
fn transparent_checkpoint_gaps_are_bounded_by_clock_sync() {
    let lab = run_iperf_with_checkpoints(22, Strategy::Transparent, 25);
    let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
    let gaps = b.kernel().trace.rx_data_gaps_ns();
    assert!(gaps.len() > 100_000, "trace captured {} gaps", gaps.len());
    let max_gap = *gaps.iter().max().unwrap();
    // Fig 6: checkpoint gaps are hundreds of µs up to a few ms (clock-sync
    // error), not the tens-of-ms real downtime.
    assert!(
        max_gap < 10_000_000,
        "max inter-packet gap {} µs — downtime leaked",
        max_gap / 1000
    );
    assert!(
        max_gap > 100_000,
        "max gap only {} µs — no checkpoint effect at all?",
        max_gap / 1000
    );
}

#[test]
fn non_concealing_baseline_leaks_downtime_into_guest_time() {
    // The conventional stop-and-copy checkpoint: guests observe the real
    // downtime as a jump in time. The receiver's packet trace (stamped in
    // guest time) shows inter-packet gaps of the order of the downtime,
    // where the transparent mechanism shows only the sync error.
    let gap = |strategy: Strategy| {
        let lab = run_iperf_with_checkpoints(23, strategy, 25);
        let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
        *b.kernel().trace.rx_data_gaps_ns().iter().max().unwrap()
    };
    let leaked = gap(Strategy::NonConcealing);
    let transparent = gap(Strategy::Transparent);
    // The local downtime (dirty-set capture + barrier) is a few tens of
    // ms; non-concealing leaks all of it into guest time.
    assert!(
        leaked > 15_000_000,
        "non-concealing max gap only {} µs — downtime should be visible",
        leaked / 1000
    );
    assert!(
        transparent < 10_000_000,
        "transparent max gap {} µs",
        transparent / 1000
    );
    assert!(leaked > 10 * transparent);
}

#[test]
fn event_driven_mode_has_larger_suspend_skew_than_scheduled() {
    // Measure skew via the receiver's worst inter-packet gap.
    let worst_gap = |strategy: Strategy, seed: u64| {
        let lab = run_iperf_with_checkpoints(seed, strategy, 25);
        let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
        *b.kernel().trace.rx_data_gaps_ns().iter().max().unwrap()
    };
    let scheduled = worst_gap(Strategy::Transparent, 24);
    let event_driven = worst_gap(Strategy::EventDriven, 24);
    assert!(
        event_driven > scheduled,
        "event-driven skew ({event_driven} ns) should exceed scheduled ({scheduled} ns)"
    );
}

#[test]
fn deterministic_replay_same_seed_same_trace() {
    let totals = |seed: u64| {
        let lab = run_iperf_with_checkpoints(seed, Strategy::Transparent, 15);
        let b = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
        (
            b.kernel().net_totals().bytes_delivered,
            b.kernel().state_fingerprint(),
        )
    };
    assert_eq!(totals(42), totals(42), "identical seeds, identical worlds");
    assert_ne!(totals(42), totals(43), "different seeds diverge");
}


/// §4.3's event-driven trigger raised from *inside* a guest: a program
/// hits a watchpoint-style condition, requests a checkpoint, and the
/// whole experiment (both hosts and the delay node) checkpoints.
#[test]
fn guest_triggered_checkpoint_reaches_everyone() {
    use guestos::prog::FileId;

    /// Writes data; when it crosses a threshold, pulls the trigger.
    #[derive(Clone)]
    struct Watchpoint {
        wrote: u64,
        fired: bool,
        phase: u8,
    }
    impl GuestProg for Watchpoint {
        fn step(&mut self, ret: SysRet) -> Syscall {
            if matches!(ret, SysRet::Err(e) if e != "exists") {
                panic!("watchpoint prog error");
            }
            match self.phase {
                0 => {
                    self.phase = 1;
                    Syscall::Create { file: FileId(5) }
                }
                1 => {
                    if self.wrote >= 4 << 20 && !self.fired {
                        self.fired = true;
                        return Syscall::TriggerCheckpoint;
                    }
                    if self.wrote >= 8 << 20 {
                        return Syscall::Exit;
                    }
                    let off = self.wrote;
                    self.wrote += 256 * 1024;
                    Syscall::Write {
                        file: FileId(5),
                        offset: off,
                        bytes: 256 * 1024,
                    }
                }
                _ => Syscall::Exit,
            }
        }
        fn clone_box(&self) -> Box<dyn GuestProg> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    let mut lab = build_lab(31, Strategy::Transparent);
    lab.e.run_for(SimDuration::from_secs(10));
    let a = lab.host_a;
    lab.e.with_component::<VmHost, _>(a, |h, _| {
        h.kernel_mut().spawn(Box::new(Watchpoint {
            wrote: 0,
            fired: false,
            phase: 0,
        }));
    });
    lab.e.run_for(SimDuration::from_secs(10));

    let coord = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
    assert_eq!(coord.completed(), 1, "the guest trigger ran one round");
    let ha = lab.e.component_ref::<VmHost>(lab.host_a).unwrap();
    let hb = lab.e.component_ref::<VmHost>(lab.host_b).unwrap();
    let dn = lab.e.component_ref::<DelayNodeHost>(lab.dn).unwrap();
    assert_eq!(ha.stats.checkpoints, 1);
    assert_eq!(hb.stats.checkpoints, 1, "the other node checkpointed too");
    assert_eq!(dn.stats.checkpoints, 1, "the network core checkpointed too");
}
