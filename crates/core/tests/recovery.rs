//! Coordinator crash/recovery tests: a coordinator that dies at any of
//! its four buggify crash points must replay its epoch WAL on restart,
//! classify the in-flight round correctly, and leave no epoch wedged —
//! and the whole crash/recover/abort dance must replay byte-identically
//! from the seed. Also covers the delay-node suspend watchdog, which
//! releases an orphaned Dummynet suspension when the coordinator stays
//! down past the resume it owed.

use std::any::Any;
use std::sync::Arc;

use checkpoint::{
    CheckpointAgent, Coordinator, DelayNodeHost, FailurePolicy, OutPort, ShadowEpochState,
    Strategy, Wal,
};
use cowstore::{BranchingStore, CowMode, GoldenImageBuilder, StoreLayout};
use dummynet::PipeConfig;
use guestos::{GuestProg, Kernel, KernelConfig, Syscall, SysRet};
use hwsim::{ControlLan, Endpoint, IfaceId, Link, NodeAddr, Pc3000};
use sim::buggify::points;
use sim::{ComponentId, Engine, SimDuration};
use vmm::{ExpPort, VmHost, VmHostConfig, VmmTuning};

// ---------------------------------------------------------------------
// Workload programs (iperf shape), same as tests/faults.rs.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Sender {
    dst: NodeAddr,
    port: u16,
    fd: Option<guestos::prog::SockFd>,
}

impl GuestProg for Sender {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Connect {
                dst: self.dst,
                port: self.port,
            },
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Send {
                    fd,
                    bytes: 64 * 1024,
                    msg: None,
                }
            }
            SysRet::Sent(_) => Syscall::Send {
                fd: self.fd.expect("connected"),
                bytes: 64 * 1024,
                msg: None,
            },
            other => panic!("sender: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[derive(Clone)]
struct Receiver {
    port: u16,
    fd: Option<guestos::prog::SockFd>,
    listening: bool,
}

impl GuestProg for Receiver {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Listen { port: self.port },
            SysRet::Ok if !self.listening => {
                self.listening = true;
                Syscall::Accept { port: self.port }
            }
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Recv { fd, max: u64::MAX }
            }
            SysRet::Recvd { .. } => Syscall::Recv {
                fd: self.fd.expect("accepted"),
                max: u64::MAX,
            },
            other => panic!("receiver: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Rig: the coordinated-checkpoint lab with a WAL-backed coordinator.
// ---------------------------------------------------------------------

struct Lab {
    e: Engine,
    coord: ComponentId,
    host_a: ComponentId,
    host_b: ComponentId,
    dn: ComponentId,
}

fn build_lab(seed: u64, watchdog: Option<SimDuration>) -> Lab {
    let mut e = Engine::new(seed);
    let profile = Pc3000::default();

    let lan_id = e.add_component(Box::new(ControlLan::new(
        profile.ctrl_lan_bps,
        profile.ctrl_lan_latency,
        profile.ctrl_lan_jitter,
    )));

    let ops_addr = NodeAddr(1000);
    let coord = e.add_component(Box::new(
        Coordinator::builder(ops_addr, lan_id)
            .mode(Strategy::Transparent.trigger_mode())
            .policy(FailurePolicy::default())
            .wal(Wal::in_memory())
            .build(),
    ));

    let addr_a = NodeAddr(1);
    let addr_b = NodeAddr(2);
    let addr_dn = NodeAddr(3);

    let mk_host = |e: &mut Engine, node: NodeAddr, off: i64, drift: f64| {
        let golden = Arc::new(GoldenImageBuilder::new("fc4", 100_000, 4096, 7).build());
        let layout = StoreLayout::for_image(&golden);
        let store = BranchingStore::new(golden, CowMode::Branch, layout);
        let mut kcfg = KernelConfig::pc3000_guest(node);
        kcfg.disk_blocks = 100_000;
        kcfg.cache_blocks = 8192;
        let kernel = Kernel::new(kcfg);
        let agent = CheckpointAgent::new(ops_addr);
        let host = VmHost::new(
            VmHostConfig {
                node,
                profile: Pc3000::default(),
                tuning: VmmTuning::default(),
                lan: lan_id,
                ntp_server: ops_addr,
                services: ops_addr,
                clock_offset_ns: off,
                clock_drift_ppm: drift,
                auto_resume: false,
                conceal_downtime: true,
            },
            store,
            kernel,
            Some(Box::new(agent)),
        );
        e.add_component(Box::new(host))
    };

    let host_a = mk_host(&mut e, addr_a, 2_000_000, 40.0);
    let host_b = mk_host(&mut e, addr_b, -3_000_000, -25.0);
    let dn = e.add_component(Box::new(DelayNodeHost::new(
        addr_dn, lan_id, ops_addr, 1_000_000, 15.0,
    )));

    let link_a = e.add_component(Box::new(Link::new(
        Endpoint { component: host_a, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(1) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));
    let link_b = e.add_component(Box::new(Link::new(
        Endpoint { component: host_b, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(2) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));

    let shape = PipeConfig {
        bandwidth_bps: Some(1_000_000_000),
        delay: SimDuration::from_micros(100),
        plr: 0.0,
        queue_slots: 512,
    };
    e.with_component::<DelayNodeHost, _>(dn, |d, _| {
        d.set_suspend_watchdog(watchdog);
        d.add_path(IfaceId(1), shape, OutPort { link: link_b, end: 1 });
        d.add_path(IfaceId(2), shape, OutPort { link: link_a, end: 1 });
    });

    e.with_component::<VmHost, _>(host_a, |h, _| {
        h.add_exp_route(addr_b, ExpPort::LinkEnd { link: link_a, end: 0 });
    });
    e.with_component::<VmHost, _>(host_b, |h, _| {
        h.add_exp_route(addr_a, ExpPort::LinkEnd { link: link_b, end: 0 });
    });

    e.with_component::<ControlLan, _>(lan_id, |lan, _| {
        lan.attach(ops_addr, Endpoint { component: coord, iface: IfaceId::CONTROL });
        lan.attach(addr_a, Endpoint { component: host_a, iface: IfaceId::CONTROL });
        lan.attach(addr_b, Endpoint { component: host_b, iface: IfaceId::CONTROL });
        lan.attach(addr_dn, Endpoint { component: dn, iface: IfaceId::CONTROL });
    });
    e.with_component::<Coordinator, _>(coord, |c, _| {
        c.subscribe(addr_a);
        c.subscribe(addr_b);
        c.subscribe(addr_dn);
    });

    e.with_component::<VmHost, _>(host_a, |h, ctx| h.start(ctx));
    e.with_component::<VmHost, _>(host_b, |h, ctx| h.start(ctx));
    e.with_component::<DelayNodeHost, _>(dn, |d, ctx| d.start(ctx));

    Lab { e, coord, host_a, host_b, dn }
}

/// Boots the lab, spawns the iperf pair, and starts periodic epochs.
fn warm_up(lab: &mut Lab) {
    lab.e.run_for(SimDuration::from_secs(20));
    let (a, b) = (lab.host_a, lab.host_b);
    lab.e.with_component::<VmHost, _>(b, |h, _| {
        h.kernel_mut().spawn(Box::new(Receiver {
            port: 5001,
            fd: None,
            listening: false,
        }));
    });
    lab.e.with_component::<VmHost, _>(a, |h, _| {
        h.kernel_mut().spawn(Box::new(Sender {
            dst: NodeAddr(2),
            port: 5001,
            fd: None,
        }));
    });
    lab.e.run_for(SimDuration::from_secs(2));
    let coord = lab.coord;
    lab.e.with_component::<Coordinator, _>(coord, |c, ctx| {
        c.start_periodic(ctx, SimDuration::from_secs(5))
    });
}

fn unresolved(c: &Coordinator) -> usize {
    c.records.iter().filter(|r| r.outcome.is_none()).count()
}

/// Drives the lab with `point` forced to fire on every evaluation for
/// 15 s of epochs, then clears the force and runs 12 s clean so the
/// recovered coordinator can prove it still commits. Returns a full
/// observation tuple for the determinism comparison.
fn observe_forced_crash(point: &str, seed: u64) -> (u64, u64, (u64, u64, u64), String, String) {
    let mut lab = build_lab(seed, None);
    warm_up(&mut lab);
    lab.e.buggify().force(point, 1.0);
    lab.e.run_for(SimDuration::from_secs(15));
    lab.e.buggify().clear_force(point);
    lab.e.run_for(SimDuration::from_secs(12));
    let coord = lab.coord;
    lab.e
        .with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    lab.e.run_for(SimDuration::from_secs(4));

    let c = lab.e.component_ref::<Coordinator>(lab.coord).unwrap();
    assert!(!c.is_crashed(), "{point}: coordinator stuck down");
    assert_eq!(
        c.crash_count(),
        c.recovery_count(),
        "{point}: a crash without a matching recovery"
    );
    assert_eq!(unresolved(c), 0, "{point}: an epoch wedged");

    let events = lab.e.telemetry().trace_events();
    let violations = ShadowEpochState::replay(&events);
    assert!(
        violations.is_empty(),
        "{point}: shadow violations after recovery: {violations:?}"
    );

    let wal_dump = format!("{:?}", c.wal().unwrap().replay());
    let records = format!("{:?}", c.records);
    (c.crash_count(), c.recovery_count(), c.outcome_counts(), wal_dump, records)
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

/// Forced crash at each of the four buggify points: every crash is
/// followed by a recovery, no epoch wedges, the shadow checker stays
/// clean, and once the fault is lifted the coordinator commits again.
#[test]
fn forced_crash_at_every_point_recovers_without_wedging() {
    for point in [
        points::COORD_CRASH_PRE_NOTIFY,
        points::COORD_CRASH_MID_ACKS,
        points::COORD_CRASH_PRE_RESUME,
        points::COORD_CRASH_POST_COMMIT,
    ] {
        let (crashes, recoveries, (committed, _, _), wal_dump, _) =
            observe_forced_crash(point, 71);
        assert!(crashes >= 1, "{point}: the forced point never fired");
        assert_eq!(crashes, recoveries, "{point}");
        assert!(
            committed >= 1,
            "{point}: no commits after the fault was lifted"
        );
        assert!(!wal_dump.is_empty(), "{point}: empty WAL after a run");
    }
}

/// WAL replay determinism: crash at each point, and the recovered
/// coordinator state (records + WAL contents + outcome tallies) is
/// byte-identical across two same-seed runs.
#[test]
fn recovery_is_byte_identical_across_same_seed_runs() {
    for point in [
        points::COORD_CRASH_PRE_NOTIFY,
        points::COORD_CRASH_MID_ACKS,
        points::COORD_CRASH_PRE_RESUME,
        points::COORD_CRASH_POST_COMMIT,
    ] {
        let first = observe_forced_crash(point, 72);
        let second = observe_forced_crash(point, 72);
        assert_eq!(first, second, "{point}: same seed diverged");
    }
}

/// The mid-acks crash is the interesting recovery class: some nodes
/// acked, nobody finished, so restart must abort the round and mark
/// the mid-flight participants for a full (non-incremental) next
/// checkpoint rather than trusting half-captured state.
#[test]
fn mid_acks_crash_aborts_and_forces_full_round() {
    let (_, _, _, wal_dump, _) = observe_forced_crash(points::COORD_CRASH_MID_ACKS, 73);
    assert!(
        wal_dump.contains("Abort"),
        "mid-acks recovery must abort the open round: {wal_dump}"
    );
}

/// Orphaned-suspension watchdog: the coordinator dies while the delay
/// node sits suspended awaiting its resume. The watchdog releases the
/// suspension (counting it as an abort), traffic flows again during
/// the outage, and the recovered coordinator's eventual abort of that
/// epoch is idempotent.
#[test]
fn watchdog_releases_suspension_orphaned_by_coordinator_crash() {
    let mut lab = build_lab(74, Some(SimDuration::from_secs(2)));
    warm_up(&mut lab);

    // Step until the delay node is mid-checkpoint (Dummynet suspended),
    // then kill the coordinator for far longer than the watchdog.
    let (coord, dn) = (lab.coord, lab.dn);
    let mut suspended = false;
    for _ in 0..600 {
        lab.e.run_for(SimDuration::from_millis(50));
        let d = lab.e.component_ref::<DelayNodeHost>(dn).unwrap();
        if d.dummynet().suspended() {
            suspended = true;
            break;
        }
    }
    assert!(suspended, "no round ever suspended the delay node");
    lab.e.with_component::<Coordinator, _>(coord, |c, ctx| {
        c.crash(ctx, SimDuration::from_secs(10));
    });

    // Watchdog (2 s) fires well before the restart (10 s).
    lab.e.run_for(SimDuration::from_secs(5));
    {
        let d = lab.e.component_ref::<DelayNodeHost>(dn).unwrap();
        assert_eq!(
            d.stats.watchdog_releases, 1,
            "the watchdog did not release the orphaned suspension"
        );
        assert!(
            !d.dummynet().suspended(),
            "delay node still suspended during the outage"
        );
        let c = lab.e.component_ref::<Coordinator>(coord).unwrap();
        assert!(c.is_crashed(), "coordinator restarted too early");
    }

    // Restart, recover, and keep checkpointing.
    lab.e.run_for(SimDuration::from_secs(20));
    lab.e
        .with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    lab.e.run_for(SimDuration::from_secs(4));

    let c = lab.e.component_ref::<Coordinator>(coord).unwrap();
    assert_eq!(c.recovery_count(), 1);
    assert_eq!(unresolved(c), 0, "an epoch wedged across the outage");
    let (committed, _, _) = c.outcome_counts();
    assert!(committed >= 1, "no commits after recovery");
    let d = lab.e.component_ref::<DelayNodeHost>(dn).unwrap();
    assert_eq!(d.stats.watchdog_releases, 1, "watchdog fired on a live round");
    assert!(d.stats.checkpoints >= 1, "delay node never checkpointed again");

    let events = lab.e.telemetry().trace_events();
    let violations = ShadowEpochState::replay(&events);
    assert!(violations.is_empty(), "shadow violations: {violations:?}");
}

/// A quiet watchdog: on a healthy run where every resume arrives, the
/// armed watchdog must never fire.
#[test]
fn watchdog_is_silent_on_healthy_rounds() {
    let mut lab = build_lab(75, Some(SimDuration::from_secs(2)));
    warm_up(&mut lab);
    lab.e.run_for(SimDuration::from_secs(20));
    let coord = lab.coord;
    lab.e
        .with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    lab.e.run_for(SimDuration::from_secs(4));

    let d = lab.e.component_ref::<DelayNodeHost>(lab.dn).unwrap();
    assert!(d.stats.checkpoints >= 3, "rounds ran");
    assert_eq!(d.stats.watchdog_releases, 0, "spurious watchdog release");
    let c = lab.e.component_ref::<Coordinator>(coord).unwrap();
    assert_eq!(c.crash_count(), 0);
    assert_eq!(unresolved(c), 0);
}
