//! Randomized property tests: shaping conserves packets, preserves FIFO
//! order, and checkpoints (suspend → serialize → restore/resume) never
//! lose, duplicate, or reorder anything.
//!
//! Hand-rolled case generation driven by `SimRng`; gated behind the
//! `props` feature. Generation is deterministic per case index.
#![cfg(feature = "props")]

use dummynet::{Dummynet, EnqueueOutcome, PipeConfig, PipeId};
use hwsim::{Frame, NodeAddr};
use sim::{SimDuration, SimRng, SimTime};

const CASES: u64 = 128;

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

fn tagged(tag: u32) -> Frame {
    Frame::new(NodeAddr(1), NodeAddr(2), 400, tag)
}

fn tag_of(f: &Frame) -> u32 {
    *f.payload::<u32>().expect("tagged frame")
}

/// With no loss and a large queue, every packet comes out exactly once,
/// in order, shaped no earlier than bandwidth+delay allow.
#[test]
fn conservation_and_fifo() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0xF1F0, case as u32);
        let n = g.range_u64(1, 80) as usize;
        let mut arrivals: Vec<u64> = (0..n).map(|_| g.range_u64(0, 50_000)).collect();
        arrivals.sort_unstable();
        let bw_kbps = g.range_u64(1_000, 1_000_000);
        let delay_us = g.range_u64(0, 5_000);

        let mut dn = Dummynet::new();
        let p = dn.add_pipe(PipeConfig {
            bandwidth_bps: Some(bw_kbps * 1000),
            delay: SimDuration::from_micros(delay_us),
            plr: 0.0,
            queue_slots: 10_000,
        });
        let mut rng = SimRng::from_seed(1);
        for (i, &at) in arrivals.iter().enumerate() {
            let out = dn.enqueue(t(at), p, tagged(i as u32), &mut rng);
            let accepted = matches!(out, EnqueueOutcome::Queued { .. });
            assert!(accepted, "case {case}");
        }
        let mut got = Vec::new();
        let mut guard = 0;
        while let Some(next) = dn.next_ready() {
            guard += 1;
            assert!(guard < 10_000, "case {case}");
            for (_, f) in dn.pop_ready(next) {
                got.push(tag_of(&f));
            }
        }
        assert_eq!(got.len(), arrivals.len(), "case {case}: conservation");
        let sorted: Vec<u32> = (0..arrivals.len() as u32).collect();
        assert_eq!(got, sorted, "case {case}: FIFO order");
    }
}

/// A suspend/serialize/resume cycle at an arbitrary point preserves
/// exactly-once, in-order delivery: packets enqueued before, during
/// (logged in-flight), and after the checkpoint all come out once, in
/// arrival order.
#[test]
fn checkpoint_preserves_delivery_order() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0x0C4E_C0DE, case as u32);
        let n = g.range_u64(1, 60) as usize;
        let mut arrivals: Vec<u64> = (0..n).map(|_| g.range_u64(0, 20_000)).collect();
        arrivals.sort_unstable();
        let suspend_at = g.range_u64(0, 25_000);
        let downtime_us = g.range_u64(1, 100_000);

        let cfg = PipeConfig {
            bandwidth_bps: Some(10_000_000),
            delay: SimDuration::from_millis(2),
            plr: 0.0,
            queue_slots: 10_000,
        };
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(cfg);
        let mut rng = SimRng::from_seed(2);
        let resume_at = t(suspend_at) + SimDuration::from_micros(downtime_us);
        let mut suspended = false;
        let mut post_resume: Vec<(u64, u32)> = Vec::new();
        for (i, &at) in arrivals.iter().enumerate() {
            if !suspended && at >= suspend_at {
                dn.suspend(t(suspend_at));
                let _ = dn.serialize(t(suspend_at));
                suspended = true;
            }
            if suspended && t(at) >= resume_at {
                // Arrives after the system resumed: deliver shifted.
                post_resume.push((at, i as u32));
            } else {
                // Normal or logged-in-flight arrival.
                let _ = dn.enqueue(t(at), p, tagged(i as u32), &mut rng);
            }
        }
        let replays: Vec<(SimTime, PipeId, Frame)> = if suspended {
            dn.resume(resume_at)
                .into_iter()
                .map(|a| (a.at, a.pipe, a.frame))
                .collect()
        } else {
            Vec::new()
        };
        // Replayed in-flight packets re-enter first (the §3.2 queue-behind
        // rule), then fresh post-resume arrivals.
        for (rat, rp, rf) in replays {
            let _ = dn.enqueue(rat, rp, rf, &mut rng);
        }
        for (at, tag) in post_resume {
            let shifted = t(at) + SimDuration::from_micros(downtime_us);
            let _ = dn.enqueue(shifted.max(resume_at), p, tagged(tag), &mut rng);
        }
        let got = drain_tags(&mut dn);
        let expect: Vec<u32> = (0..arrivals.len() as u32).collect();
        assert_eq!(got, expect, "case {case}: lost, duplicated, or reordered");
    }
}

/// Serialize → restore is lossless for queue contents and preserves
/// relative deadlines.
#[test]
fn serialize_restore_roundtrip() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0x4E5704E, case as u32);
        let n = g.range_u64(1, 50) as usize;
        let rebase_us = g.range_u64(0, 1_000_000);

        let mut dn = Dummynet::new();
        let p = dn.add_pipe(PipeConfig {
            bandwidth_bps: Some(8_000_000),
            delay: SimDuration::from_millis(1),
            plr: 0.0,
            queue_slots: 10_000,
        });
        let mut rng = SimRng::from_seed(3);
        for i in 0..n {
            let _ = dn.enqueue(t(0), p, tagged(i as u32), &mut rng);
        }
        dn.suspend(t(10));
        let img = dn.serialize(t(10));
        assert_eq!(img.packets(), n, "case {case}");
        let mut restored = Dummynet::restore(&img, t(rebase_us));
        let got = drain_tags(&mut restored);
        assert_eq!(got, (0..n as u32).collect::<Vec<_>>(), "case {case}");
    }
}

fn drain_tags(dn: &mut Dummynet) -> Vec<u32> {
    let mut got = Vec::new();
    let mut guard = 0;
    while let Some(next) = dn.next_ready() {
        guard += 1;
        assert!(guard < 100_000);
        for (_, f) in dn.pop_ready(next) {
            got.push(tag_of(&f));
        }
    }
    got
}
