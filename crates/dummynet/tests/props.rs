//! Property-based tests: shaping conserves packets, preserves FIFO order,
//! and checkpoints (suspend → serialize → restore/resume) never lose,
//! duplicate, or reorder anything.

use dummynet::{Dummynet, EnqueueOutcome, PipeConfig, PipeId};
use hwsim::{Frame, NodeAddr};
use proptest::prelude::*;
use sim::{SimDuration, SimRng, SimTime};

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

fn tagged(tag: u32) -> Frame {
    Frame::new(NodeAddr(1), NodeAddr(2), 400, tag)
}

fn tag_of(f: &Frame) -> u32 {
    *f.payload::<u32>().expect("tagged frame")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// With no loss and a large queue, every packet comes out exactly
    /// once, in order, shaped no earlier than bandwidth+delay allow.
    #[test]
    fn conservation_and_fifo(
        arrivals in prop::collection::vec(0..50_000u64, 1..80),
        bw_kbps in 1_000..1_000_000u64,
        delay_us in 0..5_000u64,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(PipeConfig {
            bandwidth_bps: Some(bw_kbps * 1000),
            delay: SimDuration::from_micros(delay_us),
            plr: 0.0,
            queue_slots: 10_000,
        });
        let mut rng = SimRng::from_seed(1);
        for (i, &at) in arrivals.iter().enumerate() {
            let out = dn.enqueue(t(at), p, tagged(i as u32), &mut rng);
            let accepted = matches!(out, EnqueueOutcome::Queued { .. });
            prop_assert!(accepted);
        }
        let mut got = Vec::new();
        let mut guard = 0;
        while let Some(next) = dn.next_ready() {
            guard += 1;
            prop_assert!(guard < 10_000);
            for (_, f) in dn.pop_ready(next) {
                got.push(tag_of(&f));
            }
        }
        prop_assert_eq!(got.len(), arrivals.len(), "conservation");
        let sorted: Vec<u32> = (0..arrivals.len() as u32).collect();
        prop_assert_eq!(got, sorted, "FIFO order");
    }

    /// A suspend/serialize/resume cycle at an arbitrary point preserves
    /// exactly-once, in-order delivery: packets enqueued before, during
    /// (logged in-flight), and after the checkpoint all come out once, in
    /// arrival order.
    #[test]
    fn checkpoint_preserves_delivery_order(
        arrivals in prop::collection::vec(0..20_000u64, 1..60),
        suspend_at in 0..25_000u64,
        downtime_us in 1..100_000u64,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let cfg = PipeConfig {
            bandwidth_bps: Some(10_000_000),
            delay: SimDuration::from_millis(2),
            plr: 0.0,
            queue_slots: 10_000,
        };
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(cfg);
        let mut rng = SimRng::from_seed(2);
        let resume_at = t(suspend_at) + SimDuration::from_micros(downtime_us);
        let mut suspended = false;
        let mut post_resume: Vec<(u64, u32)> = Vec::new();
        for (i, &at) in arrivals.iter().enumerate() {
            if !suspended && at >= suspend_at {
                dn.suspend(t(suspend_at));
                let _ = dn.serialize(t(suspend_at));
                suspended = true;
            }
            if suspended && t(at) >= resume_at {
                // Arrives after the system resumed: deliver shifted.
                post_resume.push((at, i as u32));
            } else {
                // Normal or logged-in-flight arrival.
                let _ = dn.enqueue(t(at), p, tagged(i as u32), &mut rng);
            }
        }
        let replays: Vec<(SimTime, PipeId, Frame)> = if suspended {
            dn.resume(resume_at)
                .into_iter()
                .map(|a| (a.at, a.pipe, a.frame))
                .collect()
        } else {
            Vec::new()
        };
        // Replayed in-flight packets re-enter first (the §3.2 queue-behind
        // rule), then fresh post-resume arrivals.
        for (rat, rp, rf) in replays {
            let _ = dn.enqueue(rat, rp, rf, &mut rng);
        }
        for (at, tag) in post_resume {
            let shifted = t(at) + SimDuration::from_micros(downtime_us);
            let _ = dn.enqueue(shifted.max(resume_at), p, tagged(tag), &mut rng);
        }
        let got = drain_tags(&mut dn);
        let expect: Vec<u32> = (0..arrivals.len() as u32).collect();
        prop_assert_eq!(got, expect, "lost, duplicated, or reordered");
    }

    /// Serialize → restore is lossless for queue contents and preserves
    /// relative deadlines.
    #[test]
    fn serialize_restore_roundtrip(
        n in 1..50usize,
        rebase_us in 0..1_000_000u64,
    ) {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(PipeConfig {
            bandwidth_bps: Some(8_000_000),
            delay: SimDuration::from_millis(1),
            plr: 0.0,
            queue_slots: 10_000,
        });
        let mut rng = SimRng::from_seed(3);
        for i in 0..n {
            let _ = dn.enqueue(t(0), p, tagged(i as u32), &mut rng);
        }
        dn.suspend(t(10));
        let img = dn.serialize(t(10));
        prop_assert_eq!(img.packets(), n);
        let mut restored = Dummynet::restore(&img, t(rebase_us));
        let got = drain_tags(&mut restored);
        prop_assert_eq!(got, (0..n as u32).collect::<Vec<_>>());
    }
}

fn drain_tags(dn: &mut Dummynet) -> Vec<u32> {
    let mut got = Vec::new();
    let mut guard = 0;
    while let Some(next) = dn.next_ready() {
        guard += 1;
        assert!(guard < 100_000);
        for (_, f) in dn.pop_ready(next) {
            got.push(tag_of(&f));
        }
    }
    got
}
