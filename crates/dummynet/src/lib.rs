//! Dummynet-style traffic shaping with live checkpoint support (§4.4).
//!
//! Emulab realizes an experimenter's link characteristics (bandwidth,
//! latency, loss) by interposing *delay nodes* running FreeBSD Dummynet.
//! The paper checkpoints the network core by checkpointing exactly this
//! subsystem: "This state consists of a hierarchy of pipes, router queues,
//! and the packets queued in those pipes and queues. For the checkpoint, we
//! implement functions serializing and deserializing the state of this
//! hierarchy... During a checkpoint we suspend Dummynet and serialize the
//! state non-destructively. After the checkpoint completes, we resume
//! execution by unblocking Dummynet and virtualizing time to account for
//! the time spent in the checkpoint."
//!
//! This crate is the pure state machine: [`Pipe`]s shape [`Frame`]s, a
//! [`Dummynet`] instance groups pipes and implements suspend / serialize /
//! restore / time-shifted resume, and logs packets that arrive while
//! suspended (the in-flight packets bounded by checkpoint skew, §3.2) for
//! pacing-preserving replay. The event-loop glue lives in the `checkpoint`
//! crate's delay-node host.

mod pipe;

pub use pipe::{EnqueueOutcome, Pipe, PipeConfig, PipeImage, PipeStats};

use ckptstore::{Dec, DecodeError, Enc};
use hwsim::Frame;
use sim::telemetry::names;
use sim::{CounterId, SimRng, SimTime, Telemetry, TraceTag, TrackId};

/// Identifies a pipe within a [`Dummynet`] instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PipeId(pub usize);

/// A serialized Dummynet instance: everything needed to rebuild shaping
/// state on restore, with times stored relative to the serialization
/// instant so the image is position-independent in time.
#[derive(Clone)]
pub struct DummynetImage {
    pipes: Vec<PipeImage>,
}

impl DummynetImage {
    /// Approximate byte size of the image (queued packet bytes plus
    /// per-packet and per-pipe metadata), used to cost its transfer.
    pub fn byte_size(&self) -> u64 {
        self.pipes.iter().map(|p| p.byte_size()).sum::<u64>() + 64
    }

    /// Number of packets captured in the image.
    pub fn packets(&self) -> usize {
        self.pipes.iter().map(|p| p.packets()).sum()
    }

    /// Serializes the image; queued frames go into the `frames` side-table
    /// (their payloads are type-erased and cannot byte-serialize).
    pub fn encode_wire(&self, e: &mut Enc, frames: &mut Vec<Frame>) {
        e.seq(self.pipes.len());
        for p in &self.pipes {
            p.encode_wire(e, frames);
        }
    }

    /// Inverse of [`DummynetImage::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, frames: &[Frame]) -> Result<Self, DecodeError> {
        let n = d.seq()?;
        let mut pipes = Vec::with_capacity(n);
        for _ in 0..n {
            pipes.push(PipeImage::decode_wire(d, frames)?);
        }
        Ok(DummynetImage { pipes })
    }
}

/// A packet arrival observed while the instance was suspended.
#[derive(Clone)]
struct LoggedArrival {
    at: SimTime,
    pipe: PipeId,
    frame: Frame,
}

/// A replay instruction produced by [`Dummynet::resume`]: re-enqueue
/// `frame` on `pipe` at absolute time `at`.
pub struct ReplayAction {
    pub at: SimTime,
    pub pipe: PipeId,
    pub frame: Frame,
}

/// A group of pipes plus checkpoint state, mirroring one delay node's
/// Dummynet module.
///
/// # Examples
///
/// ```
/// use dummynet::{Dummynet, PipeConfig};
/// use hwsim::{Frame, NodeAddr};
/// use sim::{SimDuration, SimRng, SimTime};
///
/// let mut dn = Dummynet::new();
/// let pipe = dn.add_pipe(PipeConfig {
///     bandwidth_bps: Some(8_000_000),
///     delay: SimDuration::from_millis(1),
///     plr: 0.0,
///     queue_slots: 50,
/// });
/// let mut rng = SimRng::from_seed(1);
/// let frame = Frame::new(NodeAddr(1), NodeAddr(2), 1000, ());
/// dn.enqueue(SimTime::ZERO, pipe, frame, &mut rng);
/// // 1000 B at 1 B/µs + 1 ms delay = ready at 2 ms.
/// assert_eq!(dn.next_ready(), Some(SimTime::from_nanos(2_000_000)));
/// ```
#[derive(Clone, Default)]
pub struct Dummynet {
    pipes: Vec<Pipe>,
    suspended_at: Option<SimTime>,
    log: Vec<LoggedArrival>,
    /// Total packets logged while suspended, across all checkpoints.
    pub total_logged: u64,
    /// Trace/counter handles, present once a hosting component attaches
    /// the shared registry. Not part of checkpointed state: restore
    /// leaves it empty and the host re-attaches.
    tele: Option<DnTele>,
}

/// Telemetry handles of an attached [`Dummynet`] instance.
#[derive(Clone)]
struct DnTele {
    t: Telemetry,
    track: TrackId,
    ev_suspended: TraceTag,
    ev_drain: TraceTag,
    logged: CounterId,
    replayed: CounterId,
}

impl Dummynet {
    /// Creates an instance with no pipes.
    pub fn new() -> Self {
        Dummynet::default()
    }

    /// Adds a pipe, returning its id.
    pub fn add_pipe(&mut self, cfg: PipeConfig) -> PipeId {
        self.pipes.push(Pipe::new(cfg));
        PipeId(self.pipes.len() - 1)
    }

    /// Number of pipes.
    pub fn pipe_count(&self) -> usize {
        self.pipes.len()
    }

    /// Immutable access to a pipe.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[id.0]
    }

    /// Mutable access to a pipe (reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn pipe_mut(&mut self, id: PipeId) -> &mut Pipe {
        &mut self.pipes[id.0]
    }

    /// True while suspended for a checkpoint.
    pub fn suspended(&self) -> bool {
        self.suspended_at.is_some()
    }

    /// Attaches the shared telemetry registry, putting this instance's
    /// suspend/drain activity on the `dummynet` track of `host`.
    /// Idempotent; hosts call it again after a restore.
    pub fn attach_telemetry(&mut self, t: &Telemetry, host: u32) {
        if self.tele.is_some() {
            return;
        }
        self.tele = Some(DnTele {
            t: t.clone(),
            track: t.track(host, names::TRACK_DUMMYNET),
            ev_suspended: t.trace_tag(names::EV_DN_SUSPENDED),
            ev_drain: t.trace_tag(names::EV_DN_DRAIN),
            logged: t.counter(names::DN_LOGGED_FRAMES),
            replayed: t.counter(names::DN_REPLAYED_FRAMES),
        });
    }

    /// Offers a frame to a pipe. While suspended, the frame is logged
    /// instead of shaped (it was physically in flight at checkpoint time).
    pub fn enqueue(
        &mut self,
        now: SimTime,
        id: PipeId,
        frame: Frame,
        rng: &mut SimRng,
    ) -> EnqueueOutcome {
        if self.suspended_at.is_some() {
            self.log.push(LoggedArrival {
                at: now,
                pipe: id,
                frame,
            });
            self.total_logged += 1;
            if let Some(tele) = &self.tele {
                tele.t.inc(tele.logged);
            }
            return EnqueueOutcome::LoggedSuspended;
        }
        self.pipes[id.0].enqueue(now, frame, rng)
    }

    /// Earliest instant any pipe will have a frame ready to emit.
    pub fn next_ready(&self) -> Option<SimTime> {
        self.pipes.iter().filter_map(Pipe::next_ready).min()
    }

    /// Pops every frame ready at `now`, tagged with its pipe.
    pub fn pop_ready(&mut self, now: SimTime) -> Vec<(PipeId, Frame)> {
        if self.suspended_at.is_some() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, p) in self.pipes.iter_mut().enumerate() {
            for f in p.pop_ready(now) {
                out.push((PipeId(i), f));
            }
        }
        out
    }

    /// Suspends shaping: no frames are emitted, arrivals are logged.
    ///
    /// # Panics
    ///
    /// Panics if already suspended.
    pub fn suspend(&mut self, now: SimTime) {
        assert!(self.suspended_at.is_none(), "double suspend");
        self.suspended_at = Some(now);
        if let Some(tele) = &self.tele {
            tele.t.trace_begin(tele.track, tele.ev_suspended, now, 0);
        }
    }

    /// Serializes the full pipe hierarchy non-destructively.
    ///
    /// # Panics
    ///
    /// Panics if not suspended; the paper serializes only suspended state.
    pub fn serialize(&self, now: SimTime) -> DummynetImage {
        let at = self.suspended_at.expect("serialize while running");
        debug_assert!(at <= now);
        DummynetImage {
            pipes: self.pipes.iter().map(|p| p.serialize(at)).collect(),
        }
    }

    /// Resumes after a checkpoint: shifts all internal deadlines by the
    /// downtime (time virtualization) and converts logged arrivals into
    /// replay actions that preserve their original pacing relative to the
    /// suspension instant.
    ///
    /// # Panics
    ///
    /// Panics if not suspended.
    pub fn resume(&mut self, now: SimTime) -> Vec<ReplayAction> {
        let at = self.suspended_at.take().expect("resume while running");
        let downtime = now.saturating_duration_since(at);
        for p in &mut self.pipes {
            p.shift(downtime);
        }
        let log = std::mem::take(&mut self.log);
        let actions: Vec<ReplayAction> = log
            .into_iter()
            .map(|l| ReplayAction {
                at: l.at + downtime,
                pipe: l.pipe,
                frame: l.frame,
            })
            .collect();
        if let Some(tele) = &self.tele {
            tele.t
                .trace_end(tele.track, tele.ev_suspended, now, downtime.as_nanos() as i64);
            if !actions.is_empty() {
                // The drain window is fully determined here: it spans
                // from the resume to the last (time-shifted) replay.
                let n = actions.len() as i64;
                let last = actions.iter().map(|a| a.at).max().unwrap_or(now).max(now);
                tele.t.add(tele.replayed, n as u64);
                tele.t.trace_begin(tele.track, tele.ev_drain, now, n);
                tele.t.trace_end(tele.track, tele.ev_drain, last, n);
            }
        }
        actions
    }

    /// Takes the suspension-window arrival log as offsets from the
    /// suspension instant (preserved across swap-out, where the node is
    /// torn down before it can replay them).
    ///
    /// # Panics
    ///
    /// Panics if not suspended.
    pub fn take_log(&mut self) -> Vec<(sim::SimDuration, PipeId, Frame)> {
        let at = self.suspended_at.expect("log only exists while suspended");
        std::mem::take(&mut self.log)
            .into_iter()
            .map(|l| (l.at.saturating_duration_since(at), l.pipe, l.frame))
            .collect()
    }

    /// Installs a preserved suspension log into a suspended instance; the
    /// entries replay (with original pacing) at the next [`Dummynet::resume`].
    ///
    /// # Panics
    ///
    /// Panics if not suspended.
    pub fn install_log(&mut self, log: Vec<(sim::SimDuration, PipeId, Frame)>) {
        let at = self.suspended_at.expect("instance must be suspended");
        self.log = log
            .into_iter()
            .map(|(off, pipe, frame)| LoggedArrival {
                at: at + off,
                pipe,
                frame,
            })
            .collect();
    }

    /// Rebuilds an instance from an image at time `now` (restore path of a
    /// swap-in or time-travel). Deadlines stored as offsets in the image
    /// become absolute again relative to `now`.
    pub fn restore(image: &DummynetImage, now: SimTime) -> Self {
        Dummynet {
            pipes: image.pipes.iter().map(|pi| Pipe::restore(pi, now)).collect(),
            suspended_at: None,
            log: Vec::new(),
            total_logged: 0,
            tele: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::NodeAddr;
    use sim::SimDuration;

    fn frame(bytes: u32, tag: u32) -> Frame {
        Frame::new(NodeAddr(1), NodeAddr(2), bytes, tag)
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn shaped_cfg() -> PipeConfig {
        PipeConfig {
            bandwidth_bps: Some(8_000_000), // 1 byte/µs
            delay: SimDuration::from_millis(1),
            plr: 0.0,
            queue_slots: 50,
        }
    }

    #[test]
    fn frames_emerge_shaped_and_delayed() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        // 1000-byte frame: 1000 µs serialization + 1000 µs delay.
        let out = dn.enqueue(t(0), p, frame(1000, 0), &mut rng);
        assert!(matches!(out, EnqueueOutcome::Queued { .. }));
        assert_eq!(dn.next_ready(), Some(t(2000)));
        assert!(dn.pop_ready(t(1999)).is_empty());
        let ready = dn.pop_ready(t(2000));
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, p);
    }

    #[test]
    fn back_to_back_frames_paced_at_bandwidth() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        for i in 0..3u32 {
            dn.enqueue(t(0), p, frame(1000, i), &mut rng);
        }
        // Departures at 1000, 2000, 3000 µs; ready at +1 ms each.
        for (i, expect) in [(0u32, 2000u64), (1, 3000), (2, 4000)] {
            let got = dn.pop_ready(t(expect));
            assert_eq!(got.len(), 1, "frame {i} at {expect}µs");
            assert_eq!(*got[0].1.payload::<u32>().unwrap(), i);
        }
    }

    #[test]
    fn suspended_arrivals_are_logged_and_replayed_with_pacing() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        dn.suspend(t(100));
        assert!(matches!(
            dn.enqueue(t(150), p, frame(100, 1), &mut rng),
            EnqueueOutcome::LoggedSuspended
        ));
        assert!(matches!(
            dn.enqueue(t(250), p, frame(100, 2), &mut rng),
            EnqueueOutcome::LoggedSuspended
        ));
        let actions = dn.resume(t(10_100));
        assert_eq!(actions.len(), 2);
        // Original offsets from suspension: +50 µs and +150 µs.
        assert_eq!(actions[0].at, t(10_150));
        assert_eq!(actions[1].at, t(10_250));
        assert_eq!(dn.total_logged, 2);
    }

    #[test]
    fn resume_shifts_queued_deadlines_by_downtime() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        dn.enqueue(t(0), p, frame(1000, 7), &mut rng); // ready at 2000 µs
        dn.suspend(t(500));
        assert!(dn.pop_ready(t(5_000)).is_empty(), "suspended: nothing emits");
        let _ = dn.resume(t(20_500)); // 20 ms downtime
        assert_eq!(dn.next_ready(), Some(t(22_000)), "deadline shifted by downtime");
    }

    #[test]
    fn serialize_restore_preserves_queue_contents_and_relative_times() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        dn.enqueue(t(0), p, frame(1000, 1), &mut rng); // ready 2000
        dn.enqueue(t(0), p, frame(1000, 2), &mut rng); // ready 3000
        dn.suspend(t(500));
        let img = dn.serialize(t(500));
        assert_eq!(img.packets(), 2);
        assert!(img.byte_size() >= 2000);

        // Restore in a fresh "machine" at t = 1 s.
        let mut dn2 = Dummynet::restore(&img, t(1_000_000));
        // Offsets were 1500/2500 µs from suspension.
        assert_eq!(dn2.next_ready(), Some(t(1_001_500)));
        let got = dn2.pop_ready(t(1_002_500));
        assert_eq!(got.len(), 2);
        assert_eq!(*got[0].1.payload::<u32>().unwrap(), 1);
        assert_eq!(*got[1].1.payload::<u32>().unwrap(), 2);
    }

    #[test]
    fn image_wire_round_trip_preserves_schedule() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        dn.enqueue(t(0), p, frame(1000, 1), &mut rng); // ready 2000
        dn.enqueue(t(0), p, frame(1000, 2), &mut rng); // ready 3000
        dn.suspend(t(500));
        let img = dn.serialize(t(500));

        use ckptstore::{Dec, Enc};
        let mut frames = Vec::new();
        let mut e = Enc::new();
        img.encode_wire(&mut e, &mut frames);
        let bytes = e.into_bytes();
        assert_eq!(frames.len(), 2);
        let mut d = Dec::new(&bytes);
        let back = DummynetImage::decode_wire(&mut d, &frames).unwrap();
        assert_eq!(d.remaining(), 0);
        assert_eq!(back.packets(), 2);
        assert_eq!(back.byte_size(), img.byte_size());

        // The decoded image restores with the same relative schedule.
        let mut dn2 = Dummynet::restore(&back, t(1_000_000));
        assert_eq!(dn2.next_ready(), Some(t(1_001_500)));
        let got = dn2.pop_ready(t(1_002_500));
        assert_eq!(got.len(), 2);
        assert_eq!(*got[0].1.payload::<u32>().unwrap(), 1);
        assert_eq!(*got[1].1.payload::<u32>().unwrap(), 2);

        // A frame index outside the side-table is a typed error.
        let mut d = Dec::new(&bytes);
        assert!(DummynetImage::decode_wire(&mut d, &frames[..1]).is_err());
    }

    #[test]
    fn serialize_is_nondestructive() {
        let mut dn = Dummynet::new();
        let p = dn.add_pipe(shaped_cfg());
        let mut rng = SimRng::from_seed(1);
        dn.enqueue(t(0), p, frame(1000, 1), &mut rng);
        dn.suspend(t(100));
        let _ = dn.serialize(t(100));
        let _ = dn.resume(t(100));
        assert_eq!(dn.pop_ready(t(2_000)).len(), 1, "packet survived serialization");
    }

    #[test]
    #[should_panic(expected = "double suspend")]
    fn double_suspend_panics() {
        let mut dn = Dummynet::new();
        dn.suspend(t(1));
        dn.suspend(t(2));
    }
}
