//! A single Dummynet pipe: droptail queue → bandwidth server → delay line.

use std::collections::VecDeque;

use ckptstore::{Dec, DecodeError, Enc};
use hwsim::Frame;
use sim::{transmission_time, SimDuration, SimRng, SimTime};

/// Shaping parameters for one pipe (one direction of an emulated link).
#[derive(Clone, Copy, Debug)]
pub struct PipeConfig {
    /// Bandwidth limit; `None` shapes only delay/loss.
    pub bandwidth_bps: Option<u64>,
    /// One-way propagation delay added after bandwidth service.
    pub delay: SimDuration,
    /// Random packet-loss rate in `[0, 1]`.
    pub plr: f64,
    /// Droptail queue capacity, in packets (Dummynet default is 50 slots).
    pub queue_slots: usize,
}

impl PipeConfig {
    /// A pipe that forwards unshaped (used for plumbing tests).
    pub fn passthrough() -> Self {
        PipeConfig {
            bandwidth_bps: None,
            delay: SimDuration::ZERO,
            plr: 0.0,
            queue_slots: 50,
        }
    }

    /// Serializes the shaping parameters.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.bool(self.bandwidth_bps.is_some());
        if let Some(bw) = self.bandwidth_bps {
            e.u64(bw);
        }
        e.u64(self.delay.as_nanos());
        e.f64(self.plr);
        e.u64(self.queue_slots as u64);
    }

    /// Inverse of [`PipeConfig::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let bandwidth_bps = if d.bool()? { Some(d.u64()?) } else { None };
        let delay = SimDuration::from_nanos(d.u64()?);
        let plr = d.f64()?;
        if !(0.0..=1.0).contains(&plr) {
            return Err(DecodeError::Invalid("pipe plr out of range"));
        }
        let queue_slots = d.u64()? as usize;
        if queue_slots == 0 {
            return Err(DecodeError::Invalid("zero-slot pipe queue"));
        }
        Ok(PipeConfig { bandwidth_bps, delay, plr, queue_slots })
    }
}

/// Result of offering a frame to a pipe.
#[derive(Clone, Copy, Debug)]
pub enum EnqueueOutcome {
    /// Accepted; it will be ready to emit at this time.
    Queued { ready: SimTime },
    /// Dropped: the bandwidth queue was full.
    DroppedQueue,
    /// Dropped: random loss.
    DroppedLoss,
    /// The owning instance was suspended; the arrival was logged instead.
    LoggedSuspended,
}

/// Per-pipe counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipeStats {
    pub forwarded: u64,
    pub bytes_forwarded: u64,
    pub dropped_queue: u64,
    pub dropped_loss: u64,
}

/// A queued packet with its precomputed service milestones.
///
/// For a work-conserving FIFO server, departure (end of bandwidth service)
/// and readiness (departure + delay) can be computed at enqueue time, which
/// keeps the pipe a passive data structure.
#[derive(Clone, Debug)]
struct Entry {
    departure: SimTime,
    ready: SimTime,
    frame: Frame,
}

/// One shaping pipe.
#[derive(Clone)]
pub struct Pipe {
    cfg: PipeConfig,
    busy_until: SimTime,
    in_flight: VecDeque<Entry>,
    /// Counters exposed for experiment post-processing.
    pub stats: PipeStats,
}

/// Serialized pipe state with times as offsets from the capture instant.
#[derive(Clone)]
pub struct PipeImage {
    cfg: PipeConfig,
    busy_off: SimDuration,
    entries: Vec<(SimDuration, SimDuration, Frame)>,
}

impl PipeImage {
    /// Approximate byte size (queued packet bytes + metadata).
    pub fn byte_size(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, _, f)| f.wire_bytes as u64 + 24)
            .sum::<u64>()
            + 48
    }

    /// Number of captured packets.
    pub fn packets(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the pipe image. Frames carry type-erased payloads, so
    /// they ride in the `frames` side-table; the stream stores indices.
    pub fn encode_wire(&self, e: &mut Enc, frames: &mut Vec<Frame>) {
        self.cfg.encode_wire(e);
        e.u64(self.busy_off.as_nanos());
        e.seq(self.entries.len());
        for (dep, ready, f) in &self.entries {
            e.u64(dep.as_nanos());
            e.u64(ready.as_nanos());
            e.u32(frames.len() as u32);
            frames.push(f.clone());
        }
    }

    /// Inverse of [`PipeImage::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, frames: &[Frame]) -> Result<Self, DecodeError> {
        let cfg = PipeConfig::decode_wire(d)?;
        let busy_off = SimDuration::from_nanos(d.u64()?);
        let n = d.seq()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let dep = SimDuration::from_nanos(d.u64()?);
            let ready = SimDuration::from_nanos(d.u64()?);
            let frame = frames
                .get(d.u32()? as usize)
                .cloned()
                .ok_or(DecodeError::Invalid("frame residue index out of range"))?;
            entries.push((dep, ready, frame));
        }
        Ok(PipeImage { cfg, busy_off, entries })
    }
}

impl Pipe {
    /// Creates an idle pipe.
    pub fn new(cfg: PipeConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.plr), "plr out of range");
        assert!(cfg.queue_slots > 0, "zero-slot queue");
        Pipe {
            cfg,
            busy_until: SimTime::ZERO,
            in_flight: VecDeque::new(),
            stats: PipeStats::default(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> PipeConfig {
        self.cfg
    }

    /// Reconfigures the pipe; already-queued packets keep their schedule
    /// (as in Dummynet, where `ipfw pipe config` affects new arrivals).
    pub fn reconfigure(&mut self, cfg: PipeConfig) {
        assert!((0.0..=1.0).contains(&cfg.plr), "plr out of range");
        assert!(cfg.queue_slots > 0, "zero-slot queue");
        self.cfg = cfg;
    }

    /// Number of packets still waiting for bandwidth service at `now`.
    pub fn queue_len(&self, now: SimTime) -> usize {
        self.in_flight.iter().filter(|e| e.departure > now).count()
    }

    /// Total packets buffered in the pipe (queue + delay line).
    pub fn buffered(&self) -> usize {
        self.in_flight.len()
    }

    /// Offers a frame at time `now`.
    pub fn enqueue(&mut self, now: SimTime, frame: Frame, rng: &mut SimRng) -> EnqueueOutcome {
        if self.cfg.plr > 0.0 && rng.chance(self.cfg.plr) {
            self.stats.dropped_loss += 1;
            return EnqueueOutcome::DroppedLoss;
        }
        let departure = match self.cfg.bandwidth_bps {
            Some(bw) => {
                if self.queue_len(now) >= self.cfg.queue_slots {
                    self.stats.dropped_queue += 1;
                    return EnqueueOutcome::DroppedQueue;
                }
                let start = self.busy_until.max(now);
                let dep = start + transmission_time(frame.wire_bytes as u64, bw);
                self.busy_until = dep;
                dep
            }
            None => now,
        };
        let ready = departure + self.cfg.delay;
        self.stats.forwarded += 1;
        self.stats.bytes_forwarded += frame.wire_bytes as u64;
        self.in_flight.push_back(Entry {
            departure,
            ready,
            frame,
        });
        EnqueueOutcome::Queued { ready }
    }

    /// Earliest readiness among buffered packets.
    pub fn next_ready(&self) -> Option<SimTime> {
        // FIFO discipline ⇒ the head is the earliest.
        self.in_flight.front().map(|e| e.ready)
    }

    /// Removes and returns all packets ready at `now`, in order.
    pub fn pop_ready(&mut self, now: SimTime) -> Vec<Frame> {
        let mut out = Vec::new();
        while let Some(e) = self.in_flight.front() {
            if e.ready <= now {
                out.push(self.in_flight.pop_front().expect("head vanished").frame);
            } else {
                break;
            }
        }
        out
    }

    /// Shifts every internal deadline forward by `delta` (checkpoint time
    /// virtualization: the downtime never happened, as far as packet
    /// scheduling is concerned).
    pub fn shift(&mut self, delta: SimDuration) {
        self.busy_until += delta;
        for e in &mut self.in_flight {
            e.departure += delta;
            e.ready += delta;
        }
    }

    /// Captures the pipe relative to instant `at` (non-destructive).
    pub fn serialize(&self, at: SimTime) -> PipeImage {
        PipeImage {
            cfg: self.cfg,
            busy_off: self.busy_until.saturating_duration_since(at),
            entries: self
                .in_flight
                .iter()
                .map(|e| {
                    (
                        e.departure.saturating_duration_since(at),
                        e.ready.saturating_duration_since(at),
                        e.frame.clone(),
                    )
                })
                .collect(),
        }
    }

    /// Rebuilds a pipe from an image, rebasing offsets onto `now`.
    pub fn restore(image: &PipeImage, now: SimTime) -> Self {
        Pipe {
            cfg: image.cfg,
            busy_until: now + image.busy_off,
            in_flight: image
                .entries
                .iter()
                .map(|(dep, ready, f)| Entry {
                    departure: now + *dep,
                    ready: now + *ready,
                    frame: f.clone(),
                })
                .collect(),
            stats: PipeStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::NodeAddr;

    fn frame(bytes: u32) -> Frame {
        Frame::new(NodeAddr(1), NodeAddr(2), bytes, ())
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn mbps(n: u64) -> Option<u64> {
        Some(n * 1_000_000)
    }

    #[test]
    fn droptail_kicks_in_at_queue_limit() {
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: mbps(8), // 1 µs per byte
            delay: SimDuration::ZERO,
            plr: 0.0,
            queue_slots: 3,
        });
        let mut rng = SimRng::from_seed(1);
        let mut dropped = 0;
        for _ in 0..10 {
            if matches!(
                p.enqueue(t(0), frame(1000), &mut rng),
                EnqueueOutcome::DroppedQueue
            ) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 7, "3 slots: rest dropped");
        assert_eq!(p.stats.dropped_queue, 7);
        assert_eq!(p.stats.forwarded, 3);
    }

    #[test]
    fn queue_drains_over_time_allowing_new_arrivals() {
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: mbps(8),
            delay: SimDuration::ZERO,
            plr: 0.0,
            queue_slots: 1,
        });
        let mut rng = SimRng::from_seed(1);
        assert!(matches!(p.enqueue(t(0), frame(1000), &mut rng), EnqueueOutcome::Queued { .. }));
        assert!(matches!(p.enqueue(t(0), frame(1000), &mut rng), EnqueueOutcome::DroppedQueue));
        // After the first departs (1000 µs), a slot frees up.
        assert!(matches!(
            p.enqueue(t(1001), frame(1000), &mut rng),
            EnqueueOutcome::Queued { .. }
        ));
    }

    #[test]
    fn measured_throughput_matches_configured_bandwidth() {
        // Offer 2x the configured 8 Mbps and measure the drain rate.
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: mbps(8),
            delay: SimDuration::from_millis(5),
            plr: 0.0,
            queue_slots: 100,
        });
        let mut rng = SimRng::from_seed(2);
        let mut now = SimTime::ZERO;
        let mut delivered_bytes = 0u64;
        let mut last_ready = SimTime::ZERO;
        // Offer 1000-byte frames every 500 µs (16 Mbps offered) for 1 s.
        for _ in 0..2000 {
            if let EnqueueOutcome::Queued { ready } = p.enqueue(now, frame(1000), &mut rng) {
                last_ready = last_ready.max(ready);
            }
            now += SimDuration::from_micros(500);
        }
        loop {
            let got = p.pop_ready(last_ready);
            if got.is_empty() {
                break;
            }
            delivered_bytes += got.iter().map(|f| f.wire_bytes as u64).sum::<u64>();
        }
        let elapsed = last_ready.as_secs_f64();
        let rate_bps = delivered_bytes as f64 * 8.0 / elapsed;
        assert!(
            (rate_bps - 8e6).abs() / 8e6 < 0.02,
            "measured {rate_bps} bps, configured 8e6"
        );
    }

    #[test]
    fn plr_drops_statistically() {
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: None,
            delay: SimDuration::ZERO,
            plr: 0.3,
            queue_slots: 50,
        });
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1000 {
            let _ = p.enqueue(t(0), frame(100), &mut rng);
        }
        let lost = p.stats.dropped_loss;
        assert!((200..400).contains(&lost), "lost {lost} of 1000 at plr 0.3");
    }

    #[test]
    fn delay_only_pipe_preserves_spacing() {
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: None,
            delay: SimDuration::from_millis(10),
            plr: 0.0,
            queue_slots: 50,
        });
        let mut rng = SimRng::from_seed(4);
        for i in 0..3u64 {
            let out = p.enqueue(t(i * 100), frame(100), &mut rng);
            match out {
                EnqueueOutcome::Queued { ready } => {
                    assert_eq!(ready, t(i * 100 + 10_000), "pure delay line");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: mbps(8),
            delay: SimDuration::from_millis(1),
            plr: 0.0,
            queue_slots: 50,
        });
        let mut rng = SimRng::from_seed(5);
        for i in 0..10u32 {
            let f = Frame::new(NodeAddr(1), NodeAddr(2), 500, i);
            let _ = p.enqueue(t(0), f, &mut rng);
        }
        let all = p.pop_ready(t(1_000_000));
        let tags: Vec<u32> = all.iter().map(|f| *f.payload::<u32>().unwrap()).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shift_moves_everything_uniformly() {
        let mut p = Pipe::new(PipeConfig {
            bandwidth_bps: mbps(8),
            delay: SimDuration::from_millis(1),
            plr: 0.0,
            queue_slots: 50,
        });
        let mut rng = SimRng::from_seed(6);
        let before = match p.enqueue(t(0), frame(1000), &mut rng) {
            EnqueueOutcome::Queued { ready } => ready,
            other => panic!("unexpected {other:?}"),
        };
        p.shift(SimDuration::from_secs(3));
        assert_eq!(p.next_ready(), Some(before + SimDuration::from_secs(3)));
    }
}
