//! Kernel-level integration tests: a miniature hand-rolled "hypervisor"
//! pumps actions between two kernels and a fake disk/CPU, validating the
//! syscall surface end-to-end before the real vmm is layered on top.

use std::any::Any;
use std::collections::VecDeque;

use cowstore::BlockData;
use guestos::{
    BlockBatch, GuestAction, GuestProg, Kernel, KernelConfig, Syscall, SysRet,
};
use hwsim::NodeAddr;

/// A pending world event for the mini-hypervisor.
enum Ev {
    Tick { node: usize },
    Rx { node: usize, src: NodeAddr, seg: guestos::TcpSegment },
    BlockDone { node: usize, batch: BlockBatch },
    ComputeDone { node: usize, id: u64 },
}

/// Mini-hypervisor over N kernels: fixed network delay, instant-ish disk,
/// exact CPU. Time in ns.
struct MiniVmm {
    kernels: Vec<Kernel>,
    now: u64,
    queue: VecDeque<(u64, Ev)>,
    net_delay: u64,
    disk_ns_per_block: u64,
}

impl MiniVmm {
    fn new(n: usize) -> Self {
        let kernels = (0..n)
            .map(|i| {
                let mut cfg = KernelConfig::pc3000_guest(NodeAddr(i as u32));
                cfg.disk_blocks = 100_000;
                cfg.cache_blocks = 4096;
                Kernel::new(cfg)
            })
            .collect();
        MiniVmm {
            kernels,
            now: 0,
            queue: VecDeque::new(),
            net_delay: 100_000, // 100 µs
            disk_ns_per_block: 60_000,
        }
    }

    fn post(&mut self, at: u64, ev: Ev) {
        let pos = self.queue.iter().position(|&(t, _)| t > at);
        match pos {
            Some(p) => self.queue.insert(p, (at, ev)),
            None => self.queue.push_back((at, ev)),
        }
    }

    fn drain_actions(&mut self, node: usize) {
        let actions = self.kernels[node].drain_actions();
        for a in actions {
            match a {
                GuestAction::NetTx { dst, seg } => {
                    let at = self.now + self.net_delay;
                    self.post(
                        at,
                        Ev::Rx {
                            node: dst.0 as usize,
                            src: NodeAddr(node as u32),
                            seg,
                        },
                    );
                }
                GuestAction::BlockIo(batch) => {
                    let cost = self.disk_ns_per_block * batch.ops.len().max(1) as u64;
                    let at = self.now + cost;
                    self.post(at, Ev::BlockDone { node, batch });
                }
                GuestAction::Compute { id, ns } => {
                    let at = self.now + ns;
                    self.post(at, Ev::ComputeDone { node, id });
                }
                GuestAction::CtrlRpc { .. } | GuestAction::TriggerCheckpoint => {
                    // No control services or coordinator here.
                }
            }
        }
    }

    fn run_until(&mut self, t_end: u64) {
        // Seed periodic ticks.
        while let Some(&(t, _)) = self.queue.front() {
            if t > t_end {
                break;
            }
            let (t, ev) = self.queue.pop_front().expect("peeked");
            self.now = t;
            match ev {
                Ev::Tick { node } => {
                    self.kernels[node].on_timer_tick(self.now);
                    let next = self.now + 10_000_000;
                    self.post(next, Ev::Tick { node });
                    self.drain_actions(node);
                }
                Ev::Rx { node, src, seg } => {
                    self.kernels[node].on_net_rx(self.now, src, &seg);
                    self.drain_actions(node);
                }
                Ev::BlockDone { node, batch } => {
                    // Fabricate read contents (the real vmm reads cowstore).
                    let reads: Vec<(u64, BlockData)> = batch
                        .ops
                        .iter()
                        .filter(|o| !o.write)
                        .map(|o| (o.vba, BlockData::Opaque(o.vba)))
                        .collect();
                    self.kernels[node].on_block_complete(self.now, batch.id, reads);
                    self.drain_actions(node);
                }
                Ev::ComputeDone { node, id } => {
                    self.kernels[node].on_compute_done(self.now, id);
                    self.drain_actions(node);
                }
            }
        }
        self.now = t_end;
    }

    fn start(&mut self) {
        for i in 0..self.kernels.len() {
            self.post(10_000_000, Ev::Tick { node: i });
            self.drain_actions(i);
        }
    }
}

// ---------------------------------------------------------------------
// Test programs.
// ---------------------------------------------------------------------

/// usleep-loop microbenchmark (the Fig 4 workload shape).
#[derive(Clone)]
struct UsleepBench {
    remaining: u32,
    t_prev: Option<u64>,
    samples_ns: Vec<u64>,
    state: u8, // 0 = need time, 1 = sleeping done -> need time
}

impl UsleepBench {
    fn new(iters: u32) -> Self {
        UsleepBench {
            remaining: iters,
            t_prev: None,
            samples_ns: Vec::new(),
            state: 0,
        }
    }
}

impl GuestProg for UsleepBench {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Time(t) = ret {
            if let Some(prev) = self.t_prev {
                self.samples_ns.push(t - prev);
                if self.remaining == 0 {
                    return Syscall::Exit;
                }
                self.remaining -= 1;
            }
            self.t_prev = Some(t);
            self.state = 1;
            return Syscall::Sleep { ns: 10_000_000 };
        }
        // Start, or sleep completed: read the clock.
        Syscall::Gettimeofday
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Bulk TCP sender.
#[derive(Clone)]
struct Sender {
    dst: NodeAddr,
    port: u16,
    total: u64,
    sent: u64,
    fd: Option<guestos::prog::SockFd>,
    done: bool,
}

impl GuestProg for Sender {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Connect {
                dst: self.dst,
                port: self.port,
            },
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Send {
                    fd,
                    bytes: (self.total - self.sent).min(64 * 1024),
                    msg: None,
                }
            }
            SysRet::Sent(n) => {
                self.sent += n;
                if self.sent >= self.total {
                    self.done = true;
                    return Syscall::Exit;
                }
                Syscall::Send {
                    fd: self.fd.expect("connected"),
                    bytes: (self.total - self.sent).min(64 * 1024),
                    msg: None,
                }
            }
            other => panic!("sender: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Bulk TCP receiver.
#[derive(Clone)]
struct Receiver {
    port: u16,
    got: u64,
    fd: Option<guestos::prog::SockFd>,
    listening: bool,
}

impl GuestProg for Receiver {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Listen { port: self.port },
            SysRet::Ok if !self.listening => {
                self.listening = true;
                Syscall::Accept { port: self.port }
            }
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Recv { fd, max: u64::MAX }
            }
            SysRet::Recvd { bytes, .. } => {
                self.got += bytes;
                Syscall::Recv {
                    fd: self.fd.expect("accepted"),
                    max: u64::MAX,
                }
            }
            other => panic!("receiver: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Sequential file writer + reader + deleter.
#[derive(Clone)]
struct FileChurn {
    phase: u8,
    chunk: u64,
    written: u64,
    read: u64,
    total: u64,
    pub done: bool,
}

impl GuestProg for FileChurn {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if matches!(ret, SysRet::Err(e) if e != "exists") {
            panic!("file churn error: {ret:?}");
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Syscall::Create {
                    file: guestos::prog::FileId(7),
                }
            }
            1 => {
                if self.written >= self.total {
                    self.phase = 2;
                    return Syscall::Sync;
                }
                let off = self.written;
                self.written += self.chunk;
                Syscall::Write {
                    file: guestos::prog::FileId(7),
                    offset: off,
                    bytes: self.chunk,
                }
            }
            2 => {
                if self.read >= self.total {
                    self.phase = 3;
                    return Syscall::Delete {
                        file: guestos::prog::FileId(7),
                    };
                }
                let off = self.read;
                self.read += self.chunk;
                Syscall::Read {
                    file: guestos::prog::FileId(7),
                    offset: off,
                    bytes: self.chunk,
                }
            }
            _ => {
                self.done = true;
                Syscall::Exit
            }
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[test]
fn usleep_loop_measures_two_ticks_per_iteration() {
    let mut vmm = MiniVmm::new(1);
    let tid = vmm.kernels[0].spawn(Box::new(UsleepBench::new(50)));
    vmm.start();
    vmm.run_until(3_000_000_000);
    let prog = vmm.kernels[0]
        .prog(tid)
        .expect("prog alive or kept")
        .as_any()
        .downcast_ref::<UsleepBench>();
    // Program may have exited (prog dropped); read before exit instead.
    if let Some(p) = prog {
        assert!(!p.samples_ns.is_empty());
        for &s in &p.samples_ns {
            assert_eq!(s, 20_000_000, "usleep(10ms) measures exactly 2 ticks here");
        }
    } else {
        panic!("program exited and was dropped before inspection");
    }
}

#[test]
fn tcp_transfer_between_kernels_delivers_all_bytes_cleanly() {
    let mut vmm = MiniVmm::new(2);
    let total = 2_000_000u64;
    vmm.kernels[0].spawn(Box::new(Sender {
        dst: NodeAddr(1),
        port: 5001,
        total,
        sent: 0,
        fd: None,
        done: false,
    }));
    vmm.kernels[1].spawn(Box::new(Receiver {
        port: 5001,
        got: 0,
        fd: None,
        listening: false,
    }));
    vmm.start();
    vmm.run_until(20_000_000_000);
    let totals = vmm.kernels[1].net_totals();
    assert_eq!(totals.bytes_delivered, total);
    assert_eq!(vmm.kernels[0].net_totals().retransmissions, 0);
    assert_eq!(vmm.kernels[0].net_totals().timeouts, 0);
}

#[test]
fn file_write_read_delete_cycle_completes_and_frees_blocks() {
    let mut vmm = MiniVmm::new(1);
    let total = 8 * 1024 * 1024u64; // 8 MB: exceeds the small test cache.
    let tid = vmm.kernels[0].spawn(Box::new(FileChurn {
        phase: 0,
        chunk: 64 * 1024,
        written: 0,
        read: 0,
        total,
        done: false,
    }));
    vmm.start();
    vmm.run_until(60_000_000_000);
    assert_eq!(vmm.kernels[0].exited, 1, "program ran to completion");
    let _ = tid;
}

#[test]
fn checkpoint_clone_restore_is_invisible_to_guest_state() {
    let mut vmm = MiniVmm::new(1);
    vmm.kernels[0].spawn(Box::new(UsleepBench::new(1000)));
    vmm.start();
    vmm.run_until(1_000_000_000);

    // Suspend: firewall closes; guest must be quiescent (no disk I/O here).
    let k = &mut vmm.kernels[0];
    let now = k.guest_now_ns();
    assert!(k.prepare_suspend(now), "sleep workload has no in-flight I/O");
    let fp_before = {
        // Fingerprint ignoring firewall bookkeeping: resume a clone first.
        let mut probe = k.clone();
        probe.finish_resume(now);
        probe.state_fingerprint()
    };
    // Save = clone (this is the checkpoint image).
    let image = k.clone();

    // ... arbitrary real time passes; the guest sees none of it ...

    // Restore from the image and resume at the same guest time.
    let mut restored = image;
    restored.finish_resume(now);
    assert_eq!(
        restored.state_fingerprint(),
        fp_before,
        "restore changed guest-observable state"
    );
    assert!(!restored.firewall().closed());
}

#[test]
fn firewall_blocks_user_threads_until_resume() {
    let mut vmm = MiniVmm::new(1);
    vmm.kernels[0].spawn(Box::new(UsleepBench::new(1000)));
    vmm.start();
    vmm.run_until(500_000_000);
    let k = &mut vmm.kernels[0];
    let now = k.guest_now_ns();
    let fp = k.state_fingerprint();
    assert!(k.prepare_suspend(now));
    // Deliver a (buggy) tick while suspended: the kernel must ignore it.
    k.on_timer_tick(now + 10_000_000);
    assert_eq!(k.state_fingerprint(), fp, "no state change while suspended");
    k.finish_resume(now);
}
