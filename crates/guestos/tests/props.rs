//! Randomized property tests over the guest kernel's core data
//! structures: TCP reliability under arbitrary loss, buffer-cache
//! equivalence with a reference model, filesystem allocation invariants,
//! timer-wheel completeness, and the temporal-firewall time-freeze
//! property.
//!
//! Hand-rolled case generation driven by `SimRng`; gated behind the
//! `props` feature. Generation is deterministic per case index.
#![cfg(feature = "props")]

use std::collections::{HashMap, HashSet};

use cowstore::BlockData;
use guestos::fs::{BufferCache, Ext3Fs};
use guestos::net::tcp::TcpConn;
use guestos::prog::FileId;
use guestos::timer::{sleep_to_wake_jiffy, TimerWheel};
use guestos::Tid;
use sim::SimRng;

// ---------------------------------------------------------------------
// TCP: exactly-once in-order byte delivery under arbitrary loss.
// ---------------------------------------------------------------------

/// Whatever subset of data segments the network drops, the receiver's
/// application sees exactly the bytes that were sent, and the sender
/// repairs every hole (conservation through retransmission).
#[test]
fn tcp_delivers_every_byte_under_loss() {
    for case in 0..48u64 {
        let mut g = SimRng::for_component(0x7C9, case as u32);
        let total = g.range_u64(1, 200) * 1024;
        let n_drops = g.range_u64(0, 40) as usize;
        let drops: HashSet<usize> =
            (0..n_drops).map(|_| g.range_u64(0, 400) as usize).collect();

        let (mut a, syn) = TcpConn::connect(1000, 2000, 0);
        let (mut b, synack) = TcpConn::accept(2000, 1000, &syn, 0);
        let fx = a.on_segment(&synack, 0);
        for seg in fx.tx {
            let _ = b.on_segment(&seg, 0);
        }
        assert!(a.established() && b.established(), "case {case}");

        let mut now: u64 = 0;
        let mut sent = 0u64;
        let mut a_to_b: u64 = 0; // Data-segment counter for drop decisions.
        let mut guard = 0;
        while b.stats.bytes_delivered < total {
            guard += 1;
            assert!(
                guard < 100_000,
                "case {case}: transfer stuck at {}/{}",
                b.stats.bytes_delivered,
                total
            );
            now += 1_000_000; // 1 ms per round.
            // App keeps the send buffer full.
            let mut tx = Vec::new();
            if sent < total {
                let (n, t) = a.send(total - sent, None, now);
                sent += n;
                tx.extend(t);
            }
            tx.extend(a.on_tick(now));
            // Deliver surviving segments to B; collect B's ACKs.
            let mut acks = Vec::new();
            for seg in tx {
                if seg.len > 0 {
                    a_to_b += 1;
                    if drops.contains(&(a_to_b as usize)) {
                        continue;
                    }
                }
                let fx = b.on_segment(&seg, now);
                acks.extend(fx.tx);
            }
            let _ = b.recv(u64::MAX);
            for ack in acks {
                let fx = a.on_segment(&ack, now);
                for seg in fx.tx {
                    if seg.len > 0 {
                        a_to_b += 1;
                        if drops.contains(&(a_to_b as usize)) {
                            continue;
                        }
                    }
                    let fx2 = b.on_segment(&seg, now);
                    for a2 in fx2.tx {
                        let _ = a.on_segment(&a2, now);
                    }
                }
                let _ = b.recv(u64::MAX);
            }
        }
        assert_eq!(b.stats.bytes_delivered, total, "case {case}: exact byte count");
    }
}

/// The frozen-clock property at the TCP layer: however long the
/// connection sits with unacknowledged data, no retransmission timer can
/// fire while virtual time stands still.
#[test]
fn tcp_rto_never_fires_under_frozen_clock() {
    for case in 0..48u64 {
        let mut g = SimRng::for_component(0x470, case as u32);
        let ticks = g.range_u64(1, 500) as u32;
        let freeze_ns = g.range_u64(0, u32::MAX as u64);

        let (mut a, syn) = TcpConn::connect(1, 2, 0);
        let (b, synack) = TcpConn::accept(2, 1, &syn, 0);
        let _ = a.on_segment(&synack, 0);
        let (_, tx) = a.send(100_000, None, freeze_ns);
        assert!(!tx.is_empty(), "case {case}");
        let _ = b;
        for _ in 0..ticks {
            assert!(a.on_tick(freeze_ns).is_empty(), "case {case}");
        }
        assert_eq!(a.stats.timeouts, 0, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Buffer cache vs reference model.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum CacheOp {
    Read(u64),
    Put(u64, u64, bool),
    TakeDirty(usize),
    Invalidate(u64),
}

fn cache_op(g: &mut SimRng) -> CacheOp {
    // Weights 3:4:1:1, matching the original strategy.
    match g.range_u64(0, 9) {
        0..=2 => CacheOp::Read(g.range_u64(0, 64)),
        3..=6 => CacheOp::Put(g.range_u64(0, 64), g.range_u64(0, u64::MAX), g.chance(0.5)),
        7 => CacheOp::TakeDirty(g.range_u64(1, 16) as usize),
        _ => CacheOp::Invalidate(g.range_u64(0, 64)),
    }
}

/// The O(1) LRU cache never exceeds capacity, never loses a dirty block
/// silently (every dirty block is either still cached, handed back by
/// `take_dirty`, or returned as an eviction), and reads always return
/// the latest written content.
#[test]
fn cache_honors_capacity_and_dirty_accounting() {
    for case in 0..96u64 {
        let mut g = SimRng::for_component(0xCAC4E, case as u32);
        let cap = g.range_u64(2, 16) as usize;
        let n_ops = g.range_u64(1, 200) as usize;
        let ops: Vec<CacheOp> = (0..n_ops).map(|_| cache_op(&mut g)).collect();

        let mut cache = BufferCache::new(cap);
        let mut latest: HashMap<u64, u64> = HashMap::new();
        // Dirty blocks the cache is responsible for.
        let mut dirty_owned: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                CacheOp::Read(vba) => {
                    if let Some(data) = cache.read(vba) {
                        assert_eq!(data, BlockData::Opaque(latest[&vba]), "case {case}");
                    }
                }
                CacheOp::Put(vba, d, dirty) => {
                    latest.insert(vba, d);
                    // A put over an already-dirty block keeps it dirty (the
                    // kernel never clean-overwrites, but the structure's
                    // semantics are content-updating either way).
                    if dirty || dirty_owned.contains_key(&vba) {
                        dirty_owned.insert(vba, d);
                    }
                    if let Some((ev_vba, ev_data)) = cache.put(vba, BlockData::Opaque(d), dirty) {
                        // An evicted dirty block must carry its latest data.
                        let want = dirty_owned.remove(&ev_vba).expect("evicted block was dirty");
                        assert_eq!(ev_data, BlockData::Opaque(want), "case {case}");
                    }
                }
                CacheOp::TakeDirty(n) => {
                    for (vba, data) in cache.take_dirty(n) {
                        let want = dirty_owned.remove(&vba).expect("taken block was dirty");
                        assert_eq!(data, BlockData::Opaque(want), "case {case}");
                    }
                }
                CacheOp::Invalidate(vba) => {
                    cache.invalidate(vba);
                    dirty_owned.remove(&vba);
                    latest.remove(&vba);
                }
            }
            assert!(cache.len() <= cap, "case {case}: capacity violated");
            assert!(cache.dirty_count() <= cache.len(), "case {case}");
        }
        // Every dirty block we still own must be in the cache with the
        // right content.
        for (vba, d) in &dirty_owned {
            assert!(cache.contains(*vba), "case {case}: dirty block {vba} lost");
            assert_eq!(cache.read(*vba), Some(BlockData::Opaque(*d)), "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Filesystem allocation invariants.
// ---------------------------------------------------------------------

/// Allocation bookkeeping: allocated_blocks always equals the blocks
/// reachable from live files; deletes free everything; no double
/// allocation ever happens.
#[test]
fn fs_allocation_is_consistent() {
    for case in 0..64u64 {
        let mut g = SimRng::for_component(0xF5, case as u32);
        let n_ops = g.range_u64(1, 60) as usize;
        let ops: Vec<(u64, u64, bool)> = (0..n_ops)
            .map(|_| (g.range_u64(0, 8), g.range_u64(0, 6), g.chance(0.5)))
            .collect();

        let mut fs = Ext3Fs::format(4096, 4096, 512);
        let mut live_blocks: HashMap<u64, Vec<u64>> = HashMap::new();
        for (file, blocks, delete) in ops {
            let fid = FileId(file);
            if delete {
                if fs.exists(fid) {
                    let (_, freed) = fs.delete(fid).unwrap();
                    let mut had: Vec<u64> = live_blocks.remove(&file).unwrap_or_default();
                    had.sort_unstable();
                    let mut freed = freed;
                    freed.sort_unstable();
                    assert_eq!(freed, had, "case {case}: delete freed a different set");
                }
            } else {
                if !fs.exists(fid) {
                    fs.create(fid).unwrap();
                    live_blocks.entry(file).or_default();
                }
                let offset = live_blocks[&file].len() as u64 * 4096;
                if blocks > 0 {
                    if let Ok(writes) = fs.write(fid, offset, blocks * 4096) {
                        for w in writes {
                            if matches!(w.data, BlockData::Opaque(_)) {
                                // Freshly allocated data blocks only; a
                                // rewrite would reuse, but offsets only grow.
                                let all: Vec<u64> =
                                    live_blocks.values().flatten().copied().collect();
                                assert!(
                                    !all.contains(&w.vba)
                                        || live_blocks[&file].contains(&w.vba),
                                    "case {case}: double allocation of {}",
                                    w.vba
                                );
                                if !live_blocks[&file].contains(&w.vba) {
                                    live_blocks.get_mut(&file).unwrap().push(w.vba);
                                }
                            }
                        }
                    }
                }
            }
            let expect: u64 = live_blocks.values().map(|v| v.len() as u64).sum();
            assert_eq!(
                fs.allocated_blocks(),
                expect,
                "case {case}: allocation count drifted"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Timer wheel completeness.
// ---------------------------------------------------------------------

/// Every armed timer fires exactly once, at the first expire() whose
/// jiffy reaches it, in jiffy order.
#[test]
fn timer_wheel_fires_everything_once() {
    for case in 0..128u64 {
        let mut g = SimRng::for_component(0x713E4, case as u32);
        let n_arms = g.range_u64(1, 80) as usize;
        let arms: Vec<(u64, u32)> = (0..n_arms)
            .map(|_| (g.range_u64(0, 200), g.range_u64(0, 100) as u32))
            .collect();
        let step = g.range_u64(1, 50);

        let mut w = TimerWheel::new();
        for &(j, tid) in &arms {
            w.arm(j, Tid(tid));
        }
        let mut fired: Vec<(u64, Tid)> = Vec::new();
        let mut j = 0;
        while !w.is_empty() {
            j += step;
            for tid in w.expire(j) {
                fired.push((j, tid));
            }
            assert!(j < 1_000, "case {case}: wheel never drained");
        }
        assert_eq!(fired.len(), arms.len(), "case {case}: lost or duplicated timers");
        // Each fires at the first step boundary >= its arm jiffy.
        let mut remaining = arms.clone();
        for (at, tid) in fired {
            let pos = remaining
                .iter()
                .position(|&(j0, t0)| {
                    Tid(t0) == tid && j0 <= at && j0 + step > at - ((at - 1) % step)
                })
                .or_else(|| {
                    remaining
                        .iter()
                        .position(|&(j0, t0)| Tid(t0) == tid && j0 <= at)
                });
            assert!(pos.is_some(), "case {case}: timer fired that was never armed");
            remaining.remove(pos.unwrap());
        }
    }
}

/// usleep rounding: the wake jiffy is always strictly in the future and
/// sleeps at least the requested time once tick quantization is
/// accounted for.
#[test]
fn sleep_rounding_bounds() {
    for case in 0..128u64 {
        let mut g = SimRng::for_component(0x51EE9, case as u32);
        let now = g.range_u64(0, 1_000_000);
        let ns = g.range_u64(0, 10_000_000_000);

        let tick = 10_000_000u64;
        let wake = sleep_to_wake_jiffy(now, ns, tick);
        assert!(wake > now, "case {case}: wake not in the future");
        let slept_ns = (wake - now - 1) * tick; // Worst case: armed just after a tick.
        assert!(slept_ns + tick > ns, "case {case}: woke too early even in the best case");
    }
}
