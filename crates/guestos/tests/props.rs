//! Property-based tests over the guest kernel's core data structures:
//! TCP reliability under arbitrary loss, buffer-cache equivalence with a
//! reference model, filesystem allocation invariants, timer-wheel
//! completeness, and the temporal-firewall time-freeze property.

use std::collections::HashMap;

use cowstore::BlockData;
use guestos::fs::{BufferCache, Ext3Fs};
use guestos::net::tcp::TcpConn;
use guestos::prog::FileId;
use guestos::timer::{sleep_to_wake_jiffy, TimerWheel};
use guestos::Tid;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// TCP: exactly-once in-order byte delivery under arbitrary loss.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever subset of data segments the network drops, the receiver's
    /// application sees exactly the bytes that were sent, and the sender
    /// repairs every hole (conservation through retransmission).
    #[test]
    fn tcp_delivers_every_byte_under_loss(
        total_kb in 1..200u64,
        drops in prop::collection::hash_set(0..400usize, 0..40),
    ) {
        let total = total_kb * 1024;
        let (mut a, syn) = TcpConn::connect(1000, 2000, 0);
        let (mut b, synack) = TcpConn::accept(2000, 1000, &syn, 0);
        let fx = a.on_segment(&synack, 0);
        for seg in fx.tx {
            let _ = b.on_segment(&seg, 0);
        }
        prop_assert!(a.established() && b.established());

        let mut now: u64 = 0;
        let mut sent = 0u64;
        let mut a_to_b: u64 = 0; // Data-segment counter for drop decisions.
        let mut guard = 0;
        while b.stats.bytes_delivered < total {
            guard += 1;
            prop_assert!(guard < 100_000, "transfer stuck at {}/{}", b.stats.bytes_delivered, total);
            now += 1_000_000; // 1 ms per round.
            // App keeps the send buffer full.
            let mut tx = Vec::new();
            if sent < total {
                let (n, t) = a.send(total - sent, None, now);
                sent += n;
                tx.extend(t);
            }
            tx.extend(a.on_tick(now));
            // Deliver surviving segments to B; collect B's ACKs.
            let mut acks = Vec::new();
            for seg in tx {
                if seg.len > 0 {
                    a_to_b += 1;
                    if drops.contains(&(a_to_b as usize)) {
                        continue;
                    }
                }
                let fx = b.on_segment(&seg, now);
                acks.extend(fx.tx);
            }
            let _ = b.recv(u64::MAX);
            for ack in acks {
                let fx = a.on_segment(&ack, now);
                for seg in fx.tx {
                    if seg.len > 0 {
                        a_to_b += 1;
                        if drops.contains(&(a_to_b as usize)) {
                            continue;
                        }
                    }
                    let fx2 = b.on_segment(&seg, now);
                    for a2 in fx2.tx {
                        let _ = a.on_segment(&a2, now);
                    }
                }
                let _ = b.recv(u64::MAX);
            }
        }
        prop_assert_eq!(b.stats.bytes_delivered, total, "exact byte count");
    }

    /// The frozen-clock property at the TCP layer: however long the
    /// connection sits with unacknowledged data, no retransmission timer
    /// can fire while virtual time stands still.
    #[test]
    fn tcp_rto_never_fires_under_frozen_clock(ticks in 1..500u32, freeze_ns in 0..u32::MAX) {
        let (mut a, syn) = TcpConn::connect(1, 2, 0);
        let (b, synack) = TcpConn::accept(2, 1, &syn, 0);
        let _ = a.on_segment(&synack, 0);
        let (_, tx) = a.send(100_000, None, freeze_ns as u64);
        prop_assert!(!tx.is_empty());
        let _ = b;
        for _ in 0..ticks {
            prop_assert!(a.on_tick(freeze_ns as u64).is_empty());
        }
        prop_assert_eq!(a.stats.timeouts, 0);
    }
}

// ---------------------------------------------------------------------
// Buffer cache vs reference model.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum CacheOp {
    Read(u64),
    Put(u64, u64, bool),
    TakeDirty(usize),
    Invalidate(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        3 => (0..64u64).prop_map(CacheOp::Read),
        4 => (0..64u64, any::<u64>(), any::<bool>()).prop_map(|(v, d, w)| CacheOp::Put(v, d, w)),
        1 => (1..16usize).prop_map(CacheOp::TakeDirty),
        1 => (0..64u64).prop_map(CacheOp::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The O(1) LRU cache never exceeds capacity, never loses a dirty
    /// block silently (every dirty block is either still cached, handed
    /// back by `take_dirty`, or returned as an eviction), and reads always
    /// return the latest written content.
    #[test]
    fn cache_honors_capacity_and_dirty_accounting(
        cap in 2..16usize,
        ops in prop::collection::vec(cache_op(), 1..200),
    ) {
        let mut cache = BufferCache::new(cap);
        let mut latest: HashMap<u64, u64> = HashMap::new();
        // Dirty blocks the cache is responsible for.
        let mut dirty_owned: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                CacheOp::Read(vba) => {
                    if let Some(data) = cache.read(vba) {
                        prop_assert_eq!(data, BlockData::Opaque(latest[&vba]));
                    }
                }
                CacheOp::Put(vba, d, dirty) => {
                    latest.insert(vba, d);
                    // A put over an already-dirty block keeps it dirty (the
                    // kernel never clean-overwrites, but the structure's
                    // semantics are content-updating either way).
                    if dirty || dirty_owned.contains_key(&vba) {
                        dirty_owned.insert(vba, d);
                    }
                    if let Some((ev_vba, ev_data)) = cache.put(vba, BlockData::Opaque(d), dirty) {
                        // An evicted dirty block must carry its latest data.
                        let want = dirty_owned.remove(&ev_vba).expect("evicted block was dirty");
                        prop_assert_eq!(ev_data, BlockData::Opaque(want));
                    }
                }
                CacheOp::TakeDirty(n) => {
                    for (vba, data) in cache.take_dirty(n) {
                        let want = dirty_owned.remove(&vba).expect("taken block was dirty");
                        prop_assert_eq!(data, BlockData::Opaque(want));
                    }
                }
                CacheOp::Invalidate(vba) => {
                    cache.invalidate(vba);
                    dirty_owned.remove(&vba);
                    latest.remove(&vba);
                }
            }
            prop_assert!(cache.len() <= cap, "capacity violated");
            prop_assert!(cache.dirty_count() <= cache.len());
        }
        // Every dirty block we still own must be in the cache with the
        // right content.
        for (vba, d) in &dirty_owned {
            prop_assert!(cache.contains(*vba), "dirty block {} lost", vba);
            prop_assert_eq!(cache.read(*vba), Some(BlockData::Opaque(*d)));
        }
    }
}

// ---------------------------------------------------------------------
// Filesystem allocation invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Allocation bookkeeping: allocated_blocks always equals the blocks
    /// reachable from live files; deletes free everything; no double
    /// allocation ever happens.
    #[test]
    fn fs_allocation_is_consistent(
        ops in prop::collection::vec(
            (0..8u64, 0..6u64, any::<bool>()),
            1..60
        ),
    ) {
        let mut fs = Ext3Fs::format(4096, 4096, 512);
        let mut live_blocks: HashMap<u64, Vec<u64>> = HashMap::new();
        for (file, blocks, delete) in ops {
            let fid = FileId(file);
            if delete {
                if fs.exists(fid) {
                    let (_, freed) = fs.delete(fid).unwrap();
                    let mut had: Vec<u64> = live_blocks.remove(&file).unwrap_or_default();
                    had.sort_unstable();
                    let mut freed = freed;
                    freed.sort_unstable();
                    prop_assert_eq!(freed, had, "delete freed a different set");
                }
            } else {
                if !fs.exists(fid) {
                    fs.create(fid).unwrap();
                    live_blocks.entry(file).or_default();
                }
                let offset = live_blocks[&file].len() as u64 * 4096;
                if blocks > 0 {
                    if let Ok(writes) = fs.write(fid, offset, blocks * 4096) {
                        for w in writes {
                            if matches!(w.data, BlockData::Opaque(_)) {
                                // Freshly allocated data blocks only; a
                                // rewrite would reuse, but offsets only grow.
                                let all: Vec<u64> =
                                    live_blocks.values().flatten().copied().collect();
                                prop_assert!(
                                    !all.contains(&w.vba) ||
                                    live_blocks[&file].contains(&w.vba),
                                    "double allocation of {}", w.vba
                                );
                                if !live_blocks[&file].contains(&w.vba) {
                                    live_blocks.get_mut(&file).unwrap().push(w.vba);
                                }
                            }
                        }
                    }
                }
            }
            let expect: u64 = live_blocks.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(fs.allocated_blocks(), expect, "allocation count drifted");
        }
    }
}

// ---------------------------------------------------------------------
// Timer wheel completeness.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every armed timer fires exactly once, at the first expire() whose
    /// jiffy reaches it, in jiffy order.
    #[test]
    fn timer_wheel_fires_everything_once(
        arms in prop::collection::vec((0..200u64, 0..100u32), 1..80),
        step in 1..50u64,
    ) {
        let mut w = TimerWheel::new();
        for &(j, tid) in &arms {
            w.arm(j, Tid(tid));
        }
        let mut fired: Vec<(u64, Tid)> = Vec::new();
        let mut j = 0;
        while !w.is_empty() {
            j += step;
            for tid in w.expire(j) {
                fired.push((j, tid));
            }
            prop_assert!(j < 1_000, "wheel never drained");
        }
        prop_assert_eq!(fired.len(), arms.len(), "lost or duplicated timers");
        // Each fires at the first step boundary >= its arm jiffy.
        let mut remaining = arms.clone();
        for (at, tid) in fired {
            let pos = remaining
                .iter()
                .position(|&(j0, t0)| Tid(t0) == tid && j0 <= at && j0 + step > at - ((at - 1) % step))
                .or_else(|| remaining.iter().position(|&(j0, t0)| Tid(t0) == tid && j0 <= at));
            prop_assert!(pos.is_some(), "timer fired that was never armed");
            remaining.remove(pos.unwrap());
        }
    }

    /// usleep rounding: the wake jiffy is always strictly in the future
    /// and sleeps at least the requested time once tick quantization is
    /// accounted for.
    #[test]
    fn sleep_rounding_bounds(now in 0..1_000_000u64, ns in 0..10_000_000_000u64) {
        let tick = 10_000_000u64;
        let wake = sleep_to_wake_jiffy(now, ns, tick);
        prop_assert!(wake > now, "wake not in the future");
        let slept_ns = (wake - now - 1) * tick; // Worst case: armed just after a tick.
        prop_assert!(slept_ns + tick > ns, "woke too early even in the best case");
    }
}
