//! The guest-program (user process) interface.
//!
//! Programs are coroutine-style state machines: the kernel calls
//! [`GuestProg::step`] with the result of the previous syscall, and the
//! program returns its next [`Syscall`]. Blocking syscalls suspend the
//! thread until the kernel completes them; non-blocking ones are answered
//! in the same dispatch. Programs observe time *only* through
//! [`Syscall::Gettimeofday`] — which returns virtualized guest time, so a
//! transparent checkpoint is invisible to them by construction and any
//! residual error shows up exactly where the paper measures it.

use std::any::Any;

use hwsim::NodeAddr;

use crate::net::tcp::AppMsg;

/// A user-visible socket descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SockFd(pub u32);

/// A file handle (paths are pre-resolved ids; the FS is flat).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u64);

/// Identifies a program instance within a kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProgId(pub u32);

/// A request to an Emulab control service (NFS/DNS on the ops node).
///
/// Experiments in Emulab routinely use the NFS-mounted project storage for
/// scripts and results (§2); §5.2's timestamp transduction exists exactly
/// because these services live *outside* the checkpointed world.
#[derive(Clone, Copy, Debug)]
pub enum CtrlReq {
    /// Stat a file on the NFS server.
    NfsGetattr { file: u64 },
    /// Append `bytes` to a file (server stamps mtime).
    NfsWrite { file: u64, bytes: u64 },
    /// Read a file (returns size + mtime).
    NfsRead { file: u64 },
    /// Resolve a testbed host name.
    DnsLookup { host: u32 },
}

/// A control-service response. All timestamps are transduced to guest
/// virtual time by the hypervisor boundary before delivery (§5.2).
#[derive(Clone, Copy, Debug)]
pub enum CtrlResp {
    NfsAttr { size: u64, mtime_ns: u64 },
    NfsWriteOk { size: u64, mtime_ns: u64 },
    NfsData { bytes: u64, mtime_ns: u64 },
    DnsAddr { addr: u32 },
    NotFound,
}

/// A system call issued by a guest program.
pub enum Syscall {
    /// Read the wall clock (non-blocking). Returns [`SysRet::Time`].
    Gettimeofday,
    /// Sleep at least `ns`. Linux rounds up to the next timer tick plus
    /// one: usleep(10 ms) at HZ=100 sleeps ~20 ms (the Fig 4 baseline).
    Sleep { ns: u64 },
    /// Burn `ns` of CPU time (stretched by dom0 contention).
    Compute { ns: u64 },
    /// Give up the CPU for one scheduling round.
    Yield,

    /// Open a listening port. Returns [`SysRet::Ok`].
    Listen { port: u16 },
    /// Block until a connection arrives on `port`. Returns
    /// [`SysRet::Sock`].
    Accept { port: u16 },
    /// Non-blocking accept: returns [`SysRet::Sock`] if a handshake-complete
    /// connection is queued, [`SysRet::Ok`] otherwise.
    AcceptNb { port: u16 },
    /// Actively connect to `dst:port`. Blocks until established.
    Connect { dst: NodeAddr, port: u16 },
    /// Queue `bytes` for transmission, optionally ending with an
    /// application message marker. Blocks while the send buffer is full.
    /// Returns [`SysRet::Sent`].
    Send {
        fd: SockFd,
        bytes: u64,
        msg: Option<AppMsg>,
    },
    /// Block until at least one byte or message is readable; consumes up
    /// to `max` bytes. Returns [`SysRet::Recvd`].
    Recv { fd: SockFd, max: u64 },
    /// Non-blocking receive: returns immediately, possibly with zero bytes
    /// and no messages (poll-loop servers such as BitTorrent use this).
    RecvNb { fd: SockFd, max: u64 },
    /// Non-blocking send: returns [`SysRet::Sent`] with zero if the send
    /// buffer is full.
    SendNb {
        fd: SockFd,
        bytes: u64,
        msg: Option<AppMsg>,
    },
    /// Close a socket (sends FIN).
    CloseSock { fd: SockFd },

    /// Create an empty file. Returns [`SysRet::Ok`].
    Create { file: FileId },
    /// Write `bytes` at `offset`; may block on writeback throttling.
    /// Byte-at-a-time stdio workloads (Bonnie's character tests) pair this
    /// with an explicit [`Syscall::Compute`] for their per-byte CPU cost.
    /// Returns [`SysRet::Ok`].
    Write {
        file: FileId,
        offset: u64,
        bytes: u64,
    },
    /// Read `bytes` at `offset`; blocks on cache misses.
    Read {
        file: FileId,
        offset: u64,
        bytes: u64,
    },
    /// Delete a file, freeing its blocks (bitmap updates).
    Delete { file: FileId },
    /// Flush the buffer cache; blocks until stable.
    Sync,

    /// Issue an RPC to the Emulab control services (NFS/DNS); blocks until
    /// the reply arrives. Returns [`SysRet::Rpc`].
    CtrlRpc { req: CtrlReq },

    /// Request an immediate coordinated checkpoint of the whole experiment
    /// — the §4.3 event-driven trigger ("execution of a break or watch
    /// point"). Non-blocking: the checkpoint happens shortly after, and is
    /// transparent, so the program cannot observe when.
    TriggerCheckpoint,

    /// Terminate the program.
    Exit,
}

/// The kernel's answer to the previous syscall.
#[derive(Clone)]
pub enum SysRet {
    /// First activation: no previous syscall.
    Start,
    /// Generic success.
    Ok,
    /// `Gettimeofday` result, guest-virtual nanoseconds.
    Time(u64),
    /// A new socket (from `Accept` or `Connect`).
    Sock(SockFd),
    /// Bytes accepted into the send buffer.
    Sent(u64),
    /// Bytes read plus any application messages that surfaced.
    Recvd { bytes: u64, msgs: Vec<AppMsg> },
    /// A control-service reply (timestamps already in guest time).
    Rpc(CtrlResp),
    /// The operation failed.
    Err(&'static str),
}

impl std::fmt::Debug for SysRet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysRet::Start => write!(f, "Start"),
            SysRet::Ok => write!(f, "Ok"),
            SysRet::Time(t) => write!(f, "Time({t})"),
            SysRet::Sock(fd) => write!(f, "Sock({fd:?})"),
            SysRet::Sent(n) => write!(f, "Sent({n})"),
            SysRet::Recvd { bytes, msgs } => write!(f, "Recvd({bytes}B, {} msgs)", msgs.len()),
            SysRet::Rpc(r) => write!(f, "Rpc({r:?})"),
            SysRet::Err(e) => write!(f, "Err({e})"),
        }
    }
}

/// A guest user program.
///
/// Implementations keep explicit state so kernels (and therefore
/// checkpoints) can be cloned.
pub trait GuestProg: Send {
    /// Advances the program: `ret` answers the previous syscall.
    fn step(&mut self, ret: SysRet) -> Syscall;

    /// Clones the program state (checkpointing).
    fn clone_box(&self) -> Box<dyn GuestProg>;

    /// Upcast so experiments can read results back out.
    fn as_any(&self) -> &dyn Any;

    /// Program name for diagnostics.
    fn name(&self) -> &str {
        "prog"
    }
}

impl Clone for Box<dyn GuestProg> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A trivial program that exits immediately (placeholder / tests).
#[derive(Clone, Debug, Default)]
pub struct NullProg;

impl GuestProg for NullProg {
    fn step(&mut self, _ret: SysRet) -> Syscall {
        Syscall::Exit
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "null"
    }
}
