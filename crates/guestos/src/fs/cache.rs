//! The guest buffer (page) cache: an O(1) LRU with dirty tracking.
//!
//! Bonnie++ in the paper operates on a file "twice the size of the guest
//! system's memory" precisely to defeat this cache; the cache therefore
//! has to behave like the real thing — hits are free, misses go to the
//! branching store, dirty evictions force writeback, and a dirty
//! high-water mark throttles writers to disk speed.

use std::collections::HashMap;

use ckptstore::{Dec, DecodeError, Enc};
use cowstore::BlockData;

/// Slab index used by the intrusive LRU list.
type Slot = u32;

const NIL: Slot = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    vba: u64,
    data: BlockData,
    dirty: bool,
    prev: Slot,
    next: Slot,
}

/// An LRU block cache with all operations O(1).
#[derive(Clone, Debug)]
pub struct BufferCache {
    cap: usize,
    map: HashMap<u64, Slot>,
    slab: Vec<Node>,
    free: Vec<Slot>,
    head: Slot, // Most recently used.
    tail: Slot, // Least recently used.
    dirty: usize,
    /// Hit/miss counters.
    pub hits: u64,
    pub misses: u64,
}

impl BufferCache {
    /// Creates a cache holding up to `cap` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "zero-capacity cache");
        BufferCache {
            cap,
            map: HashMap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            dirty: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn unlink(&mut self, s: Slot) {
        let (p, n) = {
            let node = &self.slab[s as usize];
            (node.prev, node.next)
        };
        if p != NIL {
            self.slab[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slab[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, s: Slot) {
        self.slab[s as usize].prev = NIL;
        self.slab[s as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    fn touch(&mut self, s: Slot) {
        if self.head == s {
            return;
        }
        self.unlink(s);
        self.push_front(s);
    }

    /// Looks up a block, promoting it to most-recently-used.
    pub fn read(&mut self, vba: u64) -> Option<BlockData> {
        match self.map.get(&vba).copied() {
            Some(s) => {
                self.hits += 1;
                self.touch(s);
                Some(self.slab[s as usize].data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True if `vba` is cached (no LRU promotion, no counters).
    pub fn contains(&self, vba: u64) -> bool {
        self.map.contains_key(&vba)
    }

    /// Inserts or updates a block. Returns any dirty block evicted to make
    /// room (the caller must write it back).
    pub fn put(&mut self, vba: u64, data: BlockData, dirty: bool) -> Option<(u64, BlockData)> {
        if let Some(&s) = self.map.get(&vba) {
            let node = &mut self.slab[s as usize];
            if dirty && !node.dirty {
                self.dirty += 1;
            }
            node.data = data;
            node.dirty = node.dirty || dirty;
            self.touch(s);
            return None;
        }
        let evicted = if self.map.len() >= self.cap {
            self.evict_lru()
        } else {
            None
        };
        let s = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Node {
                    vba,
                    data,
                    dirty,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slab.push(Node {
                    vba,
                    data,
                    dirty,
                    prev: NIL,
                    next: NIL,
                });
                (self.slab.len() - 1) as Slot
            }
        };
        if dirty {
            self.dirty += 1;
        }
        self.map.insert(vba, s);
        self.push_front(s);
        evicted
    }

    fn evict_lru(&mut self) -> Option<(u64, BlockData)> {
        // Prefer evicting a clean block: walk from the tail. (Bounded scan;
        // if everything is dirty, evict the LRU dirty block and return it.)
        let mut s = self.tail;
        let mut scanned = 0;
        while s != NIL && scanned < 32 {
            if !self.slab[s as usize].dirty {
                let vba = self.slab[s as usize].vba;
                self.remove_slot(s);
                self.map.remove(&vba);
                return None;
            }
            s = self.slab[s as usize].prev;
            scanned += 1;
        }
        // Evict the dirtiest-positioned LRU block and hand it back.
        let s = self.tail;
        let node = self.slab[s as usize].clone();
        self.remove_slot(s);
        self.map.remove(&node.vba);
        if node.dirty {
            self.dirty -= 1;
            Some((node.vba, node.data))
        } else {
            None
        }
    }

    fn remove_slot(&mut self, s: Slot) {
        self.unlink(s);
        self.free.push(s);
    }

    /// Removes a block outright (file deletion invalidates its pages).
    pub fn invalidate(&mut self, vba: u64) {
        if let Some(s) = self.map.remove(&vba) {
            if self.slab[s as usize].dirty {
                self.dirty -= 1;
            }
            self.remove_slot(s);
        }
    }

    /// Takes up to `limit` dirty blocks (LRU-first), marking them clean.
    /// The caller writes them back.
    pub fn take_dirty(&mut self, limit: usize) -> Vec<(u64, BlockData)> {
        let mut out = Vec::new();
        let mut s = self.tail;
        while s != NIL && out.len() < limit {
            let node = &mut self.slab[s as usize];
            if node.dirty {
                node.dirty = false;
                self.dirty -= 1;
                out.push((node.vba, node.data.clone()));
            }
            s = self.slab[s as usize].prev;
        }
        out
    }

    /// Serializes the cache as blocks in LRU→MRU order; decode replays them
    /// through [`BufferCache::put`] so the recency list, slab, and dirty
    /// count come back identical without serializing the intrusive links.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.u64(self.cap as u64);
        e.u64(self.hits);
        e.u64(self.misses);
        e.seq(self.map.len());
        let mut s = self.tail;
        while s != NIL {
            let node = &self.slab[s as usize];
            e.u64(node.vba);
            node.data.encode_wire(e);
            e.bool(node.dirty);
            s = node.prev;
        }
    }

    /// Inverse of [`BufferCache::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let cap = d.u64()? as usize;
        if cap == 0 {
            return Err(DecodeError::Invalid("zero-capacity cache"));
        }
        let hits = d.u64()?;
        let misses = d.u64()?;
        let n = d.seq()?;
        if n > cap {
            return Err(DecodeError::Invalid("cache block count exceeds capacity"));
        }
        let mut c = BufferCache::new(cap);
        for _ in 0..n {
            let vba = d.u64()?;
            let data = BlockData::decode_wire(d)?;
            let dirty = d.bool()?;
            if c.contains(vba) {
                return Err(DecodeError::Invalid("duplicate cached vba"));
            }
            c.put(vba, data, dirty);
        }
        c.hits = hits;
        c.misses = misses;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: u64) -> BlockData {
        BlockData::Opaque(x)
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = BufferCache::new(4);
        assert!(c.read(1).is_none());
        c.put(1, d(10), false);
        assert_eq!(c.read(1), Some(d(10)));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_clean_block() {
        let mut c = BufferCache::new(3);
        c.put(1, d(1), false);
        c.put(2, d(2), false);
        c.put(3, d(3), false);
        let _ = c.read(1); // 1 is now MRU; LRU is 2.
        c.put(4, d(4), false);
        assert!(c.contains(1));
        assert!(!c.contains(2), "2 was LRU");
        assert!(c.contains(3) && c.contains(4));
    }

    #[test]
    fn dirty_eviction_hands_block_back_for_writeback() {
        let mut c = BufferCache::new(2);
        assert!(c.put(1, d(1), true).is_none());
        assert!(c.put(2, d(2), true).is_none());
        let ev = c.put(3, d(3), true);
        assert_eq!(ev, Some((1, d(1))), "LRU dirty block must be written back");
        assert_eq!(c.dirty_count(), 2);
    }

    #[test]
    fn clean_blocks_preferred_for_eviction() {
        let mut c = BufferCache::new(3);
        c.put(1, d(1), true);
        c.put(2, d(2), false);
        c.put(3, d(3), true);
        let ev = c.put(4, d(4), false);
        assert!(ev.is_none(), "clean block 2 evicted silently");
        assert!(c.contains(1) && c.contains(3) && c.contains(4));
    }

    #[test]
    fn take_dirty_cleans_and_returns_lru_first() {
        let mut c = BufferCache::new(4);
        c.put(1, d(1), true);
        c.put(2, d(2), false);
        c.put(3, d(3), true);
        let taken = c.take_dirty(10);
        assert_eq!(taken, vec![(1, d(1)), (3, d(3))]);
        assert_eq!(c.dirty_count(), 0);
        assert!(c.contains(1), "writeback does not evict");
    }

    #[test]
    fn overwrite_marks_dirty_once() {
        let mut c = BufferCache::new(4);
        c.put(1, d(1), true);
        c.put(1, d(2), true);
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.read(1), Some(d(2)));
    }

    #[test]
    fn invalidate_removes_and_uncounts() {
        let mut c = BufferCache::new(4);
        c.put(1, d(1), true);
        c.invalidate(1);
        assert!(!c.contains(1));
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn heavy_churn_preserves_capacity_invariant() {
        let mut c = BufferCache::new(64);
        for i in 0..10_000u64 {
            let _ = c.put(i % 200, d(i), i % 3 == 0);
            let _ = c.read(i % 97);
            assert!(c.len() <= 64);
            if i % 50 == 0 {
                let _ = c.take_dirty(8);
            }
        }
    }
}
