//! An ext3-like filesystem: block groups, allocation bitmaps, flat inodes.
//!
//! What matters for the paper is the *on-disk metadata shape*: allocation
//! state lives in per-group bitmap blocks at fixed addresses, and every
//! allocate/free updates the corresponding bitmap block through the block
//! layer — which is what the free-block-elimination snoop decodes below
//! the guest (§5.1). Files are flat (id → block list); directories and
//! permissions add nothing to the evaluation and are omitted.

pub mod cache;

pub use cache::BufferCache;

use std::collections::HashMap;

use ckptstore::{Dec, DecodeError, Enc};
use cowstore::{BitmapBlock, BlockData};

use crate::prog::FileId;

/// A file's metadata.
#[derive(Clone, Debug, Default)]
pub struct Inode {
    /// Logical block index → vba.
    pub blocks: HashMap<u64, u64>,
    /// File size in bytes.
    pub size: u64,
}

/// A block write the filesystem needs persisted (through the cache).
#[derive(Clone, Debug, PartialEq)]
pub struct FsWrite {
    pub vba: u64,
    pub data: BlockData,
}

/// The filesystem.
#[derive(Clone, Debug)]
pub struct Ext3Fs {
    block_size: u32,
    blocks_per_group: u32,
    groups: Vec<BitmapBlock>,
    files: HashMap<FileId, Inode>,
    rotor: u32,
    /// Monotonic content version, so rewrites produce distinct block data.
    version: u64,
    /// Allocation failures (disk full).
    pub enospc: u64,
}

impl Ext3Fs {
    /// Formats a filesystem over `total_blocks`. The first block of each
    /// group is its allocation bitmap (pre-allocated in itself).
    pub fn format(total_blocks: u64, block_size: u32, blocks_per_group: u32) -> Self {
        assert!(blocks_per_group >= 16, "group too small");
        let ngroups = total_blocks.div_ceil(blocks_per_group as u64) as u32;
        let mut groups = Vec::with_capacity(ngroups as usize);
        for g in 0..ngroups {
            let start = g as u64 * blocks_per_group as u64;
            let count = blocks_per_group.min((total_blocks - start) as u32);
            // Bit 0 = the bitmap block itself: allocated.
            let bm = BitmapBlock::new_free(g, start, count).with(0, true);
            groups.push(bm);
        }
        Ext3Fs {
            block_size,
            blocks_per_group,
            groups,
            files: HashMap::new(),
            rotor: 0,
            version: 0,
            enospc: 0,
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// The vba of group `g`'s bitmap block.
    pub fn bitmap_vba(&self, g: u32) -> u64 {
        g as u64 * self.blocks_per_group as u64
    }

    /// Total allocated data blocks (excluding bitmap blocks themselves).
    pub fn allocated_blocks(&self) -> u64 {
        self.groups
            .iter()
            .map(|b| b.allocated_count() as u64 - 1)
            .sum()
    }

    /// Whether a file exists.
    pub fn exists(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// A file's current size in bytes.
    pub fn size_of(&self, file: FileId) -> Option<u64> {
        self.files.get(&file).map(|i| i.size)
    }

    /// Creates an empty file.
    ///
    /// Returns `Err` if it already exists.
    pub fn create(&mut self, file: FileId) -> Result<(), &'static str> {
        if self.files.contains_key(&file) {
            return Err("exists");
        }
        self.files.insert(file, Inode::default());
        Ok(())
    }

    fn alloc_block(&mut self) -> Option<(u64, FsWrite)> {
        let ngroups = self.groups.len() as u32;
        for probe in 0..ngroups {
            let g = ((self.rotor + probe) % ngroups) as usize;
            if let Some(bit) = self.groups[g].first_free() {
                let newbm = self.groups[g].with(bit, true);
                let vba = newbm.group_start + bit as u64;
                let write = FsWrite {
                    vba: self.bitmap_vba(g as u32),
                    data: BlockData::Bitmap(newbm.clone()),
                };
                self.groups[g] = newbm;
                self.rotor = g as u32;
                return Some((vba, write));
            }
        }
        self.enospc += 1;
        None
    }

    /// Writes `[offset, offset+bytes)` of `file`, allocating blocks as
    /// needed. Returns the block writes to persist (data blocks plus any
    /// bitmap updates) — the caller pushes them through the buffer cache.
    ///
    /// Returns `Err` if the file does not exist or the disk fills up.
    pub fn write(
        &mut self,
        file: FileId,
        offset: u64,
        bytes: u64,
    ) -> Result<Vec<FsWrite>, &'static str> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        if !self.files.contains_key(&file) {
            return Err("no such file");
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + bytes - 1) / bs;
        let mut out = Vec::new();
        self.version += 1;
        let version = self.version;
        for idx in first..=last {
            let existing = self.files.get(&file).expect("checked").blocks.get(&idx).copied();
            let vba = match existing {
                Some(v) => v,
                None => {
                    let Some((vba, bmw)) = self.alloc_block() else {
                        return Err("enospc");
                    };
                    // Dedupe consecutive bitmap writes to the same group.
                    if out.last().map(|w: &FsWrite| w.vba) != Some(bmw.vba) {
                        out.push(bmw);
                    } else {
                        *out.last_mut().expect("nonempty") = bmw;
                    }
                    self.files
                        .get_mut(&file)
                        .expect("checked")
                        .blocks
                        .insert(idx, vba);
                    vba
                }
            };
            // Content fingerprint: (file, block index, version).
            let fp = file.0 ^ idx.wrapping_mul(0x9E37_79B9) ^ version.wrapping_mul(0xDEAD_BEEF);
            out.push(FsWrite {
                vba,
                data: BlockData::Opaque(fp),
            });
        }
        let inode = self.files.get_mut(&file).expect("checked");
        inode.size = inode.size.max(offset + bytes);
        Ok(out)
    }

    /// Resolves `[offset, offset+bytes)` of `file` to vbas for reading.
    /// Holes (never-written blocks) are absent from the result — they read
    /// as zeros with no I/O.
    pub fn read_vbas(&self, file: FileId, offset: u64, bytes: u64) -> Result<Vec<u64>, &'static str> {
        let inode = self.files.get(&file).ok_or("no such file")?;
        if bytes == 0 {
            return Ok(Vec::new());
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + bytes - 1) / bs;
        Ok((first..=last)
            .filter_map(|idx| inode.blocks.get(&idx).copied())
            .collect())
    }

    /// Deletes a file, freeing its blocks. Returns the bitmap writes to
    /// persist and the freed vbas (for cache invalidation).
    pub fn delete(&mut self, file: FileId) -> Result<(Vec<FsWrite>, Vec<u64>), &'static str> {
        let inode = self.files.remove(&file).ok_or("no such file")?;
        let mut freed: Vec<u64> = inode.blocks.values().copied().collect();
        freed.sort_unstable();
        // Batch bitmap updates per group.
        let mut touched: HashMap<u32, BitmapBlock> = HashMap::new();
        for &vba in &freed {
            let g = (vba / self.blocks_per_group as u64) as u32;
            let bm = touched
                .entry(g)
                .or_insert_with(|| self.groups[g as usize].clone());
            let bit = (vba - bm.group_start) as u32;
            *bm = bm.with(bit, false);
        }
        let mut writes = Vec::new();
        for (g, bm) in touched {
            self.groups[g as usize] = bm.clone();
            writes.push(FsWrite {
                vba: self.bitmap_vba(g),
                data: BlockData::Bitmap(bm),
            });
        }
        writes.sort_by_key(|w| w.vba);
        Ok((writes, freed))
    }

    /// Serializes the filesystem: geometry, group bitmaps in order, files
    /// sorted by id with their block maps sorted by logical index.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.u32(self.block_size);
        e.u32(self.blocks_per_group);
        e.seq(self.groups.len());
        for g in &self.groups {
            g.encode_wire(e);
        }
        let mut ids: Vec<FileId> = self.files.keys().copied().collect();
        ids.sort_unstable_by_key(|f| f.0);
        e.seq(ids.len());
        for id in ids {
            let inode = &self.files[&id];
            e.u64(id.0);
            e.u64(inode.size);
            let mut blocks: Vec<(u64, u64)> =
                inode.blocks.iter().map(|(&i, &v)| (i, v)).collect();
            blocks.sort_unstable();
            e.seq(blocks.len());
            for (idx, vba) in blocks {
                e.u64(idx);
                e.u64(vba);
            }
        }
        e.u32(self.rotor);
        e.u64(self.version);
        e.u64(self.enospc);
    }

    /// Inverse of [`Ext3Fs::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let block_size = d.u32()?;
        let blocks_per_group = d.u32()?;
        let ngroups = d.seq()?;
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            groups.push(BitmapBlock::decode_wire(d)?);
        }
        let nfiles = d.seq()?;
        let mut files = HashMap::with_capacity(nfiles);
        for _ in 0..nfiles {
            let id = FileId(d.u64()?);
            let size = d.u64()?;
            let nblocks = d.seq()?;
            let mut blocks = HashMap::with_capacity(nblocks);
            for _ in 0..nblocks {
                let idx = d.u64()?;
                if blocks.insert(idx, d.u64()?).is_some() {
                    return Err(DecodeError::Invalid("duplicate inode block index"));
                }
            }
            if files.insert(id, Inode { blocks, size }).is_some() {
                return Err(DecodeError::Invalid("duplicate file id"));
            }
        }
        Ok(Ext3Fs {
            block_size,
            blocks_per_group,
            groups,
            files,
            rotor: d.u32()?,
            version: d.u64()?,
            enospc: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Ext3Fs {
        Ext3Fs::format(10_000, 4096, 1000)
    }

    #[test]
    fn format_reserves_bitmap_blocks() {
        let f = fs();
        assert_eq!(f.allocated_blocks(), 0);
        // Bitmap vbas at group starts.
        assert_eq!(f.bitmap_vba(0), 0);
        assert_eq!(f.bitmap_vba(3), 3000);
    }

    #[test]
    fn write_allocates_blocks_and_updates_bitmaps() {
        let mut f = fs();
        f.create(FileId(1)).unwrap();
        // 3 blocks worth of data.
        let writes = f.write(FileId(1), 0, 3 * 4096).unwrap();
        let bitmap_writes = writes
            .iter()
            .filter(|w| matches!(w.data, BlockData::Bitmap(_)))
            .count();
        let data_writes = writes.len() - bitmap_writes;
        assert_eq!(data_writes, 3);
        assert!(bitmap_writes >= 1, "allocation persisted a bitmap");
        assert_eq!(f.allocated_blocks(), 3);
        assert_eq!(f.size_of(FileId(1)), Some(3 * 4096));
    }

    #[test]
    fn rewrite_does_not_reallocate() {
        let mut f = fs();
        f.create(FileId(1)).unwrap();
        let w1 = f.write(FileId(1), 0, 4096).unwrap();
        let w2 = f.write(FileId(1), 0, 4096).unwrap();
        assert_eq!(f.allocated_blocks(), 1);
        // Rewrite has no bitmap update and different content.
        assert!(w2.iter().all(|w| matches!(w.data, BlockData::Opaque(_))));
        let d1 = w1.iter().find(|w| matches!(w.data, BlockData::Opaque(_))).unwrap();
        let d2 = &w2[0];
        assert_eq!(d1.vba, d2.vba);
        assert_ne!(d1.data, d2.data, "new version, new content");
    }

    #[test]
    fn sequential_writes_allocate_contiguously() {
        let mut f = fs();
        f.create(FileId(1)).unwrap();
        let writes = f.write(FileId(1), 0, 10 * 4096).unwrap();
        let data_vbas: Vec<u64> = writes
            .iter()
            .filter(|w| matches!(w.data, BlockData::Opaque(_)))
            .map(|w| w.vba)
            .collect();
        for pair in data_vbas.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "contiguous allocation");
        }
    }

    #[test]
    fn delete_frees_blocks_in_bitmaps() {
        let mut f = fs();
        f.create(FileId(1)).unwrap();
        let _ = f.write(FileId(1), 0, 5 * 4096).unwrap();
        assert_eq!(f.allocated_blocks(), 5);
        let (writes, freed) = f.delete(FileId(1)).unwrap();
        assert_eq!(freed.len(), 5);
        assert_eq!(f.allocated_blocks(), 0);
        assert!(writes
            .iter()
            .all(|w| matches!(w.data, BlockData::Bitmap(_))));
        assert!(!f.exists(FileId(1)));
    }

    #[test]
    fn read_vbas_skips_holes() {
        let mut f = fs();
        f.create(FileId(1)).unwrap();
        // Write only the third block.
        let _ = f.write(FileId(1), 2 * 4096, 4096).unwrap();
        let vbas = f.read_vbas(FileId(1), 0, 3 * 4096).unwrap();
        assert_eq!(vbas.len(), 1);
    }

    #[test]
    fn disk_fills_up_with_enospc() {
        let mut f = Ext3Fs::format(64, 4096, 32);
        f.create(FileId(1)).unwrap();
        // 62 data blocks available (2 bitmaps).
        let r = f.write(FileId(1), 0, 63 * 4096);
        assert_eq!(r, Err("enospc"));
        assert_eq!(f.enospc, 1);
    }

    #[test]
    fn create_twice_fails() {
        let mut f = fs();
        f.create(FileId(1)).unwrap();
        assert_eq!(f.create(FileId(1)), Err("exists"));
    }
}
