//! Threads and the firewall-aware scheduler core.
//!
//! §4.1: "we modified the schedule function, which computes the next
//! thread to run, to selectively stop threads inside the kernel... The
//! threads needed for checkpointing continue to run and share the CPU."
//! [`RunQueue::pick_next`] is that modified `schedule()`: with the temporal firewall
//! closed it refuses every thread whose class lives inside the firewall
//! and only yields checkpoint-participating threads.

use std::collections::VecDeque;

use ckptstore::{Dec, DecodeError, Enc};

use crate::firewall::FirewallState;
use crate::net::tcp::AppMsg;
use crate::prog::{GuestProg, SysRet};
use crate::wire::{decode_sysret, encode_sysret, GuestResidue};

/// Thread identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Tid(pub u32);

/// Scheduling class, deciding which side of the temporal firewall the
/// thread runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadClass {
    /// User-level program: always inside the firewall.
    User,
    /// Ordinary kernel thread (workqueue processors): inside the firewall.
    Kernel,
    /// The suspend thread and its helpers: outside the firewall — they run
    /// during a checkpoint.
    CheckpointSuspend,
}

/// Why a thread is not runnable.
#[derive(Clone)]
pub enum ThreadState {
    Runnable,
    /// Waiting on the timer wheel.
    Sleeping,
    /// Waiting for a connection on a port.
    AcceptWait { port: u16 },
    /// Waiting for a connect handshake on a socket.
    ConnectWait { fd: u32 },
    /// Waiting for readable bytes on a socket.
    RecvWait { fd: u32, max: u64 },
    /// Waiting for send-buffer space on a socket (retries the send with
    /// the stashed message marker once space opens).
    SendWait {
        fd: u32,
        bytes: u64,
        msg: Option<AppMsg>,
    },
    /// Waiting for a block I/O batch.
    IoWait { batch: u64 },
    /// Waiting for a control-service RPC reply.
    RpcWait { id: u64 },
    /// Waiting for a CPU burst completion.
    Computing { burst: u64 },
    Exited,
}

impl std::fmt::Debug for ThreadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadState::Runnable => write!(f, "Runnable"),
            ThreadState::Sleeping => write!(f, "Sleeping"),
            ThreadState::AcceptWait { port } => write!(f, "AcceptWait({port})"),
            ThreadState::ConnectWait { fd } => write!(f, "ConnectWait({fd})"),
            ThreadState::RecvWait { fd, max } => write!(f, "RecvWait({fd}, {max})"),
            ThreadState::SendWait { fd, bytes, .. } => write!(f, "SendWait({fd}, {bytes})"),
            ThreadState::IoWait { batch } => write!(f, "IoWait(#{batch})"),
            ThreadState::RpcWait { id } => write!(f, "RpcWait(#{id})"),
            ThreadState::Computing { burst } => write!(f, "Computing(#{burst})"),
            ThreadState::Exited => write!(f, "Exited"),
        }
    }
}

/// Discriminant tag for state fingerprinting (checkpoint invariants).
impl ThreadState {
    /// A small stable code for the state kind.
    pub fn tag(&self) -> u8 {
        match self {
            ThreadState::Runnable => 0,
            ThreadState::Sleeping => 1,
            ThreadState::AcceptWait { .. } => 2,
            ThreadState::ConnectWait { .. } => 3,
            ThreadState::RecvWait { .. } => 4,
            ThreadState::SendWait { .. } => 5,
            ThreadState::IoWait { .. } => 6,
            ThreadState::Computing { .. } => 7,
            ThreadState::Exited => 8,
            ThreadState::RpcWait { .. } => 9,
        }
    }
}

impl ThreadClass {
    fn wire_tag(self) -> u8 {
        match self {
            ThreadClass::User => 0,
            ThreadClass::Kernel => 1,
            ThreadClass::CheckpointSuspend => 2,
        }
    }

    fn from_wire_tag(at: usize, tag: u8) -> Result<Self, DecodeError> {
        Ok(match tag {
            0 => ThreadClass::User,
            1 => ThreadClass::Kernel,
            2 => ThreadClass::CheckpointSuspend,
            tag => return Err(DecodeError::BadTag { at, tag, what: "thread class" }),
        })
    }
}

impl ThreadState {
    /// Serializes the state; wire tags reuse [`ThreadState::tag`] codes.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        e.u8(self.tag());
        match self {
            ThreadState::Runnable | ThreadState::Sleeping | ThreadState::Exited => {}
            ThreadState::AcceptWait { port } => e.u16(*port),
            ThreadState::ConnectWait { fd } => e.u32(*fd),
            ThreadState::RecvWait { fd, max } => {
                e.u32(*fd);
                e.u64(*max);
            }
            ThreadState::SendWait { fd, bytes, msg } => {
                e.u32(*fd);
                e.u64(*bytes);
                e.bool(msg.is_some());
                if let Some(m) = msg {
                    e.u32(residue.push_msg(m));
                }
            }
            ThreadState::IoWait { batch } => e.u64(*batch),
            ThreadState::Computing { burst } => e.u64(*burst),
            ThreadState::RpcWait { id } => e.u64(*id),
        }
    }

    /// Inverse of [`ThreadState::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let at = d.position();
        Ok(match d.u8()? {
            0 => ThreadState::Runnable,
            1 => ThreadState::Sleeping,
            2 => ThreadState::AcceptWait { port: d.u16()? },
            3 => ThreadState::ConnectWait { fd: d.u32()? },
            4 => ThreadState::RecvWait { fd: d.u32()?, max: d.u64()? },
            5 => {
                let fd = d.u32()?;
                let bytes = d.u64()?;
                let msg = if d.bool()? { Some(residue.msg(d.u32()?)?) } else { None };
                ThreadState::SendWait { fd, bytes, msg }
            }
            6 => ThreadState::IoWait { batch: d.u64()? },
            7 => ThreadState::Computing { burst: d.u64()? },
            8 => ThreadState::Exited,
            9 => ThreadState::RpcWait { id: d.u64()? },
            tag => return Err(DecodeError::BadTag { at, tag, what: "thread state" }),
        })
    }
}

/// One guest thread.
#[derive(Clone)]
pub struct Thread {
    pub tid: Tid,
    pub class: ThreadClass,
    pub state: ThreadState,
    /// The user program (user threads only).
    pub prog: Option<Box<dyn GuestProg>>,
    /// Value handed to the program on its next step.
    pub pending_ret: SysRet,
}

impl Thread {
    /// Creates a runnable user thread around a program.
    pub fn user(tid: Tid, prog: Box<dyn GuestProg>) -> Self {
        Thread {
            tid,
            class: ThreadClass::User,
            state: ThreadState::Runnable,
            prog: Some(prog),
            pending_ret: SysRet::Start,
        }
    }

    /// True if the thread has exited.
    pub fn exited(&self) -> bool {
        matches!(self.state, ThreadState::Exited)
    }

    /// Serializes the thread; the program object goes into the residue.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        e.u32(self.tid.0);
        e.u8(self.class.wire_tag());
        self.state.encode_wire(e, residue);
        e.bool(self.prog.is_some());
        if let Some(p) = &self.prog {
            e.u32(residue.push_prog(p.as_ref()));
        }
        encode_sysret(e, &self.pending_ret, residue);
    }

    /// Inverse of [`Thread::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let tid = Tid(d.u32()?);
        let at = d.position();
        let class = ThreadClass::from_wire_tag(at, d.u8()?)?;
        let state = ThreadState::decode_wire(d, residue)?;
        let prog = if d.bool()? { Some(residue.prog(d.u32()?)?) } else { None };
        let pending_ret = decode_sysret(d, residue)?;
        Ok(Thread { tid, class, state, prog, pending_ret })
    }
}

/// The run queue plus the firewall-gated `schedule()`.
#[derive(Clone, Debug, Default)]
pub struct RunQueue {
    q: VecDeque<Tid>,
}

impl RunQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    /// Enqueues a thread (idempotence is the caller's concern; the kernel
    /// only enqueues on state transitions to `Runnable`).
    pub fn push(&mut self, tid: Tid) {
        self.q.push_back(tid);
    }

    /// The modified `schedule()`: pops the next thread allowed to run
    /// given the firewall state. Disallowed threads stay parked in order.
    pub fn pick_next(&mut self, fw: &FirewallState, classes: &dyn Fn(Tid) -> ThreadClass) -> Option<Tid> {
        if !fw.closed() {
            return self.q.pop_front();
        }
        // Firewall closed: scan for a checkpoint-class thread without
        // disturbing the order of the stopped ones.
        let pos = self
            .q
            .iter()
            .position(|&t| classes(t) == ThreadClass::CheckpointSuspend)?;
        self.q.remove(pos)
    }

    /// Number of queued threads.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if no thread is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Serializes the queue in scheduling order.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.seq(self.q.len());
        for t in &self.q {
            e.u32(t.0);
        }
    }

    /// Inverse of [`RunQueue::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = d.seq()?;
        let mut q = VecDeque::with_capacity(n);
        for _ in 0..n {
            q.push_back(Tid(d.u32()?));
        }
        Ok(RunQueue { q })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_firewall_is_fifo() {
        let fw = FirewallState::new();
        let mut rq = RunQueue::new();
        rq.push(Tid(1));
        rq.push(Tid(2));
        let classes = |_t: Tid| ThreadClass::User;
        assert_eq!(rq.pick_next(&fw, &classes), Some(Tid(1)));
        assert_eq!(rq.pick_next(&fw, &classes), Some(Tid(2)));
        assert_eq!(rq.pick_next(&fw, &classes), None);
    }

    #[test]
    fn closed_firewall_parks_inside_threads() {
        let mut fw = FirewallState::new();
        fw.close(0);
        let mut rq = RunQueue::new();
        rq.push(Tid(1)); // user
        rq.push(Tid(2)); // suspend thread
        rq.push(Tid(3)); // user
        let classes = |t: Tid| {
            if t == Tid(2) {
                ThreadClass::CheckpointSuspend
            } else {
                ThreadClass::User
            }
        };
        assert_eq!(rq.pick_next(&fw, &classes), Some(Tid(2)), "only checkpoint threads run");
        assert_eq!(rq.pick_next(&fw, &classes), None, "users stay parked");
        // Reopen: parked threads resume in order.
        fw.open(0);
        assert_eq!(rq.pick_next(&fw, &classes), Some(Tid(1)));
        assert_eq!(rq.pick_next(&fw, &classes), Some(Tid(3)));
    }
}
