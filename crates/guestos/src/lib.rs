//! A miniature paravirtualized guest kernel.
//!
//! This crate models the Linux guest the paper modifies (§4.1–4.2), at the
//! level of mechanism the temporal firewall needs: a thread scheduler whose
//! `schedule()` can selectively stop thread classes, a jiffies timer wheel
//! driven by (virtualizable) timer interrupts, IRQ/softirq dispatch with
//! firewall masks, paravirtual time via a shared-info page plus TSC
//! interpolation, a socket layer over a real mini-TCP ([`net::tcp`]), and
//! an ext3-like filesystem with allocation bitmaps (what the free-block
//! snoop decodes) behind a buffer cache.
//!
//! The kernel is plain data (`Clone`): a local checkpoint *is* a clone of
//! this structure plus device state, which is exactly the paper's framing —
//! the mechanism is cheap to express, the *cost* (save time, downtime) is
//! modeled by the `vmm` crate that drives this kernel.
//!
//! Guest applications implement [`GuestProg`]: coroutine-style state
//! machines issuing one (possibly blocking) [`Syscall`] at a time.

pub mod actions;
pub mod audit;
pub mod firewall;
pub mod fs;
pub mod kernel;
pub mod net;
pub mod prog;
pub mod sched;
pub mod timer;
pub mod wire;

pub use actions::{BlockBatch, BlockBatchOp, GuestAction};
pub use audit::{ClockEventKind, ClockObservation, ClockWitness};
pub use firewall::FirewallState;
pub use kernel::{Kernel, KernelConfig};
pub use net::tcp::{TcpConn, TcpSegment, TcpState, TcpStats, MSS};
pub use net::{NetTrace, PacketDir, PacketRecord};
pub use prog::{GuestProg, ProgId, Syscall, SysRet};
pub use sched::{Tid, ThreadClass};
pub use wire::GuestResidue;
