//! Guest-observable clock witness.
//!
//! The transparency claim (§4) is about what the *guest* can see, so the
//! evidence has to come from inside the kernel: every guest-visible
//! clock event — a timer tick, a `gettimeofday` answer, the temporal
//! firewall closing and reopening — is recorded here with the guest-time
//! value the guest actually observed. The hosting vmm drains the witness
//! after each kernel entry and republishes the observations as trace
//! events on the host's `guest` track, where the
//! `sim::telemetry::audit` walker checks the paper's invariants.
//!
//! The witness is deliberately *not* part of the checkpointed guest
//! image: it is observability plumbing, not guest state, and it is
//! drained before any capture, so restored kernels start with an empty
//! buffer.

/// Kind of guest-observable clock event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockEventKind {
    /// A `gettimeofday` syscall was answered.
    ClockRead,
    /// A timer interrupt advanced jiffies and xtime.
    Tick,
    /// The temporal firewall closed (suspend began).
    FirewallClosed,
    /// The temporal firewall reopened (resume completed).
    FirewallOpened,
}

/// One guest-observable clock event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockObservation {
    /// What the guest observed.
    pub kind: ClockEventKind,
    /// The guest-time value involved (the answer returned, the tick
    /// stamp, the close/reopen instant).
    pub guest_ns: u64,
    /// Jiffies at the observation.
    pub jiffies: u64,
}

/// Bound on buffered observations between vmm drains. A drain happens on
/// every kernel entry, so the buffer only sees one entry's worth of
/// events; the cap is a defensive backstop, counted when hit.
const WITNESS_CAP: usize = 1024;

/// Bounded buffer of guest clock observations awaiting a vmm drain.
#[derive(Clone, Debug, Default)]
pub struct ClockWitness {
    buf: Vec<ClockObservation>,
    dropped: u64,
}

impl ClockWitness {
    /// Records one observation (drops and counts beyond the cap).
    pub fn record(&mut self, kind: ClockEventKind, guest_ns: u64, jiffies: u64) {
        if self.buf.len() >= WITNESS_CAP {
            self.dropped += 1;
            return;
        }
        self.buf.push(ClockObservation {
            kind,
            guest_ns,
            jiffies,
        });
    }

    /// Takes every buffered observation, leaving the witness empty.
    pub fn drain(&mut self) -> Vec<ClockObservation> {
        std::mem::take(&mut self.buf)
    }

    /// Observations currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Observations dropped because the buffer cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_empties_and_preserves_order() {
        let mut w = ClockWitness::default();
        w.record(ClockEventKind::Tick, 10, 1);
        w.record(ClockEventKind::ClockRead, 11, 1);
        let obs = w.drain();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].kind, ClockEventKind::Tick);
        assert_eq!(obs[1].guest_ns, 11);
        assert!(w.is_empty());
        assert_eq!(w.dropped(), 0);
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut w = ClockWitness::default();
        for i in 0..1100u64 {
            w.record(ClockEventKind::Tick, i, i);
        }
        assert_eq!(w.len(), 1024);
        assert_eq!(w.dropped(), 76);
    }
}
