//! Jiffies accounting and the kernel timer wheel.
//!
//! "By stopping the periodic timer, we suspend the delivery of timer
//! interrupts to the guest kernel... timer jobs inside the system will not
//! be scheduled since time does not progress" (§4.1–4.2). The wheel is
//! keyed by jiffies; if ticks stop arriving, nothing here can fire — the
//! firewall gets timer suspension for free.

use std::collections::BTreeMap;

use ckptstore::{Dec, DecodeError, Enc};

use crate::sched::Tid;

/// A jiffies-keyed timer wheel.
#[derive(Clone, Debug, Default)]
pub struct TimerWheel {
    entries: BTreeMap<u64, Vec<Tid>>,
    armed: usize,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Arms a wakeup for `tid` at absolute jiffy `expires`.
    pub fn arm(&mut self, expires: u64, tid: Tid) {
        self.entries.entry(expires).or_default().push(tid);
        self.armed += 1;
    }

    /// Pops every entry due at or before `jiffies`.
    pub fn expire(&mut self, jiffies: u64) -> Vec<Tid> {
        let mut out = Vec::new();
        let due: Vec<u64> = self.entries.range(..=jiffies).map(|(&j, _)| j).collect();
        for j in due {
            if let Some(mut v) = self.entries.remove(&j) {
                self.armed -= v.len();
                out.append(&mut v);
            }
        }
        out
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// True if nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Earliest armed expiry, if any.
    pub fn next_expiry(&self) -> Option<u64> {
        self.entries.keys().next().copied()
    }

    /// Serializes the wheel in jiffy order; the armed count is re-derived
    /// on decode.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.seq(self.entries.len());
        for (&jiffy, tids) in &self.entries {
            e.u64(jiffy);
            e.seq(tids.len());
            for t in tids {
                e.u32(t.0);
            }
        }
    }

    /// Inverse of [`TimerWheel::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = d.seq()?;
        let mut entries = BTreeMap::new();
        let mut armed = 0;
        for _ in 0..n {
            let jiffy = d.u64()?;
            let m = d.seq()?;
            let mut tids = Vec::with_capacity(m);
            for _ in 0..m {
                tids.push(Tid(d.u32()?));
            }
            armed += tids.len();
            if entries.insert(jiffy, tids).is_some() {
                return Err(DecodeError::Invalid("duplicate timer wheel jiffy"));
            }
        }
        Ok(TimerWheel { entries, armed })
    }
}

/// Converts a sleep request to an absolute wake jiffy, with Linux rounding:
/// ceil to whole ticks, plus one tick for the in-progress one.
pub fn sleep_to_wake_jiffy(now_jiffies: u64, ns: u64, tick_ns: u64) -> u64 {
    let ticks = ns.div_ceil(tick_ns);
    now_jiffies + ticks + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expire_pops_all_due_entries_in_order() {
        let mut w = TimerWheel::new();
        w.arm(10, Tid(1));
        w.arm(5, Tid(2));
        w.arm(10, Tid(3));
        w.arm(20, Tid(4));
        let fired = w.expire(10);
        assert_eq!(fired, vec![Tid(2), Tid(1), Tid(3)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_expiry(), Some(20));
    }

    #[test]
    fn expire_with_nothing_due_is_empty() {
        let mut w = TimerWheel::new();
        w.arm(10, Tid(1));
        assert!(w.expire(9).is_empty());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn usleep_10ms_at_hz100_wakes_two_ticks_later() {
        // The Fig 4 baseline: 10 ms sleep measures ~20 ms per iteration.
        let tick = 10_000_000; // 10 ms.
        assert_eq!(sleep_to_wake_jiffy(100, 10_000_000, tick), 102);
        // 1 ns sleep still waits into the second tick boundary.
        assert_eq!(sleep_to_wake_jiffy(100, 1, tick), 102);
        // 10.5 ms rounds up to 2 ticks + 1.
        assert_eq!(sleep_to_wake_jiffy(100, 10_500_000, tick), 103);
    }
}
