//! A miniature but real TCP: sliding window, cumulative/duplicate ACKs,
//! RTT estimation, RTO with exponential backoff, fast retransmit, slow
//! start / congestion avoidance, and receive-buffer flow control.
//!
//! Fidelity here is what makes the paper's central claim *testable*: "We
//! inspected the packet trace to confirm that checkpoints caused no
//! retransmissions, double acknowledgements, or changes of window size for
//! the TCP session" (§7.1). The connection counts exactly those events.
//!
//! The stream is byte-counted (segments carry lengths, not payload bytes);
//! applications needing message boundaries attach [`AppMsg`] markers to
//! stream offsets, which surface at the receiver when the stream passes
//! them — semantically identical to framing bytes in-band.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use ckptstore::{Dec, DecodeError, Enc};

use crate::wire::GuestResidue;

/// Maximum segment size (payload bytes), Ethernet MTU minus headers.
pub const MSS: u32 = 1448;

/// Wire overhead per segment (IP + TCP + Ethernet framing).
pub const HEADER_BYTES: u32 = 78;

/// Initial retransmission timeout (ns): 1 s, per classic BSD defaults.
const INITIAL_RTO_NS: u64 = 1_000_000_000;

/// Minimum RTO (ns): 200 ms, Linux-style lower bound.
const MIN_RTO_NS: u64 = 200_000_000;

/// Maximum RTO (ns): 60 s cap.
const MAX_RTO_NS: u64 = 60_000_000_000;

/// An application-level message marker riding the stream.
pub type AppMsg = Arc<dyn Any + Send + Sync>;

/// TCP header flags (only the ones the simulator uses).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
}

/// One TCP segment as it crosses the network.
#[derive(Clone)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Cumulative acknowledgment.
    pub ack: u64,
    /// Payload length in bytes.
    pub len: u32,
    pub flags: TcpFlags,
    /// Advertised receive window (bytes).
    pub wnd: u32,
    /// Message markers whose stream offset falls within this segment
    /// (offset, message). Retransmissions re-carry them; the receiver
    /// deduplicates by offset.
    pub msgs: Vec<(u64, AppMsg)>,
}

impl std::fmt::Debug for TcpSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tcp[{}->{} seq={} ack={} len={} {}{}{} wnd={}]",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.len,
            if self.flags.syn { "S" } else { "" },
            if self.flags.ack { "A" } else { "" },
            if self.flags.fin { "F" } else { "" },
            self.wnd
        )
    }
}

impl TcpSegment {
    /// Bytes this segment occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.len + HEADER_BYTES
    }

    /// Serializes the segment; message markers go into the residue.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        e.u16(self.src_port);
        e.u16(self.dst_port);
        e.u64(self.seq);
        e.u64(self.ack);
        e.u32(self.len);
        e.bool(self.flags.syn);
        e.bool(self.flags.ack);
        e.bool(self.flags.fin);
        e.u32(self.wnd);
        e.seq(self.msgs.len());
        for (off, m) in &self.msgs {
            e.u64(*off);
            e.u32(residue.push_msg(m));
        }
    }

    /// Inverse of [`TcpSegment::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let src_port = d.u16()?;
        let dst_port = d.u16()?;
        let seq = d.u64()?;
        let ack = d.u64()?;
        let len = d.u32()?;
        let flags = TcpFlags { syn: d.bool()?, ack: d.bool()?, fin: d.bool()? };
        let wnd = d.u32()?;
        let n = d.seq()?;
        let mut msgs = Vec::with_capacity(n);
        for _ in 0..n {
            let off = d.u64()?;
            msgs.push((off, residue.msg(d.u32()?)?));
        }
        Ok(TcpSegment { src_port, dst_port, seq, ack, len, flags, wnd, msgs })
    }
}

/// Connection lifecycle states (simplified state machine).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    SynSent,
    SynRcvd,
    Established,
    FinSent,
    Closed,
}

/// Counters the evaluation cares about.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpStats {
    pub segments_sent: u64,
    pub segments_received: u64,
    pub bytes_sent: u64,
    pub bytes_delivered: u64,
    /// Data retransmissions (fast retransmit + timeout).
    pub retransmissions: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dup_acks: u64,
    /// Times the peer's advertised window shrank below a quarter of its
    /// observed maximum — the receive-buffer pressure a checkpoint replay
    /// would cause (§3.2); the §7.1 "changes of window size" metric.
    pub window_shrinks: u64,
}

/// Effects of feeding an event into a connection: segments to transmit and
/// data/messages delivered to the application.
#[derive(Default)]
pub struct TcpEffects {
    pub tx: Vec<TcpSegment>,
    pub delivered_bytes: u64,
    pub delivered_msgs: Vec<AppMsg>,
    pub connected: bool,
    pub closed: bool,
}

/// One end of a TCP connection.
///
/// # Examples
///
/// ```
/// use guestos::net::tcp::TcpConn;
///
/// // Three-way handshake between two ends.
/// let (mut a, syn) = TcpConn::connect(1000, 80, 0);
/// let (mut b, synack) = TcpConn::accept(80, 1000, &syn, 0);
/// let fx = a.on_segment(&synack, 1_000);
/// for seg in fx.tx {
///     b.on_segment(&seg, 2_000);
/// }
/// assert!(a.established() && b.established());
/// ```
#[derive(Clone)]
pub struct TcpConn {
    pub local_port: u16,
    pub remote_port: u16,
    state: TcpState,

    // Send side.
    snd_una: u64,
    snd_nxt: u64,
    send_q: u64,
    send_buf_cap: u64,
    cwnd: u64,
    ssthresh: u64,
    peer_wnd: u64,
    last_peer_wnd: Option<u64>,
    dup_ack_count: u32,
    recover: u64,
    in_recovery: bool,
    pending_msgs: BTreeMap<u64, AppMsg>,

    // RTT estimation.
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    rto_ns: u64,
    rto_deadline_ns: Option<u64>,
    rtt_sample: Option<(u64, u64)>,
    backoff: u32,

    // Receive side.
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u32>,
    rcv_buf_cap: u64,
    rcv_pending: u64,
    /// Message markers received but whose offset the in-order stream has
    /// not passed yet; keyed by offset (deduplicates retransmissions).
    msg_stash: BTreeMap<u64, AppMsg>,

    /// Counters.
    pub stats: TcpStats,
}

impl TcpConn {
    /// Creates the active-open end; returns the connection and the SYN.
    pub fn connect(local_port: u16, remote_port: u16, now_ns: u64) -> (Self, TcpSegment) {
        let mut c = TcpConn::raw(local_port, remote_port, TcpState::SynSent);
        let syn = c.make_segment(0, TcpFlags { syn: true, ack: false, fin: false });
        c.snd_nxt = 1; // SYN consumes a sequence number.
        c.arm_rto(now_ns);
        c.stats.segments_sent += 1;
        (c, syn)
    }

    /// Creates the passive end in response to a SYN; returns conn + SYN|ACK.
    pub fn accept(local_port: u16, remote_port: u16, syn: &TcpSegment, now_ns: u64) -> (Self, TcpSegment) {
        debug_assert!(syn.flags.syn);
        let mut c = TcpConn::raw(local_port, remote_port, TcpState::SynRcvd);
        c.rcv_nxt = syn.seq + 1;
        c.peer_wnd = syn.wnd as u64;
        let mut synack = c.make_segment(0, TcpFlags { syn: true, ack: true, fin: false });
        synack.ack = c.rcv_nxt;
        c.snd_nxt = 1;
        c.arm_rto(now_ns);
        c.stats.segments_sent += 1;
        (c, synack)
    }

    fn raw(local_port: u16, remote_port: u16, state: TcpState) -> Self {
        TcpConn {
            local_port,
            remote_port,
            state,
            snd_una: 0,
            snd_nxt: 0,
            send_q: 0,
            send_buf_cap: 256 * 1024,
            cwnd: 2 * MSS as u64,
            ssthresh: u64::MAX / 2,
            peer_wnd: MSS as u64,
            last_peer_wnd: None,
            dup_ack_count: 0,
            recover: 0,
            in_recovery: false,
            pending_msgs: BTreeMap::new(),
            srtt_ns: None,
            rttvar_ns: 0,
            rto_ns: INITIAL_RTO_NS,
            rto_deadline_ns: None,
            rtt_sample: None,
            backoff: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            rcv_buf_cap: 256 * 1024,
            rcv_pending: 0,
            msg_stash: BTreeMap::new(),
            stats: TcpStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the three-way handshake completed.
    pub fn established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// Bytes accepted from the app but not yet delivered to the peer's app.
    pub fn unacked_and_queued(&self) -> u64 {
        (self.snd_nxt - self.snd_una) + self.send_q
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> u64 {
        self.send_buf_cap.saturating_sub(self.unacked_and_queued())
    }

    /// Bytes available for the application to read.
    pub fn readable(&self) -> u64 {
        self.rcv_pending
    }

    fn advertised_wnd(&self) -> u32 {
        self.rcv_buf_cap.saturating_sub(self.rcv_pending).min(u32::MAX as u64) as u32
    }

    fn make_segment(&self, len: u32, flags: TcpFlags) -> TcpSegment {
        TcpSegment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            len,
            flags,
            wnd: self.advertised_wnd(),
            msgs: Vec::new(),
        }
    }

    fn arm_rto(&mut self, now_ns: u64) {
        self.rto_deadline_ns = Some(now_ns + self.rto_ns.saturating_mul(1 << self.backoff.min(6)));
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Queues `bytes` for transmission, optionally ending with a message
    /// marker. Returns bytes accepted (zero if the buffer is full) and any
    /// segments now transmittable.
    pub fn send(&mut self, bytes: u64, msg: Option<AppMsg>, now_ns: u64) -> (u64, Vec<TcpSegment>) {
        if self.state != TcpState::Established {
            return (0, Vec::new());
        }
        let accepted = bytes.min(self.send_space());
        if accepted < bytes {
            // All-or-nothing for marker integrity: partial message sends
            // would misplace the marker.
            if msg.is_some() {
                return (0, Vec::new());
            }
        }
        if accepted == 0 {
            return (0, Vec::new());
        }
        self.send_q += accepted;
        if let Some(m) = msg {
            let marker_off = self.snd_nxt + self.send_q;
            self.pending_msgs.insert(marker_off, m);
        }
        let tx = self.pump(now_ns);
        (accepted, tx)
    }

    /// Emits whatever the window permits.
    fn pump(&mut self, now_ns: u64) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if self.state != TcpState::Established {
            return out;
        }
        let wnd = self.cwnd.min(self.peer_wnd);
        while self.send_q > 0 && self.flight() < wnd {
            let len = (self.send_q).min(MSS as u64).min(wnd - self.flight()) as u32;
            if len == 0 {
                break;
            }
            let mut seg = self.make_segment(len, TcpFlags { syn: false, ack: true, fin: false });
            seg.msgs = self.msgs_in_range(seg.seq, seg.seq + len as u64);
            self.snd_nxt += len as u64;
            self.send_q -= len as u64;
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((seg.seq + len as u64, now_ns));
            }
            self.stats.segments_sent += 1;
            self.stats.bytes_sent += len as u64;
            out.push(seg);
        }
        if !out.is_empty() && self.rto_deadline_ns.is_none() {
            self.arm_rto(now_ns);
        }
        out
    }

    fn msgs_in_range(&self, start: u64, end: u64) -> Vec<(u64, AppMsg)> {
        self.pending_msgs
            .range(start + 1..=end)
            .map(|(&off, m)| (off, m.clone()))
            .collect()
    }

    /// The application reads up to `max` bytes.
    pub fn recv(&mut self, max: u64) -> u64 {
        let n = self.rcv_pending.min(max);
        self.rcv_pending -= n;
        n
    }

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, seg: &TcpSegment, now_ns: u64) -> TcpEffects {
        let mut fx = TcpEffects::default();
        self.stats.segments_received += 1;

        // Track anomalous peer-window shrinkage (the §7.1 transparency
        // metric): dips below a quarter of the largest window seen mean
        // the peer's receive buffer is filling — the §3.2 replay hazard.
        let w = seg.wnd as u64;
        let prev_max = self.last_peer_wnd.unwrap_or(0).max(self.peer_wnd);
        if prev_max > 0 && w < prev_max / 4 {
            self.stats.window_shrinks += 1;
        }
        self.last_peer_wnd = Some(self.last_peer_wnd.unwrap_or(0).max(w));
        self.peer_wnd = w.max(1); // Avoid total stall on zero-window; fine for our workloads.

        match self.state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack >= 1 {
                    self.snd_una = 1;
                    self.rcv_nxt = seg.seq + 1;
                    self.state = TcpState::Established;
                    self.rto_deadline_ns = None;
                    self.backoff = 0;
                    fx.connected = true;
                    // Final handshake ACK.
                    let ack = self.make_segment(0, TcpFlags { syn: false, ack: true, fin: false });
                    self.stats.segments_sent += 1;
                    fx.tx.push(ack);
                }
                return fx;
            }
            TcpState::SynRcvd => {
                if seg.flags.ack && seg.ack >= 1 {
                    self.snd_una = 1;
                    self.state = TcpState::Established;
                    self.rto_deadline_ns = None;
                    self.backoff = 0;
                    fx.connected = true;
                    // Fall through: the ACK may carry data.
                } else {
                    return fx;
                }
            }
            TcpState::Closed => return fx,
            _ => {}
        }

        // ACK processing (sender side).
        if seg.flags.ack {
            if seg.ack > self.snd_una {
                let newly = seg.ack - self.snd_una;
                self.snd_una = seg.ack;
                self.dup_ack_count = 0;
                // Drop delivered message markers.
                let delivered: Vec<u64> = self
                    .pending_msgs
                    .range(..=self.snd_una)
                    .map(|(&o, _)| o)
                    .collect();
                for o in delivered {
                    self.pending_msgs.remove(&o);
                }
                // RTT sample (Karn: only if not retransmitted — approximated
                // by dropping the sample on any retransmission).
                if let Some((sample_seq, t0)) = self.rtt_sample {
                    if seg.ack >= sample_seq {
                        self.update_rtt(now_ns.saturating_sub(t0));
                        self.rtt_sample = None;
                    }
                }
                self.backoff = 0;
                if self.in_recovery && seg.ack >= self.recover {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                }
                // Congestion window growth.
                if !self.in_recovery {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += newly.min(MSS as u64); // Slow start.
                    } else {
                        // Congestion avoidance: +MSS per cwnd of data ACKed.
                        self.cwnd += (MSS as u64 * MSS as u64 / self.cwnd).max(1);
                    }
                }
                if self.flight() == 0 {
                    self.rto_deadline_ns = None;
                } else {
                    self.arm_rto(now_ns);
                }
            } else if seg.ack == self.snd_una && seg.len == 0 && !seg.flags.syn && self.flight() > 0
            {
                self.stats.dup_acks += 1;
                self.dup_ack_count += 1;
                if self.dup_ack_count == 3 && !self.in_recovery {
                    // Fast retransmit + recovery.
                    self.ssthresh = (self.flight() / 2).max(2 * MSS as u64);
                    self.cwnd = self.ssthresh + 3 * MSS as u64;
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    fx.tx.push(self.retransmit_head(now_ns));
                }
            }
        }

        // Data processing (receiver side).
        if seg.len > 0 {
            let start = seg.seq;
            let end = seg.seq + seg.len as u64;
            for (off, m) in &seg.msgs {
                // Stash by offset; surfaced in order below. Entry semantics
                // deduplicate markers re-carried by retransmissions.
                self.msg_stash.entry(*off).or_insert_with(|| m.clone());
            }
            if start <= self.rcv_nxt && end > self.rcv_nxt {
                let advance = end - self.rcv_nxt;
                self.rcv_nxt = end;
                self.deliver(advance, &mut fx);
                // Pull any contiguous out-of-order data.
                while let Some((&s, &l)) = self.ooo.iter().next() {
                    if s > self.rcv_nxt {
                        break;
                    }
                    self.ooo.remove(&s);
                    let e = s + l as u64;
                    if e > self.rcv_nxt {
                        let adv = e - self.rcv_nxt;
                        self.rcv_nxt = e;
                        self.deliver(adv, &mut fx);
                    }
                }
            } else if start > self.rcv_nxt {
                self.ooo.insert(start, seg.len);
            }
            // else: duplicate data, ignore.

            // Surface message markers the stream has passed.
            let ready: Vec<u64> = self
                .msg_stash
                .range(..=self.rcv_nxt)
                .map(|(&o, _)| o)
                .collect();
            for o in ready {
                if let Some(m) = self.msg_stash.remove(&o) {
                    fx.delivered_msgs.push(m);
                }
            }

            // ACK everything we have (immediate ACK policy).
            let ack = self.make_segment(0, TcpFlags { syn: false, ack: true, fin: false });
            self.stats.segments_sent += 1;
            fx.tx.push(ack);
        }

        if seg.flags.fin && seg.seq <= self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.max(seg.seq + 1);
            self.state = TcpState::Closed;
            fx.closed = true;
            let ack = self.make_segment(0, TcpFlags { syn: false, ack: true, fin: false });
            self.stats.segments_sent += 1;
            fx.tx.push(ack);
        }

        // Window may have opened: transmit more.
        fx.tx.extend(self.pump(now_ns));
        fx
    }

    fn deliver(&mut self, bytes: u64, fx: &mut TcpEffects) {
        self.rcv_pending += bytes;
        self.stats.bytes_delivered += bytes;
        fx.delivered_bytes += bytes;
    }

    fn update_rtt(&mut self, sample_ns: u64) {
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(sample_ns);
                self.rttvar_ns = sample_ns / 2;
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample_ns);
                self.rttvar_ns = (3 * self.rttvar_ns + diff) / 4;
                self.srtt_ns = Some((7 * srtt + sample_ns) / 8);
            }
        }
        let srtt = self.srtt_ns.expect("just set");
        self.rto_ns = (srtt + 4 * self.rttvar_ns).clamp(MIN_RTO_NS, MAX_RTO_NS);
    }

    fn retransmit_head(&mut self, now_ns: u64) -> TcpSegment {
        let len = (self.flight()).min(MSS as u64) as u32;
        let mut seg = TcpSegment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_una,
            ack: self.rcv_nxt,
            len,
            flags: TcpFlags { syn: false, ack: true, fin: false },
            wnd: self.advertised_wnd(),
            msgs: Vec::new(),
        };
        seg.msgs = self.msgs_in_range(seg.seq, seg.seq + len as u64);
        self.stats.retransmissions += 1;
        self.stats.segments_sent += 1;
        self.rtt_sample = None; // Karn's algorithm.
        self.arm_rto(now_ns);
        seg
    }

    /// Clock tick: fires the RTO if expired. Call with the guest's virtual
    /// time; a frozen clock ⇒ no spurious timeouts during checkpoints,
    /// which is precisely the temporal-firewall effect.
    pub fn on_tick(&mut self, now_ns: u64) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if let Some(deadline) = self.rto_deadline_ns {
            if now_ns >= deadline {
                match self.state {
                    TcpState::Established if self.flight() > 0 => {
                        self.stats.timeouts += 1;
                        self.ssthresh = (self.flight() / 2).max(2 * MSS as u64);
                        self.cwnd = MSS as u64;
                        self.in_recovery = false;
                        self.backoff = (self.backoff + 1).min(10);
                        out.push(self.retransmit_head(now_ns));
                    }
                    TcpState::SynSent | TcpState::SynRcvd => {
                        // Retransmit handshake segment.
                        self.stats.timeouts += 1;
                        self.backoff = (self.backoff + 1).min(10);
                        let flags = TcpFlags {
                            syn: true,
                            ack: self.state == TcpState::SynRcvd,
                            fin: false,
                        };
                        let mut seg = TcpSegment {
                            src_port: self.local_port,
                            dst_port: self.remote_port,
                            seq: 0,
                            ack: self.rcv_nxt,
                            len: 0,
                            flags,
                            wnd: self.advertised_wnd(),
                            msgs: Vec::new(),
                        };
                        if !seg.flags.ack {
                            seg.ack = 0;
                        }
                        self.stats.segments_sent += 1;
                        self.stats.retransmissions += 1;
                        self.arm_rto(now_ns);
                        out.push(seg);
                    }
                    _ => {
                        self.rto_deadline_ns = None;
                    }
                }
            }
        }
        out
    }

    /// Initiates close; returns the FIN.
    pub fn close(&mut self, _now_ns: u64) -> Option<TcpSegment> {
        if self.state != TcpState::Established {
            self.state = TcpState::Closed;
            return None;
        }
        let seg = self.make_segment(0, TcpFlags { syn: false, ack: true, fin: true });
        self.snd_nxt += 1;
        self.state = TcpState::FinSent;
        self.stats.segments_sent += 1;
        Some(seg)
    }

    /// Serializes every connection field in declaration order; stashed
    /// message markers go into the residue.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        e.u16(self.local_port);
        e.u16(self.remote_port);
        e.u8(match self.state {
            TcpState::SynSent => 0,
            TcpState::SynRcvd => 1,
            TcpState::Established => 2,
            TcpState::FinSent => 3,
            TcpState::Closed => 4,
        });
        e.u64(self.snd_una);
        e.u64(self.snd_nxt);
        e.u64(self.send_q);
        e.u64(self.send_buf_cap);
        e.u64(self.cwnd);
        e.u64(self.ssthresh);
        e.u64(self.peer_wnd);
        e.bool(self.last_peer_wnd.is_some());
        if let Some(w) = self.last_peer_wnd {
            e.u64(w);
        }
        e.u32(self.dup_ack_count);
        e.u64(self.recover);
        e.bool(self.in_recovery);
        e.seq(self.pending_msgs.len());
        for (&off, m) in &self.pending_msgs {
            e.u64(off);
            e.u32(residue.push_msg(m));
        }
        e.bool(self.srtt_ns.is_some());
        if let Some(s) = self.srtt_ns {
            e.u64(s);
        }
        e.u64(self.rttvar_ns);
        e.u64(self.rto_ns);
        e.bool(self.rto_deadline_ns.is_some());
        if let Some(t) = self.rto_deadline_ns {
            e.u64(t);
        }
        e.bool(self.rtt_sample.is_some());
        if let Some((seq, t0)) = self.rtt_sample {
            e.u64(seq);
            e.u64(t0);
        }
        e.u32(self.backoff);
        e.u64(self.rcv_nxt);
        e.seq(self.ooo.len());
        for (&s, &l) in &self.ooo {
            e.u64(s);
            e.u32(l);
        }
        e.u64(self.rcv_buf_cap);
        e.u64(self.rcv_pending);
        e.seq(self.msg_stash.len());
        for (&off, m) in &self.msg_stash {
            e.u64(off);
            e.u32(residue.push_msg(m));
        }
        e.u64(self.stats.segments_sent);
        e.u64(self.stats.segments_received);
        e.u64(self.stats.bytes_sent);
        e.u64(self.stats.bytes_delivered);
        e.u64(self.stats.retransmissions);
        e.u64(self.stats.timeouts);
        e.u64(self.stats.dup_acks);
        e.u64(self.stats.window_shrinks);
    }

    /// Inverse of [`TcpConn::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let local_port = d.u16()?;
        let remote_port = d.u16()?;
        let at = d.position();
        let state = match d.u8()? {
            0 => TcpState::SynSent,
            1 => TcpState::SynRcvd,
            2 => TcpState::Established,
            3 => TcpState::FinSent,
            4 => TcpState::Closed,
            tag => return Err(DecodeError::BadTag { at, tag, what: "tcp state" }),
        };
        let snd_una = d.u64()?;
        let snd_nxt = d.u64()?;
        let send_q = d.u64()?;
        let send_buf_cap = d.u64()?;
        let cwnd = d.u64()?;
        let ssthresh = d.u64()?;
        let peer_wnd = d.u64()?;
        let last_peer_wnd = if d.bool()? { Some(d.u64()?) } else { None };
        let dup_ack_count = d.u32()?;
        let recover = d.u64()?;
        let in_recovery = d.bool()?;
        let mut pending_msgs = BTreeMap::new();
        for _ in 0..d.seq()? {
            let off = d.u64()?;
            if pending_msgs.insert(off, residue.msg(d.u32()?)?).is_some() {
                return Err(DecodeError::Invalid("duplicate pending message offset"));
            }
        }
        let srtt_ns = if d.bool()? { Some(d.u64()?) } else { None };
        let rttvar_ns = d.u64()?;
        let rto_ns = d.u64()?;
        let rto_deadline_ns = if d.bool()? { Some(d.u64()?) } else { None };
        let rtt_sample = if d.bool()? { Some((d.u64()?, d.u64()?)) } else { None };
        let backoff = d.u32()?;
        let rcv_nxt = d.u64()?;
        let mut ooo = BTreeMap::new();
        for _ in 0..d.seq()? {
            let s = d.u64()?;
            if ooo.insert(s, d.u32()?).is_some() {
                return Err(DecodeError::Invalid("duplicate ooo segment start"));
            }
        }
        let rcv_buf_cap = d.u64()?;
        let rcv_pending = d.u64()?;
        let mut msg_stash = BTreeMap::new();
        for _ in 0..d.seq()? {
            let off = d.u64()?;
            if msg_stash.insert(off, residue.msg(d.u32()?)?).is_some() {
                return Err(DecodeError::Invalid("duplicate stashed message offset"));
            }
        }
        let stats = TcpStats {
            segments_sent: d.u64()?,
            segments_received: d.u64()?,
            bytes_sent: d.u64()?,
            bytes_delivered: d.u64()?,
            retransmissions: d.u64()?,
            timeouts: d.u64()?,
            dup_acks: d.u64()?,
            window_shrinks: d.u64()?,
        };
        Ok(TcpConn {
            local_port,
            remote_port,
            state,
            snd_una,
            snd_nxt,
            send_q,
            send_buf_cap,
            cwnd,
            ssthresh,
            peer_wnd,
            last_peer_wnd,
            dup_ack_count,
            recover,
            in_recovery,
            pending_msgs,
            srtt_ns,
            rttvar_ns,
            rto_ns,
            rto_deadline_ns,
            rtt_sample,
            backoff,
            rcv_nxt,
            ooo,
            rcv_buf_cap,
            rcv_pending,
            msg_stash,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuttles segments between two connections with a fixed one-way
    /// delay, processing in timestamp order; an optional loss set drops
    /// the nth a→b data segment.
    struct Harness {
        a: TcpConn,
        b: TcpConn,
        now: u64,
        delay: u64,
        drop_nth_ab: Option<u64>,
        ab_count: u64,
        /// In-flight (deliver_at, to_a?, segment).
        wire: Vec<(u64, bool, TcpSegment)>,
    }

    impl Harness {
        fn connect() -> Harness {
            let (a, syn) = TcpConn::connect(1000, 2000, 0);
            let (b, synack) = TcpConn::accept(2000, 1000, &syn, 0);
            let mut h = Harness {
                a,
                b,
                now: 0,
                delay: 1_000_000, // 1 ms one way
                drop_nth_ab: None,
                ab_count: 0,
                wire: Vec::new(),
            };
            h.wire.push((h.delay, true, synack));
            h.pump_until_quiet();
            assert!(h.a.established() && h.b.established());
            h
        }

        fn push_tx(&mut self, from_a: bool, segs: Vec<TcpSegment>) {
            for s in segs {
                if from_a {
                    self.ab_count += 1;
                    if Some(self.ab_count) == self.drop_nth_ab {
                        continue;
                    }
                }
                self.wire.push((self.now + self.delay, !from_a, s));
            }
        }

        fn pump_until_quiet(&mut self) {
            let mut guard = 0;
            while !self.wire.is_empty() {
                guard += 1;
                assert!(guard < 100_000, "harness livelock");
                self.wire.sort_by_key(|&(t, _, _)| t);
                let (t, to_a, seg) = self.wire.remove(0);
                self.now = self.now.max(t);
                if to_a {
                    let fx = self.a.on_segment(&seg, self.now);
                    self.push_tx(true, fx.tx);
                } else {
                    let fx = self.b.on_segment(&seg, self.now);
                    self.push_tx(false, fx.tx);
                }
            }
        }

        fn tick_both(&mut self, step_ns: u64) {
            self.now += step_ns;
            let ta = self.a.on_tick(self.now);
            self.push_tx(true, ta);
            let tb = self.b.on_tick(self.now);
            self.push_tx(false, tb);
            self.pump_until_quiet();
        }
    }

    #[test]
    fn handshake_establishes_both_ends() {
        let h = Harness::connect();
        assert_eq!(h.a.state(), TcpState::Established);
        assert_eq!(h.b.state(), TcpState::Established);
    }

    #[test]
    fn bulk_transfer_delivers_every_byte_without_retransmissions() {
        let mut h = Harness::connect();
        let total: u64 = 1_000_000;
        let mut sent = 0;
        while sent < total {
            let (n, tx) = h.a.send(total - sent, None, h.now);
            sent += n;
            h.push_tx(true, tx);
            h.pump_until_quiet();
            let _ = h.b.recv(u64::MAX); // App drains the receive buffer.
        }
        h.pump_until_quiet();
        assert_eq!(h.b.stats.bytes_delivered, total);
        assert_eq!(h.a.stats.retransmissions, 0);
        assert_eq!(h.a.stats.timeouts, 0);
        assert_eq!(h.b.stats.dup_acks, 0);
    }

    #[test]
    fn flow_control_blocks_sender_when_receiver_stops_reading() {
        let mut h = Harness::connect();
        // Receiver never reads: at most rcv_buf_cap bytes can be delivered.
        let (accepted, tx) = h.a.send(10_000_000, None, h.now);
        assert!(accepted <= h.a.send_buf_cap);
        h.push_tx(true, tx);
        h.pump_until_quiet();
        assert!(
            h.b.rcv_pending <= h.b.rcv_buf_cap,
            "receive buffer never overflows"
        );
        // Window opens when the app reads.
        let before = h.b.stats.bytes_delivered;
        let _ = h.b.recv(u64::MAX);
        // Sender needs an ACK/window update; trigger via tick + more send.
        let (_, tx) = h.a.send(0, None, h.now);
        h.push_tx(true, tx);
        h.tick_both(300_000_000);
        assert!(h.b.stats.bytes_delivered >= before);
    }

    #[test]
    fn lost_segment_triggers_fast_retransmit_and_recovers() {
        let mut h = Harness::connect();
        h.drop_nth_ab = Some(5);
        let total: u64 = 300_000;
        let mut sent = 0;
        let mut guard = 0;
        while h.b.stats.bytes_delivered < total {
            guard += 1;
            assert!(guard < 10_000, "transfer stuck");
            if sent < total {
                let (n, tx) = h.a.send(total - sent, None, h.now);
                sent += n;
                h.push_tx(true, tx);
            }
            h.pump_until_quiet();
            let _ = h.b.recv(u64::MAX);
            if h.b.stats.bytes_delivered < total {
                h.tick_both(10_000_000);
            }
        }
        assert_eq!(h.b.stats.bytes_delivered, total, "no byte lost to the app");
        assert!(h.a.stats.retransmissions >= 1, "the hole was repaired");
    }

    #[test]
    fn rto_fires_when_acks_stop() {
        let (mut a, _syn) = TcpConn::connect(1, 2, 0);
        // Force establishment without a peer.
        a.state = TcpState::Established;
        a.snd_una = 1;
        a.snd_nxt = 1;
        a.peer_wnd = 1 << 20;
        let (_n, tx) = a.send(5000, None, 0);
        assert!(!tx.is_empty());
        // No ACKs arrive; tick past the initial RTO.
        let rtx = a.on_tick(2_000_000_000);
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 1, "retransmit from snd_una");
        assert_eq!(a.stats.timeouts, 1);
        assert_eq!(a.cwnd, MSS as u64, "cwnd collapsed");
    }

    #[test]
    fn frozen_clock_never_times_out() {
        // The temporal-firewall property at TCP level: if virtual time does
        // not advance, no RTO can fire no matter how long the real gap.
        let (mut a, _syn) = TcpConn::connect(1, 2, 0);
        a.state = TcpState::Established;
        a.snd_una = 1;
        a.snd_nxt = 1;
        a.peer_wnd = 1 << 20;
        let _ = a.send(5000, None, 1000);
        for _ in 0..100 {
            assert!(a.on_tick(1000).is_empty(), "time frozen at 1 µs");
        }
        assert_eq!(a.stats.timeouts, 0);
    }

    #[test]
    fn app_messages_surface_in_order_exactly_once() {
        let mut h = Harness::connect();
        let m1: AppMsg = Arc::new(1u32);
        let m2: AppMsg = Arc::new(2u32);
        let (_, tx) = h.a.send(10_000, Some(m1), h.now);
        h.push_tx(true, tx);
        let (_, tx) = h.a.send(20_000, Some(m2), h.now);
        h.push_tx(true, tx);

        let mut got = Vec::new();
        let mut guard = 0;
        while got.len() < 2 {
            guard += 1;
            assert!(guard < 1000);
            h.wire.sort_by_key(|&(t, _, _)| t);
            if h.wire.is_empty() {
                h.tick_both(10_000_000);
                continue;
            }
            let (t, to_a, seg) = h.wire.remove(0);
            h.now = h.now.max(t);
            if to_a {
                let fx = h.a.on_segment(&seg, h.now);
                h.push_tx(true, fx.tx);
            } else {
                let fx = h.b.on_segment(&seg, h.now);
                for m in fx.delivered_msgs {
                    got.push(*m.downcast_ref::<u32>().unwrap());
                }
                let _ = h.b.recv(u64::MAX);
                h.push_tx(false, fx.tx);
            }
        }
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn cwnd_grows_in_slow_start() {
        let mut h = Harness::connect();
        let initial = h.a.cwnd;
        let (_, tx) = h.a.send(200_000, None, h.now);
        h.push_tx(true, tx);
        h.pump_until_quiet();
        let _ = h.b.recv(u64::MAX);
        assert!(h.a.cwnd > initial, "cwnd grew: {} -> {}", initial, h.a.cwnd);
    }

    #[test]
    fn fin_closes_receiver() {
        let mut h = Harness::connect();
        let fin = h.a.close(h.now).expect("fin");
        h.push_tx(true, vec![fin]);
        h.pump_until_quiet();
        assert_eq!(h.b.state(), TcpState::Closed);
    }
}
