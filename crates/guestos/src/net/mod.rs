//! Guest networking: the TCP engine, the socket table, and packet capture.

pub mod socket;
pub mod tcp;

use ckptstore::{Dec, DecodeError, Enc};
use tcp::TcpSegment;

/// Direction of a captured packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketDir {
    Rx,
    Tx,
}

/// One captured packet, as `tcpdump` on the guest would record it.
///
/// Timestamps are *guest virtual time*: the evaluation's point is that
/// these traces look undisturbed across checkpoints.
#[derive(Clone, Debug)]
pub struct PacketRecord {
    pub t_guest_ns: u64,
    pub dir: PacketDir,
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u64,
    pub ack: u64,
    pub len: u32,
    pub wnd: u32,
    pub syn: bool,
    pub fin: bool,
}

/// An in-guest packet capture buffer.
#[derive(Clone, Debug, Default)]
pub struct NetTrace {
    records: Vec<PacketRecord>,
    enabled: bool,
}

impl NetTrace {
    /// Creates a disabled trace (enable per experiment).
    pub fn new() -> Self {
        NetTrace::default()
    }

    /// Starts capturing.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True if capturing.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records a segment if capturing.
    pub fn record(&mut self, t_guest_ns: u64, dir: PacketDir, seg: &TcpSegment) {
        if !self.enabled {
            return;
        }
        self.records.push(PacketRecord {
            t_guest_ns,
            dir,
            src_port: seg.src_port,
            dst_port: seg.dst_port,
            seq: seg.seq,
            ack: seg.ack,
            len: seg.len,
            wnd: seg.wnd,
            syn: seg.flags.syn,
            fin: seg.flags.fin,
        });
    }

    /// The captured records.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Serializes the capture buffer.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.bool(self.enabled);
        e.seq(self.records.len());
        for r in &self.records {
            e.u64(r.t_guest_ns);
            e.u8(match r.dir {
                PacketDir::Rx => 0,
                PacketDir::Tx => 1,
            });
            e.u16(r.src_port);
            e.u16(r.dst_port);
            e.u64(r.seq);
            e.u64(r.ack);
            e.u32(r.len);
            e.u32(r.wnd);
            e.bool(r.syn);
            e.bool(r.fin);
        }
    }

    /// Inverse of [`NetTrace::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let enabled = d.bool()?;
        let n = d.seq()?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let t_guest_ns = d.u64()?;
            let at = d.position();
            let dir = match d.u8()? {
                0 => PacketDir::Rx,
                1 => PacketDir::Tx,
                tag => return Err(DecodeError::BadTag { at, tag, what: "packet dir" }),
            };
            records.push(PacketRecord {
                t_guest_ns,
                dir,
                src_port: d.u16()?,
                dst_port: d.u16()?,
                seq: d.u64()?,
                ack: d.u64()?,
                len: d.u32()?,
                wnd: d.u32()?,
                syn: d.bool()?,
                fin: d.bool()?,
            });
        }
        Ok(NetTrace { records, enabled })
    }

    /// Inter-arrival gaps (ns) between consecutive received *data* packets.
    pub fn rx_data_gaps_ns(&self) -> Vec<u64> {
        let rx: Vec<&PacketRecord> = self
            .records
            .iter()
            .filter(|r| r.dir == PacketDir::Rx && r.len > 0)
            .collect();
        rx.windows(2)
            .map(|w| w[1].t_guest_ns.saturating_sub(w[0].t_guest_ns))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::tcp::TcpFlags;
    use super::*;

    fn seg(len: u32) -> TcpSegment {
        TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            len,
            flags: TcpFlags::default(),
            wnd: 1000,
            msgs: Vec::new(),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = NetTrace::new();
        t.record(10, PacketDir::Rx, &seg(100));
        assert!(t.records().is_empty());
    }

    #[test]
    fn gaps_ignore_pure_acks_and_tx() {
        let mut t = NetTrace::new();
        t.enable();
        t.record(1000, PacketDir::Rx, &seg(100));
        t.record(1500, PacketDir::Tx, &seg(100)); // ignored: tx
        t.record(2000, PacketDir::Rx, &seg(0)); // ignored: pure ack
        t.record(4000, PacketDir::Rx, &seg(100));
        assert_eq!(t.rx_data_gaps_ns(), vec![3000]);
    }
}
