//! The socket table: fd allocation, demultiplexing, listener backlogs.

use std::collections::{HashMap, VecDeque};

use ckptstore::{Dec, DecodeError, Enc};
use hwsim::NodeAddr;

use crate::net::tcp::{AppMsg, TcpConn, TcpSegment};
use crate::prog::SockFd;
use crate::wire::GuestResidue;

/// One open socket.
#[derive(Clone)]
pub struct SockEntry {
    pub conn: TcpConn,
    pub remote: NodeAddr,
    /// Application messages delivered by the stream, awaiting `Recv`.
    pub inbox: VecDeque<AppMsg>,
}

/// A listening port.
#[derive(Clone, Default)]
pub struct Listener {
    /// Connections that completed their handshake, awaiting `Accept`.
    pub ready: VecDeque<SockFd>,
}

/// All sockets of one guest kernel.
#[derive(Clone, Default)]
pub struct SocketTable {
    next_fd: u32,
    next_ephemeral: u16,
    socks: HashMap<u32, SockEntry>,
    listeners: HashMap<u16, Listener>,
    /// (local port, remote port, remote addr) → fd.
    demux: HashMap<(u16, u16, NodeAddr), u32>,
}

impl SocketTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SocketTable {
            next_fd: 1,
            next_ephemeral: 32768,
            ..SocketTable::default()
        }
    }

    /// Number of open sockets.
    pub fn len(&self) -> usize {
        self.socks.len()
    }

    /// True if no sockets are open.
    pub fn is_empty(&self) -> bool {
        self.socks.is_empty()
    }

    /// Allocates an ephemeral local port.
    pub fn ephemeral_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(32768);
        p
    }

    /// Opens a listener; idempotent.
    pub fn listen(&mut self, port: u16) {
        self.listeners.entry(port).or_default();
    }

    /// True if `port` has a listener.
    pub fn listening(&self, port: u16) -> bool {
        self.listeners.contains_key(&port)
    }

    /// Registers a connection, returning its fd.
    pub fn register(&mut self, conn: TcpConn, remote: NodeAddr) -> SockFd {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.demux
            .insert((conn.local_port, conn.remote_port, remote), fd);
        self.socks.insert(
            fd,
            SockEntry {
                conn,
                remote,
                inbox: VecDeque::new(),
            },
        );
        SockFd(fd)
    }

    /// Finds the socket a segment from `src` belongs to.
    pub fn demux(&self, src: NodeAddr, seg: &TcpSegment) -> Option<SockFd> {
        self.demux
            .get(&(seg.dst_port, seg.src_port, src))
            .map(|&fd| SockFd(fd))
    }

    /// Mutable access to a socket.
    pub fn get_mut(&mut self, fd: SockFd) -> Option<&mut SockEntry> {
        self.socks.get_mut(&fd.0)
    }

    /// Immutable access to a socket.
    pub fn get(&self, fd: SockFd) -> Option<&SockEntry> {
        self.socks.get(&fd.0)
    }

    /// Iterates all sockets mutably (timer ticks).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SockFd, &mut SockEntry)> {
        self.socks.iter_mut().map(|(&fd, e)| (SockFd(fd), e))
    }

    /// Iterates all sockets.
    pub fn iter(&self) -> impl Iterator<Item = (SockFd, &SockEntry)> {
        self.socks.iter().map(|(&fd, e)| (SockFd(fd), e))
    }

    /// Marks a handshake-complete passive connection ready for `Accept`.
    pub fn push_ready(&mut self, port: u16, fd: SockFd) {
        if let Some(l) = self.listeners.get_mut(&port) {
            l.ready.push_back(fd);
        }
    }

    /// Pops a ready connection for `Accept`.
    pub fn pop_ready(&mut self, port: u16) -> Option<SockFd> {
        self.listeners.get_mut(&port)?.ready.pop_front()
    }

    /// Removes a socket.
    pub fn remove(&mut self, fd: SockFd) {
        if let Some(e) = self.socks.remove(&fd.0) {
            self.demux
                .remove(&(e.conn.local_port, e.conn.remote_port, e.remote));
        }
    }

    /// Serializes the table: sockets in fd order, listeners in port order.
    /// The demux map is rebuilt on decode.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        e.u32(self.next_fd);
        e.u16(self.next_ephemeral);
        let mut fds: Vec<u32> = self.socks.keys().copied().collect();
        fds.sort_unstable();
        e.seq(fds.len());
        for fd in fds {
            let entry = &self.socks[&fd];
            e.u32(fd);
            e.u32(entry.remote.0);
            entry.conn.encode_wire(e, residue);
            e.seq(entry.inbox.len());
            for m in &entry.inbox {
                e.u32(residue.push_msg(m));
            }
        }
        let mut ports: Vec<u16> = self.listeners.keys().copied().collect();
        ports.sort_unstable();
        e.seq(ports.len());
        for port in ports {
            e.u16(port);
            let l = &self.listeners[&port];
            e.seq(l.ready.len());
            for fd in &l.ready {
                e.u32(fd.0);
            }
        }
    }

    /// Inverse of [`SocketTable::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let next_fd = d.u32()?;
        let next_ephemeral = d.u16()?;
        let n = d.seq()?;
        let mut socks = HashMap::with_capacity(n);
        let mut demux = HashMap::with_capacity(n);
        for _ in 0..n {
            let fd = d.u32()?;
            let remote = NodeAddr(d.u32()?);
            let conn = TcpConn::decode_wire(d, residue)?;
            let m = d.seq()?;
            let mut inbox = VecDeque::with_capacity(m);
            for _ in 0..m {
                inbox.push_back(residue.msg(d.u32()?)?);
            }
            demux.insert((conn.local_port, conn.remote_port, remote), fd);
            if socks.insert(fd, SockEntry { conn, remote, inbox }).is_some() {
                return Err(DecodeError::Invalid("duplicate socket fd"));
            }
        }
        let np = d.seq()?;
        let mut listeners = HashMap::with_capacity(np);
        for _ in 0..np {
            let port = d.u16()?;
            let nr = d.seq()?;
            let mut ready = VecDeque::with_capacity(nr);
            for _ in 0..nr {
                ready.push_back(SockFd(d.u32()?));
            }
            if listeners.insert(port, Listener { ready }).is_some() {
                return Err(DecodeError::Invalid("duplicate listener port"));
            }
        }
        Ok(SocketTable { next_fd, next_ephemeral, socks, listeners, demux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::tcp::TcpConn;

    #[test]
    fn register_and_demux_roundtrip() {
        let mut t = SocketTable::new();
        let (conn, syn) = TcpConn::connect(1000, 80, 0);
        let fd = t.register(conn, NodeAddr(9));
        // A reply from the server (ports swapped) demuxes to our fd.
        let mut reply = syn.clone();
        reply.src_port = 80;
        reply.dst_port = 1000;
        assert_eq!(t.demux(NodeAddr(9), &reply), Some(fd));
        // Same ports from a different host do not.
        assert_eq!(t.demux(NodeAddr(8), &reply), None);
        t.remove(fd);
        assert_eq!(t.demux(NodeAddr(9), &reply), None);
    }

    #[test]
    fn listener_backlog_fifo() {
        let mut t = SocketTable::new();
        t.listen(80);
        assert!(t.listening(80));
        t.push_ready(80, SockFd(5));
        t.push_ready(80, SockFd(6));
        assert_eq!(t.pop_ready(80), Some(SockFd(5)));
        assert_eq!(t.pop_ready(80), Some(SockFd(6)));
        assert_eq!(t.pop_ready(80), None);
    }

    #[test]
    fn ephemeral_ports_advance() {
        let mut t = SocketTable::new();
        let a = t.ephemeral_port();
        let b = t.ephemeral_port();
        assert_ne!(a, b);
        assert!(a >= 32768);
    }
}
