//! The guest kernel: syscall dispatch, wakeups, and checkpoint hooks.
//!
//! The kernel is driven entirely by its hypervisor (the `vmm` crate)
//! through the entry points `on_timer_tick`, `on_net_rx`,
//! `on_block_complete`, and `on_compute_done`; each entry updates the
//! guest-visible clock (supplied by the vmm's paravirtual time machinery),
//! processes the event, runs the firewall-gated scheduler, and leaves a
//! queue of [`GuestAction`]s for the vmm to perform.
//!
//! Checkpoint participation follows §4.1: `prepare_suspend` closes the
//! temporal firewall and reports whether in-flight block I/O still needs
//! draining (those completions are the IRQs allowed through the firewall);
//! once quiescent the vmm saves state (a clone) and later calls
//! `finish_resume`, which reopens the firewall. Guest time across the gap
//! is continuous because the vmm froze it — nothing in here needs to know
//! the checkpoint happened, which is the whole point.

use std::collections::HashMap;

use ckptstore::{Dec, DecodeError, Enc};
use cowstore::BlockData;
use hwsim::NodeAddr;

use crate::actions::{BlockBatch, BlockBatchOp, GuestAction};
use crate::audit::{ClockEventKind, ClockWitness};
use crate::firewall::FirewallState;
use crate::fs::{BufferCache, Ext3Fs};
use crate::net::socket::SocketTable;
use crate::net::tcp::{TcpConn, TcpSegment, TcpStats};
use crate::net::{NetTrace, PacketDir};
use crate::prog::{CtrlResp, FileId, GuestProg, SockFd, Syscall, SysRet};
use crate::sched::{RunQueue, Thread, ThreadClass, ThreadState, Tid};
use crate::timer::{sleep_to_wake_jiffy, TimerWheel};
use crate::wire::GuestResidue;

/// Dirty-block fraction (of cache capacity) that starts async writeback.
const WB_HIGH_FRAC: f64 = 0.25;

/// Dirty-block fraction that throttles writers (blocking writeback).
const WB_HARD_FRAC: f64 = 0.5;

/// Max blocks per writeback batch.
const WB_CHUNK: usize = 2048;

/// Periodic writeback interval in jiffies (pdflush-style, 5 s at HZ=100).
const WB_PERIOD_JIFFIES: u64 = 500;

/// Step budget per dispatch: a guard against non-blocking-syscall loops.
const STEP_BUDGET: u32 = 1_000_000;

/// Static configuration of a guest kernel.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Timer frequency (ticks per second).
    pub hz: u32,
    /// This node's experiment-network address.
    pub node: NodeAddr,
    /// Buffer-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Virtual disk capacity in blocks.
    pub disk_blocks: u64,
    /// Filesystem block size.
    pub block_size: u32,
    /// Filesystem blocks per allocation group.
    pub blocks_per_group: u32,
}

impl KernelConfig {
    /// The §7 evaluation guest: HZ=100, 256 MB memory (≈200 MB page
    /// cache), 6 GB disk, ext3 with 8192-block groups.
    pub fn pc3000_guest(node: NodeAddr) -> Self {
        KernelConfig {
            hz: 100,
            node,
            cache_blocks: 51_200,
            disk_blocks: (6u64 << 30) / 4096,
            block_size: 4096,
            blocks_per_group: 8192,
        }
    }

    /// Timer tick length in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        1_000_000_000 / self.hz as u64
    }
}

/// Why a block batch was issued (decides completion handling).
#[derive(Clone, Debug)]
enum BatchKind {
    /// Cache-miss reads: fill the cache, wake the reader.
    Read,
    /// Writeback: blocks were already marked clean when taken.
    Writeback,
}

#[derive(Clone, Debug)]
struct BatchInfo {
    kind: BatchKind,
    waiters: Vec<Tid>,
}

/// Aggregate network counters for one kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetTotals {
    pub retransmissions: u64,
    pub timeouts: u64,
    pub dup_acks: u64,
    pub window_shrinks: u64,
    pub bytes_delivered: u64,
    pub segments_sent: u64,
}

/// The guest kernel.
#[derive(Clone)]
pub struct Kernel {
    cfg: KernelConfig,
    /// Guest-visible time at the last entry (vmm-supplied).
    now_ns: u64,
    jiffies: u64,
    /// Guest wall clock (xtime), updated on ticks.
    xtime_ns: u64,
    threads: Vec<Thread>,
    runq: RunQueue,
    wheel: TimerWheel,
    fw: FirewallState,
    socks: SocketTable,
    /// In-guest packet capture.
    pub trace: NetTrace,
    fs: Ext3Fs,
    cache: BufferCache,
    next_batch: u64,
    batches: HashMap<u64, BatchInfo>,
    wb_in_flight: bool,
    next_burst: u64,
    next_rpc: u64,
    actions: Vec<GuestAction>,
    /// Threads that exited (for experiment completion checks).
    pub exited: u32,
    /// Guest-observable clock events awaiting a vmm drain. Not guest
    /// state: excluded from the wire image, drained before capture.
    pub witness: ClockWitness,
}

impl Kernel {
    /// Boots a kernel: formats the filesystem, starts services.
    pub fn new(cfg: KernelConfig) -> Self {
        let fs = Ext3Fs::format(cfg.disk_blocks, cfg.block_size, cfg.blocks_per_group);
        let cache = BufferCache::new(cfg.cache_blocks);
        Kernel {
            cfg,
            now_ns: 0,
            jiffies: 0,
            xtime_ns: 0,
            threads: Vec::new(),
            runq: RunQueue::new(),
            wheel: TimerWheel::new(),
            fw: FirewallState::new(),
            socks: SocketTable::new(),
            trace: NetTrace::new(),
            fs,
            cache,
            next_batch: 1,
            batches: HashMap::new(),
            wb_in_flight: false,
            next_burst: 1,
            next_rpc: 1,
            actions: Vec::new(),
            exited: 0,
            witness: ClockWitness::default(),
        }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Guest-visible time at the last entry.
    pub fn guest_now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current jiffies.
    pub fn jiffies(&self) -> u64 {
        self.jiffies
    }

    /// The temporal firewall state.
    pub fn firewall(&self) -> &FirewallState {
        &self.fw
    }

    /// Spawns a user program as a new thread.
    pub fn spawn(&mut self, prog: Box<dyn GuestProg>) -> Tid {
        let tid = Tid(self.threads.len() as u32);
        self.threads.push(Thread::user(tid, prog));
        self.runq.push(tid);
        tid
    }

    /// Borrows a program back out (downcast in the caller) to read results.
    pub fn prog(&self, tid: Tid) -> Option<&dyn GuestProg> {
        self.threads.get(tid.0 as usize)?.prog.as_deref()
    }

    /// Drains the pending hypervisor actions.
    pub fn drain_actions(&mut self) -> Vec<GuestAction> {
        std::mem::take(&mut self.actions)
    }

    /// Aggregate TCP counters across all sockets.
    pub fn net_totals(&self) -> NetTotals {
        let mut t = NetTotals::default();
        for (_, e) in self.socks.iter() {
            let s: &TcpStats = &e.conn.stats;
            t.retransmissions += s.retransmissions;
            t.timeouts += s.timeouts;
            t.dup_acks += s.dup_acks;
            t.window_shrinks += s.window_shrinks;
            t.bytes_delivered += s.bytes_delivered;
            t.segments_sent += s.segments_sent;
        }
        t
    }

    /// A stable digest of guest-observable state, used by tests to verify
    /// that a checkpoint/restore cycle is invisible from inside.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.jiffies);
        mix(self.xtime_ns);
        mix(self.threads.len() as u64);
        for t in &self.threads {
            mix(t.state.tag() as u64);
        }
        for (fd, e) in self.socks.iter() {
            mix(fd.0 as u64);
            mix(e.conn.stats.bytes_sent);
            mix(e.conn.stats.bytes_delivered);
        }
        mix(self.fs.allocated_blocks());
        mix(self.cache.len() as u64);
        h
    }

    /// Serializes the entire kernel into a checkpoint image; program
    /// objects and message markers land in `residue`.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        e.u32(self.cfg.hz);
        e.u32(self.cfg.node.0);
        e.u64(self.cfg.cache_blocks as u64);
        e.u64(self.cfg.disk_blocks);
        e.u32(self.cfg.block_size);
        e.u32(self.cfg.blocks_per_group);
        e.u64(self.now_ns);
        e.u64(self.jiffies);
        e.u64(self.xtime_ns);
        e.seq(self.threads.len());
        for t in &self.threads {
            t.encode_wire(e, residue);
        }
        self.runq.encode_wire(e);
        self.wheel.encode_wire(e);
        self.fw.encode_wire(e);
        self.socks.encode_wire(e, residue);
        self.trace.encode_wire(e);
        self.fs.encode_wire(e);
        self.cache.encode_wire(e);
        e.u64(self.next_batch);
        let mut ids: Vec<u64> = self.batches.keys().copied().collect();
        ids.sort_unstable();
        e.seq(ids.len());
        for id in ids {
            let b = &self.batches[&id];
            e.u64(id);
            e.u8(match b.kind {
                BatchKind::Read => 0,
                BatchKind::Writeback => 1,
            });
            e.seq(b.waiters.len());
            for t in &b.waiters {
                e.u32(t.0);
            }
        }
        e.bool(self.wb_in_flight);
        e.u64(self.next_burst);
        e.u64(self.next_rpc);
        e.seq(self.actions.len());
        for a in &self.actions {
            a.encode_wire(e, residue);
        }
        e.u32(self.exited);
    }

    /// Inverse of [`Kernel::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let cfg = KernelConfig {
            hz: d.u32()?,
            node: NodeAddr(d.u32()?),
            cache_blocks: d.u64()? as usize,
            disk_blocks: d.u64()?,
            block_size: d.u32()?,
            blocks_per_group: d.u32()?,
        };
        let now_ns = d.u64()?;
        let jiffies = d.u64()?;
        let xtime_ns = d.u64()?;
        let nthreads = d.seq()?;
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            threads.push(Thread::decode_wire(d, residue)?);
        }
        let runq = RunQueue::decode_wire(d)?;
        let wheel = TimerWheel::decode_wire(d)?;
        let fw = FirewallState::decode_wire(d)?;
        let socks = SocketTable::decode_wire(d, residue)?;
        let trace = NetTrace::decode_wire(d)?;
        let fs = Ext3Fs::decode_wire(d)?;
        let cache = BufferCache::decode_wire(d)?;
        let next_batch = d.u64()?;
        let nbatches = d.seq()?;
        let mut batches = HashMap::with_capacity(nbatches);
        for _ in 0..nbatches {
            let id = d.u64()?;
            let at = d.position();
            let kind = match d.u8()? {
                0 => BatchKind::Read,
                1 => BatchKind::Writeback,
                tag => return Err(DecodeError::BadTag { at, tag, what: "batch kind" }),
            };
            let nw = d.seq()?;
            let mut waiters = Vec::with_capacity(nw);
            for _ in 0..nw {
                waiters.push(Tid(d.u32()?));
            }
            if batches.insert(id, BatchInfo { kind, waiters }).is_some() {
                return Err(DecodeError::Invalid("duplicate batch id"));
            }
        }
        let wb_in_flight = d.bool()?;
        let next_burst = d.u64()?;
        let next_rpc = d.u64()?;
        let nactions = d.seq()?;
        let mut actions = Vec::with_capacity(nactions);
        for _ in 0..nactions {
            actions.push(GuestAction::decode_wire(d, residue)?);
        }
        let exited = d.u32()?;
        Ok(Kernel {
            cfg,
            now_ns,
            jiffies,
            xtime_ns,
            threads,
            runq,
            wheel,
            fw,
            socks,
            trace,
            fs,
            cache,
            next_batch,
            batches,
            wb_in_flight,
            next_burst,
            next_rpc,
            actions,
            exited,
            witness: ClockWitness::default(),
        })
    }

    // ------------------------------------------------------------------
    // Entry points from the vmm.
    // ------------------------------------------------------------------

    /// Timer interrupt: advances jiffies, expires timers, runs TCP tick
    /// processing and periodic writeback, then schedules.
    pub fn on_timer_tick(&mut self, guest_now_ns: u64) {
        if self.fw.closed() {
            // The vmm should not deliver ticks during a checkpoint; being
            // defensive costs nothing.
            return;
        }
        self.now_ns = guest_now_ns;
        self.jiffies += 1;
        self.xtime_ns = guest_now_ns;
        self.witness
            .record(ClockEventKind::Tick, guest_now_ns, self.jiffies);

        for tid in self.wheel.expire(self.jiffies) {
            self.wake(tid, SysRet::Ok);
        }

        // TCP retransmit timers.
        let now = self.now_ns;
        let mut tx: Vec<(NodeAddr, TcpSegment)> = Vec::new();
        for (_, e) in self.socks.iter_mut() {
            for seg in e.conn.on_tick(now) {
                tx.push((e.remote, seg));
            }
        }
        for (dst, seg) in tx {
            self.transmit(dst, seg);
        }

        // pdflush-style periodic writeback.
        if self.jiffies.is_multiple_of(WB_PERIOD_JIFFIES) && self.cache.dirty_count() > 0 {
            self.start_writeback(None);
        }

        self.run_threads();
    }

    /// A frame arrived from the virtual NIC.
    pub fn on_net_rx(&mut self, guest_now_ns: u64, src: NodeAddr, seg: &TcpSegment) {
        assert!(
            !self.fw.closed(),
            "vmm delivered rx while the device was suspended"
        );
        self.now_ns = guest_now_ns;
        self.trace.record(self.now_ns, PacketDir::Rx, seg);

        let fd = match self.socks.demux(src, seg) {
            Some(fd) => fd,
            None if seg.flags.syn && self.socks.listening(seg.dst_port) => {
                let (conn, synack) = TcpConn::accept(seg.dst_port, seg.src_port, seg, self.now_ns);
                let fd = self.socks.register(conn, src);
                self.transmit(src, synack);
                fd
            }
            None => return, // No listener / stale segment: drop (no RST modeled).
        };

        let now = self.now_ns;
        let (fx, remote, local_port) = {
            let e = self.socks.get_mut(fd).expect("demuxed fd exists");
            let fx = e.conn.on_segment(seg, now);
            (fx, e.remote, e.conn.local_port)
        };
        for seg in fx.tx {
            self.transmit(remote, seg);
        }
        if !fx.delivered_msgs.is_empty() {
            let e = self.socks.get_mut(fd).expect("fd exists");
            e.inbox.extend(fx.delivered_msgs);
        }
        if fx.connected {
            // Passive side: park in the accept backlog; active side: wake
            // the connecting thread.
            let mut woke_connector = false;
            for i in 0..self.threads.len() {
                if let ThreadState::ConnectWait { fd: wfd } = self.threads[i].state {
                    if wfd == fd.0 {
                        let tid = self.threads[i].tid;
                        self.wake(tid, SysRet::Sock(fd));
                        woke_connector = true;
                        break;
                    }
                }
            }
            if !woke_connector {
                self.socks.push_ready(local_port, fd);
                self.wake_acceptors(local_port);
            }
        }
        self.service_socket_waiters(fd);
        self.run_threads();
    }

    /// A block batch completed; `read_data` carries content for its reads.
    pub fn on_block_complete(&mut self, guest_now_ns: u64, batch_id: u64, read_data: Vec<(u64, BlockData)>) {
        // Block completions are allowed through the firewall (drain path).
        if !self.fw.closed() {
            self.now_ns = guest_now_ns;
        }
        let Some(info) = self.batches.remove(&batch_id) else {
            panic!("completion for unknown batch {batch_id}");
        };
        match info.kind {
            BatchKind::Read => {
                for (vba, data) in read_data {
                    if let Some((wb_vba, wb_data)) = self.cache.put(vba, data, false) {
                        // Filling the cache displaced a dirty block; write
                        // it back asynchronously.
                        self.start_writeback(Some(vec![(wb_vba, wb_data)]));
                    }
                }
            }
            BatchKind::Writeback => {
                self.wb_in_flight = false;
            }
        }
        for tid in info.waiters {
            self.wake(tid, SysRet::Ok);
        }
        self.run_threads();
    }

    /// A control-service RPC reply arrived (timestamps already transduced
    /// to guest time by the vmm boundary).
    pub fn on_ctrl_rpc(&mut self, guest_now_ns: u64, rpc_id: u64, resp: CtrlResp) {
        self.now_ns = guest_now_ns;
        for i in 0..self.threads.len() {
            if let ThreadState::RpcWait { id } = self.threads[i].state {
                if id == rpc_id {
                    let tid = self.threads[i].tid;
                    self.wake(tid, SysRet::Rpc(resp));
                    break;
                }
            }
        }
        self.run_threads();
    }

    /// A CPU burst finished.
    pub fn on_compute_done(&mut self, guest_now_ns: u64, burst_id: u64) {
        self.now_ns = guest_now_ns;
        for i in 0..self.threads.len() {
            if let ThreadState::Computing { burst } = self.threads[i].state {
                if burst == burst_id {
                    let tid = self.threads[i].tid;
                    self.wake(tid, SysRet::Ok);
                    break;
                }
            }
        }
        self.run_threads();
    }

    // ------------------------------------------------------------------
    // Checkpoint hooks (§4.1).
    // ------------------------------------------------------------------

    /// Begins suspension: closes the temporal firewall. Returns true if
    /// the guest is already quiescent (no in-flight block I/O); otherwise
    /// the vmm must keep delivering block completions and poll
    /// [`Kernel::suspend_ready`].
    pub fn prepare_suspend(&mut self, guest_now_ns: u64) -> bool {
        self.now_ns = guest_now_ns;
        self.fw.close(guest_now_ns);
        self.witness
            .record(ClockEventKind::FirewallClosed, guest_now_ns, self.jiffies);
        self.suspend_ready()
    }

    /// True once in-flight block I/O has drained.
    pub fn suspend_ready(&self) -> bool {
        self.batches.is_empty()
    }

    /// Completes resume: reopens the firewall. The vmm guarantees guest
    /// time is continuous with the freeze point.
    pub fn finish_resume(&mut self, guest_now_ns: u64) {
        self.fw.open(guest_now_ns);
        self.now_ns = guest_now_ns;
        self.witness
            .record(ClockEventKind::FirewallOpened, guest_now_ns, self.jiffies);
        self.run_threads();
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn transmit(&mut self, dst: NodeAddr, seg: TcpSegment) {
        self.trace.record(self.now_ns, PacketDir::Tx, &seg);
        self.actions.push(GuestAction::NetTx { dst, seg });
    }

    fn wake(&mut self, tid: Tid, ret: SysRet) {
        let t = &mut self.threads[tid.0 as usize];
        if t.exited() {
            return;
        }
        t.state = ThreadState::Runnable;
        t.pending_ret = ret;
        self.runq.push(tid);
    }

    fn wake_acceptors(&mut self, port: u16) {
        for i in 0..self.threads.len() {
            if let ThreadState::AcceptWait { port: p } = self.threads[i].state {
                if p == port {
                    if let Some(fd) = self.socks.pop_ready(port) {
                        let tid = self.threads[i].tid;
                        self.wake(tid, SysRet::Sock(fd));
                    }
                }
            }
        }
    }

    /// Re-checks threads blocked on a socket after its state changed.
    fn service_socket_waiters(&mut self, fd: SockFd) {
        for i in 0..self.threads.len() {
            let tid = self.threads[i].tid;
            match self.threads[i].state.clone() {
                ThreadState::RecvWait { fd: wfd, max } if wfd == fd.0 => {
                    let ready = {
                        let e = self.socks.get(fd).expect("fd exists");
                        e.conn.readable() > 0 || !e.inbox.is_empty()
                    };
                    if ready {
                        let ret = self.do_recv(fd, max);
                        self.wake(tid, ret);
                    }
                }
                ThreadState::SendWait { fd: wfd, bytes, msg } if wfd == fd.0 => {
                    let now = self.now_ns;
                    let (accepted, tx, remote) = {
                        let e = self.socks.get_mut(fd).expect("fd exists");
                        let (n, tx) = e.conn.send(bytes, msg.clone(), now);
                        (n, tx, e.remote)
                    };
                    for seg in tx {
                        self.transmit(remote, seg);
                    }
                    if accepted > 0 {
                        self.wake(tid, SysRet::Sent(accepted));
                    }
                }
                _ => {}
            }
        }
    }

    fn do_recv(&mut self, fd: SockFd, max: u64) -> SysRet {
        let e = self.socks.get_mut(fd).expect("fd exists");
        let bytes = e.conn.recv(max);
        let msgs: Vec<_> = e.inbox.drain(..).collect();
        SysRet::Recvd { bytes, msgs }
    }

    fn start_writeback(&mut self, forced: Option<Vec<(u64, BlockData)>>) {
        let blocks = match forced {
            Some(b) => b,
            None => {
                if self.wb_in_flight {
                    return;
                }
                self.cache.take_dirty(WB_CHUNK)
            }
        };
        if blocks.is_empty() {
            return;
        }
        self.wb_in_flight = true;
        let id = self.next_batch;
        self.next_batch += 1;
        let ops = blocks
            .into_iter()
            .map(|(vba, data)| BlockBatchOp {
                write: true,
                vba,
                data: Some(data),
            })
            .collect();
        self.batches.insert(
            id,
            BatchInfo {
                kind: BatchKind::Writeback,
                waiters: Vec::new(),
            },
        );
        self.actions.push(GuestAction::BlockIo(BlockBatch { id, ops }));
    }

    /// The dispatch loop: runs threads until everything blocks.
    fn run_threads(&mut self) {
        let mut budget = STEP_BUDGET;
        let classes_snapshot: Vec<ThreadClass> = self.threads.iter().map(|t| t.class).collect();
        loop {
            let classes = |tid: Tid| classes_snapshot[tid.0 as usize];
            let Some(tid) = self.runq.pick_next(&self.fw, &classes) else {
                return;
            };
            // A thread may appear in the queue after being re-blocked by a
            // racing wake; skip anything not actually runnable.
            if !matches!(self.threads[tid.0 as usize].state, ThreadState::Runnable) {
                continue;
            }
            loop {
                budget = budget.checked_sub(1).expect(
                    "guest step budget exhausted: a program is spinning on non-blocking syscalls",
                );
                let (sys, _name) = {
                    let t = &mut self.threads[tid.0 as usize];
                    let ret = std::mem::replace(&mut t.pending_ret, SysRet::Ok);
                    let prog = t.prog.as_mut().expect("user thread has a program");
                    (prog.step(ret), ())
                };
                if !self.handle_syscall(tid, sys) {
                    break; // Thread blocked, yielded, or exited.
                }
            }
        }
    }

    /// Executes a syscall for `tid`. Returns true if the thread remains
    /// runnable (non-blocking call answered inline).
    fn handle_syscall(&mut self, tid: Tid, sys: Syscall) -> bool {
        match sys {
            Syscall::Gettimeofday => {
                self.witness
                    .record(ClockEventKind::ClockRead, self.now_ns, self.jiffies);
                self.threads[tid.0 as usize].pending_ret = SysRet::Time(self.now_ns);
                true
            }
            Syscall::Sleep { ns } => {
                let wake = sleep_to_wake_jiffy(self.jiffies, ns, self.cfg.tick_ns());
                self.wheel.arm(wake, tid);
                self.threads[tid.0 as usize].state = ThreadState::Sleeping;
                false
            }
            Syscall::Compute { ns } => {
                let id = self.next_burst;
                self.next_burst += 1;
                self.threads[tid.0 as usize].state = ThreadState::Computing { burst: id };
                self.actions.push(GuestAction::Compute { id, ns });
                false
            }
            Syscall::Yield => {
                self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
                self.runq.push(tid);
                false
            }
            Syscall::Listen { port } => {
                self.socks.listen(port);
                self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
                true
            }
            Syscall::AcceptNb { port } => {
                if !self.socks.listening(port) {
                    self.socks.listen(port);
                }
                let ret = match self.socks.pop_ready(port) {
                    Some(fd) => SysRet::Sock(fd),
                    None => SysRet::Ok,
                };
                self.threads[tid.0 as usize].pending_ret = ret;
                true
            }
            Syscall::Accept { port } => {
                if !self.socks.listening(port) {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Err("not listening");
                    return true;
                }
                match self.socks.pop_ready(port) {
                    Some(fd) => {
                        self.threads[tid.0 as usize].pending_ret = SysRet::Sock(fd);
                        true
                    }
                    None => {
                        self.threads[tid.0 as usize].state = ThreadState::AcceptWait { port };
                        false
                    }
                }
            }
            Syscall::Connect { dst, port } => {
                let local = self.socks.ephemeral_port();
                let (conn, syn) = TcpConn::connect(local, port, self.now_ns);
                let fd = self.socks.register(conn, dst);
                self.transmit(dst, syn);
                self.threads[tid.0 as usize].state = ThreadState::ConnectWait { fd: fd.0 };
                false
            }
            Syscall::Send { fd, bytes, msg } => {
                let Some(e) = self.socks.get_mut(fd) else {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Err("bad fd");
                    return true;
                };
                let now = self.now_ns;
                let (accepted, tx) = e.conn.send(bytes, msg.clone(), now);
                let remote = e.remote;
                for seg in tx {
                    self.transmit(remote, seg);
                }
                if accepted > 0 {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Sent(accepted);
                    true
                } else {
                    self.threads[tid.0 as usize].state = ThreadState::SendWait {
                        fd: fd.0,
                        bytes,
                        msg,
                    };
                    false
                }
            }
            Syscall::RecvNb { fd, max } => {
                let Some(e) = self.socks.get(fd) else {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Err("bad fd");
                    return true;
                };
                let ret = if e.conn.readable() > 0 || !e.inbox.is_empty() {
                    self.do_recv(fd, max)
                } else {
                    SysRet::Recvd {
                        bytes: 0,
                        msgs: Vec::new(),
                    }
                };
                self.threads[tid.0 as usize].pending_ret = ret;
                true
            }
            Syscall::SendNb { fd, bytes, msg } => {
                let Some(e) = self.socks.get_mut(fd) else {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Err("bad fd");
                    return true;
                };
                let now = self.now_ns;
                let (accepted, tx) = e.conn.send(bytes, msg, now);
                let remote = e.remote;
                for seg in tx {
                    self.transmit(remote, seg);
                }
                self.threads[tid.0 as usize].pending_ret = SysRet::Sent(accepted);
                true
            }
            Syscall::Recv { fd, max } => {
                let Some(e) = self.socks.get(fd) else {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Err("bad fd");
                    return true;
                };
                if e.conn.readable() > 0 || !e.inbox.is_empty() {
                    let ret = self.do_recv(fd, max);
                    self.threads[tid.0 as usize].pending_ret = ret;
                    true
                } else {
                    self.threads[tid.0 as usize].state = ThreadState::RecvWait { fd: fd.0, max };
                    false
                }
            }
            Syscall::CloseSock { fd } => {
                let now = self.now_ns;
                if let Some(e) = self.socks.get_mut(fd) {
                    let fin = e.conn.close(now);
                    let remote = e.remote;
                    if let Some(seg) = fin {
                        self.transmit(remote, seg);
                    }
                }
                self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
                true
            }
            Syscall::Create { file } => {
                let ret = match self.fs.create(file) {
                    Ok(()) => SysRet::Ok,
                    Err(e) => SysRet::Err(e),
                };
                self.threads[tid.0 as usize].pending_ret = ret;
                true
            }
            Syscall::Write { file, offset, bytes } => self.sys_write(tid, file, offset, bytes),
            Syscall::Read { file, offset, bytes } => self.sys_read(tid, file, offset, bytes),
            Syscall::Delete { file } => {
                match self.fs.delete(file) {
                    Ok((bitmap_writes, freed)) => {
                        for vba in freed {
                            self.cache.invalidate(vba);
                        }
                        let mut forced = Vec::new();
                        for w in bitmap_writes {
                            if let Some(ev) = self.cache.put(w.vba, w.data, true) {
                                forced.push(ev);
                            }
                        }
                        if !forced.is_empty() {
                            self.start_writeback(Some(forced));
                        }
                        self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
                    }
                    Err(e) => self.threads[tid.0 as usize].pending_ret = SysRet::Err(e),
                }
                true
            }
            Syscall::Sync => {
                let dirty = self.cache.take_dirty(usize::MAX >> 1);
                if dirty.is_empty() && self.batches.is_empty() {
                    self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
                    return true;
                }
                let id = self.next_batch;
                self.next_batch += 1;
                let ops = dirty
                    .into_iter()
                    .map(|(vba, data)| BlockBatchOp {
                        write: true,
                        vba,
                        data: Some(data),
                    })
                    .collect::<Vec<_>>();
                if ops.is_empty() {
                    // Outstanding batches but nothing new: wait on a no-op
                    // marker batch to preserve ordering.
                    self.batches.insert(
                        id,
                        BatchInfo {
                            kind: BatchKind::Writeback,
                            waiters: vec![tid],
                        },
                    );
                    self.actions
                        .push(GuestAction::BlockIo(BlockBatch { id, ops: Vec::new() }));
                } else {
                    self.batches.insert(
                        id,
                        BatchInfo {
                            kind: BatchKind::Writeback,
                            waiters: vec![tid],
                        },
                    );
                    self.wb_in_flight = true;
                    self.actions.push(GuestAction::BlockIo(BlockBatch { id, ops }));
                }
                self.threads[tid.0 as usize].state = ThreadState::IoWait { batch: id };
                false
            }
            Syscall::CtrlRpc { req } => {
                let id = self.next_rpc;
                self.next_rpc += 1;
                self.threads[tid.0 as usize].state = ThreadState::RpcWait { id };
                self.actions.push(GuestAction::CtrlRpc { id, req });
                false
            }
            Syscall::TriggerCheckpoint => {
                self.actions.push(GuestAction::TriggerCheckpoint);
                self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
                true
            }
            Syscall::Exit => {
                // The program object is kept so experiments can read its
                // recorded results after the run.
                self.threads[tid.0 as usize].state = ThreadState::Exited;
                self.exited += 1;
                false
            }
        }
    }

    fn sys_write(&mut self, tid: Tid, file: FileId, offset: u64, bytes: u64) -> bool {
        let writes = match self.fs.write(file, offset, bytes) {
            Ok(w) => w,
            Err(e) => {
                self.threads[tid.0 as usize].pending_ret = SysRet::Err(e);
                return true;
            }
        };
        let mut forced = Vec::new();
        for w in writes {
            if let Some(ev) = self.cache.put(w.vba, w.data, true) {
                forced.push(ev);
            }
        }
        if !forced.is_empty() {
            self.start_writeback(Some(forced));
        }
        let hard = (self.cache.capacity() as f64 * WB_HARD_FRAC) as usize;
        let high = (self.cache.capacity() as f64 * WB_HIGH_FRAC) as usize;
        if self.cache.dirty_count() >= hard {
            // Throttle the writer behind a blocking writeback.
            let blocks = self.cache.take_dirty(WB_CHUNK);
            let id = self.next_batch;
            self.next_batch += 1;
            let ops = blocks
                .into_iter()
                .map(|(vba, data)| BlockBatchOp {
                    write: true,
                    vba,
                    data: Some(data),
                })
                .collect();
            self.batches.insert(
                id,
                BatchInfo {
                    kind: BatchKind::Writeback,
                    waiters: vec![tid],
                },
            );
            self.wb_in_flight = true;
            self.actions.push(GuestAction::BlockIo(BlockBatch { id, ops }));
            self.threads[tid.0 as usize].state = ThreadState::IoWait { batch: id };
            self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
            false
        } else {
            if self.cache.dirty_count() >= high {
                self.start_writeback(None);
            }
            self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
            true
        }
    }

    fn sys_read(&mut self, tid: Tid, file: FileId, offset: u64, bytes: u64) -> bool {
        let vbas = match self.fs.read_vbas(file, offset, bytes) {
            Ok(v) => v,
            Err(e) => {
                self.threads[tid.0 as usize].pending_ret = SysRet::Err(e);
                return true;
            }
        };
        let mut misses = Vec::new();
        for vba in vbas {
            if self.cache.read(vba).is_none() {
                misses.push(vba);
            }
        }
        if misses.is_empty() {
            self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
            return true;
        }
        let id = self.next_batch;
        self.next_batch += 1;
        let ops = misses
            .iter()
            .map(|&vba| BlockBatchOp {
                write: false,
                vba,
                data: None,
            })
            .collect();
        self.batches.insert(
            id,
            BatchInfo {
                kind: BatchKind::Read,
                waiters: vec![tid],
            },
        );
        self.actions.push(GuestAction::BlockIo(BlockBatch { id, ops }));
        self.threads[tid.0 as usize].state = ThreadState::IoWait { batch: id };
        self.threads[tid.0 as usize].pending_ret = SysRet::Ok;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::{CtrlReq, GuestProg, NullProg, SockFd};
    use std::any::Any;

    fn small_kernel() -> Kernel {
        let mut cfg = KernelConfig::pc3000_guest(NodeAddr(1));
        cfg.disk_blocks = 10_000;
        cfg.cache_blocks = 64;
        Kernel::new(cfg)
    }

    /// A program driven by a script of syscalls; records returns.
    #[derive(Clone)]
    struct Scripted {
        script: Vec<u8>, // Opcode stream, interpreted in `step`.
        pc: usize,
        pub rets: Vec<String>,
    }

    impl Scripted {
        fn new(script: &[u8]) -> Self {
            Scripted {
                script: script.to_vec(),
                pc: 0,
                rets: Vec::new(),
            }
        }
    }

    impl GuestProg for Scripted {
        fn step(&mut self, ret: SysRet) -> Syscall {
            self.rets.push(format!("{ret:?}"));
            let op = self.script.get(self.pc).copied().unwrap_or(255);
            self.pc += 1;
            match op {
                0 => Syscall::AcceptNb { port: 80 },
                1 => Syscall::Listen { port: 80 },
                2 => Syscall::RecvNb {
                    fd: SockFd(999),
                    max: 10,
                },
                3 => Syscall::CtrlRpc {
                    req: CtrlReq::NfsGetattr { file: 1 },
                },
                4 => Syscall::TriggerCheckpoint,
                5 => Syscall::Gettimeofday,
                _ => Syscall::Exit,
            }
        }
        fn clone_box(&self) -> Box<dyn GuestProg> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn rets(k: &Kernel, tid: Tid) -> Vec<String> {
        k.prog(tid)
            .unwrap()
            .as_any()
            .downcast_ref::<Scripted>()
            .unwrap()
            .rets
            .clone()
    }

    #[test]
    fn accept_nb_returns_ok_when_no_connection_waits() {
        let mut k = small_kernel();
        let tid = k.spawn(Box::new(Scripted::new(&[1, 0, 255])));
        k.on_timer_tick(10_000_000);
        let r = rets(&k, tid);
        // Start, Ok (listen), Ok (accept-nb empty), then exit.
        assert_eq!(r[1], "Ok");
        assert_eq!(r[2], "Ok", "empty backlog must not block");
        assert_eq!(k.exited, 1);
    }

    #[test]
    fn recv_nb_on_bad_fd_errors_inline() {
        let mut k = small_kernel();
        let tid = k.spawn(Box::new(Scripted::new(&[2, 255])));
        k.on_timer_tick(10_000_000);
        let r = rets(&k, tid);
        assert_eq!(r[1], "Err(bad fd)");
    }

    #[test]
    fn ctrl_rpc_blocks_until_reply_arrives() {
        let mut k = small_kernel();
        let tid = k.spawn(Box::new(Scripted::new(&[3, 255])));
        k.on_timer_tick(10_000_000);
        // The thread is parked in RpcWait; one CtrlRpc action emitted.
        let actions = k.drain_actions();
        let rpc_id = actions
            .iter()
            .find_map(|a| match a {
                GuestAction::CtrlRpc { id, .. } => Some(*id),
                _ => None,
            })
            .expect("rpc action emitted");
        assert_eq!(k.exited, 0, "thread is blocked");
        // Reply wakes it with the (transduced) response.
        k.on_ctrl_rpc(
            11_000_000,
            rpc_id,
            CtrlResp::NfsAttr { size: 4096, mtime_ns: 5 },
        );
        let r = rets(&k, tid);
        assert!(r.last().unwrap().starts_with("Rpc("), "{:?}", r.last());
        assert_eq!(k.exited, 1);
    }

    #[test]
    fn trigger_checkpoint_emits_the_action_and_continues() {
        let mut k = small_kernel();
        let _ = k.spawn(Box::new(Scripted::new(&[4, 255])));
        k.on_timer_tick(10_000_000);
        let actions = k.drain_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, GuestAction::TriggerCheckpoint)));
        assert_eq!(k.exited, 1, "trigger is non-blocking");
    }

    #[test]
    fn exited_programs_remain_inspectable() {
        let mut k = small_kernel();
        let tid = k.spawn(Box::new(NullProg));
        k.on_timer_tick(10_000_000);
        assert_eq!(k.exited, 1);
        assert!(k.prog(tid).is_some(), "program kept for result readout");
    }

    #[test]
    fn fingerprint_tracks_guest_activity() {
        let mut k1 = small_kernel();
        let mut k2 = small_kernel();
        assert_eq!(k1.state_fingerprint(), k2.state_fingerprint());
        k1.on_timer_tick(10_000_000);
        assert_ne!(k1.state_fingerprint(), k2.state_fingerprint());
        k2.on_timer_tick(10_000_000);
        assert_eq!(k1.state_fingerprint(), k2.state_fingerprint());
    }

    #[test]
    fn clone_is_a_faithful_checkpoint() {
        let mut k = small_kernel();
        k.spawn(Box::new(Scripted::new(&[5, 5, 5, 255])));
        k.on_timer_tick(10_000_000);
        let image = k.clone();
        assert_eq!(image.state_fingerprint(), k.state_fingerprint());
        // Advancing the original does not disturb the image.
        k.on_timer_tick(20_000_000);
        assert_ne!(image.state_fingerprint(), k.state_fingerprint());
    }

    #[test]
    fn wire_round_trip_is_a_faithful_checkpoint() {
        let mut k = small_kernel();
        k.trace.enable();
        k.spawn(Box::new(Scripted::new(&[1, 5, 3, 255])));
        k.spawn(Box::new(Scripted::new(&[5, 5, 255])));
        k.on_timer_tick(10_000_000);
        k.on_timer_tick(20_000_000);

        let mut residue = GuestResidue::new();
        let mut e = Enc::new();
        k.encode_wire(&mut e, &mut residue);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let mut back = Kernel::decode_wire(&mut d, &residue).unwrap();
        assert_eq!(d.remaining(), 0, "image fully consumed");
        assert_eq!(back.state_fingerprint(), k.state_fingerprint());
        assert_eq!(back.jiffies(), k.jiffies());
        assert_eq!(back.exited, k.exited);
        assert_eq!(back.trace.records().len(), k.trace.records().len());

        // The restored kernel behaves identically going forward: deliver
        // the pending RPC reply to both and compare.
        let rpc_id = k
            .drain_actions()
            .iter()
            .find_map(|a| match a {
                GuestAction::CtrlRpc { id, .. } => Some(*id),
                _ => None,
            })
            .expect("rpc action pending");
        let back_rpc_id = back
            .drain_actions()
            .iter()
            .find_map(|a| match a {
                GuestAction::CtrlRpc { id, .. } => Some(*id),
                _ => None,
            })
            .expect("restored rpc action pending");
        assert_eq!(rpc_id, back_rpc_id);
        let resp = CtrlResp::NfsAttr { size: 1, mtime_ns: 2 };
        k.on_ctrl_rpc(30_000_000, rpc_id, resp);
        back.on_ctrl_rpc(30_000_000, back_rpc_id, resp);
        k.on_timer_tick(40_000_000);
        back.on_timer_tick(40_000_000);
        assert_eq!(back.state_fingerprint(), k.state_fingerprint());
        assert_eq!(rets(&k, Tid(0)), rets(&back, Tid(0)));
    }

    #[test]
    fn wire_decode_rejects_truncated_image() {
        let mut k = small_kernel();
        k.spawn(Box::new(Scripted::new(&[5, 255])));
        k.on_timer_tick(10_000_000);
        let mut residue = GuestResidue::new();
        let mut e = Enc::new();
        k.encode_wire(&mut e, &mut residue);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..bytes.len() / 2]);
        assert!(Kernel::decode_wire(&mut d, &residue).is_err());
    }
}
