//! Checkpoint-image wire support: the residue side-table and codecs for
//! the shared syscall-surface types.
//!
//! Almost all guest state byte-serializes into the checkpoint image (see
//! the per-module `encode_wire` impls). Two things cannot: user programs
//! (`Box<dyn GuestProg>` state machines) and application message markers
//! (`AppMsg = Arc<dyn Any>`). Those travel in a typed [`GuestResidue`]
//! side-table captured alongside the image; the byte stream stores only
//! indices into it. The residue is the simulator's stand-in for opaque
//! process memory pages — bytes to the checkpoint, structure to the
//! restored guest.

use ckptstore::{Dec, DecodeError, Enc};

use crate::net::tcp::AppMsg;
use crate::prog::{CtrlReq, CtrlResp, GuestProg, SockFd, SysRet};

/// Guest state that rides beside the byte image: program state machines
/// and in-flight application message markers, indexed by the stream.
#[derive(Default)]
pub struct GuestResidue {
    /// Program objects in thread order.
    pub progs: Vec<Box<dyn GuestProg>>,
    /// Message markers in stream-encounter order.
    pub msgs: Vec<AppMsg>,
}

impl Clone for GuestResidue {
    fn clone(&self) -> Self {
        GuestResidue {
            progs: self.progs.clone(),
            msgs: self.msgs.clone(),
        }
    }
}

impl GuestResidue {
    /// Creates an empty residue.
    pub fn new() -> Self {
        GuestResidue::default()
    }

    /// Registers a message marker, returning its index.
    pub fn push_msg(&mut self, m: &AppMsg) -> u32 {
        self.msgs.push(m.clone());
        (self.msgs.len() - 1) as u32
    }

    /// Resolves a message index from the stream.
    pub fn msg(&self, idx: u32) -> Result<AppMsg, DecodeError> {
        self.msgs
            .get(idx as usize)
            .cloned()
            .ok_or(DecodeError::Invalid("message residue index out of range"))
    }

    /// Registers a program, returning its index.
    pub fn push_prog(&mut self, p: &dyn GuestProg) -> u32 {
        self.progs.push(p.clone_box());
        (self.progs.len() - 1) as u32
    }

    /// Resolves a program index from the stream.
    pub fn prog(&self, idx: u32) -> Result<Box<dyn GuestProg>, DecodeError> {
        self.progs
            .get(idx as usize)
            .cloned()
            .ok_or(DecodeError::Invalid("program residue index out of range"))
    }
}

/// The static error strings the kernel hands back through [`SysRet::Err`];
/// decode re-interns against this set.
const ERR_STRINGS: &[&str] = &["bad fd", "not listening", "exists", "no such file", "enospc"];

fn intern_err(s: &str) -> Result<&'static str, DecodeError> {
    ERR_STRINGS
        .iter()
        .find(|&&k| k == s)
        .copied()
        .ok_or(DecodeError::Invalid("unknown syscall error string"))
}

/// Serializes a syscall return value.
pub fn encode_sysret(e: &mut Enc, r: &SysRet, residue: &mut GuestResidue) {
    match r {
        SysRet::Start => e.u8(0),
        SysRet::Ok => e.u8(1),
        SysRet::Time(t) => {
            e.u8(2);
            e.u64(*t);
        }
        SysRet::Sock(fd) => {
            e.u8(3);
            e.u32(fd.0);
        }
        SysRet::Sent(n) => {
            e.u8(4);
            e.u64(*n);
        }
        SysRet::Recvd { bytes, msgs } => {
            e.u8(5);
            e.u64(*bytes);
            e.seq(msgs.len());
            for m in msgs {
                e.u32(residue.push_msg(m));
            }
        }
        SysRet::Rpc(resp) => {
            e.u8(6);
            encode_ctrl_resp(e, resp);
        }
        SysRet::Err(s) => {
            e.u8(7);
            e.str(s);
        }
    }
}

/// Inverse of [`encode_sysret`].
pub fn decode_sysret(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<SysRet, DecodeError> {
    let at = d.position();
    Ok(match d.u8()? {
        0 => SysRet::Start,
        1 => SysRet::Ok,
        2 => SysRet::Time(d.u64()?),
        3 => SysRet::Sock(SockFd(d.u32()?)),
        4 => SysRet::Sent(d.u64()?),
        5 => {
            let bytes = d.u64()?;
            let n = d.seq()?;
            let mut msgs = Vec::with_capacity(n);
            for _ in 0..n {
                msgs.push(residue.msg(d.u32()?)?);
            }
            SysRet::Recvd { bytes, msgs }
        }
        6 => SysRet::Rpc(decode_ctrl_resp(d)?),
        7 => SysRet::Err(intern_err(&d.str()?)?),
        tag => return Err(DecodeError::BadTag { at, tag, what: "sysret" }),
    })
}

/// Serializes a control-service request.
pub fn encode_ctrl_req(e: &mut Enc, req: &CtrlReq) {
    match req {
        CtrlReq::NfsGetattr { file } => {
            e.u8(0);
            e.u64(*file);
        }
        CtrlReq::NfsWrite { file, bytes } => {
            e.u8(1);
            e.u64(*file);
            e.u64(*bytes);
        }
        CtrlReq::NfsRead { file } => {
            e.u8(2);
            e.u64(*file);
        }
        CtrlReq::DnsLookup { host } => {
            e.u8(3);
            e.u32(*host);
        }
    }
}

/// Inverse of [`encode_ctrl_req`].
pub fn decode_ctrl_req(d: &mut Dec<'_>) -> Result<CtrlReq, DecodeError> {
    let at = d.position();
    Ok(match d.u8()? {
        0 => CtrlReq::NfsGetattr { file: d.u64()? },
        1 => CtrlReq::NfsWrite { file: d.u64()?, bytes: d.u64()? },
        2 => CtrlReq::NfsRead { file: d.u64()? },
        3 => CtrlReq::DnsLookup { host: d.u32()? },
        tag => return Err(DecodeError::BadTag { at, tag, what: "ctrl req" }),
    })
}

/// Serializes a control-service response.
pub fn encode_ctrl_resp(e: &mut Enc, resp: &CtrlResp) {
    match resp {
        CtrlResp::NfsAttr { size, mtime_ns } => {
            e.u8(0);
            e.u64(*size);
            e.u64(*mtime_ns);
        }
        CtrlResp::NfsWriteOk { size, mtime_ns } => {
            e.u8(1);
            e.u64(*size);
            e.u64(*mtime_ns);
        }
        CtrlResp::NfsData { bytes, mtime_ns } => {
            e.u8(2);
            e.u64(*bytes);
            e.u64(*mtime_ns);
        }
        CtrlResp::DnsAddr { addr } => {
            e.u8(3);
            e.u32(*addr);
        }
        CtrlResp::NotFound => e.u8(4),
    }
}

/// Inverse of [`encode_ctrl_resp`].
pub fn decode_ctrl_resp(d: &mut Dec<'_>) -> Result<CtrlResp, DecodeError> {
    let at = d.position();
    Ok(match d.u8()? {
        0 => CtrlResp::NfsAttr { size: d.u64()?, mtime_ns: d.u64()? },
        1 => CtrlResp::NfsWriteOk { size: d.u64()?, mtime_ns: d.u64()? },
        2 => CtrlResp::NfsData { bytes: d.u64()?, mtime_ns: d.u64()? },
        3 => CtrlResp::DnsAddr { addr: d.u32()? },
        4 => CtrlResp::NotFound,
        tag => return Err(DecodeError::BadTag { at, tag, what: "ctrl resp" }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sysret_round_trips_through_residue() {
        let mut residue = GuestResidue::new();
        let msg: AppMsg = Arc::new(42u32);
        let cases = vec![
            SysRet::Start,
            SysRet::Ok,
            SysRet::Time(123),
            SysRet::Sock(SockFd(7)),
            SysRet::Sent(999),
            SysRet::Recvd { bytes: 10, msgs: vec![msg.clone()] },
            SysRet::Rpc(CtrlResp::NfsAttr { size: 1, mtime_ns: 2 }),
            SysRet::Err("bad fd"),
        ];
        let mut e = Enc::new();
        for c in &cases {
            encode_sysret(&mut e, c, &mut residue);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for c in &cases {
            let back = decode_sysret(&mut d, &residue).unwrap();
            assert_eq!(format!("{back:?}"), format!("{c:?}"));
        }
        // The marker itself survives (same Arc payload).
        let mut d = Dec::new(&bytes);
        for _ in 0..5 {
            decode_sysret(&mut d, &residue).unwrap();
        }
        if let SysRet::Recvd { msgs, .. } = decode_sysret(&mut d, &residue).unwrap() {
            assert_eq!(*msgs[0].downcast_ref::<u32>().unwrap(), 42);
        } else {
            panic!("expected Recvd");
        }
    }

    #[test]
    fn unknown_error_string_is_rejected() {
        let mut e = Enc::new();
        e.u8(7);
        e.str("made up error");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(decode_sysret(&mut d, &GuestResidue::new()).is_err());
    }

    #[test]
    fn residue_index_out_of_range_is_typed() {
        let residue = GuestResidue::new();
        assert!(residue.msg(0).is_err());
        assert!(residue.prog(5).is_err());
    }
}
