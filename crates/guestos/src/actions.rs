//! Actions the guest kernel requests from the hypervisor.
//!
//! The kernel is passive data; after every entry point the vmm drains the
//! action queue and performs the physical work: transmitting frames,
//! running block I/O against the branching store, and scheduling CPU
//! bursts on the shared processor.

use cowstore::BlockData;
use hwsim::NodeAddr;

use crate::net::tcp::TcpSegment;
use crate::prog::CtrlReq;

/// One block operation within a batch.
#[derive(Clone, Debug)]
pub struct BlockBatchOp {
    /// True for write, false for read.
    pub write: bool,
    /// Virtual block address.
    pub vba: u64,
    /// Content for writes; `None` for reads (vmm fills them in on
    /// completion).
    pub data: Option<BlockData>,
}

/// A batch of block operations issued to the virtual block device.
///
/// Batches complete as a unit (one completion interrupt), mirroring how a
/// real frontend rings the backend once per request queue run.
#[derive(Clone, Debug)]
pub struct BlockBatch {
    pub id: u64,
    pub ops: Vec<BlockBatchOp>,
}

impl BlockBatch {
    /// Number of read ops in the batch.
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|o| !o.write).count()
    }

    /// Number of write ops in the batch.
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|o| o.write).count()
    }
}

/// An action for the hypervisor.
#[derive(Clone)]
pub enum GuestAction {
    /// Transmit a TCP segment to `dst` on the experiment network.
    NetTx { dst: NodeAddr, seg: TcpSegment },
    /// Run a block I/O batch against the virtual disk.
    BlockIo(BlockBatch),
    /// Consume `ns` of guest CPU; deliver a completion with `id`.
    Compute { id: u64, ns: u64 },
    /// Forward an RPC to the control services; reply via
    /// [`crate::Kernel::on_ctrl_rpc`].
    CtrlRpc { id: u64, req: CtrlReq },
    /// The guest requested an immediate coordinated checkpoint (§4.3's
    /// event-driven trigger, e.g. a watchpoint hit).
    TriggerCheckpoint,
}

impl std::fmt::Debug for GuestAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestAction::NetTx { dst, seg } => write!(f, "NetTx(to {dst:?}, {seg:?})"),
            GuestAction::BlockIo(b) => {
                write!(f, "BlockIo(#{} r{} w{})", b.id, b.reads(), b.writes())
            }
            GuestAction::Compute { id, ns } => write!(f, "Compute(#{id}, {ns}ns)"),
            GuestAction::CtrlRpc { id, req } => write!(f, "CtrlRpc(#{id}, {req:?})"),
            GuestAction::TriggerCheckpoint => write!(f, "TriggerCheckpoint"),
        }
    }
}
