//! Actions the guest kernel requests from the hypervisor.
//!
//! The kernel is passive data; after every entry point the vmm drains the
//! action queue and performs the physical work: transmitting frames,
//! running block I/O against the branching store, and scheduling CPU
//! bursts on the shared processor.

use ckptstore::{Dec, DecodeError, Enc};
use cowstore::BlockData;
use hwsim::NodeAddr;

use crate::net::tcp::TcpSegment;
use crate::prog::CtrlReq;
use crate::wire::{decode_ctrl_req, encode_ctrl_req, GuestResidue};

/// One block operation within a batch.
#[derive(Clone, Debug)]
pub struct BlockBatchOp {
    /// True for write, false for read.
    pub write: bool,
    /// Virtual block address.
    pub vba: u64,
    /// Content for writes; `None` for reads (vmm fills them in on
    /// completion).
    pub data: Option<BlockData>,
}

/// A batch of block operations issued to the virtual block device.
///
/// Batches complete as a unit (one completion interrupt), mirroring how a
/// real frontend rings the backend once per request queue run.
#[derive(Clone, Debug)]
pub struct BlockBatch {
    pub id: u64,
    pub ops: Vec<BlockBatchOp>,
}

impl BlockBatch {
    /// Number of read ops in the batch.
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|o| !o.write).count()
    }

    /// Number of write ops in the batch.
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|o| o.write).count()
    }

    /// Serializes the batch.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.u64(self.id);
        e.seq(self.ops.len());
        for op in &self.ops {
            e.bool(op.write);
            e.u64(op.vba);
            e.bool(op.data.is_some());
            if let Some(data) = &op.data {
                data.encode_wire(e);
            }
        }
    }

    /// Inverse of [`BlockBatch::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let id = d.u64()?;
        let n = d.seq()?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let write = d.bool()?;
            let vba = d.u64()?;
            let data = if d.bool()? { Some(BlockData::decode_wire(d)?) } else { None };
            ops.push(BlockBatchOp { write, vba, data });
        }
        Ok(BlockBatch { id, ops })
    }
}

/// An action for the hypervisor.
#[derive(Clone)]
pub enum GuestAction {
    /// Transmit a TCP segment to `dst` on the experiment network.
    NetTx { dst: NodeAddr, seg: TcpSegment },
    /// Run a block I/O batch against the virtual disk.
    BlockIo(BlockBatch),
    /// Consume `ns` of guest CPU; deliver a completion with `id`.
    Compute { id: u64, ns: u64 },
    /// Forward an RPC to the control services; reply via
    /// [`crate::Kernel::on_ctrl_rpc`].
    CtrlRpc { id: u64, req: CtrlReq },
    /// The guest requested an immediate coordinated checkpoint (§4.3's
    /// event-driven trigger, e.g. a watchpoint hit).
    TriggerCheckpoint,
}

impl GuestAction {
    /// Serializes the action; segment message markers go into the residue.
    pub fn encode_wire(&self, e: &mut Enc, residue: &mut GuestResidue) {
        match self {
            GuestAction::NetTx { dst, seg } => {
                e.u8(0);
                e.u32(dst.0);
                seg.encode_wire(e, residue);
            }
            GuestAction::BlockIo(b) => {
                e.u8(1);
                b.encode_wire(e);
            }
            GuestAction::Compute { id, ns } => {
                e.u8(2);
                e.u64(*id);
                e.u64(*ns);
            }
            GuestAction::CtrlRpc { id, req } => {
                e.u8(3);
                e.u64(*id);
                encode_ctrl_req(e, req);
            }
            GuestAction::TriggerCheckpoint => e.u8(4),
        }
    }

    /// Inverse of [`GuestAction::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, residue: &GuestResidue) -> Result<Self, DecodeError> {
        let at = d.position();
        Ok(match d.u8()? {
            0 => GuestAction::NetTx {
                dst: NodeAddr(d.u32()?),
                seg: TcpSegment::decode_wire(d, residue)?,
            },
            1 => GuestAction::BlockIo(BlockBatch::decode_wire(d)?),
            2 => GuestAction::Compute { id: d.u64()?, ns: d.u64()? },
            3 => GuestAction::CtrlRpc { id: d.u64()?, req: decode_ctrl_req(d)? },
            4 => GuestAction::TriggerCheckpoint,
            tag => return Err(DecodeError::BadTag { at, tag, what: "guest action" }),
        })
    }
}

impl std::fmt::Debug for GuestAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestAction::NetTx { dst, seg } => write!(f, "NetTx(to {dst:?}, {seg:?})"),
            GuestAction::BlockIo(b) => {
                write!(f, "BlockIo(#{} r{} w{})", b.id, b.reads(), b.writes())
            }
            GuestAction::Compute { id, ns } => write!(f, "Compute(#{id}, {ns}ns)"),
            GuestAction::CtrlRpc { id, req } => write!(f, "CtrlRpc(#{id}, {req:?})"),
            GuestAction::TriggerCheckpoint => write!(f, "TriggerCheckpoint"),
        }
    }
}
