//! The temporal firewall (§4.1, Fig 2).
//!
//! "We implement a temporal firewall: a minimal layer of control inside a
//! system's kernel, designed to isolate time and execution of the
//! checkpointing code from the rest of the system. We virtualize time and
//! atomically stop execution of all code running inside the temporal
//! firewall."
//!
//! The firewall tracks what is stopped: scheduling of inside-classes
//! (enforced by [`crate::sched::RunQueue::pick_next`]), IRQ and softirq
//! dispatch masks, and the freeze of guest-visible time (enforced by the
//! vmm, which stops shared-page updates and offsets the TSC). The state
//! also records transparency metrics: how long the entry path ran before
//! execution actually stopped, which bounds what the guest can observe.

/// The firewall control state.
#[derive(Clone, Debug, Default)]
pub struct FirewallState {
    closed: bool,
    /// Guest time at which the firewall last closed.
    closed_at_guest_ns: u64,
    /// IRQ dispatch suspended (all but the XenBus checkpoint channel).
    irqs_masked: bool,
    /// Softirq/tasklet/workqueue dispatch suspended.
    softirqs_masked: bool,
    /// Checkpoint generation counter.
    pub generation: u64,
    /// Cumulative closures (for tests/metrics).
    pub closures: u64,
}

impl FirewallState {
    /// Creates an open firewall.
    pub fn new() -> Self {
        FirewallState::default()
    }

    /// True while the firewall is closed (checkpoint in progress).
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// Guest time at the last closure.
    pub fn closed_at(&self) -> u64 {
        self.closed_at_guest_ns
    }

    /// Closes the firewall: stops inside-classes, masks interrupt
    /// delivery, and records the freeze instant.
    ///
    /// # Panics
    ///
    /// Panics if already closed — a nested checkpoint is a protocol bug.
    pub fn close(&mut self, guest_now_ns: u64) {
        assert!(!self.closed, "temporal firewall closed twice");
        self.closed = true;
        self.closed_at_guest_ns = guest_now_ns;
        self.irqs_masked = true;
        self.softirqs_masked = true;
        self.generation += 1;
        self.closures += 1;
    }

    /// Reopens the firewall after resume.
    ///
    /// # Panics
    ///
    /// Panics if not closed.
    pub fn open(&mut self, _guest_now_ns: u64) {
        assert!(self.closed, "temporal firewall opened while open");
        self.closed = false;
        self.irqs_masked = false;
        self.softirqs_masked = false;
    }

    /// Whether an IRQ from `source` may be dispatched.
    ///
    /// Only the checkpoint control channel (XenBus) and block-device
    /// drain interrupts run outside the firewall (§4.1: "block device
    /// drivers need their IRQ handlers to run outside of the firewall in
    /// order to drain in-flight requests").
    pub fn irq_allowed(&self, source: IrqSource) -> bool {
        if !self.irqs_masked {
            return true;
        }
        matches!(source, IrqSource::XenBus | IrqSource::BlockDrain)
    }

    /// Whether softirq processing may run (network rx/tx bottom halves).
    pub fn softirqs_allowed(&self) -> bool {
        !self.softirqs_masked
    }

    /// Serializes the firewall control state.
    pub fn encode_wire(&self, e: &mut ckptstore::Enc) {
        e.bool(self.closed);
        e.u64(self.closed_at_guest_ns);
        e.bool(self.irqs_masked);
        e.bool(self.softirqs_masked);
        e.u64(self.generation);
        e.u64(self.closures);
    }

    /// Inverse of [`FirewallState::encode_wire`].
    pub fn decode_wire(d: &mut ckptstore::Dec<'_>) -> Result<Self, ckptstore::DecodeError> {
        Ok(FirewallState {
            closed: d.bool()?,
            closed_at_guest_ns: d.u64()?,
            irqs_masked: d.bool()?,
            softirqs_masked: d.bool()?,
            generation: d.u64()?,
            closures: d.u64()?,
        })
    }
}

/// Interrupt sources the firewall discriminates between.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IrqSource {
    /// Guest timer tick.
    Timer,
    /// Network device.
    Net,
    /// Block device completion during checkpoint drain.
    BlockDrain,
    /// The XenBus control channel used by the checkpoint protocol.
    XenBus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_masks_everything_but_checkpoint_paths() {
        let mut fw = FirewallState::new();
        assert!(fw.irq_allowed(IrqSource::Timer));
        assert!(fw.softirqs_allowed());
        fw.close(1_000);
        assert!(fw.closed());
        assert_eq!(fw.closed_at(), 1_000);
        assert!(!fw.irq_allowed(IrqSource::Timer));
        assert!(!fw.irq_allowed(IrqSource::Net));
        assert!(fw.irq_allowed(IrqSource::XenBus), "control channel stays live");
        assert!(fw.irq_allowed(IrqSource::BlockDrain), "drain IRQs stay live");
        assert!(!fw.softirqs_allowed());
        fw.open(1_000);
        assert!(fw.irq_allowed(IrqSource::Net));
    }

    #[test]
    fn generation_counts_checkpoints() {
        let mut fw = FirewallState::new();
        for i in 1..=3 {
            fw.close(i);
            fw.open(i);
        }
        assert_eq!(fw.generation, 3);
        assert_eq!(fw.closures, 3);
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn nested_close_panics() {
        let mut fw = FirewallState::new();
        fw.close(1);
        fw.close(2);
    }
}
