//! Criterion benches: one scaled-down scenario per paper artifact.
//!
//! These measure the *simulator's* wall-clock cost of each experiment
//! class, and double as smoke tests that every figure's machinery runs
//! end-to-end. The full-scale regenerators are the `fig*`/`tab*` binaries
//! (`cargo run --release -p tcd-bench --bin fig6` etc.).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use cowstore::CowMode;
use emulab::{ExperimentSpec, Testbed};
use guestos::prog::FileId;
use sim::{SimDuration, SimTime};
use vmm::VmHost;
use workloads::{Bonnie, BtPeer, CpuLoop, IperfReceiver, IperfSender, UsleepLoop};

/// FIG4 (scaled): usleep loop for 3 s with one checkpoint.
fn fig4_usleep(c: &mut Criterion) {
    c.bench_function("fig4_usleep_3s_1ckpt", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(1, 4);
            tb.swap_in(ExperimentSpec::new("e").node("n")).unwrap();
            tb.spawn("e", "n", Box::new(UsleepLoop::new(10_000_000, 100_000)));
            tb.run_for(SimDuration::from_secs(2));
            tb.checkpoint_once();
            tb.run_for(SimDuration::from_secs(1));
            tb.kernel("e", "n", |k| k.jiffies())
        })
    });
}

/// FIG5 (scaled): CPU loop for 3 s with one checkpoint.
fn fig5_cpuloop(c: &mut Criterion) {
    c.bench_function("fig5_cpuloop_3s_1ckpt", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(2, 4);
            tb.swap_in(ExperimentSpec::new("e").node("n")).unwrap();
            tb.spawn("e", "n", Box::new(CpuLoop::paper_default(1000)));
            tb.run_for(SimDuration::from_secs(2));
            tb.checkpoint_once();
            tb.run_for(SimDuration::from_secs(1));
            tb.kernel("e", "n", |k| k.jiffies())
        })
    });
}

/// FIG6 (scaled): 3 s of gigabit iperf with one checkpoint.
fn fig6_iperf(c: &mut Criterion) {
    c.bench_function("fig6_iperf_3s_1ckpt", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(3, 8);
            let spec = ExperimentSpec::new("e")
                .node("a")
                .node("b")
                .link("a", "b", 1_000_000_000, SimDuration::from_micros(100), 0.0);
            tb.swap_in(spec).unwrap();
            let b_addr = tb.node_addr("e", "b");
            tb.spawn("e", "b", Box::new(IperfReceiver::new(5001)));
            tb.spawn("e", "a", Box::new(IperfSender::new(b_addr, 5001)));
            tb.run_for(SimDuration::from_secs(2));
            tb.checkpoint_once();
            tb.run_for(SimDuration::from_secs(1));
            tb.kernel("e", "b", |k| k.net_totals().bytes_delivered)
        })
    });
}

/// FIG7 (scaled): 20 s of a small BitTorrent swarm with one checkpoint.
fn fig7_bittorrent(c: &mut Criterion) {
    c.bench_function("fig7_bt_20s_1ckpt", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(4, 8);
            let spec = ExperimentSpec::new("e")
                .node("s")
                .node("c1")
                .node("c2")
                .lan(&["s", "c1", "c2"], 100_000_000, SimDuration::from_micros(50));
            tb.swap_in(spec).unwrap();
            let s_addr = tb.node_addr("e", "s");
            tb.spawn(
                "e",
                "c1",
                Box::new(BtPeer::leecher(6881, vec![s_addr], 50, 128 * 1024, FileId(1))),
            );
            tb.spawn(
                "e",
                "c2",
                Box::new(BtPeer::leecher(6881, vec![s_addr], 50, 128 * 1024, FileId(1))),
            );
            tb.spawn("e", "s", Box::new(BtPeer::seeder(6881, 50, 128 * 1024, FileId(1))));
            tb.run_for(SimDuration::from_secs(10));
            tb.checkpoint_once();
            tb.run_for(SimDuration::from_secs(10));
            tb.kernel("e", "c1", |k| k.net_totals().bytes_delivered)
        })
    });
}

/// FIG8 (scaled): one 32 MB Bonnie block-write phase per storage mode.
fn fig8_bonnie(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_bonnie_32mb");
    for (name, mode) in [
        ("base", CowMode::Base),
        ("branch_orig", CowMode::BranchOrig { chunk_blocks: 128 }),
        ("branch", CowMode::Branch),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (mut e, host) = tcd_bench::single_host(5, mode, false);
                e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
                let tid = e.with_component::<VmHost, _>(host, |h, _| {
                    h.kernel_mut().spawn(Box::new(Bonnie::new(FileId(7), 32 << 20)))
                });
                e.run_for(SimDuration::from_secs(120));
                e.component_ref::<VmHost>(host)
                    .unwrap()
                    .kernel()
                    .prog(tid)
                    .unwrap()
                    .as_any()
                    .downcast_ref::<Bonnie>()
                    .unwrap()
                    .results
                    .len()
            })
        });
    }
    g.finish();
}

/// FIG9 (scaled): 16 s of file copy with a lazy copy-in mirror.
fn fig9_transfer(c: &mut Criterion) {
    use cowstore::{BlockData, DeltaMap, Direction, MirrorTransfer};
    use vmm::MirrorConfig;
    use workloads::FileCopy;
    c.bench_function("fig9_copy_16s_lazy_mirror", |b| {
        b.iter(|| {
            let (mut e, host) = tcd_bench::single_host(6, CowMode::Branch, false);
            e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            e.with_component::<VmHost, _>(host, |h, ctx| {
                let mut agg = DeltaMap::new();
                for i in 0..8192u64 {
                    agg.put(1_000_000 + i, BlockData::Opaque(i));
                }
                let blocks = agg.vbas();
                h.store_mut().install_aggregate(agg);
                let t = MirrorTransfer::new(Direction::CopyIn, blocks, 4096, 60_000_000);
                h.attach_mirror(
                    ctx,
                    t,
                    MirrorConfig {
                        latency: SimDuration::from_micros(200),
                        net_bps: 60_000_000,
                        notify: None,
                        idle_priority: false,
                    },
                );
            });
            e.with_component::<VmHost, _>(host, |h, _| {
                h.kernel_mut()
                    .spawn(Box::new(FileCopy::new(FileId(1), FileId(2), 64 << 20)))
            });
            e.run_for(SimDuration::from_secs(16));
            e.component_ref::<VmHost>(host).unwrap().stats.block_batches
        })
    });
}

/// TAB-SWAP (scaled): one stateful swap cycle with a small session.
fn tab_swap_cycle(c: &mut Criterion) {
    use workloads::FileWriter;
    c.bench_function("tab_swap_one_cycle_32mb", |b| {
        b.iter(|| {
            let mut tb = Testbed::new(7, 4);
            tb.swap_in(ExperimentSpec::new("e").node("n")).unwrap();
            tb.spawn("e", "n", Box::new(FileWriter::new(FileId(1), 32 << 20)));
            tb.run_for(SimDuration::from_secs(20));
            let out = tb.swap_out_stateful("e");
            tb.run_for(SimDuration::from_secs(5));
            let rep = tb.swap_in_stateful("e", true);
            (out.total.as_nanos(), rep.total.as_nanos())
        })
    });
}

/// TAB-FBE (scaled): a small build + clean with elimination.
fn tab_freeblock(c: &mut Criterion) {
    use workloads::KernelBuild;
    c.bench_function("tab_freeblock_32mb", |b| {
        b.iter(|| {
            let (mut e, host) = tcd_bench::single_host(8, CowMode::Branch, false);
            e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            e.with_component::<VmHost, _>(host, |h, _| {
                h.kernel_mut()
                    .spawn(Box::new(KernelBuild::new(100, 128, 256 * 1024, 4 << 20)))
            });
            e.run_for(SimDuration::from_secs(90));
            let h = e.component_ref::<VmHost>(host).unwrap();
            let (f, removed) = h.store().filtered_delta();
            (f.len(), removed)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(15))
        .warm_up_time(Duration::from_secs(2))
}

criterion_group! {
    name = paper;
    config = config();
    targets = fig4_usleep, fig5_cpuloop, fig6_iperf, fig7_bittorrent,
              fig8_bonnie, fig9_transfer, tab_swap_cycle, tab_freeblock
}
criterion_main!(paper);
