//! Wall-clock benches: one scaled-down scenario per paper artifact.
//!
//! These measure the *simulator's* wall-clock cost of each experiment
//! class, and double as smoke tests that every figure's machinery runs
//! end-to-end. The full-scale regenerators are the `fig*`/`tab*` binaries
//! (`cargo run --release -p tcd-bench --bin fig6` etc.).
//!
//! Plain self-timed harness (`harness = false`): each scenario runs a
//! short warm-up pass and then `ITERS` timed passes, reporting min/mean
//! wall-clock per pass. No external bench framework, so a cold offline
//! checkout builds without registry access.

use std::time::{Duration, Instant};

use cowstore::CowMode;
use emulab::{ExperimentSpec, Testbed};
use guestos::prog::FileId;
use sim::{SimDuration, SimTime};
use vmm::VmHost;
use workloads::{Bonnie, BtPeer, CpuLoop, IperfReceiver, IperfSender, UsleepLoop};

const ITERS: usize = 3;

/// Runs `f` once to warm up and `ITERS` timed passes; prints a row.
/// The closure returns an opaque "result" folded into a checksum so the
/// optimizer cannot discard the work.
fn bench<R: std::hash::Hash>(name: &str, mut f: impl FnMut() -> R) {
    use std::hash::{DefaultHasher, Hasher};
    let mut sink = DefaultHasher::new();
    std::hash::Hash::hash(&f(), &mut sink); // Warm-up.
    let mut times = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed());
        std::hash::Hash::hash(&r, &mut sink);
    }
    let min = times.iter().min().copied().unwrap_or(Duration::ZERO);
    let mean = times.iter().sum::<Duration>() / ITERS as u32;
    println!(
        "{name:<32} min {:>9.3} ms   mean {:>9.3} ms   (checksum {:x})",
        min.as_secs_f64() * 1e3,
        mean.as_secs_f64() * 1e3,
        sink.finish()
    );
}

/// FIG4 (scaled): usleep loop for 3 s with one checkpoint.
fn fig4_usleep() -> u64 {
    let mut tb = Testbed::new(1, 4);
    tb.swap_in(ExperimentSpec::new("e").node("n")).unwrap();
    tb.spawn("e", "n", Box::new(UsleepLoop::new(10_000_000, 100_000)));
    tb.run_for(SimDuration::from_secs(2));
    tb.checkpoint_once();
    tb.run_for(SimDuration::from_secs(1));
    tb.kernel("e", "n", |k| k.jiffies())
}

/// FIG5 (scaled): CPU loop for 3 s with one checkpoint.
fn fig5_cpuloop() -> u64 {
    let mut tb = Testbed::new(2, 4);
    tb.swap_in(ExperimentSpec::new("e").node("n")).unwrap();
    tb.spawn("e", "n", Box::new(CpuLoop::paper_default(1000)));
    tb.run_for(SimDuration::from_secs(2));
    tb.checkpoint_once();
    tb.run_for(SimDuration::from_secs(1));
    tb.kernel("e", "n", |k| k.jiffies())
}

/// FIG6 (scaled): 3 s of gigabit iperf with one checkpoint.
fn fig6_iperf() -> u64 {
    let mut tb = Testbed::new(3, 8);
    let spec = ExperimentSpec::new("e")
        .node("a")
        .node("b")
        .link("a", "b", 1_000_000_000, SimDuration::from_micros(100), 0.0);
    tb.swap_in(spec).unwrap();
    let b_addr = tb.node_addr("e", "b");
    tb.spawn("e", "b", Box::new(IperfReceiver::new(5001)));
    tb.spawn("e", "a", Box::new(IperfSender::new(b_addr, 5001)));
    tb.run_for(SimDuration::from_secs(2));
    tb.checkpoint_once();
    tb.run_for(SimDuration::from_secs(1));
    tb.kernel("e", "b", |k| k.net_totals().bytes_delivered)
}

/// FIG7 (scaled): 20 s of a small BitTorrent swarm with one checkpoint.
fn fig7_bittorrent() -> u64 {
    let mut tb = Testbed::new(4, 8);
    let spec = ExperimentSpec::new("e")
        .node("s")
        .node("c1")
        .node("c2")
        .lan(&["s", "c1", "c2"], 100_000_000, SimDuration::from_micros(50));
    tb.swap_in(spec).unwrap();
    let s_addr = tb.node_addr("e", "s");
    tb.spawn(
        "e",
        "c1",
        Box::new(BtPeer::leecher(6881, vec![s_addr], 50, 128 * 1024, FileId(1))),
    );
    tb.spawn(
        "e",
        "c2",
        Box::new(BtPeer::leecher(6881, vec![s_addr], 50, 128 * 1024, FileId(1))),
    );
    tb.spawn("e", "s", Box::new(BtPeer::seeder(6881, 50, 128 * 1024, FileId(1))));
    tb.run_for(SimDuration::from_secs(10));
    tb.checkpoint_once();
    tb.run_for(SimDuration::from_secs(10));
    tb.kernel("e", "c1", |k| k.net_totals().bytes_delivered)
}

/// FIG8 (scaled): one 32 MB Bonnie block-write phase per storage mode.
fn fig8_bonnie(mode: CowMode) -> usize {
    let (mut e, host) = tcd_bench::single_host(5, mode, false);
    e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    let tid = e.with_component::<VmHost, _>(host, |h, _| {
        h.kernel_mut().spawn(Box::new(Bonnie::new(FileId(7), 32 << 20)))
    });
    e.run_for(SimDuration::from_secs(120));
    e.component_ref::<VmHost>(host)
        .unwrap()
        .kernel()
        .prog(tid)
        .unwrap()
        .as_any()
        .downcast_ref::<Bonnie>()
        .unwrap()
        .results
        .len()
}

/// FIG9 (scaled): 16 s of file copy with a lazy copy-in mirror.
fn fig9_transfer() -> u64 {
    use cowstore::{BlockData, DeltaMap, Direction, MirrorTransfer};
    use vmm::MirrorConfig;
    use workloads::FileCopy;
    let (mut e, host) = tcd_bench::single_host(6, CowMode::Branch, false);
    e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    e.with_component::<VmHost, _>(host, |h, ctx| {
        let mut agg = DeltaMap::new();
        for i in 0..8192u64 {
            agg.put(1_000_000 + i, BlockData::Opaque(i));
        }
        let blocks = agg.vbas();
        h.store_mut().install_aggregate(agg);
        let t = MirrorTransfer::new(Direction::CopyIn, blocks, 4096, 60_000_000);
        h.attach_mirror(
            ctx,
            t,
            MirrorConfig {
                latency: SimDuration::from_micros(200),
                net_bps: 60_000_000,
                notify: None,
                idle_priority: false,
            },
        );
    });
    e.with_component::<VmHost, _>(host, |h, _| {
        h.kernel_mut()
            .spawn(Box::new(FileCopy::new(FileId(1), FileId(2), 64 << 20)))
    });
    e.run_for(SimDuration::from_secs(16));
    e.component_ref::<VmHost>(host).unwrap().stats.block_batches
}

/// TAB-SWAP (scaled): one stateful swap cycle with a small session.
fn tab_swap_cycle() -> (u64, u64) {
    use workloads::FileWriter;
    let mut tb = Testbed::new(7, 4);
    tb.swap_in(ExperimentSpec::new("e").node("n")).unwrap();
    tb.spawn("e", "n", Box::new(FileWriter::new(FileId(1), 32 << 20)));
    tb.run_for(SimDuration::from_secs(20));
    let out = tb.swap_out_stateful("e");
    tb.run_for(SimDuration::from_secs(5));
    let rep = tb.swap_in_stateful("e", true);
    (out.total.as_nanos(), rep.total.as_nanos())
}

/// TAB-FBE (scaled): a small build + clean with elimination.
fn tab_freeblock() -> (usize, u64) {
    use workloads::KernelBuild;
    let (mut e, host) = tcd_bench::single_host(8, CowMode::Branch, false);
    e.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    e.with_component::<VmHost, _>(host, |h, _| {
        h.kernel_mut()
            .spawn(Box::new(KernelBuild::new(100, 128, 256 * 1024, 4 << 20)))
    });
    e.run_for(SimDuration::from_secs(90));
    let h = e.component_ref::<VmHost>(host).unwrap();
    let (f, removed) = h.store().filtered_delta();
    (f.len(), removed)
}

fn main() {
    println!("paper scenario benches ({ITERS} iters each, scaled-down inputs)\n");
    bench("fig4_usleep_3s_1ckpt", fig4_usleep);
    bench("fig5_cpuloop_3s_1ckpt", fig5_cpuloop);
    bench("fig6_iperf_3s_1ckpt", fig6_iperf);
    bench("fig7_bt_20s_1ckpt", fig7_bittorrent);
    bench("fig8_bonnie_32mb/base", || fig8_bonnie(CowMode::Base));
    bench("fig8_bonnie_32mb/branch_orig", || {
        fig8_bonnie(CowMode::BranchOrig { chunk_blocks: 128 })
    });
    bench("fig8_bonnie_32mb/branch", || fig8_bonnie(CowMode::Branch));
    bench("fig9_copy_16s_lazy_mirror", fig9_transfer);
    bench("tab_swap_one_cycle_32mb", tab_swap_cycle);
    bench("tab_freeblock_32mb", tab_freeblock);
}
