//! TAB-IMGSTORE — checkpoint image store dedup ratio vs snapshot depth.
//!
//! Not a paper table: instruments the content-addressed image store that
//! backs time travel (§6) and stateful swapping (§5). Two workloads run
//! under a deepening snapshot chain — a two-node BitTorrent transfer and
//! a single-node kernel-build-style file churn — and at each depth the
//! store reports logical bytes (sum of all snapshot images), physical
//! bytes (unique chunks actually stored), and the resulting dedup ratio.
//! The expectation mirrors the paper's branching storage argument: a
//! child snapshot physically costs only what changed since its parent,
//! so the ratio grows with depth (> 1.5x by depth 8).

use emulab::{ExperimentSpec, Testbed};
use guestos::prog::FileId;
use sim::SimDuration;
use tcd_bench::{banner, row, write_csv};
use workloads::{BtPeer, KernelBuild};

/// Snapshots `exp` to depth 8 with `gap` of execution between snapshots;
/// returns (depth, logical, physical, ratio) per level and prints rows.
fn chain(tb: &mut Testbed, exp: &str, gap: SimDuration, csv: &mut String) -> f64 {
    let mut last_ratio = 0.0;
    for depth in 1..=8u32 {
        tb.snapshot(exp, &format!("d{depth}"));
        let st = tb.experiment(exp).tt.stats();
        println!(
            "  depth {:>2}  logical {:>7.1} MiB  physical {:>7.1} MiB  ratio {:.2}x  shared chunks {}",
            depth,
            st.logical_bytes as f64 / (1 << 20) as f64,
            st.physical_bytes as f64 / (1 << 20) as f64,
            st.dedup_ratio,
            st.chunks_shared,
        );
        csv.push_str(&format!(
            "{exp},{depth},{},{},{:.4}\n",
            st.logical_bytes, st.physical_bytes, st.dedup_ratio
        ));
        last_ratio = st.dedup_ratio;
        tb.run_for(gap);
    }
    last_ratio
}

fn main() {
    banner(
        "TAB-IMGSTORE",
        "image-store dedup ratio vs snapshot tree depth",
    );
    let mut csv = String::from("workload,depth,logical_bytes,physical_bytes,dedup_ratio\n");

    // Workload 1: BitTorrent seeder + leecher on a 100 Mbps LAN, 16 MiB
    // file in 128 KiB pieces, snapshots every 2 s of transfer.
    println!("\nBitTorrent (2 nodes, 100 Mbps LAN, 16 MiB in 128 KiB pieces):");
    let mut tb = Testbed::new(11_001, 8);
    let spec = ExperimentSpec::new("bt")
        .node("seeder")
        .node("leecher")
        .lan(&["seeder", "leecher"], 100_000_000, SimDuration::from_micros(50));
    tb.swap_in(spec).unwrap();
    tb.run_for(SimDuration::from_secs(5));
    let npieces = 128u32;
    let piece = 128 * 1024u64;
    let seeder_addr = tb.node_addr("bt", "seeder");
    tb.spawn(
        "bt",
        "seeder",
        Box::new(BtPeer::seeder(6881, npieces, piece, FileId(1))),
    );
    tb.spawn(
        "bt",
        "leecher",
        Box::new(BtPeer::leecher(
            6881,
            vec![seeder_addr],
            npieces,
            piece,
            FileId(1),
        )),
    );
    tb.run_for(SimDuration::from_secs(2));
    let bt_ratio = chain(&mut tb, "bt", SimDuration::from_secs(2), &mut csv);

    // Workload 2: kernel-build-style churn — many small files created and
    // rewritten on one node, snapshots every 5 s.
    println!("\nKernel build (1 node, 4000 files x 256 KiB):");
    let mut tb = Testbed::new(11_002, 4);
    tb.swap_in(ExperimentSpec::new("kb").node("n")).unwrap();
    tb.run_for(SimDuration::from_secs(5));
    tb.spawn(
        "kb",
        "n",
        Box::new(KernelBuild::new(9000, 4000, 256 * 1024, 8 << 20)),
    );
    tb.run_for(SimDuration::from_secs(2));
    let kb_ratio = chain(&mut tb, "kb", SimDuration::from_secs(5), &mut csv);

    println!();
    row(
        "BitTorrent dedup ratio @ depth 8",
        "> 1.5x",
        &format!("{bt_ratio:.2}x"),
    );
    row(
        "kernel-build dedup ratio @ depth 8",
        "> 1.5x",
        &format!("{kb_ratio:.2}x"),
    );
    let path = write_csv("tab_imgstore.csv", &csv);
    println!("csv: {}", path.display());
}
