//! XTRA-BASE — checkpoint-strategy comparison (ours; §3/§8 implications).
//!
//! The paper argues transparency requires (a) clock-scheduled coordination
//! and (b) concealed downtime. This experiment runs the same iperf
//! workload under the paper's mechanism and the two conventional designs
//! it argues against, and reports who disturbs the system under test:
//!
//! - **transparent**: scheduled + concealed (the paper);
//! - **event-driven**: "checkpoint now" notifications — suspension skew is
//!   delivery + per-node processing jitter (§4.3);
//! - **non-concealing**: conventional stop-and-copy — downtime leaks into
//!   guest time.
//!
//! Runs on the full testbed stack ([`Testbed::with_strategy`]); all
//! latency columns are p50/p99 from [`Testbed::telemetry`] — the
//! coordinator's notify→all-acks and barrier-hold histograms and the
//! hosts' freeze/thaw downtime histogram.

use checkpoint::Strategy;
use emulab::{ExperimentSpec, Testbed};
use sim::telemetry::names;
use sim::{HistogramSummary, SimDuration};
use tcd_bench::{banner, write_csv};
use workloads::{IperfReceiver, IperfSender};

struct Row {
    retransmissions: u64,
    timeouts: u64,
    dup_acks: u64,
    window_shrinks: u64,
    max_gap_us: u64,
    max_suspend_skew_us: u64,
    throughput_mbps: f64,
    acks: HistogramSummary,
    hold: HistogramSummary,
    downtime: HistogramSummary,
}

fn run(strategy: Strategy) -> Row {
    let mut tb = Testbed::with_strategy(12_001, 8, strategy);
    tb.swap_in(
        ExperimentSpec::new("iperf").node("a").node("b").link(
            "a",
            "b",
            1_000_000_000,
            SimDuration::from_micros(100),
            0.0,
        ),
    )
    .expect("swap-in");
    // Let NTP discipline the guests' clocks before measuring.
    tb.run_for(SimDuration::from_secs(20));
    let b_addr = tb.node_addr("iperf", "b");
    tb.with_host("iperf", "b", |h| {
        h.kernel_mut().trace.enable();
    });
    tb.spawn("iperf", "b", Box::new(IperfReceiver::new(5001)));
    tb.spawn("iperf", "a", Box::new(IperfSender::new(b_addr, 5001)));
    tb.run_for(SimDuration::from_secs(2));
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    tb.run_for(SimDuration::from_secs(25));

    let ta = tb.kernel("iperf", "a", |k| k.net_totals());
    let tb_totals = tb.kernel("iperf", "b", |k| k.net_totals());
    let gaps = tb.kernel("iperf", "b", |k| k.trace.rx_data_gaps_ns());
    let skew = {
        let fa = tb.with_host("iperf", "a", |h| h.stats.freeze_history.clone());
        let fb = tb.with_host("iperf", "b", |h| h.stats.freeze_history.clone());
        fa.iter()
            .zip(fb.iter())
            .map(|(&x, &y)| x.as_nanos().abs_diff(y.as_nanos()))
            .max()
            .unwrap_or(0)
    };
    let t = tb.telemetry();
    let summary = |name: &str| t.histogram_summary(name).unwrap_or(HistogramSummary::EMPTY);
    Row {
        retransmissions: ta.retransmissions + tb_totals.retransmissions,
        timeouts: ta.timeouts + tb_totals.timeouts,
        dup_acks: ta.dup_acks,
        window_shrinks: ta.window_shrinks + tb_totals.window_shrinks,
        max_gap_us: gaps.iter().copied().max().unwrap_or(0) / 1000,
        max_suspend_skew_us: skew / 1000,
        throughput_mbps: tb_totals.bytes_delivered as f64 / 1e6 / 27.0,
        acks: summary(names::COORD_NOTIFY_TO_ACKS_NS),
        hold: summary(names::COORD_BARRIER_HOLD_NS),
        downtime: summary(names::VMHOST_DOWNTIME_NS),
    }
}

fn us(ns: f64) -> u64 {
    (ns / 1e3) as u64
}

fn main() {
    banner(
        "XTRA-BASE",
        "transparent vs event-driven vs non-concealing checkpoints (iperf, 5 s period)",
    );
    let mut csv = String::from(
        "strategy,retransmissions,timeouts,dup_acks,window_shrinks,max_gap_us,suspend_skew_us,throughput_MBps,\
         p50_notify_to_acks_us,p99_notify_to_acks_us,p50_barrier_hold_us,p99_barrier_hold_us,\
         p50_downtime_us,p99_downtime_us\n",
    );
    println!(
        "  {:<16} {:>5} {:>8} {:>8} {:>7} {:>11} {:>8} {:>6} {:>15} {:>15} {:>15}",
        "strategy",
        "retx",
        "timeouts",
        "dup-acks",
        "shrinks",
        "max gap µs",
        "skew µs",
        "MB/s",
        "acks p50/p99 µs",
        "hold p50/p99 µs",
        "down p50/p99 µs"
    );
    for strategy in [
        Strategy::Transparent,
        Strategy::EventDriven,
        Strategy::NonConcealing,
    ] {
        eprintln!("[xtra] running {}...", strategy.label());
        let o = run(strategy);
        println!(
            "  {:<16} {:>5} {:>8} {:>8} {:>7} {:>11} {:>8} {:>6.1} {:>15} {:>15} {:>15}",
            strategy.label(),
            o.retransmissions,
            o.timeouts,
            o.dup_acks,
            o.window_shrinks,
            o.max_gap_us,
            o.max_suspend_skew_us,
            o.throughput_mbps,
            format!("{}/{}", us(o.acks.p50), us(o.acks.p99)),
            format!("{}/{}", us(o.hold.p50), us(o.hold.p99)),
            format!("{}/{}", us(o.downtime.p50), us(o.downtime.p99)),
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{:.1},{},{},{},{},{},{}\n",
            strategy.label(),
            o.retransmissions,
            o.timeouts,
            o.dup_acks,
            o.window_shrinks,
            o.max_gap_us,
            o.max_suspend_skew_us,
            o.throughput_mbps,
            us(o.acks.p50),
            us(o.acks.p99),
            us(o.hold.p50),
            us(o.hold.p99),
            us(o.downtime.p50),
            us(o.downtime.p99),
        ));
        if strategy == Strategy::Transparent {
            assert_eq!(o.retransmissions + o.timeouts + o.dup_acks, 0);
        }
        assert!(o.downtime.count > 0, "checkpoints recorded downtime samples");
    }
    let path = write_csv("xtra_baselines.csv", &csv);
    println!("\n  transparent must show zeros; baselines show the §3 anomalies");
    println!("  table: {}", path.display());
}
