//! XTRA-BASE — checkpoint-strategy comparison (ours; §3/§8 implications).
//!
//! The paper argues transparency requires (a) clock-scheduled coordination
//! and (b) concealed downtime. This experiment runs the same iperf
//! workload under the paper's mechanism and the two conventional designs
//! it argues against, and reports who disturbs the system under test:
//!
//! - **transparent**: scheduled + concealed (the paper);
//! - **event-driven**: "checkpoint now" notifications — suspension skew is
//!   delivery + per-node processing jitter (§4.3);
//! - **non-concealing**: conventional stop-and-copy — downtime leaks into
//!   guest time.

use checkpoint::{Coordinator, Strategy};
use sim::SimDuration;
use tcd_bench::lab::{build_lab, LabConfig, LabOutcome};
use tcd_bench::{banner, write_csv};

fn run(strategy: Strategy) -> LabOutcome {
    let mut lab = build_lab(LabConfig {
        seed: 12_001,
        strategy,
        ..LabConfig::default()
    });
    lab.engine.run_for(SimDuration::from_secs(20));
    lab.start_iperf();
    lab.engine.run_for(SimDuration::from_secs(2));
    let coord = lab.coordinator;
    lab.engine
        .with_component::<Coordinator, _>(coord, |c, ctx| {
            c.start_periodic(ctx, SimDuration::from_secs(5))
        });
    lab.engine.run_for(SimDuration::from_secs(25));
    lab.outcome(27.0)
}

fn main() {
    banner(
        "XTRA-BASE",
        "transparent vs event-driven vs non-concealing checkpoints (iperf, 5 s period)",
    );
    let mut csv = String::from(
        "strategy,retransmissions,timeouts,dup_acks,window_shrinks,max_gap_us,suspend_skew_us,throughput_MBps,avg_notify_to_acks_us,avg_barrier_hold_us\n",
    );
    println!(
        "  {:<16} {:>6} {:>9} {:>9} {:>8} {:>12} {:>9} {:>8} {:>9} {:>8}",
        "strategy",
        "retx",
        "timeouts",
        "dup-acks",
        "shrinks",
        "max gap µs",
        "skew µs",
        "MB/s",
        "acks µs",
        "hold µs"
    );
    for strategy in [
        Strategy::Transparent,
        Strategy::EventDriven,
        Strategy::NonConcealing,
    ] {
        eprintln!("[xtra] running {}...", strategy.label());
        let o = run(strategy);
        println!(
            "  {:<16} {:>6} {:>9} {:>9} {:>8} {:>12} {:>9} {:>8.1} {:>9} {:>8}",
            strategy.label(),
            o.retransmissions,
            o.timeouts,
            o.dup_acks,
            o.window_shrinks,
            o.max_gap_us,
            o.max_suspend_skew_us,
            o.throughput_mbps,
            o.avg_notify_to_acks_us,
            o.avg_barrier_hold_us
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{:.1},{},{}\n",
            strategy.label(),
            o.retransmissions,
            o.timeouts,
            o.dup_acks,
            o.window_shrinks,
            o.max_gap_us,
            o.max_suspend_skew_us,
            o.throughput_mbps,
            o.avg_notify_to_acks_us,
            o.avg_barrier_hold_us
        ));
        if strategy == Strategy::Transparent {
            assert_eq!(o.retransmissions + o.timeouts + o.dup_acks, 0);
        }
    }
    let path = write_csv("xtra_baselines.csv", &csv);
    println!("\n  transparent must show zeros; baselines show the §3 anomalies");
    println!("  table: {}", path.display());
}
