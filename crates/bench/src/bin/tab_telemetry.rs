//! TAB-TELEMETRY — the unified telemetry registry over a full testbed
//! run (ours).
//!
//! One scenario exercises every instrumented seam: periodic coordinated
//! checkpoints (coordinator epoch lifecycle, VmHost freeze/thaw
//! downtime), a stateful swap-out/swap-in cycle (testbed swap paths, the
//! file server's dedup store), and the engine-wide span log. The run is
//! executed twice with the same seed and the exports must be
//! byte-identical — the registry is part of the deterministic state, not
//! an observer with its own clock.
//!
//! The exported table is `results/tab_telemetry.csv`, one row per
//! instrument: `kind,name,value,count,sum,min,max,p50,p90,p99,overflow`.

use checkpoint::Strategy;
use emulab::{ExperimentSpec, Testbed};
use sim::SimDuration;
use tcd_bench::{banner, write_csv};
use workloads::{IperfReceiver, IperfSender};

fn run_scenario() -> String {
    let mut tb = Testbed::with_strategy(14_001, 8, Strategy::Transparent);
    tb.swap_in(
        ExperimentSpec::new("tele").node("a").node("b").link(
            "a",
            "b",
            1_000_000_000,
            SimDuration::from_micros(100),
            0.0,
        ),
    )
    .expect("swap-in");
    tb.run_for(SimDuration::from_secs(20));
    let b_addr = tb.node_addr("tele", "b");
    tb.spawn("tele", "b", Box::new(IperfReceiver::new(5001)));
    tb.spawn("tele", "a", Box::new(IperfSender::new(b_addr, 5001)));
    tb.run_for(SimDuration::from_secs(2));
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    tb.run_for(SimDuration::from_secs(16));
    tb.stop_periodic_checkpoints();
    tb.run_for(SimDuration::from_secs(2));
    // A stateful swap cycle drives the swap paths and the dedup store.
    tb.swap_out_stateful("tele");
    let rep = tb.swap_in_stateful("tele", false);
    assert!(rep.warning.is_none(), "healthy swap cycle");
    tb.run_for(SimDuration::from_secs(2));
    tb.telemetry().to_csv()
}

fn main() {
    banner(
        "TAB-TELEMETRY",
        "unified metrics/span registry: one testbed run, deterministic export",
    );
    eprintln!("[tab_telemetry] run 1...");
    let a = run_scenario();
    eprintln!("[tab_telemetry] run 2 (same seed)...");
    let b = run_scenario();
    assert_eq!(a, b, "same-seed telemetry exports must be byte-identical");

    let mut shown = 0;
    println!("  {:<10} {:<34} {:>9} {:>12} {:>12}", "kind", "name", "count", "p50", "p99");
    for line in a.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        // kind,name,value,count,sum,min,max,p50,p90,p99,overflow
        if f[0] == "histogram" || f[0] == "span" {
            println!("  {:<10} {:<34} {:>9} {:>12} {:>12}", f[0], f[1], f[3], f[7], f[9]);
            shown += 1;
        }
    }
    assert!(shown >= 6, "expected the instrumented seams to surface, got {shown}");

    let path = write_csv("tab_telemetry.csv", &a);
    println!("\n  two same-seed runs exported identical tables ({} rows)", a.lines().count() - 1);
    println!("  table: {}", path.display());
}
