//! FIG7 — Four-node BitTorrent experiment (paper Fig 7).
//!
//! One seeder and three clients on a 100 Mbps LAN, all downloading a 3 GB
//! file initially present only on the seeder. Checkpointing starts 70 s
//! into the run, fires every 5 s for 100 s, then stops; the run continues
//! to 300 s. Regenerates the per-client throughput series (1 s bins, as
//! observable from each client's download progress) and checks: ~1 MB/s
//! per client, dips at checkpoints but an unchanged center line, and no
//! TCP disturbance.

use emulab::{ExperimentSpec, Testbed};
use guestos::prog::FileId;
use sim::{SimDuration, SimTime};
use sim::trace::Series;
use tcd_bench::{banner, row, write_csv};
use vmm::VmHost;
use workloads::BtPeer;

fn main() {
    banner("FIG7", "4-node BitTorrent on a 100 Mbps LAN, checkpoints 70–170 s");
    let mut tb = Testbed::new(7001, 8);
    let spec = ExperimentSpec::new("fig7")
        .node("seeder")
        .node("c1")
        .node("c2")
        .node("c3")
        .lan(
            &["seeder", "c1", "c2", "c3"],
            100_000_000,
            SimDuration::from_micros(50),
        );
    tb.swap_in(spec).unwrap();
    tb.run_for(SimDuration::from_secs(5));

    // 3 GB file in 128 KiB pieces.
    let npieces = (3u64 << 30) / (128 * 1024);
    let piece = 128 * 1024u64;
    let seeder_addr = tb.node_addr("fig7", "seeder");
    let clients = ["c1", "c2", "c3"];
    let tids: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut peers = vec![seeder_addr];
            for (j, o) in clients.iter().enumerate() {
                if j != i {
                    peers.push(tb.node_addr("fig7", o));
                }
            }
            (
                *c,
                tb.spawn(
                    "fig7",
                    c,
                    Box::new(BtPeer::leecher(6881, peers, npieces as u32, piece, FileId(1))),
                ),
            )
        })
        .collect();
    tb.spawn(
        "fig7",
        "seeder",
        Box::new(BtPeer::seeder(6881, npieces as u32, piece, FileId(1))),
    );

    // 70 s steady state, 100 s of 5 s checkpoints, 130 s tail = 300 s.
    let t0 = tb.now();
    tb.run_for(SimDuration::from_secs(70));
    // Baseline TCP counters before checkpointing: connection setup may
    // retry a SYN against a not-yet-listening peer, which is unrelated to
    // checkpoint transparency.
    let base: Vec<_> = clients
        .iter()
        .map(|c| tb.kernel("fig7", c, |k| k.net_totals()))
        .collect();
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    tb.run_for(SimDuration::from_secs(100));
    tb.stop_periodic_checkpoints();
    tb.run_for(SimDuration::from_secs(130));

    // Per-client 1 s-binned download throughput from progress samples.
    let mut csv = String::from("time_s,client,throughput_MBps\n");
    let mut rates = Vec::new();
    for (c, tid) in &tids {
        let progress = tb.kernel("fig7", c, |k| {
            k.prog(*tid)
                .unwrap()
                .as_any()
                .downcast_ref::<BtPeer>()
                .unwrap()
                .progress
                .clone()
        });
        let mut series = Series::new();
        let mut prev = 0u64;
        for &(t, bytes) in &progress {
            series.push(SimTime::from_nanos(t), (bytes - prev) as f64);
            prev = bytes;
        }
        let start = SimTime::from_nanos(progress.first().map(|&(t, _)| t).unwrap_or(0));
        let end = SimTime::from_nanos(progress.last().map(|&(t, _)| t).unwrap_or(1));
        let bins = series.binned_rate(start, end, SimDuration::from_secs(1));
        for &(t, rate) in &bins {
            csv.push_str(&format!("{:.1},{},{:.4}\n", t, c, rate / 1e6));
        }
        let total = progress.last().map(|&(_, b)| b).unwrap_or(0);
        let secs = (end - start).as_secs_f64();
        rates.push((c.to_string(), total as f64 / 1e6 / secs));
    }
    let path = write_csv("fig7_bittorrent.csv", &csv);

    let totals: Vec<_> = clients
        .iter()
        .map(|c| tb.kernel("fig7", c, |k| k.net_totals()))
        .collect();
    let host = tb.host_id("fig7", "seeder");
    let ckpts = tb
        .engine
        .component_ref::<VmHost>(host)
        .unwrap()
        .stats
        .checkpoints;

    println!("  run: 300 s, checkpoints at 70–170 s every 5 s ({ckpts} taken)");
    for (c, r) in &rates {
        row(
            &format!("client {c} mean throughput"),
            "~1 MB/s",
            &format!("{r:.2} MB/s"),
        );
    }
    let retx: u64 = totals
        .iter()
        .zip(base.iter())
        .map(|(t, b)| t.retransmissions - b.retransmissions)
        .sum();
    let timeouts: u64 = totals
        .iter()
        .zip(base.iter())
        .map(|(t, b)| t.timeouts - b.timeouts)
        .sum();
    row("retransmissions after steady state", "0", &retx.to_string());
    row("RTO timeouts after steady state", "0", &timeouts.to_string());
    let elapsed = (tb.now() - t0).as_secs_f64();
    println!("  simulated {elapsed:.0} s; series: {}", path.display());
}
