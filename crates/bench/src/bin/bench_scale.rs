//! BENCH-SCALE — throughput of the sharded engine at thousands of nodes.
//!
//! Builds star topologies through the full stack (`emulab::ExperimentSpec`
//! → `ScalePlan` → `checkpoint::build_scale_lab`) and sweeps node count ×
//! shard count, measuring:
//!
//! - `events_per_sec` — wall-clock dispatch rate of the (sequential)
//!   run on this machine;
//! - `agg_events_per_sec` — events over the *critical path*: per window,
//!   the busiest shard's dispatch time; summed across windows. This is
//!   the standard conservative-PDES potential-parallelism metric and is
//!   what the ≥2× acceptance gate reads, because wall-clock speedup on a
//!   single-core container measures scheduling noise, not the engine.
//!   `host_cores` is recorded so readers can judge the wall numbers.
//! - `mb_captured` — dirty state captured across all epochs;
//! - `fingerprint` — FNV-1a of the merged telemetry CSV, which must be
//!   identical across every shard count of the same workload (the runs
//!   are the same experiment, so this doubles as a determinism gate).
//!
//! Results append to `BENCH_scale.json` at the repo root.
//!
//! Modes:
//! - default: full sweep, appends one labeled entry to the JSON;
//! - `--smoke`: 1,000-node star at 1 and 4 shards (sequential +
//!   threaded), fingerprints asserted equal, no JSON write (CI);
//! - `--check`: validate the committed JSON — schema plus the scale
//!   gate: latest entry must hold a 1,000-node row pair with ≥2×
//!   aggregate speedup at 4 shards and matching fingerprints;
//! - `--label <name>`: label for the appended entry.

use std::time::Instant;

use checkpoint::{build_scale_lab, ScaleConfig};
use emulab::{ExperimentSpec, ScalePlan};
use sim::SimDuration;
use tcd_bench::banner;
use tcd_bench::json::{parse_json, Json};

/// Repo-root JSON artifact (path anchored to the crate, not the CWD).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
const SCHEMA: &str = "tcd-bench-scale-v1";

struct Row {
    nodes: u32,
    groups: u32,
    shards: u32,
    epochs: u64,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    busy_ms: f64,
    critpath_ms: f64,
    agg_events_per_sec: f64,
    mb_captured: f64,
    speedup_vs_1shard: f64,
    fingerprint: u64,
}

/// Star topology of `leaves` nodes via the emulab planner, lowered to a
/// scale config. Groups ≈ leaves/62 keeps relay fan-out bounded.
fn star_config(leaves: u32, epochs: u32) -> ScaleConfig {
    let spec = ExperimentSpec::star("bench", leaves, 100_000_000, SimDuration::from_millis(5));
    let groups = (leaves / 62).max(4);
    let plan = ScalePlan::from_spec(&spec, groups).expect("star plans");
    let mut cfg = plan.to_scale_config(SimDuration::from_millis(200), epochs);
    cfg.gossip_period = SimDuration::from_millis(20);
    cfg
}

/// One measured run. `parallel` only changes the execution mode, never
/// the result — callers assert that via the fingerprint.
fn run_once(cfg: &ScaleConfig, seed: u64, shards: u32, parallel: bool) -> Row {
    let mut lab = build_scale_lab(cfg, seed, shards);
    lab.engine.set_parallel(parallel);
    let t0 = Instant::now();
    lab.run();
    let wall_ns = t0.elapsed().as_nanos().max(1) as u64;
    lab.check_invariants().unwrap_or_else(|e| panic!("invariants: {e}"));
    let o = lab.outcome();
    let busy_ns: u64 = lab.engine.busy_ns().iter().sum();
    let crit_ns = lab.engine.critical_path_ns().max(1);
    Row {
        nodes: o.nodes,
        groups: cfg.group_sizes.len() as u32,
        shards,
        epochs: o.epochs_committed,
        events: o.events,
        wall_ms: wall_ns as f64 / 1e6,
        events_per_sec: o.events as f64 / (wall_ns as f64 / 1e9),
        busy_ms: busy_ns as f64 / 1e6,
        critpath_ms: crit_ns as f64 / 1e6,
        agg_events_per_sec: o.events as f64 / (crit_ns as f64 / 1e9),
        mb_captured: o.bytes_captured as f64 / 1e6,
        speedup_vs_1shard: 1.0, // filled by the sweep
        fingerprint: o.fingerprint_metrics,
    }
}

fn print_row(r: &Row) {
    println!(
        "        {:>6} nodes  S={}  {:>9.0} ev/s wall  {:>10.0} ev/s agg  {:>6.2}x  {:>8.1} MB  fp {:016x}",
        r.nodes, r.shards, r.events_per_sec, r.agg_events_per_sec, r.speedup_vs_1shard,
        r.mb_captured, r.fingerprint
    );
}

fn num(n: f64) -> Json {
    Json::Num(n)
}

fn row_json(r: &Row) -> Json {
    let r2 = |x: f64| (x * 100.0).round() / 100.0;
    Json::Obj(vec![
        ("nodes".into(), num(r.nodes as f64)),
        ("groups".into(), num(r.groups as f64)),
        ("shards".into(), num(r.shards as f64)),
        ("epochs".into(), num(r.epochs as f64)),
        ("events".into(), num(r.events as f64)),
        ("wall_ms".into(), num(r2(r.wall_ms))),
        ("events_per_sec".into(), num(r.events_per_sec.round())),
        ("busy_ms".into(), num(r2(r.busy_ms))),
        ("critpath_ms".into(), num(r2(r.critpath_ms))),
        ("agg_events_per_sec".into(), num(r.agg_events_per_sec.round())),
        ("mb_captured".into(), num(r2(r.mb_captured))),
        ("speedup_vs_1shard".into(), num(r2(r.speedup_vs_1shard))),
        ("fingerprint".into(), Json::Str(format!("{:016x}", r.fingerprint))),
    ])
}

const ROW_NUM_FIELDS: [&str; 12] = [
    "nodes",
    "groups",
    "shards",
    "epochs",
    "events",
    "wall_ms",
    "events_per_sec",
    "busy_ms",
    "critpath_ms",
    "agg_events_per_sec",
    "mb_captured",
    "speedup_vs_1shard",
];

fn check_schema(doc: &Json) -> Result<usize, String> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        _ => return Err(format!("top-level 'schema' must be \"{SCHEMA}\"")),
    }
    let entries = match doc.get("entries") {
        Some(Json::Arr(items)) => items,
        _ => return Err("top-level 'entries' must be an array".into()),
    };
    if entries.is_empty() {
        return Err("'entries' must not be empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let fail = |msg: String| format!("entry {i}: {msg}");
        match entry.get("label") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(fail("missing non-empty 'label'".into())),
        }
        entry
            .get("host_cores")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric 'host_cores'".into()))?;
        let rows = match entry.get("rows") {
            Some(Json::Arr(rows)) if !rows.is_empty() => rows,
            _ => return Err(fail("'rows' must be a non-empty array".into())),
        };
        for (j, row) in rows.iter().enumerate() {
            for f in ROW_NUM_FIELDS {
                row.get(f)
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail(format!("row {j}: missing numeric '{f}'")))?;
            }
            match row.get("fingerprint") {
                Some(Json::Str(s)) if s.len() == 16 => {}
                _ => return Err(fail(format!("row {j}: 'fingerprint' must be a 16-hex string"))),
            }
        }
    }
    Ok(entries.len())
}

/// The acceptance gate on the *latest* entry: a 1,000-node pair at 1
/// and 4 shards, fingerprints equal, aggregate speedup ≥ 2×.
fn check_scale_gate(doc: &Json) -> Result<(), String> {
    let entries = match doc.get("entries") {
        Some(Json::Arr(items)) => items,
        _ => unreachable!("schema checked"),
    };
    let latest = entries.last().expect("non-empty checked");
    let rows = match latest.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => unreachable!("schema checked"),
    };
    let find = |shards: f64| {
        rows.iter().find(|r| {
            r.get("nodes").and_then(Json::as_num) == Some(1000.0)
                && r.get("shards").and_then(Json::as_num) == Some(shards)
        })
    };
    let one = find(1.0).ok_or("latest entry has no 1000-node 1-shard row")?;
    let four = find(4.0).ok_or("latest entry has no 1000-node 4-shard row")?;
    let fp = |r: &Json| match r.get("fingerprint") {
        Some(Json::Str(s)) => s.clone(),
        _ => unreachable!("schema checked"),
    };
    if fp(one) != fp(four) {
        return Err(format!(
            "1000-node fingerprints differ across shard counts: {} vs {}",
            fp(one),
            fp(four)
        ));
    }
    let speedup = four
        .get("speedup_vs_1shard")
        .and_then(Json::as_num)
        .expect("schema checked");
    if speedup < 2.0 {
        return Err(format!(
            "1000-node 4-shard aggregate speedup {speedup:.2}x is below the 2x gate"
        ));
    }
    Ok(())
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string());

    if check {
        let text =
            std::fs::read_to_string(OUT_PATH).unwrap_or_else(|e| panic!("read {OUT_PATH}: {e}"));
        let doc = parse_json(&text).unwrap_or_else(|e| panic!("{e}"));
        match check_schema(&doc) {
            Ok(n) => println!("BENCH_scale.json: schema ok, {n} entries"),
            Err(e) => panic!("BENCH_scale.json schema violation: {e}"),
        }
        match check_scale_gate(&doc) {
            Ok(()) => println!("BENCH_scale.json: 1000-node >=2x aggregate gate ok"),
            Err(e) => panic!("BENCH_scale.json scale gate violation: {e}"),
        }
        return;
    }

    banner("BENCH-SCALE", "sharded engine throughput at thousands of nodes");
    println!("  host cores: {}", host_cores());

    if smoke {
        // CI smoke: the 1,000-node star end to end, 1 vs 4 shards,
        // sequential and threaded, fingerprints asserted equal.
        let cfg = star_config(1000, 2);
        println!("  [smoke] 1000-node star, 2 epochs...");
        let base = run_once(&cfg, 42, 1, false);
        print_row(&base);
        let mut four = run_once(&cfg, 42, 4, false);
        four.speedup_vs_1shard = four.agg_events_per_sec / base.agg_events_per_sec;
        print_row(&four);
        let threaded = run_once(&cfg, 42, 4, true);
        assert_eq!(
            base.fingerprint, four.fingerprint,
            "4-shard run diverged from 1-shard"
        );
        assert_eq!(
            base.fingerprint, threaded.fingerprint,
            "threaded 4-shard run diverged"
        );
        assert_eq!(base.epochs, 2, "all epochs must commit");
        assert!(
            four.speedup_vs_1shard >= 2.0,
            "aggregate speedup {:.2}x below the 2x gate",
            four.speedup_vs_1shard
        );
        println!("\n  smoke ok: fingerprints identical, {:.2}x aggregate at 4 shards",
            four.speedup_vs_1shard);
        return;
    }

    // Full sweep: node count x shard count.
    let sizes: &[u32] = &[1000, 4000, 10000];
    let shard_counts: &[u32] = &[1, 2, 4, 8];
    let mut rows: Vec<Row> = Vec::new();
    for (i, &leaves) in sizes.iter().enumerate() {
        let cfg = star_config(leaves, 4);
        println!(
            "  [{}/{}] {leaves}-node star ({} groups, 4 epochs)...",
            i + 1,
            sizes.len(),
            cfg.group_sizes.len()
        );
        let mut base_agg = 0.0;
        let mut base_fp = 0u64;
        for &shards in shard_counts {
            let mut r = run_once(&cfg, 42, shards, false);
            if shards == 1 {
                base_agg = r.agg_events_per_sec;
                base_fp = r.fingerprint;
            }
            r.speedup_vs_1shard = r.agg_events_per_sec / base_agg;
            assert_eq!(
                r.fingerprint, base_fp,
                "{leaves}-node {shards}-shard run diverged from 1-shard"
            );
            print_row(&r);
            rows.push(r);
        }
        // Threaded cross-check at the widest layout (result must be
        // byte-identical; timing is not recorded on a saturated host).
        let threaded = run_once(&cfg, 42, *shard_counts.last().unwrap(), true);
        assert_eq!(threaded.fingerprint, base_fp, "threaded run diverged");
    }

    let entry = Json::Obj(vec![
        ("label".into(), Json::Str(label.clone())),
        ("host_cores".into(), num(host_cores() as f64)),
        ("rows".into(), Json::Arr(rows.iter().map(row_json).collect())),
    ]);

    let mut doc = match std::fs::read_to_string(OUT_PATH) {
        Ok(text) => parse_json(&text).unwrap_or_else(|e| panic!("existing {OUT_PATH} invalid: {e}")),
        Err(_) => Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("entries".into(), Json::Arr(Vec::new())),
        ]),
    };
    if let Json::Obj(fields) = &mut doc {
        if let Some((_, Json::Arr(entries))) = fields.iter_mut().find(|(k, _)| k == "entries") {
            entries.push(entry);
        } else {
            panic!("existing {OUT_PATH} has no 'entries' array");
        }
    } else {
        panic!("existing {OUT_PATH} is not an object");
    }
    check_schema(&doc).expect("generated entry must satisfy the schema");
    check_scale_gate(&doc).expect("generated entry must satisfy the scale gate");
    std::fs::write(OUT_PATH, doc.to_string_pretty()).expect("write BENCH_scale.json");
    println!("\n  appended entry '{label}' to BENCH_scale.json");
}
