//! XTRA-ABL — ablations of the design choices DESIGN.md calls out.
//!
//! Each row removes one ingredient of the paper's mechanism and shows what
//! breaks:
//!
//! 1. **No delay-node checkpoint** (§4.4): the network core's in-flight
//!    packets are discarded at the checkpoint instead of preserved —
//!    TCP must repair the loss (retransmissions appear).
//! 2. **No NTP** (§4.3): checkpoints are scheduled against undisciplined
//!    clocks — suspension skew explodes to the raw clock offsets.
//! 3. **Scheduling lead sensitivity** (§4.3): a lead shorter than
//!    notification propagation degrades a scheduled checkpoint into an
//!    (uncoordinated) event-driven one.

use checkpoint::{Coordinator, DelayNodeHost};
use sim::SimDuration;
use tcd_bench::lab::{build_lab, LabConfig};
use tcd_bench::{banner, write_csv};

fn main() {
    banner("XTRA-ABL", "ablations: remove one mechanism, observe the damage");
    let mut csv = String::from(
        "ablation,retx,timeouts,dup_acks,max_gap_us,suspend_skew_us,throughput_MBps\n",
    );

    println!(
        "  {:<34} {:>5} {:>8} {:>8} {:>11} {:>9} {:>7}",
        "configuration", "retx", "timeouts", "dup-acks", "max gap µs", "skew µs", "MB/s"
    );

    // --- Full mechanism (control) + no-delay-node-checkpoint ablation. ---
    for wipe_dn in [false, true] {
        let mut lab = build_lab(LabConfig {
            seed: 13_001,
            ..LabConfig::default()
        });
        lab.engine.run_for(SimDuration::from_secs(20));
        lab.start_iperf();
        lab.engine.run_for(SimDuration::from_secs(2));
        // Five manual checkpoint rounds; in the ablated run, the delay
        // node's captured pipe state is discarded while suspended —
        // what would happen if the network core were not checkpointed.
        for _ in 0..5 {
            lab.engine.run_for(SimDuration::from_secs(5));
            let coord = lab.coordinator;
            lab.engine
                .with_component::<Coordinator, _>(coord, |c, ctx| c.suspend(ctx));
            for _ in 0..100 {
                lab.engine.run_for(SimDuration::from_millis(20));
                if lab
                    .engine
                    .component_ref::<Coordinator>(coord)
                    .unwrap()
                    .barrier_complete()
                {
                    break;
                }
            }
            if wipe_dn {
                let dn = lab.delay_node;
                lab.engine
                    .with_component::<DelayNodeHost, _>(dn, |d, ctx| {
                        // Discard the suspended pipes: re-create them empty.
                        d.abandon_checkpoint(ctx);
                        let fresh = dummynet::Dummynet::restore(
                            &empty_image_like(d),
                            ctx.now(),
                        );
                        d.install_dummynet(ctx, fresh);
                        // Re-suspend so the resume broadcast finds the node
                        // in the expected state.
                        d.dummynet_mut().suspend(ctx.now());
                    });
            }
            lab.engine
                .with_component::<Coordinator, _>(coord, |c, ctx| c.release_resume(ctx));
            lab.engine.run_for(SimDuration::from_millis(100));
        }
        lab.engine.run_for(SimDuration::from_secs(3));
        let o = lab.outcome(30.0);
        let name = if wipe_dn {
            "no delay-node checkpoint"
        } else {
            "full mechanism (control)"
        };
        print_row(name, &o, &mut csv);
        if wipe_dn {
            assert!(
                o.retransmissions > 0,
                "dropping the network core's packets must be visible"
            );
        } else {
            assert_eq!(o.retransmissions, 0);
        }
    }

    // --- NTP ablation. ---
    {
        let mut lab = build_lab(LabConfig {
            seed: 13_002,
            ntp: false,
            offsets_ns: (8_000_000, -9_000_000),
            ..LabConfig::default()
        });
        lab.engine.run_for(SimDuration::from_secs(20));
        lab.start_iperf();
        lab.engine.run_for(SimDuration::from_secs(2));
        let coord = lab.coordinator;
        lab.engine
            .with_component::<Coordinator, _>(coord, |c, ctx| {
                c.start_periodic(ctx, SimDuration::from_secs(5))
            });
        lab.engine.run_for(SimDuration::from_secs(25));
        let o = lab.outcome(25.0);
        print_row("no NTP (raw clocks)", &o, &mut csv);
        assert!(
            o.max_suspend_skew_us > 2_000,
            "undisciplined clocks should skew by milliseconds, got {} µs",
            o.max_suspend_skew_us
        );
    }

    // --- Scheduling-lead sweep. ---
    for lead_ms in [1u64, 10, 50, 200, 1000] {
        let mut lab = build_lab(LabConfig {
            seed: 13_003,
            lead: Some(SimDuration::from_millis(lead_ms)),
            ..LabConfig::default()
        });
        lab.engine.run_for(SimDuration::from_secs(20));
        lab.start_iperf();
        lab.engine.run_for(SimDuration::from_secs(2));
        let coord = lab.coordinator;
        lab.engine
            .with_component::<Coordinator, _>(coord, |c, ctx| {
                c.start_periodic(ctx, SimDuration::from_secs(5))
            });
        lab.engine.run_for(SimDuration::from_secs(25));
        let o = lab.outcome(25.0);
        print_row(&format!("scheduled, lead = {lead_ms} ms"), &o, &mut csv);
    }

    let path = write_csv("xtra_ablations.csv", &csv);
    println!("\n  every removed ingredient shows up as a §3 anomaly");
    println!("  table: {}", path.display());
}

fn print_row(name: &str, o: &tcd_bench::lab::LabOutcome, csv: &mut String) {
    println!(
        "  {:<34} {:>5} {:>8} {:>8} {:>11} {:>9} {:>7.1}",
        name,
        o.retransmissions,
        o.timeouts,
        o.dup_acks,
        o.max_gap_us,
        o.max_suspend_skew_us,
        o.throughput_mbps
    );
    csv.push_str(&format!(
        "{},{},{},{},{},{},{:.1}\n",
        name,
        o.retransmissions,
        o.timeouts,
        o.dup_acks,
        o.max_gap_us,
        o.max_suspend_skew_us,
        o.throughput_mbps
    ));
}

/// An empty Dummynet image with the same pipe configs as the node's
/// current instance (so routing stays valid, just with no packets).
fn empty_image_like(d: &DelayNodeHost) -> dummynet::DummynetImage {
    let mut fresh = dummynet::Dummynet::new();
    for i in 0..d.dummynet().pipe_count() {
        fresh.add_pipe(d.dummynet().pipe(dummynet::PipeId(i)).config());
    }
    fresh.suspend(sim::SimTime::ZERO);
    fresh.serialize(sim::SimTime::ZERO)
}
