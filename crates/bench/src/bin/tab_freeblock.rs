//! TAB-FBE — §5.1's free-block elimination validation (in-text).
//!
//! "We verified that this optimization is crucial by running a make
//! followed by make clean command on a Linux kernel source tree.
//! Free-block elimination reduces the delta size from 490 MB to 36 MB."
//!
//! The workload builds ~490 MB of object files and deletes all but the
//! retained artifacts; the ext3-snooping plugin then filters the delta at
//! swap-out.

use cowstore::CowMode;
use sim::{SimDuration, SimTime};
use tcd_bench::{banner, row, single_host, write_csv};
use vmm::VmHost;
use workloads::KernelBuild;

fn main() {
    banner("TAB-FBE", "make + make clean: free-block elimination (§5.1)");
    let (mut e, host) = single_host(11_001, CowMode::Branch, false);
    e.run_until(SimTime::ZERO + SimDuration::from_secs(2));

    let tid = e.with_component::<VmHost, _>(host, |h, _| {
        h.kernel_mut().spawn(Box::new(KernelBuild::paper_default()))
    });
    for _ in 0..60 {
        e.run_for(SimDuration::from_secs(30));
        let done = e
            .component_ref::<VmHost>(host)
            .unwrap()
            .kernel()
            .prog(tid)
            .unwrap()
            .as_any()
            .downcast_ref::<KernelBuild>()
            .unwrap()
            .finished;
        if done {
            break;
        }
    }

    let h = e.component_ref::<VmHost>(host).unwrap();
    let bs = h.store().block_size();
    let raw = h.store().current_delta().byte_size(bs);
    let (filtered, removed_blocks) = h.store().filtered_delta();
    let kept = filtered.byte_size(bs);

    let mut csv = String::from("metric,bytes\n");
    csv.push_str(&format!("raw_delta,{raw}\n"));
    csv.push_str(&format!("filtered_delta,{kept}\n"));
    let path = write_csv("tab_freeblock.csv", &csv);

    row(
        "delta before elimination",
        "490 MB",
        &format!("{:.0} MB", raw as f64 / 1e6),
    );
    row(
        "delta after elimination",
        "36 MB",
        &format!("{:.0} MB", kept as f64 / 1e6),
    );
    row(
        "reduction factor",
        "~13.6x",
        &format!("{:.1}x ({} blocks dropped)", raw as f64 / kept as f64, removed_blocks),
    );
    println!("  table: {}", path.display());
    assert!(kept * 5 < raw, "elimination ineffective");
}
