//! EXPLORE — randomized fault exploration of the epoch protocol.
//!
//! Sweeps thousands of seeded iterations, each a fully random scenario
//! (topology, capture mix, failure policy, cadence, crash schedule)
//! run under an armed buggify registry, and checks every trace against
//! the independent shadow model of the coordinator's two-phase
//! protocol (`checkpoint::shadow`). A violation dumps the full trace
//! as CSV under `results/` and prints the exact command that replays
//! the iteration byte-identically.
//!
//! Usage:
//!
//! ```text
//! explore [--iters=N] [--root-seed=S] [--preset=calm|moderate|chaos|mix]
//!         [--replay-seed=S [--sabotage]] [--selftest-replay] [--smoke]
//! ```
//!
//! - default: 5000 iterations from root seed 0xC0FFEE, mixed presets;
//! - `--smoke`: 200 iterations (CI-sized);
//! - `--replay-seed=S`: run exactly one iteration and dump its trace;
//! - `--sabotage`: drop node 1's `shadow.done` events before the
//!   shadow replay — a deliberate bookkeeping bug that must fire
//!   `CommitIncomplete` (used to prove the failure path works);
//! - `--selftest-replay`: run a sabotaged iteration twice and verify
//!   the violation reproduces byte-identically.
//!
//! Exit status is nonzero if any iteration violated the shadow model
//! (sabotaged runs invert: they fail if the violation did NOT fire).

use std::process::ExitCode;

use sim::Preset;
use tcd_bench::explore::{
    events_csv, iteration_seed, repro_line, run_seed, IterationOutcome, Scenario,
};
use tcd_bench::{banner, flightrec, write_csv};

struct Args {
    iters: u64,
    root_seed: u64,
    preset: Option<Preset>,
    replay_seed: Option<u64>,
    sabotage: bool,
    selftest_replay: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 5_000,
        root_seed: 0xC0_FFEE,
        preset: None,
        replay_seed: None,
        sabotage: false,
        selftest_replay: false,
    };
    for arg in std::env::args().skip(1) {
        let (key, val) = match arg.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (arg.as_str(), None),
        };
        let num = |v: Option<&str>| -> Result<u64, String> {
            let v = v.ok_or_else(|| format!("{key} needs a value"))?;
            let (v, radix) = match v.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (v, 10),
            };
            u64::from_str_radix(v, radix).map_err(|e| format!("{key}: {e}"))
        };
        match key {
            "--iters" => args.iters = num(val)?,
            "--root-seed" => args.root_seed = num(val)?,
            "--replay-seed" => args.replay_seed = Some(num(val)?),
            "--preset" => {
                let v = val.ok_or("--preset needs a value")?;
                if v != "mix" {
                    args.preset =
                        Some(Preset::parse(v).ok_or_else(|| format!("unknown preset {v}"))?);
                }
            }
            "--sabotage" => args.sabotage = true,
            "--selftest-replay" => args.selftest_replay = true,
            "--smoke" => args.iters = 200,
            _ => return Err(format!("unknown flag {key}")),
        }
    }
    Ok(args)
}

/// Dumps a failing iteration's trace and flight-recorder black box and
/// prints the repro line.
fn report_failure(out: &IterationOutcome, sabotage: bool) {
    let s = &out.scenario;
    println!();
    println!(
        "  VIOLATION seed={:#x} preset={} nodes={} interval={}ms crash={:?} coord_crash={:?}",
        s.seed,
        s.preset.name(),
        s.nodes(),
        s.interval_ms,
        s.crash,
        s.coord_crash,
    );
    for v in &out.violations {
        println!("    - {v}");
    }
    let path = write_csv(
        &format!("explore-violation-{:#x}.csv", s.seed),
        &events_csv(&out.events),
    );
    let box_path = flightrec::write_dump(out, "shadow violation", sabotage);
    println!("    trace: {} ({} events)", path.display(), out.events.len());
    println!("    black box: {}", box_path.display());
    println!("    repro: {}", repro_line(s, sabotage));
}

fn preset_name(p: Option<Preset>) -> &'static str {
    p.map_or("mix", Preset::name)
}

fn replay(seed: u64, preset: Option<Preset>, sabotage: bool) -> ExitCode {
    let scenario = Scenario::derive(seed, preset);
    println!("replaying seed {seed:#x}: {scenario:?}");
    let out = run_seed(seed, preset, sabotage);
    let (c, a, d) = out.outcomes;
    println!(
        "  epochs committed/aborted/degraded = {c}/{a}/{d}, retries = {}, \
         buggify fires = {}, coordinator crashes = {} ({} recovered), \
         shadow checked {} epochs, fingerprint = {:#018x}",
        out.retries,
        out.buggify_fires,
        out.coord_crashes,
        out.coord_recoveries,
        out.epochs_checked,
        out.fingerprint()
    );
    let path = write_csv(&format!("explore-replay-{seed:#x}.csv"), &events_csv(&out.events));
    println!("  trace: {} ({} events)", path.display(), out.events.len());
    if out.violations.is_empty() {
        println!("  shadow model: clean");
        if sabotage {
            println!("  FAIL: sabotage did not trip the shadow model");
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    } else {
        for v in &out.violations {
            println!("  violation: {v}");
        }
        if sabotage {
            let box_path = flightrec::write_dump(&out, "deliberate sabotage", sabotage);
            println!("  black box: {}", box_path.display());
            println!("  OK: deliberate violation fired as expected");
            ExitCode::SUCCESS
        } else {
            report_failure(&out, sabotage);
            ExitCode::FAILURE
        }
    }
}

/// Runs a sabotaged iteration twice and demands identical traces and
/// identical violations — the byte-identical-replay guarantee, checked
/// end to end through a real failure.
fn selftest_replay(preset: Option<Preset>) -> ExitCode {
    let seed = 5;
    let a = run_seed(seed, preset.or(Some(Preset::Calm)), true);
    let b = run_seed(seed, preset.or(Some(Preset::Calm)), true);
    if a.violations.is_empty() {
        println!("FAIL: sabotaged seed {seed:#x} produced no violation");
        return ExitCode::FAILURE;
    }
    if a.fingerprint() != b.fingerprint() || a.violations != b.violations {
        println!(
            "FAIL: replay diverged (fingerprints {:#x} vs {:#x})",
            a.fingerprint(),
            b.fingerprint()
        );
        return ExitCode::FAILURE;
    }
    // The flight recorder must be as reproducible as the run it
    // records: both runs' black boxes, byte for byte.
    let dump_a = flightrec::render(&a, "self-test sabotage", true);
    let dump_b = flightrec::render(&b, "self-test sabotage", true);
    if dump_a != dump_b {
        println!("FAIL: flight-recorder dumps diverged across replays");
        return ExitCode::FAILURE;
    }
    let box_path = flightrec::write_dump(&a, "self-test sabotage", true);
    println!(
        "OK: injected violation ({} finding{}) replayed byte-identically \
         (fingerprint {:#018x}, {} events)",
        a.violations.len(),
        if a.violations.len() == 1 { "" } else { "s" },
        a.fingerprint(),
        a.events.len()
    );
    println!("OK: flight-recorder black box reproduced byte-identically: {}", box_path.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("explore: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.selftest_replay {
        return selftest_replay(args.preset);
    }
    if let Some(seed) = args.replay_seed {
        return replay(seed, args.preset, args.sabotage);
    }

    banner(
        "EXPLORE",
        "randomized fault exploration vs. the shadow epoch model",
    );
    println!(
        "root seed {:#x}, {} iterations, preset {}",
        args.root_seed,
        args.iters,
        preset_name(args.preset)
    );

    let mut totals = (0u64, 0u64, 0u64);
    let mut retries = 0u64;
    let mut fires = 0u64;
    let mut epochs = 0u64;
    let mut failures = 0u64;
    let mut coord_crashes = 0u64;
    let mut coord_recoveries = 0u64;
    let mut scale_probes = 0u64;
    let mut scale_failures = 0u64;
    for i in 0..args.iters {
        let seed = iteration_seed(args.root_seed, i);
        let out = run_seed(seed, args.preset, args.sabotage);
        totals.0 += out.outcomes.0;
        totals.1 += out.outcomes.1;
        totals.2 += out.outcomes.2;
        retries += out.retries;
        fires += out.buggify_fires;
        epochs += out.epochs_checked;
        coord_crashes += out.coord_crashes;
        coord_recoveries += out.coord_recoveries;
        match out.scale_probe_ok {
            Some(true) => scale_probes += 1,
            Some(false) => {
                scale_probes += 1;
                scale_failures += 1;
                let p = out.scenario.scale_probe.expect("probe ran");
                println!(
                    "\n  SCALE DIVERGENCE seed={:#x}: {}-node lab differs between \
                     1 and {} shards ({} groups x {})",
                    seed,
                    p.nodes(),
                    p.shards,
                    p.groups,
                    p.per_group
                );
                println!("    repro: {}", repro_line(&out.scenario, args.sabotage));
            }
            None => {}
        }
        if !out.violations.is_empty() {
            failures += 1;
            report_failure(&out, args.sabotage);
        }
        if (i + 1) % 500 == 0 {
            println!(
                "  {}/{} iterations, {} epochs checked, {} buggify fires, {} violations",
                i + 1,
                args.iters,
                epochs,
                fires,
                failures
            );
        }
    }

    println!();
    println!(
        "{} iterations: {} epochs checked ({} committed / {} aborted / {} degraded), \
         {} retries, {} buggify fires, {} coordinator crashes ({} recovered)",
        args.iters, epochs, totals.0, totals.1, totals.2, retries, fires,
        coord_crashes, coord_recoveries
    );
    println!(
        "scale probes: {scale_probes} run, {scale_failures} diverged \
         (1-shard vs N-shard fingerprints)"
    );
    if failures == 0 && scale_failures == 0 {
        println!("shadow model: clean across all iterations");
        ExitCode::SUCCESS
    } else {
        if failures > 0 {
            println!("shadow model: {failures} violating iteration(s) — traces under results/");
        }
        if scale_failures > 0 {
            println!("sharded engine: {scale_failures} divergent scale probe(s)");
        }
        ExitCode::FAILURE
    }
}
