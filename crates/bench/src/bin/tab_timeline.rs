//! TAB-TIMELINE — event-level trace of one checkpoint epoch cycle, with
//! the time-transparency audit (ours; §4/§8 implications).
//!
//! Where TAB-TELEMETRY aggregates (histograms, counters), this experiment
//! keeps the *events*: every coordinator epoch phase, VmHost freeze
//! window, guest-visible clock observation, COW branch seal, and Dummynet
//! suspension lands in the engine's bounded trace ring against simulated
//! time. The ring exports two ways:
//!
//! - `results/tab_timeline.json` — Chrome trace-event / Perfetto JSON
//!   (load it at <https://ui.perfetto.dev>); one process per node, one
//!   thread per subsystem track;
//! - `results/tab_timeline.csv` — a compact, committed summary (event
//!   counts per tag, a content hash of the JSON, the audit verdict) that
//!   CI diffs to pin the timeline byte-for-byte.
//!
//! The run executes twice with the same seed; the full Perfetto JSON must
//! be byte-identical across runs. The transparency auditor then walks the
//! guest tracks and asserts that no host's guest ever observed the
//! checkpoint: monotonic clock reads, bounded tick gaps, no wall-clock
//! step across a firewall close → open cycle.

use checkpoint::Strategy;
use emulab::{ExperimentSpec, Testbed};
use sim::{audit_transparency, SimDuration, TracePhase};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tcd_bench::{banner, write_csv};
use workloads::{IperfReceiver, IperfSender};

/// Tags the acceptance gate requires B (slice-begin) events for.
const REQUIRED_SLICES: [&str; 5] =
    ["vm.freeze", "guest.fw_closed", "cow.seal", "epoch", "dn.drain"];

struct RunOutput {
    json: String,
    events: Vec<sim::TraceEvent>,
    dropped: u64,
    verdict: String,
    passed: bool,
}

fn run_scenario() -> RunOutput {
    let mut tb = Testbed::with_strategy(15_001, 8, Strategy::Transparent);
    tb.swap_in(
        ExperimentSpec::new("timeline").node("a").node("b").link(
            "a",
            "b",
            1_000_000_000,
            SimDuration::from_micros(100),
            0.0,
        ),
    )
    .expect("swap-in");
    tb.run_for(SimDuration::from_secs(20));
    let b_addr = tb.node_addr("timeline", "b");
    tb.spawn("timeline", "b", Box::new(IperfReceiver::new(5001)));
    tb.spawn("timeline", "a", Box::new(IperfSender::new(b_addr, 5001)));
    tb.run_for(SimDuration::from_secs(2));
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    tb.run_for(SimDuration::from_secs(16));
    tb.stop_periodic_checkpoints();
    tb.run_for(SimDuration::from_secs(2));
    // A stateful swap cycle puts the testbed and COW-seal tracks on the
    // timeline too.
    tb.swap_out_stateful("timeline");
    let rep = tb.swap_in_stateful("timeline", false);
    assert!(rep.warning.is_none(), "healthy swap cycle");
    tb.run_for(SimDuration::from_secs(2));

    let t = tb.telemetry();
    let report = audit_transparency(t);
    RunOutput {
        json: t.trace_to_perfetto(),
        events: t.trace_events(),
        dropped: t.trace_dropped(),
        verdict: report.verdict(),
        passed: report.passed(),
    }
}

/// FNV-1a 64 over the JSON bytes: a stable, dependency-free content hash
/// for the committed summary.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    banner(
        "TAB-TIMELINE",
        "event-level trace ring, Perfetto export, transparency audit",
    );
    eprintln!("[tab_timeline] run 1...");
    let a = run_scenario();
    eprintln!("[tab_timeline] run 2 (same seed)...");
    let b = run_scenario();
    assert_eq!(
        a.json, b.json,
        "same-seed Perfetto exports must be byte-identical"
    );

    // Per-(name, phase) event counts, sorted — the committed fingerprint.
    let mut counts: BTreeMap<(String, char), u64> = BTreeMap::new();
    for ev in &a.events {
        let ph = match ev.phase {
            TracePhase::Instant => 'i',
            other => other.code(),
        };
        *counts.entry((ev.name.clone(), ph)).or_insert(0) += 1;
    }
    for name in REQUIRED_SLICES {
        assert!(
            counts.contains_key(&(name.to_string(), 'B')),
            "timeline must contain a B slice for {name}"
        );
    }
    assert!(a.passed, "transparency audit failed: {}", a.verdict);

    let mut csv = String::from("key,value\n");
    let _ = writeln!(csv, "trace_events,{}", a.events.len());
    let _ = writeln!(csv, "trace_dropped,{}", a.dropped);
    let _ = writeln!(csv, "json_bytes,{}", a.json.len());
    let _ = writeln!(csv, "json_fnv64,{:016x}", fnv64(a.json.as_bytes()));
    let _ = writeln!(csv, "audit,{}", a.verdict);
    for ((name, ph), n) in &counts {
        let _ = writeln!(csv, "count.{name}.{ph},{n}");
    }

    let json_path = write_csv("tab_timeline.json", &a.json);
    let csv_path = write_csv("tab_timeline.csv", &csv);

    println!("  {:<28} {:>8} {:>8} {:>8}", "event", "B", "E", "i");
    let mut by_name: BTreeMap<&str, [u64; 3]> = BTreeMap::new();
    for ((name, ph), n) in &counts {
        let slot = match ph {
            'B' => 0,
            'E' => 1,
            _ => 2,
        };
        by_name.entry(name).or_insert([0; 3])[slot] += n;
    }
    for (name, row) in &by_name {
        println!("  {:<28} {:>8} {:>8} {:>8}", name, row[0], row[1], row[2]);
    }
    println!("\n  audit: {}", a.verdict);
    println!("  {} events ({} dropped), exports byte-identical across runs", a.events.len(), a.dropped);
    println!("  timeline: {} (load at https://ui.perfetto.dev)", json_path.display());
    println!("  summary:  {}", csv_path.display());
}
