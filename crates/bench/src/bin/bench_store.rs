//! BENCH-STORE — shard-count sweep over the checkpoint-store service.
//!
//! The fig*/tab* regenerators pin simulated observables of the paper's
//! experiments; this bench pins the *store service* model itself: N
//! experiments checkpoint simultaneously against one sharded, replicated
//! [`StoreService`](ckptstore::service) and we report, per shard count,
//!
//! - aggregate MB/s: new physical bytes admitted per simulated second of
//!   commit makespan (the shard pipeline is the bottleneck, so this is
//!   the scaling claim — DESIGN.md §10 expects ≥2x at 4 shards vs 1);
//! - p50/p99 commit latency: submit → quorum-durable per put, from
//!   [`ckptstore::TimedPut::commit_at`];
//! - repair-path traffic: with `store.shard_fail` forced to 10%, replica
//!   writes fail, quorum top-ups retry inline, and the leftovers drain
//!   through the gossip repair queue via per-shard
//!   [`ckptstore::ShardWorker`]s.
//!
//! Every sweep runs twice with the same seed and must produce a
//! byte-identical fingerprint (every `PutReport`, every commit instant,
//! every repair counter) — shard placement, fault draws, and the repair
//! schedule are all deterministic functions of the seed.
//!
//! Results append to `BENCH_store.json` at the repo root. Simulated-time
//! numbers are machine-independent, so entries are comparable across
//! machines (unlike `BENCH_hotpath.json`).
//!
//! Modes:
//! - default: full sweep (shards 1/2/4/8), appends one labeled entry;
//! - `--smoke`: tiny sweep (shards 1/4), no JSON write (CI);
//! - `--check`: validate the committed JSON against the schema and exit;
//! - `--label <name>`: label for the appended entry (default "current").

use ckptstore::{CaptureCache, ChunkStore, StoreClient};
use sim::buggify::{points, Buggify, Preset};
use sim::{stats, Engine, SimDuration, SimTime};
use tcd_bench::banner;
use tcd_bench::json::{parse_json, Json};

/// Repo-root JSON artifact (path anchored to the crate, not the CWD).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
const SCHEMA: &str = "tcd-bench-store-v1";

const SEED: u64 = 42;
const CHUNK: usize = 4096;
const REPLICATION: usize = 3;
/// Forced probability for `store.shard_fail` — high enough that every
/// epoch exercises quorum retries and feeds the repair queue.
const SHARD_FAIL_PROB: f64 = 0.10;
/// Repair workers pump every 2 sim-ms.
const REPAIR_PERIOD: SimDuration = SimDuration::from_millis(2);

// ---------------------------------------------------------------------------
// Workload: N experiments checkpointing simultaneously.
// ---------------------------------------------------------------------------

struct Workload {
    experiments: usize,
    epochs: usize,
    /// Chunks per experiment image.
    chunks: usize,
    /// Chunks rewritten per epoch (~25% of the image).
    dirty: usize,
}

/// xorshift64* — deterministic dirty-chunk selection and payload bytes,
/// independent of the store's own seeded draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// FNV-1a 64 over a byte stream — the sweep's determinism fingerprint.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn push_u64(&mut self, v: u64) {
        self.push(&v.to_le_bytes());
    }
}

struct SweepResult {
    shards: usize,
    puts: u64,
    /// Σ new physical bytes over all puts (primary copies).
    bytes: u64,
    /// Simulated commit makespan per epoch, summed (submit → last quorum).
    makespan_ns: u64,
    mb_per_sec: f64,
    p50_commit_us: f64,
    p99_commit_us: f64,
    replica_acks: u64,
    quorum_retries: u64,
    repairs_enqueued: u64,
    repairs_done: u64,
    repair_backlog_end: u64,
    fingerprint: u64,
}

/// One full run at a given shard count: `experiments` images each
/// rewritten `epochs` times, all submitted at the same instant per epoch
/// (the "N experiments checkpoint simultaneously" shape), with shard
/// failures forced on and repair workers draining between epochs.
fn run_sweep(shards: usize, wl: &Workload) -> SweepResult {
    let mut engine = Engine::new(SEED);
    let client: StoreClient = ChunkStore::builder()
        .chunk_size(CHUNK)
        .shards(shards)
        .replication(REPLICATION)
        .telemetry(engine.telemetry(), 1)
        .build();
    let bg = Buggify::armed(SEED, Preset::Moderate);
    bg.force(points::STORE_SHARD_FAIL, SHARD_FAIL_PROB);
    client.attach_buggify(&bg);
    client.spawn_repair_workers(&mut engine, REPAIR_PERIOD);

    // Per-experiment image buffers + capture caches. Distinct first bytes
    // keep the experiments' chunks from dedup'ing against each other.
    let mut images: Vec<Vec<u8>> = (0..wl.experiments)
        .map(|e| {
            let mut rng = Rng(SEED ^ (e as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            (0..wl.chunks * CHUNK).map(|_| rng.next() as u8).collect()
        })
        .collect();
    let mut caches: Vec<CaptureCache> = (0..wl.experiments).map(|_| CaptureCache::default()).collect();
    let mut dirt = Rng(SEED.wrapping_mul(0xd134_2543_de82_ef95) | 1);

    let mut fp = Fingerprint::new();
    let mut commit_us: Vec<f64> = Vec::new();
    let mut prev_ids: Vec<Option<ckptstore::ImageId>> = vec![None; wl.experiments];
    let mut bytes = 0u64;
    let mut puts = 0u64;
    let mut replica_acks = 0u64;
    let mut makespan_ns = 0u64;

    for _epoch in 0..wl.epochs {
        let submit = engine.now();
        let mut epoch_commit = submit;
        for e in 0..wl.experiments {
            // Dirty ~25% of the chunks with fresh bytes.
            for _ in 0..wl.dirty {
                let c = (dirt.next() as usize) % wl.chunks;
                let fill = dirt.next();
                for (i, b) in images[e][c * CHUNK..(c + 1) * CHUNK].iter_mut().enumerate() {
                    *b = (fill as u8).wrapping_add(i as u8);
                }
            }
            let image = std::mem::take(&mut images[e]);
            let timed = client.put_image_at(&image, Some(&mut caches[e]), submit);
            images[e] = image;
            let r = timed.report;
            commit_us.push((timed.commit_at.as_nanos() - submit.as_nanos()) as f64 / 1e3);
            epoch_commit = epoch_commit.max(timed.commit_at);
            bytes += r.new_physical_bytes;
            puts += 1;
            replica_acks += r.replica_acks;
            fp.push_u64(r.image.0 as u64);
            fp.push_u64(r.new_physical_bytes);
            fp.push_u64(r.chunks_new);
            fp.push_u64(r.shards_touched as u64);
            fp.push_u64(r.replica_acks);
            fp.push_u64(r.repairs_enqueued);
            fp.push_u64(timed.commit_at.as_nanos());
            // Drop the previous epoch's image so refcounts stay bounded
            // and each epoch's residual is against one parent.
            if let Some(old) = prev_ids[e].replace(r.image) {
                client.remove_image(old).expect("previous epoch image");
            }
        }
        makespan_ns += epoch_commit.as_nanos() - submit.as_nanos();
        // Epoch barrier: run the engine past the last commit so the
        // shard workers pump the repair queue before the next epoch.
        engine.run_until(SimTime::from_nanos(epoch_commit.as_nanos()) + REPAIR_PERIOD * 4);
    }
    // Let the repair queue drain fully before reading the final stats.
    engine.run_for(REPAIR_PERIOD * 16);

    let rs = client.repair_stats();
    fp.push_u64(rs.enqueued);
    fp.push_u64(rs.processed);
    fp.push_u64(rs.healed_copies);
    fp.push_u64(rs.added_copies);
    fp.push_u64(rs.quorum_retries);
    for t in client.pending_repairs() {
        fp.push(&t.hash.0.to_le_bytes());
        fp.push(&[t.copy]);
    }
    fp.push_u64(client.physical_bytes());
    fp.push_u64(client.replica_bytes());

    let mb_per_sec = bytes as f64 / 1e6 / (makespan_ns as f64 / 1e9);
    SweepResult {
        shards,
        puts,
        bytes,
        makespan_ns,
        mb_per_sec,
        p50_commit_us: stats::percentile(&commit_us, 0.50),
        p99_commit_us: stats::percentile(&commit_us, 0.99),
        replica_acks,
        quorum_retries: rs.quorum_retries,
        repairs_enqueued: rs.enqueued,
        repairs_done: rs.processed,
        repair_backlog_end: client.repair_backlog() as u64,
        fingerprint: fp.0,
    }
}

// ---------------------------------------------------------------------------
// JSON schema + entry assembly.
// ---------------------------------------------------------------------------

fn num(n: f64) -> Json {
    Json::Num(n)
}

fn sweep_json(r: &SweepResult) -> Json {
    Json::Obj(vec![
        ("shards".into(), num(r.shards as f64)),
        ("puts".into(), num(r.puts as f64)),
        ("bytes".into(), num(r.bytes as f64)),
        ("makespan_ns".into(), num(r.makespan_ns as f64)),
        ("mb_per_sec".into(), num((r.mb_per_sec * 10.0).round() / 10.0)),
        ("p50_commit_us".into(), num((r.p50_commit_us * 10.0).round() / 10.0)),
        ("p99_commit_us".into(), num((r.p99_commit_us * 10.0).round() / 10.0)),
        ("replica_acks".into(), num(r.replica_acks as f64)),
        ("quorum_retries".into(), num(r.quorum_retries as f64)),
        ("repairs_enqueued".into(), num(r.repairs_enqueued as f64)),
        ("repairs_done".into(), num(r.repairs_done as f64)),
        ("repair_backlog_end".into(), num(r.repair_backlog_end as f64)),
        ("fingerprint".into(), Json::Str(format!("{:016x}", r.fingerprint))),
    ])
}

/// Required fields per sweep row — the schema `--check` enforces.
const SWEEP_FIELDS: [&str; 12] = [
    "shards",
    "puts",
    "bytes",
    "makespan_ns",
    "mb_per_sec",
    "p50_commit_us",
    "p99_commit_us",
    "replica_acks",
    "quorum_retries",
    "repairs_enqueued",
    "repairs_done",
    "repair_backlog_end",
];

fn check_schema(doc: &Json) -> Result<usize, String> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        _ => return Err(format!("top-level 'schema' must be \"{SCHEMA}\"")),
    }
    let entries = match doc.get("entries") {
        Some(Json::Arr(items)) => items,
        _ => return Err("top-level 'entries' must be an array".into()),
    };
    if entries.is_empty() {
        return Err("'entries' must not be empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let fail = |msg: String| format!("entry {i}: {msg}");
        match entry.get("label") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(fail("missing non-empty 'label'".into())),
        }
        let speedup = entry
            .get("speedup_4_shards")
            .and_then(Json::as_num)
            .ok_or_else(|| fail("missing numeric 'speedup_4_shards'".into()))?;
        if speedup < 2.0 {
            return Err(fail(format!(
                "speedup_4_shards {speedup} below the 2.0 floor (DESIGN.md §10)"
            )));
        }
        let sweep = match entry.get("sweep") {
            Some(Json::Arr(rows)) if !rows.is_empty() => rows,
            _ => return Err(fail("'sweep' must be a non-empty array".into())),
        };
        for (j, row) in sweep.iter().enumerate() {
            for f in SWEEP_FIELDS {
                row.get(f)
                    .and_then(Json::as_num)
                    .ok_or_else(|| fail(format!("sweep row {j} missing numeric '{f}'")))?;
            }
            match row.get("fingerprint") {
                Some(Json::Str(s)) if s.len() == 16 => {}
                _ => return Err(fail(format!("sweep row {j} missing 16-hex 'fingerprint'"))),
            }
        }
    }
    Ok(entries.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string());

    if check {
        let text =
            std::fs::read_to_string(OUT_PATH).unwrap_or_else(|e| panic!("read {OUT_PATH}: {e}"));
        let doc = parse_json(&text).unwrap_or_else(|e| panic!("{e}"));
        match check_schema(&doc) {
            Ok(n) => println!("BENCH_store.json: schema ok, {n} entries"),
            Err(e) => panic!("BENCH_store.json schema violation: {e}"),
        }
        if !smoke {
            return;
        }
    }

    banner("BENCH-STORE", "sharded store service: MB/s + commit latency vs shard count");

    // Smoke keeps CI fast; the full sweep gives the committed numbers.
    let (shard_counts, wl): (&[usize], Workload) = if smoke {
        (&[1, 4], Workload { experiments: 2, epochs: 2, chunks: 64, dirty: 16 })
    } else {
        (&[1, 2, 4, 8], Workload { experiments: 6, epochs: 8, chunks: 256, dirty: 64 })
    };
    println!(
        "  workload: {} experiments x {} epochs, {} chunks/image ({} dirty/epoch), replication {}",
        wl.experiments, wl.epochs, wl.chunks, wl.dirty, REPLICATION
    );
    println!("  faults:   {} forced to {:.0}%\n", points::STORE_SHARD_FAIL, SHARD_FAIL_PROB * 100.0);

    let mut rows = Vec::new();
    for &shards in shard_counts {
        let r = run_sweep(shards, &wl);
        // Same seed, same config: the entire observable history must be
        // byte-identical on a second run.
        let r2 = run_sweep(shards, &wl);
        assert_eq!(
            r.fingerprint, r2.fingerprint,
            "shard sweep at {shards} shards is not deterministic"
        );
        println!(
            "  {:>2} shard(s): {:>8.1} MB/s  p50 {:>9.1} us  p99 {:>9.1} us  \
             retries {:>3}  repairs {:>3}/{:<3}  fp {:016x}",
            r.shards,
            r.mb_per_sec,
            r.p50_commit_us,
            r.p99_commit_us,
            r.quorum_retries,
            r.repairs_done,
            r.repairs_enqueued,
            r.fingerprint
        );
        assert!(r.puts == (wl.experiments * wl.epochs) as u64, "every put must commit");
        assert!(
            r.repairs_enqueued > 0,
            "forced shard failures must exercise the repair queue"
        );
        rows.push(r);
    }

    let base = rows.iter().find(|r| r.shards == 1).expect("1-shard baseline");
    let four = rows.iter().find(|r| r.shards == 4).expect("4-shard row");
    let speedup = four.mb_per_sec / base.mb_per_sec;
    println!("\n  4-shard speedup over 1 shard: {speedup:.2}x (floor: 2.0x, smoke floor: 1.5x)");
    let floor = if smoke { 1.5 } else { 2.0 };
    assert!(
        speedup >= floor,
        "4-shard aggregate MB/s must be >= {floor}x the 1-shard baseline, got {speedup:.2}x"
    );

    if smoke {
        println!("\n  smoke mode: paths exercised, JSON not written");
        return;
    }

    let entry = Json::Obj(vec![
        ("label".into(), Json::Str(label.clone())),
        ("smoke".into(), Json::Bool(false)),
        ("seed".into(), num(SEED as f64)),
        ("replication".into(), num(REPLICATION as f64)),
        ("shard_fail_prob".into(), num(SHARD_FAIL_PROB)),
        ("speedup_4_shards".into(), num((speedup * 100.0).round() / 100.0)),
        ("sweep".into(), Json::Arr(rows.iter().map(sweep_json).collect())),
    ]);

    let mut doc = match std::fs::read_to_string(OUT_PATH) {
        Ok(text) => parse_json(&text).unwrap_or_else(|e| panic!("existing {OUT_PATH} invalid: {e}")),
        Err(_) => Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("entries".into(), Json::Arr(Vec::new())),
        ]),
    };
    if let Json::Obj(fields) = &mut doc {
        if let Some((_, Json::Arr(entries))) = fields.iter_mut().find(|(k, _)| k == "entries") {
            entries.push(entry);
        } else {
            panic!("existing {OUT_PATH} has no 'entries' array");
        }
    } else {
        panic!("existing {OUT_PATH} is not an object");
    }
    check_schema(&doc).expect("generated entry must satisfy the schema");
    std::fs::write(OUT_PATH, doc.to_string_pretty()).expect("write BENCH_store.json");
    println!("  appended entry '{label}' to BENCH_store.json");
}
