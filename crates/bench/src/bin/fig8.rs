//! FIG8 — Bonnie++ on the copy-on-write storage configurations
//! (paper Fig 8).
//!
//! The same 512 MB Bonnie phases (twice the guest's memory, defeating the
//! page cache) against three storage configurations:
//!
//! - **Base**: a raw disk partition;
//! - **Branch-Orig**: original LVM-snapshot behaviour with
//!   read-before-write on every first chunk touch;
//! - **Branch**: the paper's redo-log branching store.
//!
//! Each write phase runs against a *freshly sealed branch* (the previous
//! delta merged into the aggregate), matching the paper's setup where
//! Bonnie exercises a new snapshot branch — otherwise the first phase
//! would absorb every COW cost and the modes would look identical.
//!
//! Shape checks: Branch block writes within ~17% of Base on a fresh disk
//! (→ ~2% aged); Branch-Orig block writes ~74% below Branch; character
//! phases CPU-bound and mode-independent.

use cowstore::CowMode;
use guestos::prog::FileId;
use sim::{SimDuration, SimTime};
use tcd_bench::{banner, row, single_host, write_csv};
use vmm::VmHost;
use workloads::{Bonnie, BonniePhase, FileWriter, PhaseResult};

const FILE_BYTES: u64 = 512 << 20;

/// Runs one phase on a fresh rig: prep the file (untimed) unless the phase
/// itself creates it, seal the branch, then measure.
fn run_phase(seed: u64, mode: CowMode, aged: bool, phase: BonniePhase) -> PhaseResult {
    let (mut e, host) = single_host(seed, mode, aged);
    e.run_until(SimTime::ZERO + SimDuration::from_secs(2));

    if phase != BonniePhase::CharWrite {
        // Prep: build the file, then seal so the measured phase pays the
        // branch's COW costs itself.
        let prep = e.with_component::<VmHost, _>(host, |h, _| {
            h.kernel_mut()
                .spawn(Box::new(FileWriter::new(FileId(7), FILE_BYTES)))
        });
        for _ in 0..40 {
            e.run_for(SimDuration::from_secs(15));
            let done = e
                .component_ref::<VmHost>(host)
                .unwrap()
                .kernel()
                .prog(prep)
                .unwrap()
                .as_any()
                .downcast_ref::<FileWriter>()
                .unwrap()
                .finished;
            if done {
                break;
            }
        }
        e.with_component::<VmHost, _>(host, |h, ctx| {
            let now = ctx.now();
            let _ = h.store_mut().seal_branch(now);
        });
    }

    let tid = e.with_component::<VmHost, _>(host, |h, _| {
        h.kernel_mut()
            .spawn(Box::new(Bonnie::new(FileId(7), FILE_BYTES).with_phases(&[phase])))
    });
    for _ in 0..60 {
        e.run_for(SimDuration::from_secs(15));
        let done = e
            .component_ref::<VmHost>(host)
            .unwrap()
            .kernel()
            .prog(tid)
            .unwrap()
            .as_any()
            .downcast_ref::<Bonnie>()
            .unwrap()
            .done();
        if done {
            break;
        }
    }
    e.component_ref::<VmHost>(host)
        .unwrap()
        .kernel()
        .prog(tid)
        .unwrap()
        .as_any()
        .downcast_ref::<Bonnie>()
        .unwrap()
        .results[0]
}

fn main() {
    banner("FIG8", "Bonnie++ (512 MB) on Base / Branch-Orig / Branch storage");
    let configs: [(&str, CowMode, bool); 4] = [
        ("Base", CowMode::Base, false),
        ("Branch-Orig", CowMode::BranchOrig { chunk_blocks: 128 }, false),
        ("Branch", CowMode::Branch, false),
        ("Branch-aged", CowMode::Branch, true),
    ];
    let mut table: Vec<(&str, Vec<PhaseResult>)> = Vec::new();
    let mut csv = String::from("config,phase,throughput_MBps\n");
    for (name, mode, aged) in configs {
        eprintln!("[fig8] running {name}...");
        let mut results = Vec::new();
        for phase in BonniePhase::ALL {
            let r = run_phase(8001, mode, aged, phase);
            csv.push_str(&format!("{},{},{:.2}\n", name, r.phase.label(), r.mb_per_sec()));
            results.push(r);
        }
        table.push((name, results));
    }
    let path = write_csv("fig8_bonnie.csv", &csv);

    let mbs = |cfg: usize, phase: BonniePhase| -> f64 {
        table[cfg]
            .1
            .iter()
            .find(|r| r.phase == phase)
            .map(|r| r.mb_per_sec())
            .unwrap_or(0.0)
    };

    println!(
        "\n  {:<18} {:>10} {:>13} {:>10} {:>12}",
        "phase", "Base", "Branch-Orig", "Branch", "Branch-aged"
    );
    for phase in BonniePhase::ALL {
        println!(
            "  {:<18} {:>10.1} {:>13.1} {:>10.1} {:>12.1}",
            phase.label(),
            mbs(0, phase),
            mbs(1, phase),
            mbs(2, phase),
            mbs(3, phase),
        );
    }
    println!();

    let base_w = mbs(0, BonniePhase::BlockWrite);
    let orig_w = mbs(1, BonniePhase::BlockWrite);
    let branch_w = mbs(2, BonniePhase::BlockWrite);
    let aged_w = mbs(3, BonniePhase::BlockWrite);

    row(
        "Branch block-write overhead vs Base (fresh)",
        "~17%",
        &format!("{:.0}%", (1.0 - branch_w / base_w) * 100.0),
    );
    row(
        "Branch block-write overhead vs Base (aged)",
        "~2%",
        &format!("{:.0}%", (1.0 - aged_w / base_w) * 100.0),
    );
    row(
        "Branch-Orig block writes vs Branch",
        "74% slower",
        &format!("{:.0}% slower", (1.0 - orig_w / branch_w) * 100.0),
    );
    let base_cw = mbs(0, BonniePhase::CharWrite);
    let branch_cw = mbs(2, BonniePhase::CharWrite);
    row(
        "character phases across configs",
        "similar (CPU-bound)",
        &format!("{:.0}% apart", ((base_cw - branch_cw) / base_cw * 100.0).abs()),
    );
    println!("  table: {}", path.display());
}
