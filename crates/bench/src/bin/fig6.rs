//! FIG6 — iperf running on a 1 Gbps network under periodic checkpoints
//! (paper Fig 6).
//!
//! Two nodes over a shaped gigabit link (delay node interposed); a TCP
//! stream checkpointed every 5 seconds for 25 seconds. Regenerates the
//! 20 ms-binned throughput series, reports the inter-packet arrival gaps
//! spanning each checkpoint (the paper's 5801/816/399/330 µs sequence,
//! shrinking as NTP converges), and verifies the transparency claim: no
//! retransmissions, duplicate ACKs, or window changes.

use emulab::{ExperimentSpec, Testbed};
use sim::trace::Series;
use sim::{SimDuration, SimTime};
use tcd_bench::{banner, row, write_csv};
use vmm::VmHost;
use workloads::{IperfReceiver, IperfSender};

fn main() {
    banner("FIG6", "iperf on 1 Gbps under 5 s periodic checkpoints");
    let mut tb = Testbed::new(6001, 8);
    let spec = ExperimentSpec::new("fig6")
        .node("a")
        .node("b")
        .link("a", "b", 1_000_000_000, SimDuration::from_micros(100), 0.0);
    tb.swap_in(spec).unwrap();
    // Minimal settle: the paper's decreasing first-checkpoint gaps come
    // from NTP still converging when the run starts, so start early.
    tb.run_for(SimDuration::from_secs(2));

    let b_addr = tb.node_addr("fig6", "b");
    tb.with_host("fig6", "b", |h| h.kernel_mut().trace.enable());
    tb.spawn("fig6", "b", Box::new(IperfReceiver::new(5001)));
    tb.spawn("fig6", "a", Box::new(IperfSender::new(b_addr, 5001)));
    tb.run_for(SimDuration::from_secs(1));

    let t_start = tb.now();
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    tb.run_for(SimDuration::from_secs(25));
    tb.stop_periodic_checkpoints();

    // Throughput series from the receiver's packet trace (guest time).
    let host = tb.host_id("fig6", "b");
    let h = tb.engine.component_ref::<VmHost>(host).unwrap();
    let records = h.kernel().trace.records().to_vec();
    let mut series = Series::new();
    let mut t0 = None;
    for r in &records {
        if r.len > 0 && matches!(r.dir, guestos::PacketDir::Rx) {
            let t = SimTime::from_nanos(r.t_guest_ns);
            if t0.is_none() {
                t0 = Some(t);
            }
            series.push(t, r.len as f64);
        }
    }
    let t0 = t0.expect("traffic flowed");
    let t_end = SimTime::from_nanos(records.last().unwrap().t_guest_ns);
    let bins = series.binned_rate(t0, t_end, SimDuration::from_millis(20));
    let mut csv = String::from("time_s,throughput_MBps\n");
    for &(t, rate) in &bins {
        csv.push_str(&format!("{:.3},{:.3}\n", t, rate / 1e6));
    }
    let path = write_csv("fig6_iperf.csv", &csv);

    // Gap analysis.
    let gaps = h.kernel().trace.rx_data_gaps_ns();
    let mean_gap_us =
        gaps.iter().map(|&g| g as f64).sum::<f64>() / gaps.len() as f64 / 1000.0;
    let mut big: Vec<u64> = gaps.iter().copied().filter(|&g| g > 150_000).collect();
    big.sort_unstable_by(|a, b| b.cmp(a));
    let ckpt_gaps: Vec<String> = big.iter().take(5).map(|g| format!("{}", g / 1000)).collect();

    // Per-checkpoint suspend skew between the two nodes: bounded by the
    // clock-sync error, shrinking as NTP converges (the mechanism behind
    // the paper's decreasing checkpoint-gap sequence).
    let fr_a = {
        let host_a = tb.host_id("fig6", "a");
        tb.engine
            .component_ref::<VmHost>(host_a)
            .unwrap()
            .stats
            .freeze_history
            .clone()
    };
    let fr_b = h.stats.freeze_history.clone();
    let skews_us: Vec<String> = fr_a
        .iter()
        .zip(fr_b.iter())
        .map(|(&ta, &tb_)| {
            let d = ta.as_nanos().abs_diff(tb_.as_nanos());
            format!("{}", d / 1000)
        })
        .collect();

    let totals_a = tb.kernel("fig6", "a", |k| k.net_totals());
    let totals_b = tb.kernel("fig6", "b", |k| k.net_totals());
    let avg_mbps = totals_b.bytes_delivered as f64
        / 1e6
        / (tb.now() - t_start).as_secs_f64();

    println!("  checkpoints: 5 over 25 s");
    row("mean throughput", "~55 MB/s", &format!("{avg_mbps:.1} MB/s"));
    row("mean inter-packet gap", "18 µs", &format!("{mean_gap_us:.1} µs"));
    row(
        "checkpoint gaps (µs)",
        "5801/816/399/330",
        &ckpt_gaps.join("/"),
    );
    row(
        "suspend skew per checkpoint (µs)",
        "≤ clock-sync error",
        &skews_us.join("/"),
    );
    row("retransmissions", "0", &totals_a.retransmissions.to_string());
    row("duplicate ACKs", "0", &totals_a.dup_acks.to_string());
    row(
        "window shrinks (receive-buffer pressure)",
        "0",
        &(totals_a.window_shrinks + totals_b.window_shrinks).to_string(),
    );
    println!("  series: {}", path.display());
    assert_eq!(totals_a.retransmissions, 0, "transparency violated");
    assert_eq!(totals_a.timeouts, 0, "transparency violated");
}
