//! TAB-FAULTS — control-plane fault sweep (ours; §4.3's failure detector
//! exercised).
//!
//! The paper's coordinator "implements a simple failure detection
//! protocol" over the checkpoint bus; this experiment measures how the
//! two-phase epoch protocol behaves when the control plane actually
//! misbehaves. It sweeps notification loss rate × a straggler node's
//! done-report stall (plus a control-interface crash), and reports per
//! cell how epochs terminated (committed / aborted / degraded), how hard
//! the failure detector worked (retries), and whether the system under
//! test noticed (guest TCP anomalies).
//!
//! Invariants asserted here:
//!
//! - every epoch terminates — no fault combination wedges the protocol;
//! - runs whose epochs all committed are transparent: zero
//!   retransmissions, duplicate ACKs, or window changes in the guest;
//! - a stall longer than the epoch deadline aborts (rollback), a crashed
//!   node degrades (excluded commit), and plain loss is absorbed by
//!   retries.

use checkpoint::{Coordinator, FailurePolicy};
use sim::{FaultPlan, SimDuration, SimTime};
use tcd_bench::lab::{build_lab, LabConfig, LabOutcome};
use tcd_bench::{banner, write_csv};

/// One sweep cell: loss rate, straggler stall, optional control crash.
struct Cell {
    loss: f64,
    stall: Option<SimDuration>,
    crash: bool,
}

fn run(cell: &Cell) -> LabOutcome {
    let mut plan = FaultPlan::new(7_001).with_loss(cell.loss);
    if cell.crash {
        // Host B's control interface dies mid-sweep (key = NodeAddr.0).
        plan = plan.with_crash(2, SimTime::from_nanos(32_000_000_000));
    }
    let policy = FailurePolicy {
        // Resume and abort publications are repeated so a lossy LAN
        // cannot strand a suspended node on a single dropped frame.
        resume_repeats: 2,
        ..FailurePolicy::default()
    };
    let mut lab = build_lab(LabConfig {
        seed: 13_001,
        faults: Some(plan),
        straggler_stall: cell.stall,
        policy: Some(policy),
        ..LabConfig::default()
    });
    lab.engine.run_for(SimDuration::from_secs(20));
    lab.start_iperf();
    lab.engine.run_for(SimDuration::from_secs(2));
    let coord = lab.coordinator;
    lab.engine
        .with_component::<Coordinator, _>(coord, |c, ctx| {
            c.start_periodic(ctx, SimDuration::from_secs(5))
        });
    lab.engine.run_for(SimDuration::from_secs(25));
    // Drain: stop triggering and give in-flight epochs time to reach a
    // terminal outcome (the deadline bounds this).
    lab.engine
        .with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    lab.engine.run_for(SimDuration::from_secs(4));
    lab.outcome(31.0)
}

fn main() {
    banner(
        "TAB-FAULTS",
        "epoch outcomes under control-plane faults (loss × straggler stall, plus a crash)",
    );

    let stalls: [(Option<SimDuration>, &str); 3] = [
        (None, "0"),
        (Some(SimDuration::from_millis(50)), "50"),
        (Some(SimDuration::from_secs(3)), "3000"),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for &loss in &[0.0, 0.05, 0.10, 0.20] {
        for &(stall, _) in &stalls {
            cells.push(Cell { loss, stall, crash: false });
        }
    }
    cells.push(Cell { loss: 0.0, stall: None, crash: true });

    let mut csv = String::from(
        "loss,stall_ms,crash,committed,aborted,degraded,retries,retx,dup_acks,window_shrinks,p50_notify_to_acks_us,p99_notify_to_acks_us,p50_barrier_hold_us,p99_barrier_hold_us,throughput_MBps\n",
    );
    println!(
        "  {:>5} {:>8} {:>5} {:>9} {:>7} {:>8} {:>7} {:>5} {:>8} {:>7} {:>9} {:>9} {:>9} {:>7}",
        "loss",
        "stall ms",
        "crash",
        "committed",
        "aborted",
        "degraded",
        "retries",
        "retx",
        "dup-acks",
        "shrinks",
        "acks p50",
        "acks p99",
        "hold p99",
        "MB/s"
    );
    for cell in &cells {
        let stall_ms = cell.stall.map(|s| s.as_nanos() / 1_000_000).unwrap_or(0);
        eprintln!(
            "[tab_faults] loss {:.2}, stall {} ms, crash {}...",
            cell.loss, stall_ms, cell.crash
        );
        let o = run(cell);
        println!(
            "  {:>5.2} {:>8} {:>5} {:>9} {:>7} {:>8} {:>7} {:>5} {:>8} {:>7} {:>9} {:>9} {:>9} {:>7.1}",
            cell.loss,
            stall_ms,
            cell.crash,
            o.committed,
            o.aborted,
            o.degraded,
            o.retries,
            o.retransmissions,
            o.dup_acks,
            o.window_shrinks,
            o.p50_notify_to_acks_us,
            o.p99_notify_to_acks_us,
            o.p99_barrier_hold_us,
            o.throughput_mbps
        );
        csv.push_str(&format!(
            "{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.1}\n",
            cell.loss,
            stall_ms,
            cell.crash,
            o.committed,
            o.aborted,
            o.degraded,
            o.retries,
            o.retransmissions,
            o.dup_acks,
            o.window_shrinks,
            o.p50_notify_to_acks_us,
            o.p99_notify_to_acks_us,
            o.p50_barrier_hold_us,
            o.p99_barrier_hold_us,
            o.throughput_mbps
        ));

        // Liveness: no fault combination may wedge an epoch.
        assert_eq!(
            o.unresolved, 0,
            "epoch wedged at loss {:.2} stall {stall_ms} ms crash {}",
            cell.loss, cell.crash
        );
        assert!(o.committed + o.aborted + o.degraded > 0, "no epochs ran");
        // Transparency: a run whose epochs all committed must leave the
        // guest TCP stream untouched.
        if o.aborted == 0 && o.degraded == 0 {
            assert_eq!(
                o.retransmissions + o.timeouts + o.dup_acks + o.window_shrinks,
                0,
                "committed epochs disturbed the guest at loss {:.2} stall {stall_ms} ms",
                cell.loss
            );
        }
        // Shape of the outcome space.
        if cell.crash {
            assert!(o.degraded >= 1, "crash did not degrade any epoch");
        }
        if stall_ms >= 3000 {
            assert!(o.aborted >= 1, "over-deadline straggler did not abort");
        }
        if cell.loss >= 0.05 && !cell.crash {
            assert!(o.retries >= 1, "loss {:.2} never triggered a retry", cell.loss);
        }
    }

    let path = write_csv("tab_faults.csv", &csv);
    println!("\n  every epoch terminates; all-committed rows show zero TCP anomalies");
    println!("  table: {}", path.display());
}
