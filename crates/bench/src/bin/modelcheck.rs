//! MODELCHECK — exhaustive small-scope model check of the epoch
//! protocol with coordinator crash/recovery.
//!
//! Enumerates, breadth-first with visited-state dedup, every
//! interleaving of notify / ack / capture / done / deadline /
//! coordinator-crash / recovery / watchdog actions for a small
//! checkpoint group (`checkpoint::modelcheck`), checking each emitted
//! event sequence against the shadow epoch model and each quiescent
//! state for liveness (round decided, no node left suspended). The
//! result is a proof-by-enumeration over the scoped model, not the full
//! simulator — the explorer covers the timed/randomized side.
//!
//! Usage:
//!
//! ```text
//! modelcheck [--nodes=N] [--max-crashes=K] [--depth-bound=D]
//!            [--sabotage] [--selftest] [--csv]
//! ```
//!
//! - default: 2 nodes, 1 crash, exhaustive (no depth bound);
//! - `--sabotage`: plant a recovery bug (roll forward on acks alone)
//!   that the checker must catch — exits nonzero if it does NOT;
//! - `--selftest`: run the default scope clean AND the sabotaged scope,
//!   demanding a counterexample from the latter (CI self-proof);
//! - `--csv`: append a `results/modelcheck.csv` row per scope checked.
//!
//! Exit status is nonzero on any counterexample (sabotage inverts).

use std::process::ExitCode;

use checkpoint::modelcheck::{check, ModelConfig, ModelReport};
use tcd_bench::{banner, out_dir};

struct Args {
    nodes: u8,
    max_crashes: u8,
    depth_bound: Option<u32>,
    sabotage: bool,
    selftest: bool,
    csv: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 2,
        max_crashes: 1,
        depth_bound: None,
        sabotage: false,
        selftest: false,
        csv: false,
    };
    for arg in std::env::args().skip(1) {
        let (key, val) = match arg.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (arg.as_str(), None),
        };
        let num = |v: Option<&str>| -> Result<u64, String> {
            v.ok_or_else(|| format!("{key} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{key}: {e}"))
        };
        match key {
            "--nodes" => args.nodes = num(val)? as u8,
            "--max-crashes" => args.max_crashes = num(val)? as u8,
            "--depth-bound" => args.depth_bound = Some(num(val)? as u32),
            "--sabotage" => args.sabotage = true,
            "--selftest" => args.selftest = true,
            "--csv" => args.csv = true,
            _ => return Err(format!("unknown flag {key}")),
        }
    }
    Ok(args)
}

fn report_scope(cfg: &ModelConfig, report: &ModelReport) {
    println!(
        "scope: {} nodes, {} coordinator crash(es){}{}",
        cfg.nodes,
        cfg.max_crashes,
        cfg.depth_bound
            .map_or(String::new(), |d| format!(", depth bound {d}")),
        if cfg.sabotage { ", SABOTAGED recovery" } else { "" },
    );
    println!(
        "  {} states explored, {} transitions, {} quiescent states, \
         max depth {}, {} truncated",
        report.states_explored,
        report.transitions,
        report.deadlocks,
        report.max_depth_seen,
        report.truncated
    );
    match &report.counterexample {
        None => println!("  no counterexample: every interleaving satisfies the epoch invariants"),
        Some(cex) => {
            println!("  COUNTEREXAMPLE ({} actions):", cex.actions.len());
            for a in &cex.actions {
                println!("    - {a}");
            }
            for p in &cex.problems {
                println!("  violated: {p}");
            }
            println!("  shadow event trace:");
            for line in cex.events_csv.lines() {
                println!("    {line}");
            }
        }
    }
}

fn append_csv(cfg: &ModelConfig, report: &ModelReport) {
    let path = out_dir().join("modelcheck.csv");
    let header = "nodes,max_crashes,depth_bound,sabotage,states_explored,transitions,\
                  quiescent,max_depth,truncated,counterexamples\n";
    let mut text = std::fs::read_to_string(&path).unwrap_or_default();
    if !text.starts_with(header.trim_end()) {
        text = header.to_string();
    }
    text.push_str(&format!(
        "{},{},{},{},{},{},{},{},{},{}\n",
        cfg.nodes,
        cfg.max_crashes,
        cfg.depth_bound.map_or("none".to_string(), |d| d.to_string()),
        cfg.sabotage,
        report.states_explored,
        report.transitions,
        report.deadlocks,
        report.max_depth_seen,
        report.truncated,
        u64::from(report.counterexample.is_some()),
    ));
    std::fs::write(&path, text).expect("write results/modelcheck.csv");
    println!("  csv: {}", path.display());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("modelcheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !(1..=4).contains(&args.nodes) {
        eprintln!("modelcheck: --nodes must be 1..=4 (state space is exponential)");
        return ExitCode::FAILURE;
    }
    banner(
        "MODELCHECK",
        "exhaustive small-scope check of the crash-recoverable epoch protocol",
    );

    if args.selftest {
        // Clean scope must verify; sabotaged scope must produce a
        // counterexample — proving the checker can actually fail.
        let clean = ModelConfig {
            nodes: args.nodes,
            max_crashes: args.max_crashes,
            depth_bound: args.depth_bound,
            sabotage: false,
        };
        let clean_report = check(&clean);
        report_scope(&clean, &clean_report);
        if args.csv {
            append_csv(&clean, &clean_report);
        }
        let sab = ModelConfig { sabotage: true, ..clean };
        let sab_report = check(&sab);
        report_scope(&sab, &sab_report);
        if clean_report.counterexample.is_some() {
            println!("FAIL: clean scope produced a counterexample");
            return ExitCode::FAILURE;
        }
        if sab_report.counterexample.is_none() {
            println!("FAIL: sabotaged recovery went undetected — checker is blind");
            return ExitCode::FAILURE;
        }
        println!("selftest OK: clean scope verified, planted bug caught");
        return ExitCode::SUCCESS;
    }

    let cfg = ModelConfig {
        nodes: args.nodes,
        max_crashes: args.max_crashes,
        depth_bound: args.depth_bound,
        sabotage: args.sabotage,
    };
    let report = check(&cfg);
    report_scope(&cfg, &report);
    if args.csv {
        append_csv(&cfg, &report);
    }
    let found = report.counterexample.is_some();
    if args.sabotage {
        if found {
            println!("OK: planted recovery bug caught");
            ExitCode::SUCCESS
        } else {
            println!("FAIL: planted recovery bug went undetected");
            ExitCode::FAILURE
        }
    } else if found {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
