//! TAB-SWAP — §7.2's stateful-swapping timings (in-text table).
//!
//! A single-node experiment swapped in and out four times consecutively,
//! generating 275 MB of disk data per swapped-in session. Paper numbers:
//!
//! - initial swap-in ≈ 8 s with the base image cached, +60 s to download
//!   it when not;
//! - swap-out ≈ 60 s, constant across cycles;
//! - subsequent swap-ins ≈ 35 s constant with lazy copy-in, growing past
//!   150 s by the fourth cycle without it;
//! - a disk-intensive workload during swap-out adds ~20%.

use emulab::{ExperimentSpec, Testbed};
use guestos::prog::FileId;
use sim::SimDuration;
use tcd_bench::{banner, row, write_csv};
use workloads::FileWriter;

/// One swapped-in session: write 275 MB of fresh data, sync, idle.
fn session(tb: &mut Testbed, cycle: u64) {
    tb.spawn(
        "swap",
        "n",
        Box::new(FileWriter::new(FileId(100 + cycle), 275 << 20)),
    );
    // Enough time for the writes to land and settle.
    tb.run_for(SimDuration::from_secs(120));
}

fn run_cycles(lazy: bool, disk_load_during_swapout: bool) -> (Vec<f64>, Vec<f64>, f64) {
    let mut tb = Testbed::new(10_001, 4);
    tb.swap_in(ExperimentSpec::new("swap").node("n")).unwrap();
    let mut swap_ins = Vec::new();
    let mut swap_outs = Vec::new();
    let mut initial_in = 0.0;
    for cycle in 0..4u64 {
        session(&mut tb, cycle);
        if disk_load_during_swapout {
            // A bounded disk-intensive load straight through the swap-out:
            // rewrites the same 64 MB file, so pre-copied blocks keep
            // getting dirtied and re-sent (the paper's +20% mechanism).
            tb.spawn(
                "swap",
                "n",
                Box::new(FileWriter::new(FileId(900 + cycle), 64 << 20).looping()),
            );
            tb.run_for(SimDuration::from_secs(2));
        }
        let out = tb.swap_out_stateful("swap");
        swap_outs.push(out.total.as_secs_f64());
        tb.run_for(SimDuration::from_secs(30));
        if cycle < 3 {
            let rep = tb.swap_in_stateful("swap", lazy);
            swap_ins.push(rep.total.as_secs_f64());
        }
    }
    // Initial (stateless) swap-in cost on a machine with the image cached.
    let mut tb2 = Testbed::new(10_002, 4);
    let d1 = tb2.swap_in(ExperimentSpec::new("x").node("n")).unwrap();
    let _ = tb2.swap_out_stateful("x");
    initial_in += d1.as_secs_f64();
    (swap_ins, swap_outs, initial_in)
}

fn main() {
    banner("TAB-SWAP", "stateful swapping timings over four cycles (§7.2)");

    // Uncached vs cached initial swap-in.
    let mut tb = Testbed::new(10_000, 4);
    let uncached = tb
        .swap_in(ExperimentSpec::new("u").node("n"))
        .unwrap()
        .as_secs_f64();
    let _ = tb.swap_out_stateful("u");
    tb.run_for(SimDuration::from_secs(5));
    let cached = tb
        .swap_in(ExperimentSpec::new("v").node("n"))
        .unwrap()
        .as_secs_f64();
    row(
        "initial swap-in (image cached)",
        "~8 s",
        &format!("{cached:.1} s"),
    );
    row(
        "image download penalty (uncached)",
        "+60 s",
        &format!("+{:.1} s", uncached - cached),
    );

    eprintln!("[tab_swap] eager cycles...");
    let (eager_ins, eager_outs, _) = run_cycles(false, false);
    eprintln!("[tab_swap] lazy cycles...");
    let (lazy_ins, lazy_outs, _) = run_cycles(true, false);
    eprintln!("[tab_swap] disk-loaded swap-out...");
    let (_, loaded_outs, _) = run_cycles(true, true);

    let mut csv = String::from("cycle,eager_swap_in_s,lazy_swap_in_s,swap_out_s\n");
    for i in 0..3 {
        csv.push_str(&format!(
            "{},{:.1},{:.1},{:.1}\n",
            i + 2,
            eager_ins[i],
            lazy_ins[i],
            eager_outs[i]
        ));
    }
    let path = write_csv("tab_swap.csv", &csv);

    let fmt = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.0}"))
            .collect::<Vec<_>>()
            .join("/")
    };
    row(
        "swap-in per cycle, eager (grows)",
        ">150 s by 4th",
        &format!("{} s", fmt(&eager_ins)),
    );
    row(
        "swap-in per cycle, lazy (constant)",
        "~35 s",
        &format!("{} s", fmt(&lazy_ins)),
    );
    row(
        "swap-out per cycle (constant)",
        "~60 s",
        &format!("{} s", fmt(&eager_outs)),
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    row(
        "swap-out under disk-intensive load",
        "+20%",
        &format!(
            "{:+.0}% ({} s)",
            (mean(&loaded_outs) / mean(&lazy_outs) - 1.0) * 100.0,
            fmt(&loaded_outs)
        ),
    );
    println!("  table: {}", path.display());
}
