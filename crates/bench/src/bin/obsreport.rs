//! OBSREPORT — per-epoch critical-path attribution over the causal trace
//! (ours; the observability layer's committed artifact).
//!
//! TAB-TIMELINE pins the raw trace ring byte-for-byte; this report walks
//! the same ring through [`sim::telemetry::critpath`] and answers the
//! operator's question: *where did each epoch's wall time go?* Every
//! round's notify→close span is partitioned into four contiguous
//! segments (notify fan-out, capture wait, barrier hold, resume release)
//! that sum to the wall time exactly, plus informational attributions
//! (slowest capturing host, store quorum-commit lag for held rounds).
//!
//! The scenario is a same-seed two-node experiment: a periodic-checkpoint
//! window (non-held rounds: barrier_hold == 0) followed by one stateful
//! swap cycle (a held suspend round whose barrier-hold segment covers the
//! swap-out state transfer, with a `flow.store_commit` step from the
//! file-server put). The run executes twice; the CSV must be
//! byte-identical.
//!
//! Artifacts:
//! - `results/tab_critpath.csv` — one row per analyzed epoch round,
//!   committed and CI-diffed;
//! - `BENCH_obs.json` (repo root) — labeled aggregate entries
//!   (segment-share percentages, held-round counts, CSV fingerprint)
//!   against the `tcd-bench-obs-v1` schema.
//!
//! Modes:
//! - default: run, write CSV, append one labeled JSON entry;
//! - `--smoke`: run + assertions + CSV, no JSON write (CI);
//! - `--check`: validate the committed JSON against the schema and exit;
//! - `--label <name>`: label for the appended entry (default "current").

use checkpoint::Strategy;
use emulab::{ExperimentSpec, Testbed};
use sim::telemetry::critpath::{self, EpochPath};
use sim::SimDuration;
use std::fmt::Write as _;
use tcd_bench::json::{parse_json, Json};
use tcd_bench::{banner, write_csv};
use workloads::{IperfReceiver, IperfSender};

/// Repo-root JSON artifact (path anchored to the crate, not the CWD).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
const SCHEMA: &str = "tcd-bench-obs-v1";

const SEED: u64 = 15_001;

fn run_scenario() -> Vec<EpochPath> {
    let mut tb = Testbed::with_strategy(SEED, 8, Strategy::Transparent);
    tb.swap_in(
        ExperimentSpec::new("obs").node("a").node("b").link(
            "a",
            "b",
            1_000_000_000,
            SimDuration::from_micros(100),
            0.0,
        ),
    )
    .expect("swap-in");
    tb.run_for(SimDuration::from_secs(20));
    let b_addr = tb.node_addr("obs", "b");
    tb.spawn("obs", "b", Box::new(IperfReceiver::new(5001)));
    tb.spawn("obs", "a", Box::new(IperfSender::new(b_addr, 5001)));
    tb.run_for(SimDuration::from_secs(2));
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    tb.run_for(SimDuration::from_secs(16));
    tb.stop_periodic_checkpoints();
    tb.run_for(SimDuration::from_secs(2));
    // One stateful swap cycle: the suspend round is held while the state
    // image lands on the file server, so its path shows a non-zero
    // barrier_hold and a store-commit attribution.
    tb.swap_out_stateful("obs");
    let rep = tb.swap_in_stateful("obs", false);
    assert!(rep.warning.is_none(), "healthy swap cycle");
    tb.run_for(SimDuration::from_secs(2));

    critpath::analyze(&tb.telemetry().trace_events())
}

fn paths_csv(paths: &[EpochPath]) -> String {
    let mut csv = String::from(
        "group,epoch,begin_ns,end_ns,wall_ns,notify_fanout_ns,capture_wait_ns,\
         barrier_hold_ns,resume_release_ns,committed,participants,slowest_host,\
         slowest_capture_ns,store_commit_ns\n",
    );
    for p in paths {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.group,
            p.epoch,
            p.begin_ns,
            p.end_ns,
            p.wall_ns(),
            p.notify_fanout_ns,
            p.capture_wait_ns,
            p.barrier_hold_ns,
            p.resume_release_ns,
            p.committed,
            p.participants,
            p.slowest_host,
            p.slowest_capture_ns,
            p.store_commit_ns
        );
    }
    csv
}

/// FNV-1a 64 over the CSV bytes (same hash the other artifacts pin).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

/// Required numeric fields per entry — the schema `--check` enforces.
const ENTRY_FIELDS: [&str; 8] = [
    "seed",
    "rounds",
    "committed_rounds",
    "held_rounds",
    "notify_fanout_pct",
    "capture_wait_pct",
    "barrier_hold_pct",
    "resume_release_pct",
];

fn check_schema(doc: &Json) -> Result<usize, String> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        _ => return Err(format!("top-level 'schema' must be \"{SCHEMA}\"")),
    }
    let entries = match doc.get("entries") {
        Some(Json::Arr(items)) => items,
        _ => return Err("top-level 'entries' must be an array".into()),
    };
    if entries.is_empty() {
        return Err("'entries' must not be empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let fail = |msg: String| format!("entry {i}: {msg}");
        match entry.get("label") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(fail("missing non-empty 'label'".into())),
        }
        for f in ENTRY_FIELDS {
            entry
                .get(f)
                .and_then(Json::as_num)
                .ok_or_else(|| fail(format!("missing numeric '{f}'")))?;
        }
        let shares: f64 = [
            "notify_fanout_pct",
            "capture_wait_pct",
            "barrier_hold_pct",
            "resume_release_pct",
        ]
        .iter()
        .filter_map(|f| entry.get(f).and_then(Json::as_num))
        .sum();
        if !(99.0..=101.0).contains(&shares) {
            return Err(fail(format!(
                "segment shares must sum to ~100%, got {shares:.2}"
            )));
        }
        match entry.get("csv_fnv64") {
            Some(Json::Str(s)) if s.len() == 16 => {}
            _ => return Err(fail("missing 16-hex 'csv_fnv64'".into())),
        }
    }
    Ok(entries.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string());

    if check {
        let text =
            std::fs::read_to_string(OUT_PATH).unwrap_or_else(|e| panic!("read {OUT_PATH}: {e}"));
        let doc = parse_json(&text).unwrap_or_else(|e| panic!("{e}"));
        match check_schema(&doc) {
            Ok(n) => println!("BENCH_obs.json: schema ok, {n} entries"),
            Err(e) => panic!("BENCH_obs.json schema violation: {e}"),
        }
        return;
    }

    banner("OBSREPORT", "per-epoch critical-path attribution over the causal trace");
    eprintln!("[obsreport] run 1...");
    let paths = run_scenario();
    eprintln!("[obsreport] run 2 (same seed)...");
    let paths2 = run_scenario();
    let csv = paths_csv(&paths);
    assert_eq!(
        csv,
        paths_csv(&paths2),
        "same-seed critical-path CSVs must be byte-identical"
    );

    assert!(!paths.is_empty(), "scenario must produce analyzed rounds");
    let committed = paths.iter().filter(|p| p.committed).count();
    let held = paths.iter().filter(|p| p.barrier_hold_ns > 0).count();
    let wall: u64 = paths.iter().map(|p| p.wall_ns()).sum();
    let seg = |f: fn(&EpochPath) -> u64| -> f64 {
        let s: u64 = paths.iter().map(f).sum();
        (s as f64 / wall as f64 * 10_000.0).round() / 100.0
    };
    let notify_pct = seg(|p| p.notify_fanout_ns);
    let capture_pct = seg(|p| p.capture_wait_ns);
    let hold_pct = seg(|p| p.barrier_hold_ns);
    let resume_pct = seg(|p| p.resume_release_ns);

    println!(
        "  {:<5} {:>5} {:>12} {:>14} {:>14} {:>14} {:>14}  {:<9}",
        "group", "epoch", "wall_ms", "notify_us", "capture_ms", "hold_ms", "resume_us", "outcome"
    );
    for p in &paths {
        println!(
            "  {:<5} {:>5} {:>12.3} {:>14.1} {:>14.3} {:>14.3} {:>14.1}  {:<9}",
            p.group,
            p.epoch,
            p.wall_ns() as f64 / 1e6,
            p.notify_fanout_ns as f64 / 1e3,
            p.capture_wait_ns as f64 / 1e6,
            p.barrier_hold_ns as f64 / 1e6,
            p.resume_release_ns as f64 / 1e3,
            if p.committed { "committed" } else { "aborted" }
        );
    }
    println!(
        "\n  {} rounds ({committed} committed, {held} held); aggregate shares: \
         notify {notify_pct:.2}%, capture {capture_pct:.2}%, hold {hold_pct:.2}%, \
         resume {resume_pct:.2}%",
        paths.len()
    );

    for p in &paths {
        assert_eq!(
            p.segments_sum_ns(),
            p.wall_ns(),
            "group {} epoch {}: segments must partition the wall time",
            p.group,
            p.epoch
        );
    }
    assert!(committed > 0, "scenario must commit rounds");
    assert!(held > 0, "the swap cycle must contribute a held round");
    assert!(
        paths.iter().any(|p| p.store_commit_ns > 0),
        "the held round must carry a store-commit attribution"
    );

    let csv_path = write_csv("tab_critpath.csv", &csv);
    println!("  critical paths: {}", csv_path.display());

    if smoke {
        println!("\n  smoke mode: paths exercised, JSON not written");
        return;
    }

    let entry = Json::Obj(vec![
        ("label".into(), Json::Str(label.clone())),
        ("seed".into(), num(SEED as f64)),
        ("rounds".into(), num(paths.len() as f64)),
        ("committed_rounds".into(), num(committed as f64)),
        ("held_rounds".into(), num(held as f64)),
        ("notify_fanout_pct".into(), num(notify_pct)),
        ("capture_wait_pct".into(), num(capture_pct)),
        ("barrier_hold_pct".into(), num(hold_pct)),
        ("resume_release_pct".into(), num(resume_pct)),
        ("csv_fnv64".into(), Json::Str(format!("{:016x}", fnv64(csv.as_bytes())))),
    ]);

    let mut doc = match std::fs::read_to_string(OUT_PATH) {
        Ok(text) => parse_json(&text).unwrap_or_else(|e| panic!("existing {OUT_PATH} invalid: {e}")),
        Err(_) => Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("entries".into(), Json::Arr(Vec::new())),
        ]),
    };
    if let Json::Obj(fields) = &mut doc {
        if let Some((_, Json::Arr(entries))) = fields.iter_mut().find(|(k, _)| k == "entries") {
            entries.push(entry);
        } else {
            panic!("existing {OUT_PATH} has no 'entries' array");
        }
    } else {
        panic!("existing {OUT_PATH} is not an object");
    }
    check_schema(&doc).expect("generated entry must satisfy the schema");
    std::fs::write(OUT_PATH, doc.to_string_pretty()).expect("write BENCH_obs.json");
    println!("  appended entry '{label}' to BENCH_obs.json");
}
