//! BENCH-HOTPATH — wall-clock perf harness for the simulator hot paths.
//!
//! Unlike the fig*/tab* regenerators (which pin *simulated-time*
//! observables), this bench measures *wall-clock* throughput of the two
//! paths every experiment funnels through:
//!
//! - the event scheduler (`sim::Engine`): a dispatch-dominated ticker
//!   storm and a cancel-heavy timeout churn, reported as events/sec and
//!   ns/event;
//! - the capture path (`ckptstore::ChunkStore`): repeated epoch captures
//!   of a mostly-clean image, reported as MB/s plus dedup and cache
//!   counters.
//!
//! It also times the end-to-end two-node iperf-under-checkpoints lab so
//! scheduler wins show up at system scale. Results append to
//! `BENCH_hotpath.json` at the repo root — the perf trajectory every
//! future optimisation is judged against. Wall-clock numbers are
//! machine-dependent; the committed JSON records labeled rows (e.g.
//! `pre-slab-baseline` vs `slab-scheduler`) from the same machine so
//! ratios are meaningful.
//!
//! Modes:
//! - default: full run, appends one labeled entry to the JSON;
//! - `--smoke`: tiny workloads, no JSON write (CI exercises the paths);
//! - `--check`: validate the committed JSON against the schema and exit;
//! - `--label <name>`: label for the appended entry (default "current").

use std::any::Any;
use std::time::Instant;

use ckptstore::ChunkStore;
use sim::{Component, Ctx, Engine, SimDuration};
use tcd_bench::banner;
use tcd_bench::json::{parse_json, Json};
use tcd_bench::lab::{build_lab, LabConfig};

/// Repo-root JSON artifact (path anchored to the crate, not the CWD).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
const SCHEMA: &str = "tcd-bench-hotpath-v1";


// ---------------------------------------------------------------------------
// Scheduler microbenches.
// ---------------------------------------------------------------------------

/// Self-reposting periodic source: the dispatch-dominated hot path every
/// simulated NIC/timer/tick shares.
struct Ticker {
    period: SimDuration,
}

impl Component for Ticker {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: sim::Payload) {
        let n = payload.downcast::<u64>().expect("tick payload");
        ctx.post_self(self.period, n + 1);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Timeout churn: every dispatch arms a batch of timeouts and cancels
/// most of them — the TCP-retransmit / watchdog pattern that hammers the
/// scheduler's cancellation path.
struct Churner {
    period: SimDuration,
    cancels: u64,
}

impl Component for Churner {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: sim::Payload) {
        let n = payload.downcast::<u64>().expect("churn payload");
        // Arm three timeouts, cancel them all before they can fire, keep
        // one live far-future straggler per 64 ticks to vary heap depth.
        let t1 = ctx.post_self(self.period * 3, n);
        let t2 = ctx.post_self(self.period * 5, n);
        let t3 = ctx.post_self(self.period * 7, n);
        assert!(ctx.cancel(t1) && ctx.cancel(t2) && ctx.cancel(t3));
        self.cancels += 3;
        if n.is_multiple_of(64) {
            ctx.post_self(self.period * 1000, u64::MAX);
        }
        if n != u64::MAX {
            ctx.post_self(self.period, n + 1);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct SchedResult {
    events: u64,
    wall_ns: u64,
    events_per_sec: f64,
    ns_per_event: f64,
}

fn sched_result(events: u64, wall_ns: u64) -> SchedResult {
    SchedResult {
        events,
        wall_ns,
        events_per_sec: events as f64 / (wall_ns as f64 / 1e9),
        ns_per_event: wall_ns as f64 / events as f64,
    }
}

/// Repetitions for the scheduler microbenches. The simulated window is
/// split into this many bursts and the fastest burst is reported
/// (hyperfine-style minimum): one long sustained run is hostage to CPU
/// quota throttling on shared machines, while the best burst tracks the
/// true per-event cost.
const SCHED_REPS: u64 = 5;

/// Ticker storm: `n_tickers` periodic sources with staggered periods so
/// the heap stays populated; run `SCHED_REPS` bursts covering a fixed
/// simulated window and keep the fastest.
fn bench_ticker(n_tickers: u32, sim_ms: u64) -> SchedResult {
    let mut e = Engine::new(7);
    for i in 0..n_tickers {
        let period = SimDuration::from_nanos(900 + 17 * i as u64);
        let id = e.add_component(Box::new(Ticker { period }));
        e.post(id, SimDuration::from_nanos(100 + i as u64), 0u64);
    }
    // Warm up allocators and caches outside the timed window.
    e.run_for(SimDuration::from_millis(1));
    let burst = SimDuration::from_millis((sim_ms / SCHED_REPS).max(1));
    let mut best: Option<SchedResult> = None;
    for _ in 0..SCHED_REPS {
        let before = e.events_dispatched();
        let t0 = Instant::now();
        e.run_for(burst);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let r = sched_result(e.events_dispatched() - before, wall_ns);
        if best.as_ref().is_none_or(|b| r.events_per_sec > b.events_per_sec) {
            best = Some(r);
        }
    }
    best.expect("at least one rep")
}

/// Cancel churn: schedule/cancel dominated; `events` here counts
/// scheduler ops (pushes + cancels + pops) per wall second, since the
/// cancelled timeouts never dispatch.
fn bench_churn(n_churners: u32, sim_ms: u64) -> SchedResult {
    let mut e = Engine::new(11);
    let mut ids = Vec::new();
    for i in 0..n_churners {
        let period = SimDuration::from_nanos(1100 + 23 * i as u64);
        let id = e.add_component(Box::new(Churner { period, cancels: 0 }));
        e.post(id, SimDuration::from_nanos(100 + i as u64), 0u64);
        ids.push(id);
    }
    e.run_for(SimDuration::from_millis(1));
    let burst = SimDuration::from_millis((sim_ms / SCHED_REPS).max(1));
    let total_cancels = |e: &Engine| -> u64 {
        ids.iter()
            .map(|&id| e.component_ref::<Churner>(id).unwrap().cancels)
            .sum()
    };
    let mut best: Option<SchedResult> = None;
    for _ in 0..SCHED_REPS {
        let before_disp = e.events_dispatched();
        let before_cancels = total_cancels(&e);
        let t0 = Instant::now();
        e.run_for(burst);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let dispatched = e.events_dispatched() - before_disp;
        let cancels = total_cancels(&e) - before_cancels;
        // Each cancel had a matching push; dispatched events had one push
        // and one pop each.
        let r = sched_result(2 * cancels + 2 * dispatched, wall_ns);
        if best.as_ref().is_none_or(|b| r.events_per_sec > b.events_per_sec) {
            best = Some(r);
        }
    }
    best.expect("at least one rep")
}

// ---------------------------------------------------------------------------
// Capture-path bench.
// ---------------------------------------------------------------------------

struct CaptureResult {
    bytes: u64,
    wall_ns: u64,
    mb_per_sec: f64,
    dedup_ratio: f64,
    hash_cache_hits: u64,
    hash_cache_misses: u64,
}

/// Epoch-capture loop: a synthetic guest image where a small fraction of
/// chunks dirties between epochs — the dominant `ChunkStore` workload on
/// the checkpoint path (most pages clean, a few new).
fn bench_capture(image_chunks: usize, epochs: u32, dirty_per_epoch: usize) -> CaptureResult {
    let chunk = 4096usize;
    let store = ChunkStore::builder().chunk_size(chunk).build();
    let mut image = vec![0u8; image_chunks * chunk];
    // Deterministic pseudo-content (SplitMix64 over chunk indices).
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for w in image.chunks_exact_mut(8) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        w.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
    }
    // Cold first capture outside the timed loop (it copies everything).
    let cache = &mut ckptstore::CaptureCache::new();
    let mut last = store.put_image_cached(&image, cache).image;
    let mut bytes = 0u64;
    let mut wall_ns = 0u64;
    let mut seed = 1u64;
    for _ in 0..epochs {
        // Dirty a deterministic scatter of chunks.
        for _ in 0..dirty_per_epoch {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (seed >> 33) as usize % image_chunks;
            let off = idx * chunk;
            image[off] = image[off].wrapping_add(1);
        }
        let t0 = Instant::now();
        let put = store.put_image_cached(&image, cache);
        wall_ns += t0.elapsed().as_nanos() as u64;
        bytes += put.logical_bytes;
        // Retire the previous epoch, as the time-travel pruner would.
        store.remove_image(last).expect("retire previous epoch");
        last = put.image;
    }
    let stats = store.stats();
    CaptureResult {
        bytes,
        wall_ns,
        mb_per_sec: bytes as f64 / 1e6 / (wall_ns as f64 / 1e9),
        dedup_ratio: stats.dedup_ratio,
        hash_cache_hits: cache.hits(),
        hash_cache_misses: cache.misses(),
    }
}

// ---------------------------------------------------------------------------
// End-to-end epoch workload.
// ---------------------------------------------------------------------------

struct EndToEndResult {
    sim_secs: u64,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    checkpoints: u64,
    committed: u64,
}

/// The two-node iperf-under-periodic-checkpoints lab, timed wall-clock.
fn bench_end_to_end(run_secs: u64) -> EndToEndResult {
    use checkpoint::Coordinator;
    let t0 = Instant::now();
    let mut lab = build_lab(LabConfig { seed: 42, ..LabConfig::default() });
    lab.engine.run_for(SimDuration::from_secs(20)); // NTP settle
    lab.start_iperf();
    lab.engine.run_for(SimDuration::from_secs(2));
    let coord = lab.coordinator;
    lab.engine.with_component::<Coordinator, _>(coord, |c, ctx| {
        c.start_periodic(ctx, SimDuration::from_secs(5))
    });
    lab.engine.run_for(SimDuration::from_secs(run_secs));
    lab.engine
        .with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    lab.engine.run_for(SimDuration::from_secs(4));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let out = lab.outcome(run_secs as f64);
    let events = lab.engine.events_dispatched();
    EndToEndResult {
        sim_secs: 26 + run_secs,
        wall_ms,
        events,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        checkpoints: out.checkpoints,
        committed: out.committed,
    }
}

// ---------------------------------------------------------------------------
// JSON schema + entry assembly.
// ---------------------------------------------------------------------------

fn num(n: f64) -> Json {
    Json::Num(n)
}

fn sched_json(r: &SchedResult) -> Json {
    Json::Obj(vec![
        ("events".into(), num(r.events as f64)),
        ("wall_ns".into(), num(r.wall_ns as f64)),
        ("events_per_sec".into(), num(r.events_per_sec.round())),
        ("ns_per_event".into(), num((r.ns_per_event * 100.0).round() / 100.0)),
    ])
}

/// Required numeric fields per section — the schema `--check` enforces.
const SCHED_FIELDS: [&str; 4] = ["events", "wall_ns", "events_per_sec", "ns_per_event"];
const CAPTURE_FIELDS: [&str; 6] = [
    "bytes",
    "wall_ns",
    "mb_per_sec",
    "dedup_ratio",
    "hash_cache_hits",
    "hash_cache_misses",
];
const E2E_FIELDS: [&str; 6] = [
    "sim_secs",
    "wall_ms",
    "events",
    "events_per_sec",
    "checkpoints",
    "committed",
];
const COUNTER_FIELDS: [&str; 2] = ["payload_pool_hits", "payload_pool_misses"];

fn check_section(entry: &Json, section: &str, fields: &[&str]) -> Result<(), String> {
    let sec = entry
        .get(section)
        .ok_or_else(|| format!("entry missing section '{section}'"))?;
    for f in fields {
        sec.get(f)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("section '{section}' missing numeric field '{f}'"))?;
    }
    Ok(())
}

fn check_schema(doc: &Json) -> Result<usize, String> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        _ => return Err(format!("top-level 'schema' must be \"{SCHEMA}\"")),
    }
    let entries = match doc.get("entries") {
        Some(Json::Arr(items)) => items,
        _ => return Err("top-level 'entries' must be an array".into()),
    };
    if entries.is_empty() {
        return Err("'entries' must not be empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let fail = |msg: String| format!("entry {i}: {msg}");
        match entry.get("label") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(fail("missing non-empty 'label'".into())),
        }
        check_section(entry, "sched_ticker", &SCHED_FIELDS).map_err(&fail)?;
        check_section(entry, "sched_churn", &SCHED_FIELDS).map_err(&fail)?;
        check_section(entry, "capture", &CAPTURE_FIELDS).map_err(&fail)?;
        check_section(entry, "end_to_end", &E2E_FIELDS).map_err(&fail)?;
        check_section(entry, "counters", &COUNTER_FIELDS).map_err(&fail)?;
    }
    Ok(entries.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "current".to_string());

    if check {
        let text = std::fs::read_to_string(OUT_PATH)
            .unwrap_or_else(|e| panic!("read {OUT_PATH}: {e}"));
        let doc = parse_json(&text).unwrap_or_else(|e| panic!("{e}"));
        match check_schema(&doc) {
            Ok(n) => {
                println!("BENCH_hotpath.json: schema ok, {n} entries");
                if !smoke {
                    return;
                }
            }
            Err(e) => panic!("BENCH_hotpath.json schema violation: {e}"),
        }
        if !smoke {
            return;
        }
    }

    banner("BENCH-HOTPATH", "wall-clock perf: scheduler + capture hot paths");

    // Workload sizes: smoke keeps CI fast; full sizes give stable numbers.
    let (tick_ms, churn_ms, chunks, epochs, dirty, e2e_secs) = if smoke {
        (5, 5, 512, 3, 16, 6)
    } else {
        (400, 250, 4096, 12, 80, 25)
    };

    println!("  [1/4] scheduler ticker storm ({tick_ms} sim-ms)...");
    let ticker = bench_ticker(64, tick_ms);
    println!(
        "        {:>12.0} events/s  ({:.1} ns/event, {} events)",
        ticker.events_per_sec, ticker.ns_per_event, ticker.events
    );
    println!("  [2/4] scheduler cancel churn ({churn_ms} sim-ms)...");
    let churn = bench_churn(48, churn_ms);
    println!(
        "        {:>12.0} ops/s     ({:.1} ns/op, {} ops)",
        churn.events_per_sec, churn.ns_per_event, churn.events
    );
    println!("  [3/4] epoch capture ({chunks} chunks x {epochs} epochs, {dirty} dirty/epoch)...");
    let capture = bench_capture(chunks, epochs, dirty);
    println!(
        "        {:>12.1} MB/s      (dedup {:.1}x, hash-cache {}/{} hit/miss)",
        capture.mb_per_sec, capture.dedup_ratio, capture.hash_cache_hits, capture.hash_cache_misses
    );
    println!("  [4/4] end-to-end two-node epoch workload ({e2e_secs} sim-s of checkpoints)...");
    let e2e = bench_end_to_end(e2e_secs);
    println!(
        "        {:>12.1} wall-ms   ({:.0} events/s, {} checkpoints, {} committed)",
        e2e.wall_ms, e2e.events_per_sec, e2e.checkpoints, e2e.committed
    );
    assert!(e2e.checkpoints > 0, "end-to-end workload must checkpoint");
    let (pool_hits, pool_misses) = sim::payload_pool_stats();
    println!(
        "        payload pool: {pool_hits} hits / {pool_misses} misses (allocations avoided: {pool_hits})"
    );

    if smoke {
        println!("\n  smoke mode: paths exercised, JSON not written");
        return;
    }

    let entry = Json::Obj(vec![
        ("label".into(), Json::Str(label.clone())),
        ("smoke".into(), Json::Bool(false)),
        ("sched_ticker".into(), sched_json(&ticker)),
        ("sched_churn".into(), sched_json(&churn)),
        (
            "capture".into(),
            Json::Obj(vec![
                ("bytes".into(), num(capture.bytes as f64)),
                ("wall_ns".into(), num(capture.wall_ns as f64)),
                ("mb_per_sec".into(), num((capture.mb_per_sec * 10.0).round() / 10.0)),
                ("dedup_ratio".into(), num((capture.dedup_ratio * 100.0).round() / 100.0)),
                ("hash_cache_hits".into(), num(capture.hash_cache_hits as f64)),
                ("hash_cache_misses".into(), num(capture.hash_cache_misses as f64)),
            ]),
        ),
        (
            "end_to_end".into(),
            Json::Obj(vec![
                ("sim_secs".into(), num(e2e.sim_secs as f64)),
                ("wall_ms".into(), num((e2e.wall_ms * 10.0).round() / 10.0)),
                ("events".into(), num(e2e.events as f64)),
                ("events_per_sec".into(), num(e2e.events_per_sec.round())),
                ("checkpoints".into(), num(e2e.checkpoints as f64)),
                ("committed".into(), num(e2e.committed as f64)),
            ]),
        ),
        (
            "counters".into(),
            Json::Obj(vec![
                ("payload_pool_hits".into(), num(pool_hits as f64)),
                ("payload_pool_misses".into(), num(pool_misses as f64)),
            ]),
        ),
    ]);

    let mut doc = match std::fs::read_to_string(OUT_PATH) {
        Ok(text) => parse_json(&text).unwrap_or_else(|e| panic!("existing {OUT_PATH} invalid: {e}")),
        Err(_) => Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("entries".into(), Json::Arr(Vec::new())),
        ]),
    };
    if let Json::Obj(fields) = &mut doc {
        if let Some((_, Json::Arr(entries))) = fields.iter_mut().find(|(k, _)| k == "entries") {
            entries.push(entry);
        } else {
            panic!("existing {OUT_PATH} has no 'entries' array");
        }
    } else {
        panic!("existing {OUT_PATH} is not an object");
    }
    check_schema(&doc).expect("generated entry must satisfy the schema");
    std::fs::write(OUT_PATH, doc.to_string_pretty()).expect("write BENCH_hotpath.json");
    println!("\n  appended entry '{label}' to BENCH_hotpath.json");
}
