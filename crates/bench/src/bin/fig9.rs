//! FIG9 — Effect of background data transfer on disk throughput
//! (paper Fig 9).
//!
//! A large-file copy ("a disk-intensive workload, while measuring
//! throughput to disk at one-second intervals") in three scenarios:
//!
//! - **No swap** activity;
//! - **Swap-in with lazy copy-in**: the previous session's aggregated
//!   delta pages in over the control net in the background. The paper's
//!   rate limiter was less effective here ("more aggressive prefetching"),
//!   so the sync runs near line rate — hence the larger impact: ~19%
//!   longer execution, ~45% throughput drop;
//! - **Swap-out with pre-copy**: the current delta streams out, triggered
//!   60 s into the run, properly rate-limited — ~9% longer execution.

use cowstore::{BlockData, CowMode, DeltaMap, Direction, MirrorTransfer};
use guestos::prog::FileId;
use sim::{SimDuration, SimTime};
use sim::trace::Series;
use tcd_bench::{banner, row, single_host, write_csv};
use vmm::{MirrorConfig, VmHost};
use workloads::FileCopy;

const COPY_BYTES: u64 = 2 << 30;

/// Lazy copy-in sync rate: near control-net line rate (the paper's
/// under-throttled prefetch).
const COPYIN_BPS: u64 = 60_000_000;

/// Eager pre-copy rate: deliberately limited.
const COPYOUT_BPS: u64 = 60_000_000;

enum Scenario {
    NoSwap,
    LazyCopyIn,
    EagerCopyOut,
}

/// Returns (1 s throughput bins, total execution s, sync window s).
fn run(seed: u64, scenario: Scenario) -> (Vec<(f64, f64)>, f64, f64) {
    let (mut e, host) = single_host(seed, CowMode::Branch, false);
    e.run_until(SimTime::ZERO + SimDuration::from_secs(2));

    // Lazy copy-in starts the run with the previous session's aggregate
    // still remote and syncing in.
    if matches!(scenario, Scenario::LazyCopyIn) {
        e.with_component::<VmHost, _>(host, |h, ctx| {
            let mut agg = DeltaMap::new();
            // A 300 MB previous-session delta.
            for i in 0..76_800u64 {
                agg.put(1_000_000 + i, BlockData::Opaque(i));
            }
            let blocks = agg.vbas();
            h.store_mut().install_aggregate(agg);
            let t = MirrorTransfer::new(Direction::CopyIn, blocks, 4096, COPYIN_BPS);
            h.attach_mirror(
                ctx,
                t,
                MirrorConfig {
                    latency: SimDuration::from_micros(200),
                    net_bps: COPYIN_BPS,
                    notify: None,
                    idle_priority: false,
                },
            );
        });
    }

    let tid = e.with_component::<VmHost, _>(host, |h, _| {
        // ~10 ms of CPU per 256 KiB chunk: cp + ext3 journaling overhead,
        // putting the baseline near the paper's ~15-18 MB/s with disk
        // headroom to spare.
        h.kernel_mut().spawn(Box::new(
            FileCopy::new(FileId(1), FileId(2), COPY_BYTES).with_chunk_cpu(10_000_000),
        ))
    });

    let mut attached_out = false;
    let mut sync_window = 0.0f64;
    let mut sync_started = None;
    for tick in 0..200 {
        e.run_for(SimDuration::from_secs(5));
        // Track the sync window and detach the pre-copy when the swap-out
        // completes (~70 s of pre-copy, per §7.2's ~60 s swap-outs).
        {
            let h = e.component_ref::<VmHost>(host).unwrap();
            if let Some(left) = h.mirror_remaining() {
                if sync_started.is_none() {
                    sync_started = Some(tick);
                }
                if left == 0 || (matches!(scenario, Scenario::EagerCopyOut)
                    && tick - sync_started.unwrap() >= 14)
                {
                    sync_window = ((tick - sync_started.unwrap()) * 5) as f64;
                    e.with_component::<VmHost, _>(host, |h, _| {
                        let _ = h.detach_mirror();
                    });
                }
            }
        }
        if matches!(scenario, Scenario::EagerCopyOut) && !attached_out && tick >= 11 {
            // Swap-out pre-copy begins 60 s into the run (as in Fig 9).
            attached_out = true;
            e.with_component::<VmHost, _>(host, |h, ctx| {
                let blocks = h.store().current_delta().vbas();
                let t = MirrorTransfer::new(Direction::CopyOut, blocks, 4096, COPYOUT_BPS);
                h.attach_mirror(
                    ctx,
                    t,
                    MirrorConfig {
                        latency: SimDuration::from_micros(200),
                        net_bps: COPYOUT_BPS,
                        notify: None,
                        idle_priority: true,
                    },
                );
            });
        }
        let done = e
            .component_ref::<VmHost>(host)
            .unwrap()
            .kernel()
            .prog(tid)
            .unwrap()
            .as_any()
            .downcast_ref::<FileCopy>()
            .unwrap()
            .done();
        if done {
            break;
        }
    }

    let h = e.component_ref::<VmHost>(host).unwrap();
    let p = h
        .kernel()
        .prog(tid)
        .unwrap()
        .as_any()
        .downcast_ref::<FileCopy>()
        .unwrap();
    assert!(p.done(), "copy did not finish in the budget");
    // 1 s-binned write throughput from progress samples.
    let mut series = Series::new();
    let mut prev = 0u64;
    for &(t, bytes) in &p.progress {
        series.push(SimTime::from_nanos(t), (bytes - prev) as f64);
        prev = bytes;
    }
    let start = SimTime::from_nanos(p.t_start.unwrap());
    let end = SimTime::from_nanos(p.t_end.unwrap());
    let bins: Vec<(f64, f64)> = series
        .binned_rate(start, end, SimDuration::from_secs(1))
        .into_iter()
        .map(|(t, r)| (t - start.as_secs_f64(), r / 1e6))
        .collect();
    let elapsed = (end - start).as_secs_f64();
    if sync_window == 0.0 && sync_started.is_some() {
        sync_window = elapsed; // Sync outlived the run.
    }
    (bins, elapsed, sync_window)
}

fn main() {
    banner("FIG9", "background data transfer vs guest disk throughput");
    let mut csv = String::from("scenario,time_s,write_throughput_MBps\n");
    let mut results = Vec::new();
    for (name, scenario) in [
        ("no-swap", Scenario::NoSwap),
        ("lazy-copy-in", Scenario::LazyCopyIn),
        ("eager-copy-out", Scenario::EagerCopyOut),
    ] {
        eprintln!("[fig9] running {name}...");
        let is_lazy = matches!(scenario, Scenario::LazyCopyIn);
        let (bins, elapsed, sync_window) = run(9001, scenario);
        // The paper's "45% drop" is the depressed level while the sync is
        // active; lazy copy-in starts syncing at t = 0.
        let window_end = if is_lazy && sync_window > 0.0 {
            sync_window
        } else {
            elapsed
        };
        let in_window: Vec<f64> = bins
            .iter()
            .filter(|&&(t, _)| t <= window_end)
            .map(|&(_, r)| r)
            .collect();
        let mean: f64 = in_window.iter().sum::<f64>() / in_window.len() as f64;
        for &(t, r) in &bins {
            csv.push_str(&format!("{name},{t:.0},{r:.3}\n"));
        }
        results.push((name, elapsed, mean));
    }
    let path = write_csv("fig9_transfer.csv", &csv);

    let (_, base_t, base_r) = results[0];
    println!();
    for &(name, t, r) in &results {
        println!(
            "  {:<16} execution {:>6.1} s ({:+5.1}%), mean write throughput {:>5.1} MB/s ({:+5.1}%)",
            name,
            t,
            (t / base_t - 1.0) * 100.0,
            r,
            (r / base_r - 1.0) * 100.0
        );
    }
    println!();
    let lazy = &results[1];
    let eager = &results[2];
    row(
        "lazy copy-in execution increase",
        "~19%",
        &format!("{:.0}%", (lazy.1 / base_t - 1.0) * 100.0),
    );
    row(
        "lazy copy-in throughput drop",
        "~45%",
        &format!("{:.0}%", (1.0 - lazy.2 / base_r) * 100.0),
    );
    row(
        "eager copy-out execution increase",
        "~9%",
        &format!("{:.0}%", (eager.1 / base_t - 1.0) * 100.0),
    );
    println!("  series: {}", path.display());
}
