//! FIG5 — A microbenchmark executing a CPU-intensive job in a loop
//! (paper Fig 5), plus the in-text dom0-job interference table.
//!
//! One node; a 236.6 ms CPU burst per iteration; a coordinated checkpoint
//! every 5 seconds. Also reproduces §7.1's dom0 experiment: running `ls`,
//! `sum`, and `xm list` in the privileged domain stretches guest bursts by
//! 5–7 ms, 13–17 ms, and ~130 ms respectively.

use emulab::{ExperimentSpec, Testbed};
use sim::SimDuration;
use tcd_bench::{banner, row, write_csv};
use vmm::{Dom0Job, VmHost};
use workloads::CpuLoop;

const BURST_NS: u64 = 236_600_000;

fn run_loop(tb: &mut Testbed, iters: usize, checkpoints: bool) -> Vec<u64> {
    let tid = tb.spawn("fig5", "n", Box::new(CpuLoop::new(BURST_NS, iters)));
    if checkpoints {
        tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    }
    tb.run_for(SimDuration::from_millis((iters as u64 + 10) * 240));
    if checkpoints {
        tb.stop_periodic_checkpoints();
        tb.run_for(SimDuration::from_secs(2));
    }
    let host = tb.host_id("fig5", "n");
    let h = tb.engine.component_ref::<VmHost>(host).unwrap();
    h.kernel()
        .prog(tid)
        .unwrap()
        .as_any()
        .downcast_ref::<CpuLoop>()
        .unwrap()
        .iteration_ns()
}

fn main() {
    banner("FIG5", "CPU-intensive loop under 5 s periodic checkpoints");
    let mut tb = Testbed::new(5001, 4);
    tb.swap_in(ExperimentSpec::new("fig5").node("n")).unwrap();
    tb.run_for(SimDuration::from_secs(10));

    let samples = run_loop(&mut tb, 600, true);
    let mut csv = String::from("iteration,time_ms\n");
    for (i, &d) in samples.iter().enumerate() {
        csv.push_str(&format!("{},{:.6}\n", i, d as f64 / 1e6));
    }
    let path = write_csv("fig5_cpuloop.csv", &csv);

    let devs: Vec<f64> = samples
        .iter()
        .map(|&d| (d as f64 - BURST_NS as f64).abs())
        .collect();
    let within_9ms = devs.iter().filter(|&&d| d <= 9e6).count() as f64 / devs.len() as f64;
    let max_dev_ms = devs.iter().cloned().fold(0.0, f64::max) / 1e6;

    println!("  iterations: {}", samples.len());
    row("nominal iteration", "236.6 ms", "236.6 ms (configured)");
    row(
        "fraction within ±9 ms",
        "≥ 90%",
        &format!("{:.1}%", within_9ms * 100.0),
    );
    row(
        "worst checkpoint stretch",
        "≤ 27 ms",
        &format!("{max_dev_ms:.1} ms"),
    );
    println!("  series: {}", path.display());

    // --- Dom0 interference table (§7.1 in-text numbers). ---
    println!();
    banner("FIG5b", "dom0 management jobs stretching guest CPU bursts");
    for (job, label, expect) in [
        (Dom0Job::Ls, "ls /", "5–7 ms"),
        (Dom0Job::Sum, "sum vmlinuz", "13–17 ms"),
        (Dom0Job::XmList, "xm list", "~130 ms"),
    ] {
        let tid = tb.spawn("fig5", "n", Box::new(CpuLoop::new(BURST_NS, 40)));
        tb.run_for(SimDuration::from_secs(2));
        // Fire the job three times across the run.
        for _ in 0..3 {
            let host = tb.host_id("fig5", "n");
            tb.engine
                .with_component::<VmHost, _>(host, |h, ctx| h.run_dom0_job(ctx, job));
            tb.run_for(SimDuration::from_secs(3));
        }
        tb.run_for(SimDuration::from_secs(3));
        let host = tb.host_id("fig5", "n");
        let h = tb.engine.component_ref::<VmHost>(host).unwrap();
        let samples = h
            .kernel()
            .prog(tid)
            .unwrap()
            .as_any()
            .downcast_ref::<CpuLoop>()
            .unwrap()
            .iteration_ns();
        let max_stretch =
            samples.iter().map(|&d| d.saturating_sub(BURST_NS)).max().unwrap_or(0) as f64 / 1e6;
        row(label, expect, &format!("{max_stretch:.1} ms max stretch"));
    }
}
