//! FIG4 — Periodic checkpointing of a microbenchmark executing a 10 ms
//! sleep in a loop (paper Fig 4).
//!
//! One node; `usleep(10 ms)` loop timed with `gettimeofday` (≈20 ms per
//! iteration at HZ=100); a coordinated checkpoint every 5 seconds.
//! Regenerates the iteration-time series and checks the paper's numbers:
//! 97% of iterations within 28 µs of nominal; checkpoint iterations within
//! ~80 µs.

use emulab::{ExperimentSpec, Testbed};
use sim::SimDuration;
use tcd_bench::{banner, row, summarize_ms, write_csv};
use vmm::VmHost;
use workloads::UsleepLoop;

fn main() {
    banner("FIG4", "usleep(10ms) loop under 5 s periodic checkpoints");
    let mut tb = Testbed::new(4001, 4);
    tb.swap_in(ExperimentSpec::new("fig4").node("n")).unwrap();
    // Let NTP's boot step and early discipline settle before measuring.
    tb.run_for(SimDuration::from_secs(10));

    let iters = 6000;
    let tid = tb.spawn("fig4", "n", Box::new(UsleepLoop::new(10_000_000, iters)));
    tb.run_for(SimDuration::from_secs(2));
    tb.start_periodic_checkpoints(SimDuration::from_secs(5));
    // 6000 iterations × 20 ms = 120 s.
    tb.run_for(SimDuration::from_secs(125));
    tb.stop_periodic_checkpoints();

    let host = tb.host_id("fig4", "n");
    let h = tb.engine.component_ref::<VmHost>(host).unwrap();
    let samples: Vec<(u64, u64)> = h
        .kernel()
        .prog(tid)
        .unwrap()
        .as_any()
        .downcast_ref::<UsleepLoop>()
        .unwrap()
        .samples
        .clone();
    let checkpoints = h.stats.checkpoints;

    let mut csv = String::from("iteration,time_ms\n");
    for (i, &(_, d)) in samples.iter().enumerate() {
        csv.push_str(&format!("{},{:.6}\n", i, d as f64 / 1e6));
    }
    let path = write_csv("fig4_usleep.csv", &csv);

    let iter_ns: Vec<u64> = samples.iter().map(|&(_, d)| d).collect();
    let s = summarize_ms(&iter_ns, 20_000_000);
    // Checkpoint spikes stand clear of the exponential jitter tail: count
    // deviations beyond 50 µs (P97 of the baseline is 28 µs).
    let spikes: Vec<u64> = iter_ns
        .iter()
        .copied()
        .filter(|&d| (d as i64 - 20_000_000).unsigned_abs() > 50_000)
        .collect();

    println!("  iterations: {} ({} checkpoints)", iter_ns.len(), checkpoints);
    row("mean iteration", "20 ms", &format!("{:.3} ms", s.mean));
    row(
        "97th-pct timer error (intra-checkpoint)",
        "≤ 28 µs",
        &format!("{:.1} µs", s.p97_dev * 1000.0),
    );
    row(
        "checkpoint-iteration error (spike height)",
        "~80 µs",
        &format!("{:.1} µs max", s.max_dev * 1000.0),
    );
    row(
        "spike count vs checkpoints",
        "1 per checkpoint",
        &format!("{} spikes / {} checkpoints", spikes.len(), checkpoints),
    );
    println!("  series: {}", path.display());
}
