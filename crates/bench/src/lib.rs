//! Shared harness for the figure/table regenerators.
//!
//! Each `fig*`/`tab*` binary reproduces one artifact of the paper's §7:
//! it assembles the experiment on the full testbed stack, runs it, writes
//! the plottable series as CSV under `results/`, and prints a
//! paper-vs-measured summary. Absolute values come from the calibrated
//! models (see DESIGN.md §6); the summaries focus on the *shape* claims.

pub mod explore;
pub mod flightrec;
pub mod json;
pub mod lab;

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use clocksync::{NtpRequest, NtpServer};
use cowstore::{BranchingStore, CowMode, GoldenImageBuilder, StoreLayout};
use guestos::{Kernel, KernelConfig};
use hwsim::{
    ControlLan, Endpoint, Frame, HardwareClock, IfaceId, LanTransmit, LinkDeliver, NodeAddr,
    Pc3000,
};
use sim::{stats, Component, ComponentId, Ctx, Engine, Payload, SimDuration};
use vmm::{VmHost, VmHostConfig, VmmTuning};

/// Directory the regenerators write CSV into.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV artifact, returning its path.
pub fn write_csv(name: &str, content: &str) -> PathBuf {
    let path = out_dir().join(name);
    fs::write(&path, content).expect("write csv");
    path
}

/// Prints a banner for one experiment.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Prints one paper-vs-measured row.
pub fn row(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<18} measured: {measured}");
}

/// Summary stats of a sample set, in milliseconds.
pub struct MsSummary {
    pub mean: f64,
    pub p97_dev: f64,
    pub max_dev: f64,
}

/// Summarizes iteration times (ns) against a nominal value (ns).
pub fn summarize_ms(samples_ns: &[u64], nominal_ns: u64) -> MsSummary {
    let devs: Vec<f64> = samples_ns
        .iter()
        .map(|&s| (s as f64 - nominal_ns as f64).abs())
        .collect();
    MsSummary {
        mean: stats::mean(
            &samples_ns.iter().map(|&s| s as f64 / 1e6).collect::<Vec<_>>(),
        ),
        p97_dev: stats::percentile(&devs, 0.97) / 1e6,
        max_dev: stats::max(&devs) / 1e6,
    }
}

/// Minimal ops node answering NTP (for single-host rigs outside the
/// full testbed, e.g. the Fig 8 storage-mode comparison).
struct NtpOps {
    addr: NodeAddr,
    lan: ComponentId,
    clock: HardwareClock,
    server: NtpServer,
}

impl Component for NtpOps {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let Ok(del) = payload.downcast::<LinkDeliver>() else {
            return;
        };
        if let Some(req) = del.frame.payload::<NtpRequest>() {
            let t = self.clock.read_ns(ctx.now());
            let resp = self.server.respond(*req, t, t);
            let frame = Frame::new(self.addr, del.frame.src, 90, resp);
            ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
        }
    }
    sim::component_boilerplate!();
}

/// Builds a single pc3000 host outside the testbed, with a chosen COW
/// mode and disk aging — the Fig 8 / Fig 9 rig. Returns the started
/// engine and host.
pub fn single_host(seed: u64, mode: CowMode, aged: bool) -> (Engine, ComponentId) {
    let mut e = Engine::new(seed);
    let profile = Pc3000::default();
    let lan = e.add_component(Box::new(ControlLan::new(
        profile.ctrl_lan_bps,
        profile.ctrl_lan_latency,
        profile.ctrl_lan_jitter,
    )));
    let ops_addr = NodeAddr(1000);
    let ops = e.add_component(Box::new(NtpOps {
        addr: ops_addr,
        lan,
        clock: HardwareClock::new(0, 0.0),
        server: NtpServer,
    }));
    let node = NodeAddr(1);
    let disk_blocks = profile.guest_disk_bytes / 4096;
    let golden = Arc::new(GoldenImageBuilder::new("FC4-STD", disk_blocks, 4096, 7).build());
    let mut layout = StoreLayout::for_image(&golden);
    layout.aged = aged;
    let mut store = BranchingStore::new(golden, mode, layout);
    store.set_snoop(cowstore::Ext3Snoop::new());
    let mut kcfg = KernelConfig::pc3000_guest(node);
    kcfg.disk_blocks = disk_blocks;
    let kernel = Kernel::new(kcfg);
    let host = VmHost::new(
        VmHostConfig {
            node,
            profile,
            tuning: VmmTuning::default(),
            lan,
            ntp_server: ops_addr,
            services: ops_addr,
            clock_offset_ns: 1_000_000,
            clock_drift_ppm: 25.0,
            auto_resume: true,
            conceal_downtime: true,
        },
        store,
        kernel,
        None,
    );
    let host_id = e.add_component(Box::new(host));
    e.with_component::<ControlLan, _>(lan, |l, _| {
        l.attach(node, Endpoint { component: host_id, iface: IfaceId::CONTROL });
        l.attach(ops_addr, Endpoint { component: ops, iface: IfaceId::CONTROL });
    });
    e.with_component::<VmHost, _>(host_id, |h, ctx| h.start(ctx));
    let _ = ops;
    (e, host_id)
}
