//! A reusable two-node iperf lab (hostA — delay node — hostB plus
//! coordinator) for the baseline and ablation experiments.

use std::sync::Arc;

use checkpoint::{
    CheckpointAgent, Coordinator, DelayNodeHost, FailurePolicy, OutPort, Strategy, TriggerMode,
};
use cowstore::{BranchingStore, CowMode, GoldenImageBuilder, StoreLayout};
use dummynet::PipeConfig;
use guestos::{Kernel, KernelConfig};
use hwsim::{ControlLan, Endpoint, IfaceId, Link, NodeAddr, Pc3000};
use sim::{ComponentId, Engine, FaultPlan, SimDuration};
use vmm::{ExpPort, VmHost, VmHostConfig, VmmTuning};
use workloads::{IperfReceiver, IperfSender};

/// Knobs the ablation studies turn.
#[derive(Clone, Debug)]
pub struct LabConfig {
    pub seed: u64,
    pub strategy: Strategy,
    /// Disable NTP by pointing clients at a black hole (the clock-sync
    /// ablation: checkpoints are then scheduled against undisciplined
    /// clocks).
    pub ntp: bool,
    /// Scheduling lead for "checkpoint at t" (None = the strategy's
    /// default 200 ms).
    pub lead: Option<SimDuration>,
    /// Initial clock offsets of the two hosts, ns.
    pub offsets_ns: (i64, i64),
    /// Control-plane fault plan injected into the control LAN (loss,
    /// duplication, delay, crashes).
    pub faults: Option<FaultPlan>,
    /// Make host B a straggler: its done report stalls this long after
    /// the local capture.
    pub straggler_stall: Option<SimDuration>,
    /// Failure-handling policy override for the coordinator.
    pub policy: Option<FailurePolicy>,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            seed: 1,
            strategy: Strategy::Transparent,
            ntp: true,
            lead: None,
            offsets_ns: (2_000_000, -3_000_000),
            faults: None,
            straggler_stall: None,
            policy: None,
        }
    }
}

/// The assembled lab.
pub struct Lab {
    pub engine: Engine,
    pub coordinator: ComponentId,
    pub host_a: ComponentId,
    pub host_b: ComponentId,
    pub delay_node: ComponentId,
    pub addr_b: NodeAddr,
}

/// Outcome metrics of an iperf-under-checkpoints run.
#[derive(Clone, Copy, Debug)]
pub struct LabOutcome {
    pub retransmissions: u64,
    pub timeouts: u64,
    pub dup_acks: u64,
    pub window_shrinks: u64,
    pub max_gap_us: u64,
    pub max_suspend_skew_us: u64,
    pub throughput_mbps: f64,
    pub checkpoints: u64,
    /// Epoch outcomes the coordinator recorded.
    pub committed: u64,
    pub aborted: u64,
    pub degraded: u64,
    /// Notification retries the failure detector issued in total.
    pub retries: u64,
    /// Epochs still without a terminal outcome (should be zero after a
    /// drain period: every epoch must commit, abort, or degrade).
    pub unresolved: u64,
    /// Median notify→all-acks latency across acked epochs, µs (engine
    /// telemetry, `coordinator.notify_to_acks_ns`).
    pub p50_notify_to_acks_us: u64,
    /// 99th-percentile notify→all-acks latency, µs.
    pub p99_notify_to_acks_us: u64,
    /// Median barrier-hold time across resumed epochs, µs.
    pub p50_barrier_hold_us: u64,
    /// 99th-percentile barrier-hold time, µs.
    pub p99_barrier_hold_us: u64,
}

/// Builds the lab (hosts booted, nothing running yet).
pub fn build_lab(cfg: LabConfig) -> Lab {
    let mut e = Engine::new(cfg.seed);
    let profile = Pc3000::default();
    let lan_id = e.add_component(Box::new(ControlLan::new(
        profile.ctrl_lan_bps,
        profile.ctrl_lan_latency,
        profile.ctrl_lan_jitter,
    )));
    if let Some(plan) = cfg.faults.clone() {
        e.with_component::<ControlLan, _>(lan_id, |l, _| l.inject_faults(plan));
    }
    let ops_addr = NodeAddr(1000);
    // A black-hole address: attached to nothing, requests vanish.
    let ntp_target = if cfg.ntp { ops_addr } else { NodeAddr(9999) };
    let mode = match (cfg.strategy.trigger_mode(), cfg.lead) {
        (TriggerMode::Scheduled { .. }, Some(lead)) => TriggerMode::Scheduled { lead },
        (m, _) => m,
    };
    let mut coord_builder = Coordinator::builder(ops_addr, lan_id).mode(mode);
    if let Some(policy) = cfg.policy {
        coord_builder = coord_builder.policy(policy);
    }
    let coord = e.add_component(Box::new(coord_builder.build()));

    let mk_host = |e: &mut Engine,
                   node: NodeAddr,
                   off: i64,
                   drift: f64,
                   stall: Option<SimDuration>|
     -> ComponentId {
        let golden = Arc::new(GoldenImageBuilder::new("fc4", 100_000, 4096, 7).build());
        let layout = StoreLayout::for_image(&golden);
        let store = BranchingStore::new(golden, CowMode::Branch, layout);
        let mut kcfg = KernelConfig::pc3000_guest(node);
        kcfg.disk_blocks = 100_000;
        let kernel = Kernel::new(kcfg);
        let mut agent = CheckpointAgent::new(ops_addr)
            .with_processing_jitter(cfg.strategy.processing_jitter_mean());
        if let Some(stall) = stall {
            agent = agent.with_done_stall(stall);
        }
        if cfg.faults.is_some() {
            // A faulty control plane warrants at-least-once done reports.
            agent = agent.with_done_resend(SimDuration::from_millis(100));
        }
        let host = VmHost::new(
            VmHostConfig {
                node,
                profile: Pc3000::default(),
                tuning: VmmTuning::default(),
                lan: lan_id,
                ntp_server: ntp_target,
                services: ops_addr,
                clock_offset_ns: off,
                clock_drift_ppm: drift,
                auto_resume: false,
                conceal_downtime: cfg.strategy.conceals_downtime(),
            },
            store,
            kernel,
            Some(Box::new(agent)),
        );
        e.add_component(Box::new(host))
    };
    let a_addr = NodeAddr(1);
    let b_addr = NodeAddr(2);
    let dn_addr = NodeAddr(3);
    let host_a = mk_host(&mut e, a_addr, cfg.offsets_ns.0, 40.0, None);
    let host_b = mk_host(&mut e, b_addr, cfg.offsets_ns.1, -25.0, cfg.straggler_stall);
    let dn = e.add_component(Box::new(DelayNodeHost::new(
        dn_addr, lan_id, ops_addr, 1_000_000, 15.0,
    )));
    let link_a = e.add_component(Box::new(Link::new(
        Endpoint { component: host_a, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(1) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));
    let link_b = e.add_component(Box::new(Link::new(
        Endpoint { component: host_b, iface: IfaceId::EXPERIMENT },
        Endpoint { component: dn, iface: IfaceId(2) },
        1_000_000_000,
        SimDuration::from_micros(5),
        0.0,
    )));
    let shape = PipeConfig {
        bandwidth_bps: Some(1_000_000_000),
        delay: SimDuration::from_micros(100),
        plr: 0.0,
        queue_slots: 512,
    };
    e.with_component::<DelayNodeHost, _>(dn, |d, _| {
        if cfg.faults.is_some() {
            d.set_done_resend(Some(SimDuration::from_millis(100)));
        }
        d.add_path(IfaceId(1), shape, OutPort { link: link_b, end: 1 });
        d.add_path(IfaceId(2), shape, OutPort { link: link_a, end: 1 });
    });
    e.with_component::<VmHost, _>(host_a, |h, _| {
        h.add_exp_route(b_addr, ExpPort::LinkEnd { link: link_a, end: 0 });
    });
    e.with_component::<VmHost, _>(host_b, |h, _| {
        h.add_exp_route(a_addr, ExpPort::LinkEnd { link: link_b, end: 0 });
    });
    e.with_component::<ControlLan, _>(lan_id, |l, _| {
        l.attach(ops_addr, Endpoint { component: coord, iface: IfaceId::CONTROL });
        l.attach(a_addr, Endpoint { component: host_a, iface: IfaceId::CONTROL });
        l.attach(b_addr, Endpoint { component: host_b, iface: IfaceId::CONTROL });
        l.attach(dn_addr, Endpoint { component: dn, iface: IfaceId::CONTROL });
    });
    e.with_component::<Coordinator, _>(coord, |c, _| {
        c.subscribe(a_addr);
        c.subscribe(b_addr);
        c.subscribe(dn_addr);
    });
    e.with_component::<VmHost, _>(host_a, |h, ctx| h.start(ctx));
    e.with_component::<VmHost, _>(host_b, |h, ctx| h.start(ctx));
    e.with_component::<DelayNodeHost, _>(dn, |d, ctx| d.start(ctx));
    Lab {
        engine: e,
        coordinator: coord,
        host_a,
        host_b,
        delay_node: dn,
        addr_b: b_addr,
    }
}

impl Lab {
    /// Starts the iperf pair (trace enabled on the receiver).
    pub fn start_iperf(&mut self) {
        let b_addr = self.addr_b;
        let (a, b) = (self.host_a, self.host_b);
        self.engine.with_component::<VmHost, _>(b, |h, _| {
            h.kernel_mut().trace.enable();
            h.kernel_mut().spawn(Box::new(IperfReceiver::new(5001)));
        });
        self.engine.with_component::<VmHost, _>(a, |h, _| {
            h.kernel_mut().spawn(Box::new(IperfSender::new(b_addr, 5001)));
        });
    }

    /// Collects the outcome metrics after a run of `run_secs`.
    pub fn outcome(&self, run_secs: f64) -> LabOutcome {
        let a = self
            .engine
            .component_ref::<VmHost>(self.host_a)
            .expect("host a");
        let b = self
            .engine
            .component_ref::<VmHost>(self.host_b)
            .expect("host b");
        let ta = a.kernel().net_totals();
        let tb = b.kernel().net_totals();
        let gaps = b.kernel().trace.rx_data_gaps_ns();
        let skew = a
            .stats
            .freeze_history
            .iter()
            .zip(b.stats.freeze_history.iter())
            .map(|(&x, &y)| x.as_nanos().abs_diff(y.as_nanos()))
            .max()
            .unwrap_or(0);
        let c = self
            .engine
            .component_ref::<Coordinator>(self.coordinator)
            .expect("coordinator");
        let (committed, aborted, degraded) = c.outcome_counts();
        // Latency percentiles come from the engine's telemetry registry
        // (the coordinator records them as it runs), not from re-deriving
        // means over the raw records.
        let summary = |name: &str| {
            self.engine
                .telemetry()
                .histogram_summary(name)
                .unwrap_or(sim::HistogramSummary::EMPTY)
        };
        let acks = summary(sim::telemetry::names::COORD_NOTIFY_TO_ACKS_NS);
        let hold = summary(sim::telemetry::names::COORD_BARRIER_HOLD_NS);
        LabOutcome {
            retransmissions: ta.retransmissions + tb.retransmissions,
            timeouts: ta.timeouts + tb.timeouts,
            dup_acks: ta.dup_acks,
            window_shrinks: ta.window_shrinks + tb.window_shrinks,
            max_gap_us: gaps.iter().copied().max().unwrap_or(0) / 1000,
            max_suspend_skew_us: skew / 1000,
            throughput_mbps: tb.bytes_delivered as f64 / 1e6 / run_secs,
            checkpoints: a.stats.checkpoints,
            committed,
            aborted,
            degraded,
            retries: c.total_retries(),
            unresolved: c.records.iter().filter(|r| r.outcome.is_none()).count() as u64,
            p50_notify_to_acks_us: (acks.p50 / 1e3) as u64,
            p99_notify_to_acks_us: (acks.p99 / 1e3) as u64,
            p50_barrier_hold_us: (hold.p50 / 1e3) as u64,
            p99_barrier_hold_us: (hold.p99 / 1e3) as u64,
        }
    }
}
