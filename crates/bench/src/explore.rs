//! sim::explore — buggify-style randomized fault exploration with a
//! shadow epoch-protocol checker.
//!
//! Each iteration derives a complete scenario (topology, capture-time
//! mix, failure policy, trigger cadence, crash schedule) from a single
//! `u64` seed, arms the engine-wide [`Buggify`] registry under a preset,
//! runs several checkpoint epochs over a faulty control LAN, and then
//! replays the trace ring through [`ShadowEpochState`] — an independent
//! model of the coordinator's two-phase protocol. Any shadow violation
//! fails the iteration; because everything (component jitter, buggify
//! draws, fault plans, the scenario itself) flows from the one seed, a
//! failing iteration replays byte-identically from the printed seed.
//!
//! The library half (this module) builds rigs and runs single
//! iterations so `cargo test` can replay the committed seed corpus; the
//! `explore` binary drives multi-thousand-iteration sweeps.

use checkpoint::{
    Coordinator, FailurePolicy, ShadowEpochState, ShadowViolation, TriggerMode, Wal, WalRecord,
};
use checkpoint::{shadow, BusMsg, BUS_MSG_BYTES};
use hwsim::{ControlLan, Endpoint, Frame, IfaceId, LanTransmit, LinkDeliver, NodeAddr};
use sim::telemetry::names;
use sim::{
    Buggify, Component, ComponentId, Ctx, Engine, FaultPlan, Payload, Preset, SimDuration, SimRng,
    SimTime, TraceCtx, TraceEvent,
};

/// SplitMix64 step: turns `root_seed + index` into a well-mixed
/// per-iteration seed. Matches the generator used by `SimRng` seeding,
/// so nearby iterations share no stream structure.
pub fn iteration_seed(root_seed: u64, index: u64) -> u64 {
    let mut z = root_seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A crash scheduled against one model node, with an optional heal
/// (LAN plan swap) and rejoin attempt later in the run.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Address payload of the crashed node (`NodeAddr.0`).
    pub node: u32,
    /// Virtual time the node's control traffic stops.
    pub at_ms: u64,
    /// Virtual time the LAN heals (`None`: stays dead all run).
    pub heal_at_ms: Option<u64>,
}

/// A scheduled coordinator process crash: at `at_ms` the coordinator
/// loses all volatile protocol state and drops every message for
/// `downtime_ms`, then restarts and recovers from its epoch WAL.
#[derive(Clone, Copy, Debug)]
pub struct CoordCrashPlan {
    /// Virtual time the coordinator process dies.
    pub at_ms: u64,
    /// How long it stays down before the WAL-replaying restart.
    pub downtime_ms: u64,
}

/// Occasional cross-shard determinism probe riding an iteration: a
/// ≥64-node scale lab run at 1 shard and at `shards` shards, whose
/// merged-telemetry fingerprints must match byte for byte.
#[derive(Clone, Copy, Debug)]
pub struct ScaleProbePlan {
    pub groups: u32,
    pub per_group: u32,
    /// The multi-shard layout compared against the 1-shard baseline.
    pub shards: u32,
    pub epochs: u32,
}

impl ScaleProbePlan {
    /// Leaf nodes in the probe topology.
    pub fn nodes(&self) -> u32 {
        self.groups * self.per_group
    }
}

/// Everything one iteration does, derived deterministically from the
/// seed. Public so failure reports can print the whole scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub seed: u64,
    /// Preset the buggify registry is armed with.
    pub preset: Preset,
    /// True when the preset came from a CLI override rather than the
    /// seed's own draw (the repro line must then repeat the override).
    pub preset_overridden: bool,
    /// Per-node local capture times (length = node count).
    pub capture_ms: Vec<u64>,
    /// Nodes ack notifications explicitly (vs. implied by done).
    pub ack_explicit: bool,
    /// Scheduled ("checkpoint at t") vs. event-driven notification.
    pub scheduled_lead_ms: Option<u64>,
    pub policy: FailurePolicy,
    /// Periodic trigger interval.
    pub interval_ms: u64,
    /// Main run length before the drain phase.
    pub run_ms: u64,
    pub crash: Option<CrashPlan>,
    /// Scheduled coordinator process crash/restart (WAL recovery).
    pub coord_crash: Option<CoordCrashPlan>,
    /// Occasional sharded-engine determinism probe (1 vs N shards).
    pub scale_probe: Option<ScaleProbePlan>,
}

impl Scenario {
    /// Derives the full scenario from `seed`. The preset draw always
    /// happens (fixed draw order) and is then overridden if asked, so
    /// `--preset` replays perturb nothing else.
    pub fn derive(seed: u64, preset_override: Option<Preset>) -> Scenario {
        let mut rng = SimRng::from_seed(seed ^ 0x00E4_B07E_5EED_u64);
        let drawn = match rng.range_u64(0, 3) {
            0 => Preset::Calm,
            1 => Preset::Moderate,
            _ => Preset::Chaos,
        };
        let preset = preset_override.unwrap_or(drawn);
        let nodes = rng.range_u64(2, 9) as usize;
        let capture_ms: Vec<u64> = (0..nodes).map(|_| rng.range_u64(2, 81)).collect();
        let ack_explicit = rng.chance(0.7);
        let scheduled_lead_ms = if rng.chance(0.2) {
            Some(rng.range_u64(5, 51))
        } else {
            None
        };
        let policy = FailurePolicy {
            ack_timeout: SimDuration::from_millis(rng.range_u64(5, 41)),
            max_notify_retries: rng.range_u64(1, 7) as u32,
            epoch_deadline: SimDuration::from_millis(rng.range_u64(150, 601)),
            allow_degraded: rng.chance(0.8),
            resume_repeats: rng.range_u64(0, 3) as u32,
            evict_excluded: rng.chance(0.5),
            ..FailurePolicy::default()
        };
        let interval_ms = rng.range_u64(80, 401);
        let run_ms = interval_ms * rng.range_u64(4, 13);
        let crash = if rng.chance(0.5) {
            let node = rng.range_u64(1, nodes as u64 + 1) as u32;
            let at_ms = rng.range_u64(0, run_ms / 2 + 1);
            let heal_at_ms = if rng.chance(0.5) {
                Some(rng.range_u64(at_ms + 1, run_ms + 2))
            } else {
                None
            };
            Some(CrashPlan { node, at_ms, heal_at_ms })
        } else {
            None
        };
        // Drawn last so older corpus seeds keep their earlier draws:
        // every field above replays exactly as it did before the
        // coordinator-crash dimension existed.
        let coord_crash = if rng.chance(0.35) {
            Some(CoordCrashPlan {
                at_ms: rng.range_u64(0, run_ms),
                downtime_ms: rng.range_u64(5, 401),
            })
        } else {
            None
        };
        // Also drawn at the end, for the same corpus-stability reason:
        // a sharded-engine probe on ~15% of seeds, always ≥64 nodes.
        let scale_probe = if rng.chance(0.15) {
            Some(ScaleProbePlan {
                groups: rng.range_u64(8, 13) as u32,
                per_group: rng.range_u64(8, 13) as u32,
                shards: if rng.chance(0.5) { 2 } else { 4 },
                epochs: 2,
            })
        } else {
            None
        };
        Scenario {
            seed,
            preset,
            preset_overridden: preset_override.is_some(),
            capture_ms,
            ack_explicit,
            scheduled_lead_ms,
            policy,
            interval_ms,
            run_ms,
            crash,
            coord_crash,
            scale_probe,
        }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.capture_ms.len()
    }
}

/// A model checkpoint agent: acks (optionally), reports done after its
/// local capture time, counts resumes/aborts. Mirrors the coordinator
/// unit-test fake so explorer traces exercise exactly the protocol
/// seams, not guest-domain mechanics.
struct ModelNode {
    addr: NodeAddr,
    lan: ComponentId,
    coord_addr: NodeAddr,
    capture_ms: u64,
    ack: bool,
}

struct CaptureDone {
    epoch: u64,
    trace: TraceCtx,
}

impl Component for ModelNode {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.downcast::<LinkDeliver>() {
            Ok(del) => {
                if let Some(
                    msg @ &(BusMsg::CheckpointAt { .. } | BusMsg::CheckpointNow { .. }),
                ) = del.frame.payload::<BusMsg>()
                {
                    let (epoch, trace) = match *msg {
                        BusMsg::CheckpointAt { epoch, trace, .. }
                        | BusMsg::CheckpointNow { epoch, trace, .. } => (epoch, trace),
                        _ => unreachable!(),
                    };
                    if self.ack {
                        let frame = Frame::new(
                            self.addr,
                            self.coord_addr,
                            BUS_MSG_BYTES,
                            BusMsg::NotifyAck { epoch, trace },
                        );
                        ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
                    }
                    ctx.post_self(
                        SimDuration::from_millis(self.capture_ms),
                        CaptureDone { epoch, trace },
                    );
                }
                return;
            }
            Err(p) => p,
        };
        if let Ok(done) = payload.downcast::<CaptureDone>() {
            let frame = Frame::new(
                self.addr,
                self.coord_addr,
                BUS_MSG_BYTES,
                BusMsg::NodeDone { epoch: done.epoch, image_bytes: 1 << 20, trace: done.trace },
            );
            ctx.post(self.lan, SimDuration::ZERO, LanTransmit { frame });
        }
    }
    sim::component_boilerplate!();
}

/// What one iteration produced.
pub struct IterationOutcome {
    pub scenario: Scenario,
    /// (committed, aborted, degraded) epoch counts from the coordinator.
    pub outcomes: (u64, u64, u64),
    /// Notification retries the failure detector issued.
    pub retries: u64,
    /// Coordinator process crashes injected (scheduled + buggify).
    pub coord_crashes: u64,
    /// WAL-replaying restarts that completed.
    pub coord_recoveries: u64,
    /// Total buggify fires across all points.
    pub buggify_fires: u64,
    /// Epochs the shadow model checked to a terminal outcome.
    pub epochs_checked: u64,
    /// The full trace-ring contents (shadow events included).
    pub events: Vec<TraceEvent>,
    /// Shadow-invariant violations; empty on a clean iteration.
    pub violations: Vec<ShadowViolation>,
    /// The coordinator's full epoch WAL (the flight recorder dumps its
    /// tail; recovery classification replays it).
    pub wal_records: Vec<WalRecord>,
    /// Telemetry metrics snapshot (counters/gauges/histograms CSV) at
    /// the end of the run.
    pub metrics_csv: String,
    /// `Some(true)` when the scenario carried a scale probe and the
    /// 1-shard and N-shard fingerprints matched; `Some(false)` on
    /// divergence; `None` when the scenario drew no probe.
    pub scale_probe_ok: Option<bool>,
}

impl IterationOutcome {
    /// FNV-1a over the CSV rendering of the trace: two runs of the same
    /// seed are byte-identical iff their fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in events_csv(&self.events).as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Renders a trace as CSV: the failure artifact format, and the byte
/// string replays are compared over. Shadow events get their packed
/// `(group, epoch, node)` columns unpacked; other events leave them
/// blank.
pub fn events_csv(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + 64);
    out.push_str("at_ns,host,subsystem,name,phase,arg,group,epoch,node\n");
    for ev in events {
        let phase = ev.phase.code();
        let unpacked = if ev.name.starts_with("shadow.") {
            let (g, e, n) = shadow::unpack(ev.arg);
            format!("{g},{e},{n}")
        } else if ev.name.starts_with("flow.") {
            let ctx = TraceCtx::from_arg(ev.arg);
            format!("{},{},", ctx.trace_id, ctx.span_id)
        } else {
            ",,".to_string()
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            ev.at.as_nanos(),
            ev.host,
            ev.subsystem,
            ev.name,
            phase,
            ev.arg,
            unpacked
        ));
    }
    out
}

/// Runs one exploration iteration: build the rig from the scenario,
/// arm buggify, drive periodic epochs (with the scripted crash/heal/
/// rejoin), drain, then replay the trace through the shadow model.
///
/// `sabotage` deliberately discards node 1's `shadow.done` instants
/// before handing the trace to the shadow — a synthetic bookkeeping
/// bug (the coordinator commits over a done report the model never
/// saw) that must surface as `CommitIncomplete` and must reproduce
/// byte-identically from the seed (the replay self-test).
pub fn run_iteration(scenario: &Scenario, sabotage: bool) -> IterationOutcome {
    let s = scenario;
    let mut e = Engine::new(s.seed);
    e.arm_buggify(Buggify::armed(s.seed, s.preset));

    let lan = e.add_component(Box::new(ControlLan::new(
        100_000_000,
        SimDuration::from_micros(40),
        SimDuration::from_micros(60),
    )));
    let coord_addr = NodeAddr(100);
    let mode = match s.scheduled_lead_ms {
        Some(lead) => TriggerMode::Scheduled { lead: SimDuration::from_millis(lead) },
        None => TriggerMode::EventDriven,
    };
    // Keep a clone of the WAL handle: the flight recorder dumps its
    // tail when the iteration fails.
    let wal = Wal::in_memory();
    let coord = e.add_component(Box::new(
        Coordinator::builder(coord_addr, lan)
            .mode(mode)
            .policy(s.policy)
            .wal(wal.clone())
            .build(),
    ));
    for (i, &ms) in s.capture_ms.iter().enumerate() {
        let addr = NodeAddr(i as u32 + 1);
        let n = e.add_component(Box::new(ModelNode {
            addr,
            lan,
            coord_addr,
            capture_ms: ms,
            ack: s.ack_explicit,
        }));
        e.with_component::<ControlLan, _>(lan, |l, _| {
            l.attach(addr, Endpoint { component: n, iface: IfaceId::CONTROL });
        });
        e.with_component::<Coordinator, _>(coord, |c, _| c.subscribe(addr));
    }
    e.with_component::<ControlLan, _>(lan, |l, _| {
        l.attach(coord_addr, Endpoint { component: coord, iface: IfaceId::CONTROL });
    });

    if let Some(crash) = s.crash {
        let plan = FaultPlan::new(s.seed)
            .with_crash(crash.node, SimTime::from_nanos(crash.at_ms * 1_000_000));
        e.with_component::<ControlLan, _>(lan, |l, _| l.inject_faults(plan));
    }

    e.with_component::<Coordinator, _>(coord, |c, ctx| {
        c.start_periodic(ctx, SimDuration::from_millis(s.interval_ms));
    });

    // Main run, split at the scripted marks: the heal instant (swap in
    // a clean fault plan and re-admit the node if it was evicted) and
    // the coordinator process crash. Marks run in time order; a heal
    // that lands while the coordinator is down still heals the LAN, and
    // its rejoin is a no-op (the crash already merged the roster back —
    // recovery re-derives evictions from the WAL).
    #[derive(Clone, Copy)]
    enum Mark {
        Heal,
        CoordCrash,
    }
    let mut marks: Vec<(u64, Mark)> = Vec::new();
    if let Some(heal_ms) = s.crash.and_then(|c| c.heal_at_ms).filter(|&h| h < s.run_ms) {
        marks.push((heal_ms, Mark::Heal));
    }
    if let Some(cc) = s.coord_crash.filter(|c| c.at_ms < s.run_ms) {
        marks.push((cc.at_ms, Mark::CoordCrash));
    }
    marks.sort_by_key(|&(ms, m)| (ms, matches!(m, Mark::CoordCrash) as u8));
    let mut now_ms = 0;
    for (ms, mark) in marks {
        e.run_for(SimDuration::from_millis(ms - now_ms));
        now_ms = ms;
        match mark {
            Mark::Heal => {
                e.with_component::<ControlLan, _>(lan, |l, _| {
                    l.inject_faults(FaultPlan::new(s.seed ^ 1));
                });
                let node = NodeAddr(s.crash.unwrap().node);
                e.with_component::<Coordinator, _>(coord, |c, ctx| {
                    c.rejoin(ctx, node);
                });
            }
            Mark::CoordCrash => {
                let downtime = SimDuration::from_millis(s.coord_crash.unwrap().downtime_ms);
                e.with_component::<Coordinator, _>(coord, |c, ctx| {
                    c.crash(ctx, downtime);
                });
            }
        }
    }
    e.run_for(SimDuration::from_millis(s.run_ms - now_ms));

    // Drain: stop triggering and let the in-flight round (if any) reach
    // its deadline-bounded terminal outcome. The slack past the deadline
    // covers a buggify coordinator crash firing at the very tail of the
    // round (max 400 ms downtime before the WAL-replaying restart),
    // plus the scheduled outage when one lands near the end of the run.
    e.with_component::<Coordinator, _>(coord, |c, _| c.stop_periodic());
    let crash_slack = s.coord_crash.map_or(0, |c| c.downtime_ms);
    let drain = s.policy.epoch_deadline + SimDuration::from_millis(800 + crash_slack);
    e.run_for(drain);

    let c = e.component_ref::<Coordinator>(coord).expect("coordinator");
    assert!(
        !c.is_crashed(),
        "coordinator still down after the drain (seed {:#x})",
        s.seed
    );
    let outcomes = c.outcome_counts();
    let retries = c.total_retries();
    let coord_crashes = c.crash_count();
    let coord_recoveries = c.recovery_count();
    let buggify_fires = e.buggify().total_fires();

    let mut events = e.telemetry().trace_events();
    if sabotage {
        events.retain(|ev| {
            ev.name != names::EV_SHADOW_DONE || shadow::unpack(ev.arg).2 != 1
        });
    }
    let mut shadow_state = ShadowEpochState::new();
    for ev in &events {
        shadow_state.step(ev);
    }
    shadow_state.finish();
    let violations = shadow_state.violations().to_vec();

    // The scale probe runs outside the iteration's engine: the same
    // ≥64-node lab at 1 shard and at the drawn layout, compared by
    // merged-telemetry fingerprint.
    let scale_probe_ok = s.scale_probe.map(|p| {
        let mut cfg = checkpoint::ScaleConfig::uniform(p.groups, p.per_group);
        cfg.epochs = p.epochs;
        let run_lab = |shards: u32| {
            let mut lab = checkpoint::build_scale_lab(&cfg, s.seed, shards);
            lab.run();
            lab.check_invariants()
                .map(|()| lab.outcome())
                .map_err(|e| format!("shards {shards}: {e}"))
        };
        match (run_lab(1), run_lab(p.shards)) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    });

    IterationOutcome {
        scenario: scenario.clone(),
        outcomes,
        retries,
        coord_crashes,
        coord_recoveries,
        buggify_fires,
        epochs_checked: shadow_state.epochs_checked,
        events,
        violations,
        wal_records: wal.replay(),
        metrics_csv: e.telemetry().to_csv(),
        scale_probe_ok,
    }
}

/// Convenience: derive the scenario and run it.
pub fn run_seed(seed: u64, preset_override: Option<Preset>, sabotage: bool) -> IterationOutcome {
    run_iteration(&Scenario::derive(seed, preset_override), sabotage)
}

/// The command line that replays iteration `seed` byte-identically.
pub fn repro_line(scenario: &Scenario, sabotage: bool) -> String {
    let mut line = format!(
        "cargo run --release -p tcd-bench --bin explore -- --replay-seed={}",
        scenario.seed
    );
    if scenario.preset_overridden {
        line.push_str(&format!(" --preset={}", scenario.preset.name()));
    }
    if sabotage {
        line.push_str(" --sabotage");
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_derivation_is_deterministic() {
        let a = Scenario::derive(42, None);
        let b = Scenario::derive(42, None);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.nodes() >= 2 && a.nodes() <= 8);
    }

    #[test]
    fn preset_override_perturbs_nothing_else() {
        let a = Scenario::derive(7, None);
        let b = Scenario::derive(7, Some(Preset::Chaos));
        assert_eq!(a.capture_ms, b.capture_ms);
        assert_eq!(a.interval_ms, b.interval_ms);
        assert_eq!(format!("{:?}", a.crash), format!("{:?}", b.crash));
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let a = run_seed(1234, None, false);
        let b = run_seed(1234, None, false);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(events_csv(&a.events), events_csv(&b.events));
        assert!(a.violations.is_empty(), "clean seed violated: {:?}", a.violations);
    }

    #[test]
    fn scale_probe_draws_and_passes() {
        // Find a seed that draws a probe (p = 0.15, so a handful of
        // tries suffices) and check the probe's guarantees: ≥64 nodes,
        // and a passing 1-vs-N-shard fingerprint comparison.
        let seed = (0..64)
            .find(|&s| Scenario::derive(s, None).scale_probe.is_some())
            .expect("some seed in 0..64 draws a probe");
        let s = Scenario::derive(seed, None);
        let p = s.scale_probe.unwrap();
        assert!(p.nodes() >= 64, "probe labs must be at least 64 nodes");
        assert!(p.shards == 2 || p.shards == 4);
        let out = run_iteration(&s, false);
        assert_eq!(
            out.scale_probe_ok,
            Some(true),
            "seed {seed:#x}: scale probe diverged"
        );
        // Seeds without a probe report None, not a pass.
        let bare = (0..64)
            .find(|&s| Scenario::derive(s, None).scale_probe.is_none())
            .expect("some seed in 0..64 skips the probe");
        assert!(run_iteration(&Scenario::derive(bare, None), false)
            .scale_probe_ok
            .is_none());
    }

    #[test]
    fn sabotage_forces_a_violation_that_replays_identically() {
        // Seed picked to commit at least one epoch cleanly under calm.
        let a = run_seed(5, Some(Preset::Calm), true);
        let b = run_seed(5, Some(Preset::Calm), true);
        assert!(
            !a.violations.is_empty(),
            "sabotaged run must violate the shadow model"
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.violations, b.violations);
    }
}
