//! The violation flight recorder: a replayable black box for failed
//! exploration runs.
//!
//! When an iteration fails — a shadow-checker violation, an explorer
//! assertion, a sabotage self-test — the live process state that
//! explains the failure is about to be dropped on the floor. This
//! module snapshots it first: the trace-ring tail (the causal record of
//! what the protocol actually did), the coordinator's epoch-WAL tail
//! (what a crash-recovery would have seen), the shadow checker's
//! verdicts, the telemetry metrics snapshot, and the full derived
//! scenario with its repro command line.
//!
//! Everything in the dump is a pure function of the iteration's seed,
//! so re-running the printed repro line regenerates the identical black
//! box: the dump is not just a post-mortem, it is a *checkable claim*
//! that the failure reproduces (the explorer's self-test and the corpus
//! regression test diff live and replayed dumps byte-for-byte).

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::explore::{events_csv, repro_line, IterationOutcome};

/// Trace events kept in the dump (the tail is where the violation is;
/// the full ring can run to tens of thousands of lines).
pub const TRACE_TAIL: usize = 200;
/// WAL frames kept in the dump.
pub const WAL_TAIL: usize = 64;

fn section(out: &mut String, title: &str) {
    let _ = writeln!(out, "=== {title} {}", "=".repeat(60usize.saturating_sub(title.len())));
}

/// Renders the black box as deterministic text: same outcome in, same
/// bytes out. `reason` names what tripped the recorder (e.g.
/// "shadow violation", "self-test sabotage").
pub fn render(outcome: &IterationOutcome, reason: &str, sabotage: bool) -> String {
    let s = &outcome.scenario;
    let mut out = String::with_capacity(16 * 1024);
    section(&mut out, "FLIGHT RECORDER");
    let _ = writeln!(out, "reason: {reason}");
    let _ = writeln!(out, "seed: {:#x}", s.seed);
    let _ = writeln!(out, "repro: {}", repro_line(s, sabotage));
    let _ = writeln!(out, "scenario: {s:?}");
    let _ = writeln!(
        out,
        "outcomes: committed={} aborted={} degraded={} retries={} \
         coord_crashes={} coord_recoveries={} buggify_fires={}",
        outcome.outcomes.0,
        outcome.outcomes.1,
        outcome.outcomes.2,
        outcome.retries,
        outcome.coord_crashes,
        outcome.coord_recoveries,
        outcome.buggify_fires
    );

    section(&mut out, "SHADOW");
    let _ = writeln!(out, "epochs_checked: {}", outcome.epochs_checked);
    let _ = writeln!(out, "violations: {}", outcome.violations.len());
    for v in &outcome.violations {
        let _ = writeln!(out, "  {v:?}");
    }

    let wal = &outcome.wal_records;
    let skip = wal.len().saturating_sub(WAL_TAIL);
    section(&mut out, "WAL TAIL");
    let _ = writeln!(out, "frames: {} (showing last {})", wal.len(), wal.len() - skip);
    for (i, rec) in wal.iter().enumerate().skip(skip) {
        let _ = writeln!(out, "  [{i}] {rec:?}");
    }

    let skip = outcome.events.len().saturating_sub(TRACE_TAIL);
    section(&mut out, "TRACE TAIL");
    let _ = writeln!(
        out,
        "events: {} (showing last {})",
        outcome.events.len(),
        outcome.events.len() - skip
    );
    out.push_str(&events_csv(&outcome.events[skip..]));

    section(&mut out, "TELEMETRY");
    out.push_str(&outcome.metrics_csv);
    out
}

/// The WAL-tail section alone (the corpus regression test compares this
/// slice of a live run against its replay byte-for-byte).
pub fn wal_tail(outcome: &IterationOutcome) -> String {
    let wal = &outcome.wal_records;
    let skip = wal.len().saturating_sub(WAL_TAIL);
    let mut out = String::new();
    for (i, rec) in wal.iter().enumerate().skip(skip) {
        let _ = writeln!(out, "[{i}] {rec:?}");
    }
    out
}

/// The shadow-summary section alone (see [`wal_tail`]).
pub fn shadow_summary(outcome: &IterationOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "epochs_checked: {}", outcome.epochs_checked);
    for v in &outcome.violations {
        let _ = writeln!(out, "{v:?}");
    }
    out
}

/// Writes the rendered black box to `results/flightrec-<seed>.txt`
/// (creating `results/` if needed) and returns the path. Dumps are
/// failure artifacts: they are not committed, and a rerun of the same
/// seed overwrites its previous dump with identical bytes.
pub fn write_dump(outcome: &IterationOutcome, reason: &str, sabotage: bool) -> PathBuf {
    let path = crate::out_dir().join(format!("flightrec-{:016x}.txt", outcome.scenario.seed));
    std::fs::write(&path, render(outcome, reason, sabotage)).expect("write flight-recorder dump");
    path
}
