//! Minimal JSON (no external deps): enough for the bench binaries to
//! append to and validate their `BENCH_*.json` artifacts.
//!
//! Shared by `bench_hotpath` and `bench_store`; hand-rolled per the
//! minimal-deps rule (DESIGN.md §3.6) — same spirit as the `ckptstore`
//! codec, but for the human-readable perf-trajectory files at the repo
//! root.

use std::fmt::Write as _;

/// A parsed JSON value. Object fields keep insertion order so appended
/// entries diff cleanly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` on non-objects or missing keys.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    let _ = write!(out, "\"{k}\": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Two-space-indented rendering with a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = match self.parse()? {
                        Json::Str(s) => s,
                        _ => return Err(self.err("object key must be a string")),
                    };
                    self.expect(b':')?;
                    let val = self.parse()?;
                    fields.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.parse()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    let b = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated string"))?;
                    self.pos += 1;
                    match b {
                        b'"' => return Ok(Json::Str(s)),
                        b'\\' => {
                            let esc = *self
                                .bytes
                                .get(self.pos)
                                .ok_or_else(|| self.err("bad escape"))?;
                            self.pos += 1;
                            match esc {
                                b'"' => s.push('"'),
                                b'\\' => s.push('\\'),
                                b'/' => s.push('/'),
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                b'r' => s.push('\r'),
                                b'u' => {
                                    let hex = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("bad \\u escape"))?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex)
                                            .map_err(|_| self.err("bad \\u escape"))?,
                                        16,
                                    )
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                    self.pos += 4;
                                    s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                }
                                _ => return Err(self.err("unknown escape")),
                            }
                        }
                        _ => {
                            // Re-sync to char boundaries for multi-byte UTF-8.
                            let start = self.pos - 1;
                            let mut end = self.pos;
                            while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                                end += 1;
                            }
                            s.push_str(
                                std::str::from_utf8(&self.bytes[start..end])
                                    .map_err(|_| self.err("invalid utf-8"))?,
                            );
                            self.pos = end;
                        }
                    }
                }
            }
            b't' | b'f' | b'n' => {
                for (lit, val) in [
                    ("true", Json::Bool(true)),
                    ("false", Json::Bool(false)),
                    ("null", Json::Null),
                ] {
                    if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                        self.pos += lit.len();
                        return Ok(val);
                    }
                }
                Err(self.err("unknown literal"))
            }
            _ => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Json::Num)
                    .ok_or_else(|| self.err("invalid number"))
            }
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.parse()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("v1".into())),
            (
                "entries".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("label".into(), Json::Str("a \"quoted\" label".into())),
                    ("n".into(), Json::Num(42.0)),
                    ("frac".into(), Json::Num(1.5)),
                    ("ok".into(), Json::Bool(true)),
                    ("none".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(parse_json(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1, 2,]").is_err());
    }
}
