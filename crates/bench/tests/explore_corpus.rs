//! Replays the committed explorer seed corpus and re-proves the
//! byte-identical-replay guarantee on every `cargo test`.
//!
//! The corpus (`corpus/explore.seeds`) pins scenarios the explorer has
//! swept clean; any protocol or shadow-model regression that breaks one
//! of them fails here with the exact seed to replay. Seeds of fixed
//! real violations get appended to the corpus so they stay fixed.

use std::fs;
use std::path::Path;

use sim::Preset;
use tcd_bench::explore::{events_csv, run_seed};

/// Parses `corpus/explore.seeds`: `<seed> <preset>` per line, `#`
/// comments and blanks skipped.
fn corpus() -> Vec<(u64, Option<Preset>)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus/explore.seeds");
    let text = fs::read_to_string(&path).expect("read corpus/explore.seeds");
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let seed = parts.next().expect("seed column");
        let seed = seed.strip_prefix("0x").map_or_else(
            || seed.parse::<u64>().expect("decimal seed"),
            |hex| u64::from_str_radix(hex, 16).expect("hex seed"),
        );
        let preset = match parts.next().expect("preset column") {
            "mix" => None,
            name => Some(Preset::parse(name).expect("known preset")),
        };
        out.push((seed, preset));
    }
    assert!(!out.is_empty(), "corpus must not be empty");
    out
}

#[test]
fn corpus_seeds_replay_clean() {
    for (seed, preset) in corpus() {
        let out = run_seed(seed, preset, false);
        assert!(
            out.violations.is_empty(),
            "corpus seed {seed:#x} (preset {:?}) violated the shadow model: {:?}",
            preset,
            out.violations
        );
        assert!(
            out.epochs_checked > 0,
            "corpus seed {seed:#x} checked no epochs — scenario degenerate"
        );
    }
}

#[test]
fn corpus_seeds_replay_byte_identically() {
    // Two independent runs of the first few corpus seeds must produce
    // the exact same trace bytes.
    for (seed, preset) in corpus().into_iter().take(4) {
        let a = run_seed(seed, preset, false);
        let b = run_seed(seed, preset, false);
        assert_eq!(
            events_csv(&a.events),
            events_csv(&b.events),
            "corpus seed {seed:#x} diverged between runs"
        );
    }
}

#[test]
fn injected_violation_reproduces_from_its_seed() {
    // The failure path itself is regression-tested: a sabotaged run
    // (node 1's done reports scrubbed from the trace) must trip the
    // shadow model, and must do so byte-identically across replays.
    let a = run_seed(5, Some(Preset::Calm), true);
    let b = run_seed(5, Some(Preset::Calm), true);
    assert!(!a.violations.is_empty(), "sabotage produced no violation");
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(events_csv(&a.events), events_csv(&b.events));
}
