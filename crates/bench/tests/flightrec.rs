//! The flight recorder's replayability contract: a dump written at
//! failure time is byte-for-byte the dump a later replay of the printed
//! seed produces. Without that, the black box is a screenshot; with it,
//! it is evidence.

use tcd_bench::explore::run_seed;
use tcd_bench::flightrec;
use sim::Preset;

/// The corpus' known-violation case: seed 5 under calm with sabotage
/// (node 1's `shadow.done` instants scrubbed) trips `CommitIncomplete`.
fn known_violation() -> tcd_bench::explore::IterationOutcome {
    let out = run_seed(5, Some(Preset::Calm), true);
    assert!(!out.violations.is_empty(), "known-violation seed ran clean");
    out
}

#[test]
fn dump_sections_cover_the_black_box() {
    let out = known_violation();
    let dump = flightrec::render(&out, "test", true);
    for section in [
        "=== FLIGHT RECORDER",
        "=== SHADOW",
        "=== WAL TAIL",
        "=== TRACE TAIL",
        "=== TELEMETRY",
    ] {
        assert!(dump.contains(section), "dump missing section {section}");
    }
    assert!(
        dump.contains("repro: cargo run --release -p tcd-bench --bin explore -- \
                       --replay-seed=5 --preset=calm --sabotage"),
        "dump must carry the replay command line"
    );
    assert!(dump.contains("RoundOpen"), "WAL tail must show round frames");
}

#[test]
fn wal_tail_and_shadow_summary_replay_byte_for_byte() {
    // The live run's dump vs. the dump a fresh process would build from
    // the repro seed: the WAL tail and shadow summary must match
    // exactly, or the black box cannot be trusted as a repro claim.
    let live = known_violation();
    let replayed = known_violation();
    assert_eq!(
        flightrec::wal_tail(&live),
        flightrec::wal_tail(&replayed),
        "WAL tails diverged between live run and replay"
    );
    assert_eq!(
        flightrec::shadow_summary(&live),
        flightrec::shadow_summary(&replayed),
        "shadow summaries diverged between live run and replay"
    );
    assert_eq!(
        flightrec::render(&live, "r", true),
        flightrec::render(&replayed, "r", true),
        "full dumps diverged between live run and replay"
    );
}

#[test]
fn write_dump_lands_under_results() {
    let out = known_violation();
    let path = flightrec::write_dump(&out, "test", true);
    let bytes = std::fs::read_to_string(&path).expect("dump readable");
    assert_eq!(bytes, flightrec::render(&out, "test", true));
    assert!(path.file_name().unwrap().to_str().unwrap().starts_with("flightrec-"));
}
