//! A scripted syscall driver for unit-testing guest programs as pure
//! state machines, with a tiny in-memory "kernel" good enough to answer
//! file, timer, and compute syscalls deterministically.

#![cfg(test)]

use std::collections::HashMap;

use guestos::prog::FileId;
use guestos::{GuestProg, Syscall, SysRet};

/// Drives a program against a fake kernel until it exits or `max_steps`.
pub struct Driver {
    pub now_ns: u64,
    files: HashMap<FileId, u64>,
    /// Log of syscall kinds, for assertions.
    pub issued: Vec<&'static str>,
    pub exited: bool,
}

impl Driver {
    pub fn new() -> Self {
        Driver {
            now_ns: 0,
            files: HashMap::new(),
            issued: Vec::new(),
            exited: false,
        }
    }

    /// Runs the program; panics if it doesn't block on the network (which
    /// the fake kernel cannot answer) or exit within `max_steps`.
    pub fn run(&mut self, prog: &mut dyn GuestProg, max_steps: usize) {
        let mut ret = SysRet::Start;
        for _ in 0..max_steps {
            let sys = prog.step(ret);
            ret = match sys {
                Syscall::Gettimeofday => {
                    self.issued.push("gettimeofday");
                    SysRet::Time(self.now_ns)
                }
                Syscall::Sleep { ns } => {
                    self.issued.push("sleep");
                    // Tick quantization: round up to 10 ms + one tick.
                    let tick = 10_000_000;
                    self.now_ns += ns.div_ceil(tick) * tick + tick;
                    SysRet::Ok
                }
                Syscall::Compute { ns } => {
                    self.issued.push("compute");
                    self.now_ns += ns;
                    SysRet::Ok
                }
                Syscall::Yield => {
                    self.issued.push("yield");
                    SysRet::Ok
                }
                Syscall::Create { file } => {
                    self.issued.push("create");
                    if let std::collections::hash_map::Entry::Vacant(e) = self.files.entry(file) {
                        e.insert(0);
                        SysRet::Ok
                    } else {
                        SysRet::Err("exists")
                    }
                }
                Syscall::Write { file, offset, bytes } => {
                    self.issued.push("write");
                    // Charge disk-ish time: 4 KiB ≈ 58 µs at 70 MB/s.
                    self.now_ns += bytes * 1_000 / 70;
                    let size = self.files.get_mut(&file).expect("file exists");
                    *size = (*size).max(offset + bytes);
                    SysRet::Ok
                }
                Syscall::Read { file, bytes, .. } => {
                    self.issued.push("read");
                    self.now_ns += bytes * 1_000 / 70;
                    assert!(self.files.contains_key(&file), "read of missing file");
                    SysRet::Ok
                }
                Syscall::Delete { file } => {
                    self.issued.push("delete");
                    self.files.remove(&file).expect("delete of missing file");
                    SysRet::Ok
                }
                Syscall::Sync => {
                    self.issued.push("sync");
                    self.now_ns += 5_000_000;
                    SysRet::Ok
                }
                Syscall::Exit => {
                    self.exited = true;
                    return;
                }
                _ => panic!("fake kernel cannot answer a network syscall"),
            };
        }
        panic!("program did not exit within the step budget");
    }

    /// Size of a file, if it exists.
    pub fn file_size(&self, file: FileId) -> Option<u64> {
        self.files.get(&file).copied()
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}
