//! Large-file copy: the disk-intensive workload of Fig 9 and §7.2.
//!
//! Reads a source file chunk by chunk and writes a destination file,
//! recording `(guest time, cumulative bytes written)` so the harness can
//! bin write throughput over one-second intervals as the paper does.

use std::any::Any;

use guestos::prog::FileId;
use guestos::{GuestProg, Syscall, SysRet};

/// Creates a file, writes it sequentially, syncs, exits: the untimed prep
/// step for phase-isolated benchmarks and the swap workload generator.
#[derive(Clone, Debug)]
pub struct FileWriter {
    file: FileId,
    bytes: u64,
    chunk: u64,
    offset: u64,
    phase: u8,
    looping: bool,
    /// Completed passes over the file.
    pub passes: u64,
    /// True once the final sync completed.
    pub finished: bool,
}

impl FileWriter {
    /// Writes `bytes` into `file` in 256 KiB chunks.
    pub fn new(file: FileId, bytes: u64) -> Self {
        FileWriter {
            file,
            bytes,
            chunk: 256 * 1024,
            offset: 0,
            phase: 0,
            looping: false,
            passes: 0,
            finished: false,
        }
    }

    /// Keeps rewriting the same file forever — a bounded-footprint
    /// disk-intensive load (dirties the same blocks repeatedly, the §7.2
    /// pre-copy worst case).
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }
}

impl GuestProg for FileWriter {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Err(e) = ret {
            if e != "exists" {
                panic!("filewriter: {e}");
            }
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Syscall::Create { file: self.file }
            }
            1 => {
                if self.offset >= self.bytes {
                    self.phase = 2;
                    return Syscall::Sync;
                }
                let off = self.offset;
                self.offset += self.chunk;
                Syscall::Write {
                    file: self.file,
                    offset: off,
                    bytes: self.chunk.min(self.bytes - off),
                }
            }
            _ => {
                self.passes += 1;
                if self.looping {
                    self.offset = 0;
                    self.phase = 1;
                    return Syscall::Yield;
                }
                self.finished = true;
                Syscall::Exit
            }
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "filewriter"
    }
}

#[derive(Clone, Copy, Debug)]
enum Step {
    CreateSrc,
    FillSrc,
    SyncSrc,
    CreateDst,
    ReadChunk,
    ChunkCpu,
    WriteChunk,
    Stamp,
    FinalSync,
    Done,
}

/// The copy program.
#[derive(Clone, Debug)]
pub struct FileCopy {
    src: FileId,
    dst: FileId,
    bytes: u64,
    chunk: u64,
    offset: u64,
    /// Per-chunk CPU cost (cp's user+kernel time, ext3 journaling): keeps
    /// the copy from saturating the disk, as real `cp` does not.
    chunk_cpu_ns: u64,
    step: Step,
    /// `(guest time ns, cumulative bytes written)` samples.
    pub progress: Vec<(u64, u64)>,
    /// Guest time when the copy phase started/finished.
    pub t_start: Option<u64>,
    pub t_end: Option<u64>,
}

impl FileCopy {
    /// Copies `bytes` from `src` to `dst` in 256 KiB chunks (the source is
    /// created and filled first, then flushed, so the copy phase measures
    /// read+write).
    pub fn new(src: FileId, dst: FileId, bytes: u64) -> Self {
        FileCopy {
            src,
            dst,
            bytes,
            chunk: 256 * 1024,
            offset: 0,
            chunk_cpu_ns: 0,
            step: Step::CreateSrc,
            progress: Vec::new(),
            t_start: None,
            t_end: None,
        }
    }

    /// Adds a per-chunk CPU cost to the copy loop.
    pub fn with_chunk_cpu(mut self, ns: u64) -> Self {
        self.chunk_cpu_ns = ns;
        self
    }

    /// True when the copy completed.
    pub fn done(&self) -> bool {
        matches!(self.step, Step::Done)
    }

    /// Total elapsed copy time, ns.
    pub fn elapsed_ns(&self) -> Option<u64> {
        Some(self.t_end? - self.t_start?)
    }
}

impl GuestProg for FileCopy {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Err(e) = ret {
            panic!("filecopy: io error {e}");
        }
        match self.step {
            Step::CreateSrc => {
                self.step = Step::FillSrc;
                Syscall::Create { file: self.src }
            }
            Step::FillSrc => {
                if self.offset >= self.bytes {
                    self.offset = 0;
                    self.step = Step::SyncSrc;
                    return Syscall::Sync;
                }
                let off = self.offset;
                self.offset += self.chunk;
                Syscall::Write {
                    file: self.src,
                    offset: off,
                    bytes: self.chunk,
                }
            }
            Step::SyncSrc => {
                self.step = Step::CreateDst;
                Syscall::Create { file: self.dst }
            }
            Step::CreateDst => {
                self.step = Step::ReadChunk;
                Syscall::Gettimeofday
            }
            Step::ReadChunk => {
                if let SysRet::Time(t) = ret {
                    if self.t_start.is_none() {
                        self.t_start = Some(t);
                    } else {
                        self.progress.push((t, self.offset));
                        if self.offset >= self.bytes {
                            self.step = Step::FinalSync;
                            return Syscall::Sync;
                        }
                    }
                }
                self.step = if self.chunk_cpu_ns > 0 {
                    Step::ChunkCpu
                } else {
                    Step::WriteChunk
                };
                Syscall::Read {
                    file: self.src,
                    offset: self.offset,
                    bytes: self.chunk,
                }
            }
            Step::ChunkCpu => {
                self.step = Step::WriteChunk;
                Syscall::Compute {
                    ns: self.chunk_cpu_ns,
                }
            }
            Step::WriteChunk => {
                self.step = Step::Stamp;
                Syscall::Write {
                    file: self.dst,
                    offset: self.offset,
                    bytes: self.chunk,
                }
            }
            Step::Stamp => {
                self.offset += self.chunk;
                self.step = Step::ReadChunk;
                Syscall::Gettimeofday
            }
            Step::FinalSync => {
                self.step = Step::Done;
                Syscall::Gettimeofday
            }
            Step::Done => {
                if let SysRet::Time(t) = ret {
                    if self.t_end.is_none() {
                        self.t_end = Some(t);
                    }
                }
                Syscall::Exit
            }
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "filecopy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Driver;

    #[test]
    fn copy_copies_whole_file_and_stamps_progress() {
        let mut p = FileCopy::new(FileId(1), FileId(2), 4 << 20);
        let mut d = Driver::new();
        d.run(&mut p, 10_000);
        assert!(p.done());
        assert_eq!(d.file_size(FileId(2)), Some(4 << 20));
        assert!(p.elapsed_ns().unwrap() > 0);
        assert_eq!(p.progress.len(), (4 << 20) / (256 * 1024));
        // Progress is monotone in both time and bytes.
        for w in p.progress.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 > w[0].1);
        }
    }

    #[test]
    fn chunk_cpu_slows_the_copy() {
        let run = |cpu: u64| {
            let mut p = FileCopy::new(FileId(1), FileId(2), 1 << 20).with_chunk_cpu(cpu);
            let mut d = Driver::new();
            d.run(&mut p, 10_000);
            p.elapsed_ns().unwrap()
        };
        assert!(run(10_000_000) > run(0));
    }

    #[test]
    fn writer_loops_when_asked() {
        let mut p = FileWriter::new(FileId(9), 1 << 20).looping();
        let d = Driver::new();
        // A looping writer never exits; drive a bounded number of steps.
        let mut ret = guestos::SysRet::Start;
        for _ in 0..200 {
            let sys = p.step(ret);
            ret = match sys {
                guestos::Syscall::Create { .. } => guestos::SysRet::Ok,
                guestos::Syscall::Write { .. } => guestos::SysRet::Ok,
                guestos::Syscall::Sync => guestos::SysRet::Ok,
                guestos::Syscall::Yield => guestos::SysRet::Ok,
                guestos::Syscall::Exit => panic!("looping writer exited"),
                _ => panic!("unexpected syscall"),
            };
        }
        assert!(p.passes >= 2, "completed {} passes", p.passes);
        let _ = d;
    }

    #[test]
    fn writer_finishes_once_when_not_looping() {
        let mut p = FileWriter::new(FileId(9), 1 << 20);
        let mut d = Driver::new();
        d.run(&mut p, 1000);
        assert!(p.finished);
        assert_eq!(p.passes, 1);
        assert_eq!(d.file_size(FileId(9)), Some(1 << 20));
    }
}
