//! Microbenchmarks: the usleep loop (Fig 4) and the CPU loop (Fig 5).

use std::any::Any;

use guestos::{GuestProg, Syscall, SysRet};

/// The Fig 4 workload: `usleep(10 ms)` in a loop, timing every iteration
/// with `gettimeofday`. At HZ=100 an iteration measures ~20 ms.
#[derive(Clone, Debug)]
pub struct UsleepLoop {
    sleep_ns: u64,
    max_iters: usize,
    t_prev: Option<u64>,
    /// Recorded `(end-of-iteration guest time, iteration length)` pairs.
    pub samples: Vec<(u64, u64)>,
}

impl UsleepLoop {
    /// Creates the canonical 10 ms / `iters`-iteration benchmark.
    pub fn new(sleep_ns: u64, iters: usize) -> Self {
        UsleepLoop {
            sleep_ns,
            max_iters: iters,
            t_prev: None,
            samples: Vec::new(),
        }
    }

    /// Iteration lengths in nanoseconds.
    pub fn iteration_ns(&self) -> Vec<u64> {
        self.samples.iter().map(|&(_, d)| d).collect()
    }
}

impl GuestProg for UsleepLoop {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Time(t) = ret {
            if let Some(prev) = self.t_prev {
                self.samples.push((t, t - prev));
                if self.samples.len() >= self.max_iters {
                    return Syscall::Exit;
                }
            }
            self.t_prev = Some(t);
            return Syscall::Sleep { ns: self.sleep_ns };
        }
        // Start or sleep-completed: read the clock.
        Syscall::Gettimeofday
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "usleep-loop"
    }
}

/// The Fig 5 workload: a fixed CPU burst per iteration (236.6 ms on the
/// paper's hardware), timed with `gettimeofday`.
#[derive(Clone, Debug)]
pub struct CpuLoop {
    burst_ns: u64,
    max_iters: usize,
    t_prev: Option<u64>,
    /// Recorded `(end time, iteration length)` pairs.
    pub samples: Vec<(u64, u64)>,
}

impl CpuLoop {
    /// Creates the benchmark with the paper's 236.6 ms burst.
    pub fn paper_default(iters: usize) -> Self {
        CpuLoop::new(236_600_000, iters)
    }

    /// Creates a benchmark with an arbitrary burst.
    pub fn new(burst_ns: u64, iters: usize) -> Self {
        CpuLoop {
            burst_ns,
            max_iters: iters,
            t_prev: None,
            samples: Vec::new(),
        }
    }

    /// Iteration lengths in nanoseconds.
    pub fn iteration_ns(&self) -> Vec<u64> {
        self.samples.iter().map(|&(_, d)| d).collect()
    }
}

impl GuestProg for CpuLoop {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Time(t) = ret {
            if let Some(prev) = self.t_prev {
                self.samples.push((t, t - prev));
                if self.samples.len() >= self.max_iters {
                    return Syscall::Exit;
                }
            }
            self.t_prev = Some(t);
            return Syscall::Compute { ns: self.burst_ns };
        }
        Syscall::Gettimeofday
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "cpu-loop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Driver;

    #[test]
    fn usleep_loop_measures_tick_quantized_iterations() {
        let mut p = UsleepLoop::new(10_000_000, 20);
        let mut d = Driver::new();
        d.run(&mut p, 1000);
        assert!(d.exited);
        assert_eq!(p.samples.len(), 20);
        // The fake kernel quantizes exactly like HZ=100 Linux: 20 ms.
        for &(_, dt) in &p.samples {
            assert_eq!(dt, 20_000_000);
        }
    }

    #[test]
    fn cpu_loop_measures_exact_bursts() {
        let mut p = CpuLoop::new(236_600_000, 5);
        let mut d = Driver::new();
        d.run(&mut p, 1000);
        assert!(d.exited);
        assert_eq!(p.iteration_ns(), vec![236_600_000; 5]);
    }

    #[test]
    fn paper_default_matches_burst() {
        let p = CpuLoop::paper_default(1);
        // The configured burst is the paper's 236.6 ms.
        let mut d = Driver::new();
        let mut p = p;
        d.run(&mut p, 100);
        assert_eq!(p.samples[0].1, 236_600_000);
    }
}
