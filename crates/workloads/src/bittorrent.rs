//! A BitTorrent-like peer-to-peer file distribution workload (Fig 7).
//!
//! "BitTorrent is a popular peer-to-peer program for cooperatively
//! downloading large files... To get more predictable behavior, we
//! modified BitTorrent to use a static tracker." The static tracker is a
//! configured peer list; peers exchange piece requests over TCP, verify
//! received pieces (hash-check CPU), write them to disk, and announce
//! possession so other leechers can download from them too.
//!
//! The peer runs as a single poll-loop program (select-style servers were
//! the norm for 2008 BitTorrent clients): each round it accepts new
//! connections, drains every socket non-blockingly, serves queued
//! requests, issues new requests, then sleeps one poll interval.

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use guestos::prog::{FileId, SockFd};
use guestos::{GuestProg, Syscall, SysRet};
use hwsim::NodeAddr;

/// Protocol messages riding the TCP streams as [`guestos::net::tcp::AppMsg`]
/// markers.
#[derive(Clone, Debug)]
pub enum BtMsg {
    /// Peer introduction with its current piece set.
    Handshake { have: Vec<u32> },
    /// Ask for one piece.
    Request { piece: u32 },
    /// Marks the end of `piece`'s data bytes.
    Piece { piece: u32 },
    /// Announce newly acquired piece.
    Have { piece: u32 },
}

/// Control-message wire size (tiny).
const CTRL_BYTES: u64 = 68;

/// Per-byte hash-check CPU cost (SHA1 era): ~5 ns/byte.
const HASH_NS_PER_BYTE: f64 = 5.0;

/// One peer connection's state.
#[derive(Clone, Debug)]
struct PeerConn {
    fd: SockFd,
    sent_handshake: bool,
    got_handshake: bool,
    remote_have: HashSet<u32>,
    /// Piece we requested from this peer and are waiting for.
    outstanding: Option<u32>,
    /// Requests from the peer we have not served yet.
    serve_q: VecDeque<u32>,
}

impl PeerConn {
    fn new(fd: SockFd) -> Self {
        PeerConn {
            fd,
            sent_handshake: false,
            got_handshake: false,
            remote_have: HashSet::new(),
            outstanding: None,
            serve_q: VecDeque::new(),
        }
    }
}

/// What the previous syscall was for.
#[derive(Clone, Debug)]
enum Op {
    Idle,
    Sleeping,
    Listened,
    ConnectPeer,
    AcceptNb,
    Recv(usize),
    SendHandshake(usize),
    Serve(usize, u32),
    Request(usize, u32),
    HashCheck(u32),
    DiskWrite(u32),
    Announce,
    Stamp,
    CreateFile,
}

/// A queued action for this round.
#[derive(Clone, Debug)]
enum Todo {
    Accept,
    Recv(usize),
    Handshake(usize),
    Serve(usize),
    Request(usize),
}

/// One BitTorrent peer.
#[derive(Clone, Debug)]
pub struct BtPeer {
    // Configuration.
    port: u16,
    peers_to_connect: Vec<NodeAddr>,
    npieces: u32,
    piece_bytes: u64,
    poll_ns: u64,
    file: FileId,

    // State.
    have: HashSet<u32>,
    requested: HashSet<u32>,
    conns: Vec<PeerConn>,
    todo: VecDeque<Todo>,
    last_op: Op,
    started: bool,
    pending_announce: Vec<u32>,
    announce_cursor: usize,
    /// Received messages not yet acted on (a Piece pauses processing for
    /// its hash check, so later messages wait here).
    backlog: VecDeque<(usize, Arc<BtMsg>)>,

    /// Download progress: `(guest time ns, cumulative bytes)`.
    pub progress: Vec<(u64, u64)>,
    /// Pieces served to other peers.
    pub served: u64,
}

impl BtPeer {
    /// Creates a seeder: owns all pieces, never requests.
    pub fn seeder(port: u16, npieces: u32, piece_bytes: u64, file: FileId) -> Self {
        let mut p = BtPeer::leecher(port, Vec::new(), npieces, piece_bytes, file);
        p.have = (0..npieces).collect();
        p
    }

    /// Creates a leecher that will connect to `peers`.
    pub fn leecher(
        port: u16,
        peers: Vec<NodeAddr>,
        npieces: u32,
        piece_bytes: u64,
        file: FileId,
    ) -> Self {
        BtPeer {
            port,
            peers_to_connect: peers,
            npieces,
            piece_bytes,
            poll_ns: 20_000_000,
            file,
            have: HashSet::new(),
            requested: HashSet::new(),
            conns: Vec::new(),
            todo: VecDeque::new(),
            last_op: Op::Idle,
            started: false,
            pending_announce: Vec::new(),
            announce_cursor: 0,
            backlog: VecDeque::new(),
            progress: Vec::new(),
            served: 0,
        }
    }

    /// Pieces currently held.
    pub fn pieces(&self) -> usize {
        self.have.len()
    }

    /// Diagnostic summary: (conns, got_handshakes, serve queue depth,
    /// outstanding requests).
    pub fn debug_summary(&self) -> (usize, usize, usize, usize) {
        (
            self.conns.len(),
            self.conns.iter().filter(|c| c.got_handshake).count(),
            self.conns.iter().map(|c| c.serve_q.len()).sum(),
            self.conns.iter().filter(|c| c.outstanding.is_some()).count(),
        )
    }

    /// Cumulative downloaded bytes.
    pub fn downloaded_bytes(&self) -> u64 {
        self.progress.last().map(|&(_, b)| b).unwrap_or(0)
    }

    fn conn_idx(&self, fd: SockFd) -> Option<usize> {
        self.conns.iter().position(|c| c.fd == fd)
    }

    /// Picks a piece to request from conn `i` (random-ish rarest proxy:
    /// lowest-numbered missing piece the peer has that nobody else is
    /// fetching — deterministic, good enough for throughput shape).
    fn pick_piece(&self, i: usize) -> Option<u32> {
        let c = &self.conns[i];
        (0..self.npieces).find(|p| {
            !self.have.contains(p) && !self.requested.contains(p) && c.remote_have.contains(p)
        })
    }

    fn rebuild_round(&mut self) {
        self.todo.clear();
        self.todo.push_back(Todo::Accept);
        for i in 0..self.conns.len() {
            self.todo.push_back(Todo::Recv(i));
            if !self.conns[i].sent_handshake {
                self.todo.push_back(Todo::Handshake(i));
            }
            if !self.conns[i].serve_q.is_empty() {
                self.todo.push_back(Todo::Serve(i));
            }
            if self.conns[i].got_handshake && self.conns[i].outstanding.is_none() {
                self.todo.push_back(Todo::Request(i));
            }
        }
    }

    fn next_action(&mut self) -> Syscall {
        // Flush pending Have announcements first (to every conn).
        if self.announce_cursor < self.pending_announce.len() * self.conns.len().max(1)
            && !self.pending_announce.is_empty()
        {
            let per = self.conns.len().max(1);
            let idx = self.announce_cursor;
            self.announce_cursor += 1;
            let piece = self.pending_announce[idx / per];
            let conn = idx % per;
            if conn < self.conns.len() {
                let fd = self.conns[conn].fd;
                self.last_op = Op::Announce;
                return Syscall::SendNb {
                    fd,
                    bytes: CTRL_BYTES,
                    msg: Some(Arc::new(BtMsg::Have { piece })),
                };
            }
        }
        if self.announce_cursor >= self.pending_announce.len() * self.conns.len().max(1) {
            self.pending_announce.clear();
            self.announce_cursor = 0;
        }

        while let Some(t) = self.todo.pop_front() {
            match t {
                Todo::Accept => {
                    self.last_op = Op::AcceptNb;
                    return Syscall::AcceptNb { port: self.port };
                }
                Todo::Recv(i) => {
                    if i >= self.conns.len() {
                        continue;
                    }
                    let fd = self.conns[i].fd;
                    self.last_op = Op::Recv(i);
                    return Syscall::RecvNb { fd, max: u64::MAX };
                }
                Todo::Handshake(i) => {
                    if i >= self.conns.len() || self.conns[i].sent_handshake {
                        continue;
                    }
                    let fd = self.conns[i].fd;
                    let have: Vec<u32> = self.have.iter().copied().collect();
                    self.last_op = Op::SendHandshake(i);
                    return Syscall::SendNb {
                        fd,
                        bytes: CTRL_BYTES + have.len() as u64 / 8,
                        msg: Some(Arc::new(BtMsg::Handshake { have })),
                    };
                }
                Todo::Serve(i) => {
                    if i >= self.conns.len() {
                        continue;
                    }
                    let Some(&piece) = self.conns[i].serve_q.front() else {
                        continue;
                    };
                    let fd = self.conns[i].fd;
                    self.last_op = Op::Serve(i, piece);
                    return Syscall::SendNb {
                        fd,
                        bytes: self.piece_bytes,
                        msg: Some(Arc::new(BtMsg::Piece { piece })),
                    };
                }
                Todo::Request(i) => {
                    if i >= self.conns.len() || self.conns[i].outstanding.is_some() {
                        continue;
                    }
                    let Some(piece) = self.pick_piece(i) else {
                        continue;
                    };
                    let fd = self.conns[i].fd;
                    self.last_op = Op::Request(i, piece);
                    return Syscall::SendNb {
                        fd,
                        bytes: CTRL_BYTES,
                        msg: Some(Arc::new(BtMsg::Request { piece })),
                    };
                }
            }
        }
        // Round complete: sleep.
        self.last_op = Op::Sleeping;
        Syscall::Sleep { ns: self.poll_ns }
    }

    /// Processes backlogged messages; a Piece pauses the drain and returns
    /// the hash-check syscall.
    fn drain_backlog(&mut self) -> Option<Syscall> {
        while let Some((i, msg)) = self.backlog.pop_front() {
            if i >= self.conns.len() {
                continue;
            }
            match &*msg {
                BtMsg::Handshake { have } => {
                    self.conns[i].got_handshake = true;
                    self.conns[i].remote_have.extend(have.iter().copied());
                }
                BtMsg::Request { piece } => {
                    self.conns[i].serve_q.push_back(*piece);
                }
                BtMsg::Have { piece } => {
                    self.conns[i].remote_have.insert(*piece);
                }
                BtMsg::Piece { piece } => {
                    // Verify the piece (hash check), then persist it.
                    let piece = *piece;
                    self.conns[i].outstanding = None;
                    self.last_op = Op::HashCheck(piece);
                    return Some(Syscall::Compute {
                        ns: (self.piece_bytes as f64 * HASH_NS_PER_BYTE) as u64,
                    });
                }
            }
        }
        None
    }
}

impl GuestProg for BtPeer {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if !self.started {
            self.started = true;
            self.last_op = Op::CreateFile;
            return Syscall::Create { file: self.file };
        }
        let op = std::mem::replace(&mut self.last_op, Op::Idle);
        match op {
            Op::CreateFile => {
                // Listen before connecting out: two peers dialing each
                // other simultaneously would otherwise deadlock waiting
                // for a listener that never comes.
                self.last_op = Op::Listened;
                return Syscall::Listen { port: self.port };
            }
            Op::Listened | Op::ConnectPeer => {
                if let SysRet::Sock(fd) = ret {
                    self.conns.push(PeerConn::new(fd));
                }
                if let Some(addr) = self.peers_to_connect.pop() {
                    self.last_op = Op::ConnectPeer;
                    return Syscall::Connect {
                        dst: addr,
                        port: self.port,
                    };
                }
                // Fall into the poll loop.
            }
            Op::AcceptNb => {
                if let SysRet::Sock(fd) = ret {
                    if self.conn_idx(fd).is_none() {
                        self.conns.push(PeerConn::new(fd));
                    }
                }
            }
            Op::Recv(i) => {
                if let SysRet::Recvd { msgs, .. } = ret {
                    for m in msgs {
                        if let Ok(bt) = m.downcast::<BtMsg>() {
                            self.backlog.push_back((i, bt));
                        }
                    }
                }
            }
            Op::SendHandshake(i) => {
                if let SysRet::Sent(n) = ret {
                    if n > 0 && i < self.conns.len() {
                        self.conns[i].sent_handshake = true;
                    }
                }
            }
            Op::Serve(i, piece) => {
                if let SysRet::Sent(n) = ret {
                    if n > 0 && i < self.conns.len() {
                        self.conns[i].serve_q.pop_front();
                        self.served += 1;
                        let _ = piece;
                    }
                }
            }
            Op::Request(i, piece) => {
                if let SysRet::Sent(n) = ret {
                    if n > 0 && i < self.conns.len() {
                        self.conns[i].outstanding = Some(piece);
                        self.requested.insert(piece);
                    }
                }
            }
            Op::HashCheck(piece) => {
                // Hash verified: write the piece to disk.
                self.last_op = Op::DiskWrite(piece);
                return Syscall::Write {
                    file: self.file,
                    offset: piece as u64 * self.piece_bytes,
                    bytes: self.piece_bytes,
                };
            }
            Op::DiskWrite(piece) => {
                self.have.insert(piece);
                self.pending_announce.push(piece);
                self.last_op = Op::Stamp;
                return Syscall::Gettimeofday;
            }
            Op::Stamp => {
                if let SysRet::Time(t) = ret {
                    let bytes = self.have.len() as u64 * self.piece_bytes;
                    self.progress.push((t, bytes));
                }
            }
            Op::Announce => {}
            Op::Sleeping => {
                self.rebuild_round();
            }
            Op::Idle => {}
        }
        if let Some(sys) = self.drain_backlog() {
            return sys;
        }
        self.next_action()
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "bittorrent"
    }
}
