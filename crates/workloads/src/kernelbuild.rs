//! `make` followed by `make clean` on a kernel source tree (§5.1).
//!
//! The paper's free-block-elimination validation: building the kernel
//! writes ~490 MB of object files; `make clean` deletes them, so almost
//! all of that data is *free* at swap-out — but a block-level delta
//! without filesystem knowledge would still carry it. This workload
//! generates the same on-disk pattern: many files created, written, then
//! deleted, with a sync after each phase so the bitmaps reach the disk.

use std::any::Any;

use guestos::prog::FileId;
use guestos::{GuestProg, Syscall, SysRet};

#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    Create(usize),
    Write(usize, u64),
    SyncBuild,
    Clean(usize),
    SyncClean,
    Done,
}

/// The build workload.
#[derive(Clone, Debug)]
pub struct KernelBuild {
    base_id: u64,
    files: usize,
    bytes_per_file: u64,
    chunk: u64,
    keep_bytes: u64,
    step: Step,
    /// True once `make clean` finished syncing.
    pub finished: bool,
}

impl KernelBuild {
    /// The paper's shape: ~490 MB of build products across `files` object
    /// files, of which `keep_bytes` (logs, config, the final vmlinux-like
    /// artifacts — ~36 MB survives in the delta) are NOT deleted.
    pub fn paper_default() -> Self {
        KernelBuild::new(9000, 1960, 256 * 1024, 34 << 20)
    }

    /// Creates a build of `files` × `bytes_per_file`, keeping `keep_bytes`.
    pub fn new(base_id: u64, files: usize, bytes_per_file: u64, keep_bytes: u64) -> Self {
        KernelBuild {
            base_id,
            files,
            bytes_per_file,
            chunk: 256 * 1024,
            keep_bytes,
            step: Step::Create(0),
            finished: false,
        }
    }

    fn fid(&self, i: usize) -> FileId {
        FileId(self.base_id + i as u64)
    }

    /// Number of files that survive `make clean`.
    fn kept_files(&self) -> usize {
        (self.keep_bytes / self.bytes_per_file) as usize
    }

    /// Total bytes written by the build.
    pub fn build_bytes(&self) -> u64 {
        self.files as u64 * self.bytes_per_file
    }
}

impl GuestProg for KernelBuild {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Err(e) = ret {
            panic!("kernelbuild: io error {e}");
        }
        loop {
            match self.step {
                Step::Create(i) => {
                    if i >= self.files {
                        self.step = Step::SyncBuild;
                        return Syscall::Sync;
                    }
                    self.step = Step::Write(i, 0);
                    return Syscall::Create { file: self.fid(i) };
                }
                Step::Write(i, off) => {
                    if off >= self.bytes_per_file {
                        self.step = Step::Create(i + 1);
                        continue;
                    }
                    self.step = Step::Write(i, off + self.chunk);
                    return Syscall::Write {
                        file: self.fid(i),
                        offset: off,
                        bytes: self.chunk.min(self.bytes_per_file - off),
                    };
                }
                Step::SyncBuild => {
                    // Delete everything beyond the kept prefix.
                    self.step = Step::Clean(self.kept_files());
                    continue;
                }
                Step::Clean(i) => {
                    if i >= self.files {
                        self.step = Step::SyncClean;
                        return Syscall::Sync;
                    }
                    self.step = Step::Clean(i + 1);
                    return Syscall::Delete { file: self.fid(i) };
                }
                Step::SyncClean => {
                    self.finished = true;
                    self.step = Step::Done;
                    return Syscall::Exit;
                }
                Step::Done => return Syscall::Exit,
            }
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "kernel-build"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Driver;

    #[test]
    fn build_then_clean_leaves_only_kept_files() {
        let mut p = KernelBuild::new(100, 10, 256 * 1024, 512 * 1024);
        let mut d = Driver::new();
        d.run(&mut p, 10_000);
        assert!(p.finished);
        // keep_bytes / bytes_per_file = 2 files survive.
        assert_eq!(d.file_count(), 2);
    }

    #[test]
    fn paper_default_writes_about_490mb() {
        let p = KernelBuild::paper_default();
        let mb = p.build_bytes() as f64 / 1e6;
        assert!((490.0..540.0).contains(&mb), "build writes {mb} MB");
    }

    #[test]
    fn syncs_after_both_phases() {
        let mut p = KernelBuild::new(100, 3, 256 * 1024, 0);
        let mut d = Driver::new();
        d.run(&mut p, 1000);
        let syncs = d.issued.iter().filter(|s| **s == "sync").count();
        assert_eq!(syncs, 2, "sync after make and after make clean");
        assert_eq!(d.file_count(), 0, "keep_bytes=0 deletes everything");
    }
}
