//! Guest workload programs for the evaluation (§7).
//!
//! Every figure's workload, implemented against the [`guestos::GuestProg`]
//! syscall interface:
//!
//! - [`UsleepLoop`] — Fig 4's timer microbenchmark;
//! - [`CpuLoop`] — Fig 5's CPU-intensive loop;
//! - [`IperfSender`]/[`IperfReceiver`] — Fig 6's bulk TCP stream;
//! - [`BtPeer`] — Fig 7's BitTorrent swarm (static tracker);
//! - [`Bonnie`] — Fig 8's filesystem benchmark;
//! - [`FileCopy`] — Fig 9 / §7.2's disk-intensive copy;
//! - [`KernelBuild`] — §5.1's make / make-clean free-block workload.

mod bittorrent;
#[cfg(test)]
mod testutil;
mod bonnie;
mod filecopy;
mod iperf;
mod kernelbuild;
mod micro;

pub use bittorrent::{BtMsg, BtPeer};
pub use bonnie::{Bonnie, BonniePhase, PhaseResult};
pub use filecopy::{FileCopy, FileWriter};
pub use iperf::{IperfReceiver, IperfSender};
pub use kernelbuild::KernelBuild;
pub use micro::{CpuLoop, UsleepLoop};
