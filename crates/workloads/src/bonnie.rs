//! A Bonnie++-style filesystem benchmark (Fig 8's workload).
//!
//! Five measured phases over one large file — "twice the size of the guest
//! system's memory" in the paper, defeating the page cache:
//!
//! 1. character writes (per-byte stdio CPU cost + buffered I/O),
//! 2. block writes,
//! 3. block rewrites (read + overwrite),
//! 4. character reads,
//! 5. block reads.
//!
//! Each phase reports MB/s from `gettimeofday` around the phase.

use std::any::Any;

use guestos::prog::FileId;
use guestos::{GuestProg, Syscall, SysRet};

/// Per-byte CPU cost of the stdio character path (getc/putc), ns/byte.
/// ~15 ns/byte caps character phases near 60 MB/s, CPU-bound as in Fig 8.
const CHAR_CPU_NS_PER_BYTE: f64 = 15.0;

/// The benchmark phases in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BonniePhase {
    CharWrite,
    BlockWrite,
    BlockRewrite,
    CharRead,
    BlockRead,
}

impl BonniePhase {
    /// All phases in order.
    pub const ALL: [BonniePhase; 5] = [
        BonniePhase::CharWrite,
        BonniePhase::BlockWrite,
        BonniePhase::BlockRewrite,
        BonniePhase::CharRead,
        BonniePhase::BlockRead,
    ];

    /// Label as in the paper's Fig 8.
    pub fn label(self) -> &'static str {
        match self {
            BonniePhase::CharWrite => "Character-Writes",
            BonniePhase::BlockWrite => "Block-Writes",
            BonniePhase::BlockRewrite => "Block-Rewrites",
            BonniePhase::CharRead => "Character-Reads",
            BonniePhase::BlockRead => "Block-Reads",
        }
    }
}

/// One phase result.
#[derive(Clone, Copy, Debug)]
pub struct PhaseResult {
    pub phase: BonniePhase,
    pub bytes: u64,
    pub elapsed_ns: u64,
}

impl PhaseResult {
    /// Throughput in MB/s.
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes as f64 / 1e6 / (self.elapsed_ns as f64 / 1e9)
    }
}

#[derive(Clone, Copy, Debug)]
enum Step {
    StartPhase(usize),
    TimeStamped(usize),
    Io(usize),
    CharCpu(usize),
    SyncAfter(usize),
    EndTime(usize),
    Done,
}

/// The Bonnie program.
#[derive(Clone, Debug)]
pub struct Bonnie {
    file: FileId,
    file_bytes: u64,
    chunk: u64,
    offset: u64,
    step: Step,
    t_phase_start: u64,
    created: bool,
    phases: Vec<BonniePhase>,
    /// Per-phase results, in phase order.
    pub results: Vec<PhaseResult>,
}

impl Bonnie {
    /// Creates a benchmark over `file_bytes` (paper: 512 MB) with 8 KiB
    /// chunks, running all five phases.
    pub fn new(file: FileId, file_bytes: u64) -> Self {
        Bonnie {
            file,
            file_bytes,
            chunk: 8 * 1024,
            offset: 0,
            step: Step::StartPhase(0),
            t_phase_start: 0,
            created: false,
            phases: BonniePhase::ALL.to_vec(),
            results: Vec::new(),
        }
    }

    /// Restricts the run to the given phases (harness-controlled per-phase
    /// measurement, e.g. with a fresh branch sealed between phases). For
    /// read/rewrite phases the file must already exist.
    pub fn with_phases(mut self, phases: &[BonniePhase]) -> Self {
        assert!(!phases.is_empty(), "no phases selected");
        self.phases = phases.to_vec();
        self
    }

    /// True once all phases completed.
    pub fn done(&self) -> bool {
        matches!(self.step, Step::Done)
    }

    fn phase(&self, i: usize) -> BonniePhase {
        self.phases[i]
    }

    fn io_syscall(&self, i: usize) -> Syscall {
        let p = self.phase(i);
        match p {
            BonniePhase::CharWrite | BonniePhase::BlockWrite => Syscall::Write {
                file: self.file,
                offset: self.offset,
                bytes: self.chunk,
            },
            BonniePhase::BlockRewrite | BonniePhase::CharRead | BonniePhase::BlockRead => {
                Syscall::Read {
                    file: self.file,
                    offset: self.offset,
                    bytes: self.chunk,
                }
            }
        }
    }
}

impl GuestProg for Bonnie {
    fn step(&mut self, ret: SysRet) -> Syscall {
        if let SysRet::Err(e) = ret {
            // The file may pre-exist when a harness prepped it (fig8's
            // per-phase runs); anything else is a real failure.
            if e != "exists" {
                panic!("bonnie: io error {e}");
            }
        }
        loop {
            match self.step {
                Step::StartPhase(i) => {
                    if !self.created {
                        self.created = true;
                        return Syscall::Create { file: self.file };
                    }
                    self.offset = 0;
                    self.step = Step::TimeStamped(i);
                    return Syscall::Gettimeofday;
                }
                Step::TimeStamped(i) => {
                    let SysRet::Time(t) = ret else {
                        panic!("bonnie: expected time");
                    };
                    self.t_phase_start = t;
                    self.step = Step::Io(i);
                    return self.io_syscall(i);
                }
                Step::Io(i) => {
                    // Previous chunk I/O finished.
                    let p = self.phase(i);
                    let is_char =
                        matches!(p, BonniePhase::CharWrite | BonniePhase::CharRead);
                    let rewrite = matches!(p, BonniePhase::BlockRewrite);
                    if rewrite {
                        // The read half completed; write the chunk back.
                        self.step = Step::CharCpu(i); // Reuse slot: next advances offset.
                        return Syscall::Write {
                            file: self.file,
                            offset: self.offset,
                            bytes: self.chunk,
                        };
                    }
                    if is_char {
                        self.step = Step::CharCpu(i);
                        return Syscall::Compute {
                            ns: (self.chunk as f64 * CHAR_CPU_NS_PER_BYTE) as u64,
                        };
                    }
                    self.offset += self.chunk;
                    if self.offset >= self.file_bytes {
                        self.step = Step::SyncAfter(i);
                        return Syscall::Sync;
                    }
                    return self.io_syscall(i);
                }
                Step::CharCpu(i) => {
                    // CPU half (or rewrite's write half) done; advance.
                    self.offset += self.chunk;
                    if self.offset >= self.file_bytes {
                        self.step = Step::SyncAfter(i);
                        return Syscall::Sync;
                    }
                    self.step = Step::Io(i);
                    return self.io_syscall(i);
                }
                Step::SyncAfter(i) => {
                    self.step = Step::EndTime(i);
                    return Syscall::Gettimeofday;
                }
                Step::EndTime(i) => {
                    let SysRet::Time(t) = ret else {
                        panic!("bonnie: expected time");
                    };
                    self.results.push(PhaseResult {
                        phase: self.phase(i),
                        bytes: self.file_bytes,
                        elapsed_ns: t - self.t_phase_start,
                    });
                    if i + 1 < self.phases.len() {
                        self.step = Step::StartPhase(i + 1);
                        continue;
                    }
                    self.step = Step::Done;
                    return Syscall::Exit;
                }
                Step::Done => return Syscall::Exit,
            }
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "bonnie"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Driver;

    #[test]
    fn all_five_phases_run_in_order() {
        let mut p = Bonnie::new(FileId(7), 1 << 20);
        let mut d = Driver::new();
        d.run(&mut p, 100_000);
        assert!(p.done());
        let phases: Vec<BonniePhase> = p.results.iter().map(|r| r.phase).collect();
        assert_eq!(phases, BonniePhase::ALL.to_vec());
        for r in &p.results {
            assert!(r.elapsed_ns > 0, "{} measured zero time", r.phase.label());
            assert_eq!(r.bytes, 1 << 20);
        }
    }

    #[test]
    fn char_phases_burn_cpu() {
        let mut p = Bonnie::new(FileId(7), 512 * 1024).with_phases(&[BonniePhase::CharWrite]);
        let mut d = Driver::new();
        d.run(&mut p, 100_000);
        let computes = d.issued.iter().filter(|s| **s == "compute").count();
        assert_eq!(computes, 512 * 1024 / 8192, "one compute per 8 KiB chunk");
    }

    #[test]
    fn single_phase_selection_works() {
        let mut p = Bonnie::new(FileId(7), 64 * 1024).with_phases(&[BonniePhase::BlockRead]);
        let mut d = Driver::new();
        // BlockRead on a missing file would fail; create it first by
        // running a write phase.
        let mut w = Bonnie::new(FileId(7), 64 * 1024).with_phases(&[BonniePhase::BlockWrite]);
        d.run(&mut w, 10_000);
        d.run(&mut p, 10_000);
        assert_eq!(p.results.len(), 1);
        assert_eq!(p.results[0].phase, BonniePhase::BlockRead);
    }
}
