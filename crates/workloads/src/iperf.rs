//! iperf: a one-directional bulk TCP stream (Fig 6's workload).

use std::any::Any;

use guestos::prog::SockFd;
use guestos::{GuestProg, Syscall, SysRet};
use hwsim::NodeAddr;

/// The sending side: connect and keep the send buffer full.
#[derive(Clone, Debug)]
pub struct IperfSender {
    dst: NodeAddr,
    port: u16,
    chunk: u64,
    fd: Option<SockFd>,
    /// Bytes handed to the socket so far.
    pub sent: u64,
    /// Optional total; `None` streams forever.
    pub limit: Option<u64>,
}

impl IperfSender {
    /// Creates an unbounded sender to `dst:port`.
    pub fn new(dst: NodeAddr, port: u16) -> Self {
        IperfSender {
            dst,
            port,
            chunk: 64 * 1024,
            fd: None,
            sent: 0,
            limit: None,
        }
    }

    /// Bounds the stream to `bytes`.
    pub fn with_limit(mut self, bytes: u64) -> Self {
        self.limit = Some(bytes);
        self
    }
}

impl GuestProg for IperfSender {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Connect {
                dst: self.dst,
                port: self.port,
            },
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Send {
                    fd,
                    bytes: self.chunk,
                    msg: None,
                }
            }
            SysRet::Sent(n) => {
                self.sent += n;
                if let Some(limit) = self.limit {
                    if self.sent >= limit {
                        return Syscall::CloseSock {
                            fd: self.fd.expect("connected"),
                        };
                    }
                }
                Syscall::Send {
                    fd: self.fd.expect("connected"),
                    bytes: self.chunk,
                    msg: None,
                }
            }
            SysRet::Ok => Syscall::Exit, // After close.
            other => panic!("iperf sender: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "iperf-send"
    }
}

/// The receiving side: accept one stream and drain it, recording arrival
/// progress `(guest time, cumulative bytes)` for throughput binning.
#[derive(Clone, Debug)]
pub struct IperfReceiver {
    port: u16,
    fd: Option<SockFd>,
    listening: bool,
    pending_sample: bool,
    sampled: u64,
    /// Cumulative bytes received.
    pub received: u64,
    /// `(guest time ns, bytes in this delivery)` samples.
    pub deliveries: Vec<(u64, u64)>,
}

impl IperfReceiver {
    /// Creates a receiver on `port`.
    pub fn new(port: u16) -> Self {
        IperfReceiver {
            port,
            fd: None,
            listening: false,
            pending_sample: false,
            sampled: 0,
            received: 0,
            deliveries: Vec::new(),
        }
    }
}

impl GuestProg for IperfReceiver {
    fn step(&mut self, ret: SysRet) -> Syscall {
        match ret {
            SysRet::Start => Syscall::Listen { port: self.port },
            SysRet::Ok if !self.listening => {
                self.listening = true;
                Syscall::Accept { port: self.port }
            }
            SysRet::Sock(fd) => {
                self.fd = Some(fd);
                Syscall::Recv { fd, max: u64::MAX }
            }
            SysRet::Recvd { bytes, .. } => {
                self.received += bytes;
                self.pending_sample = true;
                // Timestamp the delivery before the next recv.
                Syscall::Gettimeofday
            }
            SysRet::Time(t) => {
                if self.pending_sample {
                    self.pending_sample = false;
                    self.deliveries.push((t, self.received - self.sampled));
                    self.sampled = self.received;
                }
                Syscall::Recv {
                    fd: self.fd.expect("accepted"),
                    max: u64::MAX,
                }
            }
            other => panic!("iperf receiver: unexpected {other:?}"),
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProg> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn name(&self) -> &str {
        "iperf-recv"
    }
}
