//! Frames, point-to-point links, and the Emulab control LAN.
//!
//! Experiment links are modeled as full-duplex wires with per-direction
//! serialization at line rate, propagation delay, and optional random loss.
//! Traffic *shaping* (the bandwidth/latency/loss an experimenter asks for)
//! is not done here: as in Emulab, it happens in interposed delay nodes
//! (the `dummynet` crate), and the raw wire stays fast and dumb.

use std::any::Any;
use std::sync::Arc;

use sim::buggify;
use sim::buggify::points as bg_points;
use sim::{transmission_time, Component, ComponentId, Ctx, FaultPlan, Payload, SimDuration, SimRng, SimTime};

/// A testbed-wide interface address (plays the role of a MAC address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// The broadcast address.
    pub const BROADCAST: NodeAddr = NodeAddr(u32::MAX);
}

/// Distinguishes the several NICs of one host (experiment vs control).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IfaceId(pub u8);

impl IfaceId {
    /// Conventional id for a host's control-network interface.
    pub const CONTROL: IfaceId = IfaceId(0);
    /// Conventional id for a host's first experiment interface.
    pub const EXPERIMENT: IfaceId = IfaceId(1);
}

/// A layer-2 frame.
///
/// The payload is an immutable, shared, type-erased message (TCP segment,
/// control-plane RPC, …); `wire_bytes` is what the wire and shapers charge
/// for it. Frames are cheap to clone, which the delay-node checkpoint uses
/// to serialize queued packets non-destructively (paper §4.4).
#[derive(Clone)]
pub struct Frame {
    pub src: NodeAddr,
    pub dst: NodeAddr,
    pub wire_bytes: u32,
    payload: Arc<dyn Any + Send + Sync>,
}

impl Frame {
    /// Builds a frame around a typed payload.
    pub fn new<T: Any + Send + Sync>(src: NodeAddr, dst: NodeAddr, wire_bytes: u32, payload: T) -> Self {
        Frame {
            src,
            dst,
            wire_bytes,
            payload: Arc::new(payload),
        }
    }

    /// Downcasts the payload.
    pub fn payload<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Frame({:?} -> {:?}, {}B)",
            self.src, self.dst, self.wire_bytes
        )
    }
}

/// Message: hand a frame to a link for transmission.
///
/// `from_end` identifies which side of the link is sending (0 or 1).
pub struct LinkTransmit {
    pub from_end: usize,
    pub frame: Frame,
}

/// Message: a frame arrives at a component's interface.
pub struct LinkDeliver {
    pub iface: IfaceId,
    pub frame: Frame,
}

/// One endpoint of a link: the component and which of its NICs is attached.
#[derive(Clone, Copy, Debug)]
pub struct Endpoint {
    pub component: ComponentId,
    pub iface: IfaceId,
}

/// A full-duplex point-to-point wire.
///
/// Each direction serializes frames at `bw_bps` (FIFO behind the previous
/// frame), then delivers after `propagation`. `loss` drops frames i.i.d.
pub struct Link {
    ends: [Endpoint; 2],
    bw_bps: u64,
    propagation: SimDuration,
    loss: f64,
    busy_until: [SimTime; 2],
    /// Frames dropped by random loss.
    pub drops: u64,
    /// Frames delivered per direction.
    pub delivered: [u64; 2],
    /// Whether the link is administratively up.
    pub up: bool,
}

impl Link {
    /// Creates a link between two endpoints.
    pub fn new(a: Endpoint, b: Endpoint, bw_bps: u64, propagation: SimDuration, loss: f64) -> Self {
        assert!(bw_bps > 0, "zero-bandwidth link");
        assert!((0.0..=1.0).contains(&loss), "loss out of range");
        Link {
            ends: [a, b],
            bw_bps,
            propagation,
            loss,
            busy_until: [SimTime::ZERO; 2],
            drops: 0,
            delivered: [0; 2],
            up: true,
        }
    }

    /// The endpoint on side `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn endpoint(&self, i: usize) -> Endpoint {
        self.ends[i]
    }
}

impl Component for Link {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let tx = match payload.downcast::<LinkTransmit>() {
            Ok(t) => t,
            Err(_) => panic!("Link received a non-LinkTransmit message"),
        };
        assert!(tx.from_end < 2, "bad link end");
        if !self.up {
            self.drops += 1;
            return;
        }
        let dir = tx.from_end;
        let ser = transmission_time(tx.frame.wire_bytes as u64, self.bw_bps);
        let start = self.busy_until[dir].max(ctx.now());
        let done = start + ser;
        self.busy_until[dir] = done;
        if self.loss > 0.0 && ctx.rng().chance(self.loss) {
            self.drops += 1;
            return;
        }
        let arrive = done + self.propagation;
        let dst = self.ends[1 - dir];
        self.delivered[dir] += 1;
        ctx.post_at(
            dst.component,
            arrive,
            LinkDeliver {
                iface: dst.iface,
                frame: tx.frame,
            },
        );
    }

    sim::component_boilerplate!();
}

/// The shared Emulab control LAN: a switched star joining every host and
/// the testbed servers.
///
/// Each member's uplink serializes at the port rate; the switch adds a base
/// forwarding latency plus exponential queueing jitter. This jitter is what
/// limits NTP accuracy (paper §4.3: "under perfect LAN conditions, NTP
/// provides ... error of 200 µs"), so it is modeled explicitly.
pub struct ControlLan {
    port_bps: u64,
    base_latency: SimDuration,
    jitter_mean: SimDuration,
    members: Vec<(NodeAddr, Endpoint)>,
    busy_until: Vec<SimTime>,
    /// Frames with no matching destination member.
    pub undeliverable: u64,
    /// Injected control-plane faults, with their own random stream so
    /// fault decisions never consume draws from the LAN's jitter stream.
    faults: Option<(FaultPlan, SimRng)>,
    /// Frames dropped by injected loss or a crashed endpoint.
    pub fault_drops: u64,
    /// Frames delivered twice by injected duplication.
    pub fault_duplicates: u64,
    /// Frames delivered late by injected extra delay.
    pub fault_delays: u64,
}

/// Message: transmit a frame onto the control LAN.
pub struct LanTransmit {
    pub frame: Frame,
}

/// Salt for the LAN's fault-decision stream (see [`FaultPlan::stream`]).
const FAULT_STREAM_SALT: u32 = 0xFA01;

impl ControlLan {
    /// Creates an empty LAN.
    pub fn new(port_bps: u64, base_latency: SimDuration, jitter_mean: SimDuration) -> Self {
        assert!(port_bps > 0, "zero-bandwidth LAN");
        ControlLan {
            port_bps,
            base_latency,
            jitter_mean,
            members: Vec::new(),
            busy_until: Vec::new(),
            undeliverable: 0,
            faults: None,
            fault_drops: 0,
            fault_duplicates: 0,
            fault_delays: 0,
        }
    }

    /// Arms control-plane fault injection. Drops, duplicates, extra
    /// delays, and crash windows come from `plan`, drawn from the plan's
    /// own stream — injecting a plan whose probabilities are all 0 or 1
    /// leaves the LAN's jitter stream untouched.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        let rng = plan.stream(FAULT_STREAM_SALT);
        self.faults = Some((plan, rng));
    }

    /// The injected fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|(p, _)| p)
    }

    /// Attaches a member with the given address.
    pub fn attach(&mut self, addr: NodeAddr, ep: Endpoint) {
        assert!(
            self.members.iter().all(|(a, _)| *a != addr),
            "duplicate LAN address {addr:?}"
        );
        self.members.push((addr, ep));
        self.busy_until.push(SimTime::ZERO);
    }

    /// Detaches a member (e.g. experiment swap-out).
    pub fn detach(&mut self, addr: NodeAddr) {
        if let Some(i) = self.members.iter().position(|(a, _)| *a == addr) {
            self.members.remove(i);
            self.busy_until.remove(i);
        }
    }

    fn member_index(&self, addr: NodeAddr) -> Option<usize> {
        self.members.iter().position(|(a, _)| *a == addr)
    }
}

impl Component for ControlLan {
    fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let tx = match payload.downcast::<LanTransmit>() {
            Ok(t) => t,
            Err(_) => panic!("ControlLan received a non-LanTransmit message"),
        };
        let Some(src_idx) = self.member_index(tx.frame.src) else {
            self.undeliverable += 1;
            return;
        };
        // Buggified faults first: the randomized-exploration layer draws
        // from its own per-point streams (never from the LAN's jitter
        // stream), and a disarmed registry draws nothing at all.
        let bg = ctx.buggify().clone();
        if buggify!(bg, bg_points::LAN_SEND_DROP) {
            self.fault_drops += 1;
            return;
        }
        let mut fault_dup = buggify!(bg, bg_points::LAN_SEND_DUP);
        if fault_dup {
            self.fault_duplicates += 1;
        }
        let mut fault_extra = if buggify!(bg, bg_points::LAN_SEND_DELAY) {
            self.fault_delays += 1;
            // Enough to blow past ack timeouts and skew NTP exchanges.
            SimDuration::from_micros(bg.magnitude(bg_points::LAN_SEND_DELAY, 50, 5_000))
        } else {
            SimDuration::ZERO
        };
        // Injected faults act before the LAN's own physics: a dropped
        // frame never serializes and never draws jitter, so a plan with
        // draw-free probabilities (0 or 1) leaves healthy traffic's
        // timing untouched.
        if let Some((plan, rng)) = self.faults.as_mut() {
            let now = ctx.now();
            if plan.crashed(tx.frame.src.0, now)
                || (tx.frame.dst != NodeAddr::BROADCAST && plan.crashed(tx.frame.dst.0, now))
                || rng.chance(plan.loss())
            {
                self.fault_drops += 1;
                return;
            }
            if rng.chance(plan.duplication()) {
                fault_dup = true;
                self.fault_duplicates += 1;
            }
            let (p, extra) = plan.extra_delay();
            if rng.chance(p) {
                fault_extra = extra;
                self.fault_delays += 1;
            }
        }
        // Serialize on the source port.
        let ser = transmission_time(tx.frame.wire_bytes as u64, self.port_bps);
        let start = self.busy_until[src_idx].max(ctx.now());
        let done = start + ser;
        self.busy_until[src_idx] = done;

        let targets: Vec<Endpoint> = if tx.frame.dst == NodeAddr::BROADCAST {
            let now = ctx.now();
            self.members
                .iter()
                .filter(|(a, _)| {
                    *a != tx.frame.src
                        && !self
                            .faults
                            .as_ref()
                            .is_some_and(|(p, _)| p.crashed(a.0, now))
                })
                .map(|&(_, ep)| ep)
                .collect()
        } else {
            match self.member_index(tx.frame.dst) {
                Some(i) => vec![self.members[i].1],
                None => {
                    self.undeliverable += 1;
                    return;
                }
            }
        };
        for ep in targets {
            let jitter =
                SimDuration::from_nanos(ctx.rng().exponential(self.jitter_mean.as_nanos() as f64)
                    as u64);
            let arrive = done + self.base_latency + jitter + fault_extra;
            ctx.post_at(
                ep.component,
                arrive,
                LinkDeliver {
                    iface: ep.iface,
                    frame: tx.frame.clone(),
                },
            );
            if fault_dup {
                // The duplicate trails by a switch-requeue delay; it is
                // deliberately jitter-free so duplication alone does not
                // shift the jitter stream for unrelated traffic.
                ctx.post_at(
                    ep.component,
                    arrive + SimDuration::from_micros(10),
                    LinkDeliver {
                        iface: ep.iface,
                        frame: tx.frame.clone(),
                    },
                );
            }
        }
    }

    sim::component_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Engine;

    /// Collects delivered frames with timestamps.
    struct Sink {
        got: Vec<(SimTime, IfaceId, Frame)>,
    }

    impl Component for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            let d = payload.downcast::<LinkDeliver>().expect("LinkDeliver");
            self.got.push((ctx.now(), d.iface, d.frame));
        }
        sim::component_boilerplate!();
    }

    fn setup_link(bw: u64, prop: SimDuration, loss: f64) -> (Engine, ComponentId, ComponentId) {
        let mut e = Engine::new(1);
        let sink = e.add_component(Box::new(Sink { got: vec![] }));
        let link = e.add_component(Box::new(Link::new(
            Endpoint { component: sink, iface: IfaceId(9) }, // end 0 (unused as dst here)
            Endpoint { component: sink, iface: IfaceId(1) }, // end 1
            bw,
            prop,
            loss,
        )));
        (e, sink, link)
    }

    fn frame(bytes: u32) -> Frame {
        Frame::new(NodeAddr(1), NodeAddr(2), bytes, ())
    }

    #[test]
    fn delivery_time_is_serialization_plus_propagation() {
        let (mut e, sink, link) = setup_link(1_000_000_000, SimDuration::from_micros(50), 0.0);
        e.post(link, SimDuration::ZERO, LinkTransmit { from_end: 0, frame: frame(1500) });
        e.run_to_completion();
        let got = &e.component_ref::<Sink>(sink).unwrap().got;
        assert_eq!(got.len(), 1);
        // 12 µs serialization + 50 µs propagation.
        assert_eq!(got[0].0.as_nanos(), 62_000);
        assert_eq!(got[0].1, IfaceId(1));
    }

    #[test]
    fn back_to_back_frames_queue_behind_each_other() {
        let (mut e, sink, link) = setup_link(1_000_000_000, SimDuration::ZERO, 0.0);
        for _ in 0..3 {
            e.post(link, SimDuration::ZERO, LinkTransmit { from_end: 0, frame: frame(1500) });
        }
        e.run_to_completion();
        let got = &e.component_ref::<Sink>(sink).unwrap().got;
        let times: Vec<u64> = got.iter().map(|g| g.0.as_nanos()).collect();
        assert_eq!(times, vec![12_000, 24_000, 36_000]);
    }

    #[test]
    fn full_duplex_directions_do_not_contend() {
        let (mut e, sink, link) = setup_link(1_000_000_000, SimDuration::ZERO, 0.0);
        e.post(link, SimDuration::ZERO, LinkTransmit { from_end: 0, frame: frame(1500) });
        e.post(link, SimDuration::ZERO, LinkTransmit { from_end: 1, frame: frame(1500) });
        e.run_to_completion();
        let got = &e.component_ref::<Sink>(sink).unwrap().got;
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.as_nanos(), 12_000);
        assert_eq!(got[1].0.as_nanos(), 12_000, "directions are independent");
    }

    #[test]
    fn lossy_link_drops_some_frames() {
        let (mut e, sink, link) = setup_link(1_000_000_000, SimDuration::ZERO, 0.5);
        for _ in 0..200 {
            e.post(link, SimDuration::ZERO, LinkTransmit { from_end: 0, frame: frame(100) });
        }
        e.run_to_completion();
        let n = e.component_ref::<Sink>(sink).unwrap().got.len();
        assert!(n > 50 && n < 150, "got {n} of 200 at 50% loss");
        assert_eq!(e.component_ref::<Link>(link).unwrap().drops as usize, 200 - n);
    }

    #[test]
    fn downed_link_drops_everything() {
        let (mut e, sink, link) = setup_link(1_000_000_000, SimDuration::ZERO, 0.0);
        e.component_mut::<Link>(link).unwrap().up = false;
        e.post(link, SimDuration::ZERO, LinkTransmit { from_end: 0, frame: frame(100) });
        e.run_to_completion();
        assert!(e.component_ref::<Sink>(sink).unwrap().got.is_empty());
    }

    #[test]
    fn lan_unicast_and_broadcast() {
        let mut e = Engine::new(2);
        let s1 = e.add_component(Box::new(Sink { got: vec![] }));
        let s2 = e.add_component(Box::new(Sink { got: vec![] }));
        let s3 = e.add_component(Box::new(Sink { got: vec![] }));
        let mut lan = ControlLan::new(
            100_000_000,
            SimDuration::from_micros(20),
            SimDuration::from_micros(30),
        );
        lan.attach(NodeAddr(1), Endpoint { component: s1, iface: IfaceId::CONTROL });
        lan.attach(NodeAddr(2), Endpoint { component: s2, iface: IfaceId::CONTROL });
        lan.attach(NodeAddr(3), Endpoint { component: s3, iface: IfaceId::CONTROL });
        let lan = e.add_component(Box::new(lan));

        e.post(lan, SimDuration::ZERO, LanTransmit {
            frame: Frame::new(NodeAddr(1), NodeAddr(2), 100, ()),
        });
        e.post(lan, SimDuration::ZERO, LanTransmit {
            frame: Frame::new(NodeAddr(3), NodeAddr::BROADCAST, 100, ()),
        });
        e.run_to_completion();
        assert_eq!(e.component_ref::<Sink>(s1).unwrap().got.len(), 1, "s1: broadcast only");
        assert_eq!(e.component_ref::<Sink>(s2).unwrap().got.len(), 2, "s2: unicast + broadcast");
        assert_eq!(e.component_ref::<Sink>(s3).unwrap().got.len(), 0, "s3 sent the broadcast");
    }

    #[test]
    fn lan_to_unknown_address_counts_undeliverable() {
        let mut e = Engine::new(3);
        let s1 = e.add_component(Box::new(Sink { got: vec![] }));
        let mut lan = ControlLan::new(100_000_000, SimDuration::ZERO, SimDuration::from_nanos(1));
        lan.attach(NodeAddr(1), Endpoint { component: s1, iface: IfaceId::CONTROL });
        let lan = e.add_component(Box::new(lan));
        e.post(lan, SimDuration::ZERO, LanTransmit {
            frame: Frame::new(NodeAddr(1), NodeAddr(99), 100, ()),
        });
        e.run_to_completion();
        assert_eq!(e.component_ref::<ControlLan>(lan).unwrap().undeliverable, 1);
    }
}
