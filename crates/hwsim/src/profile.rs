//! Calibration profiles for the simulated testbed.
//!
//! Everything here corresponds to the evaluation platform of paper §7:
//! Emulab "pc3000" nodes (3.0 GHz Xeon, 2 GB RAM, two 146 GB 10k-RPM SCSI
//! disks), 1 Gbps experiment links, a dedicated 100 Mbps control LAN, and
//! 256 MB Xen guests with 6 GB disk images. Constants that the paper does
//! not pin down (e.g. shared-page update period) are noted where defined.

use sim::SimDuration;

use crate::disk::DiskProfile;

/// The pc3000 hardware/software profile used by all experiments.
#[derive(Clone, Debug)]
pub struct Pc3000 {
    /// CPU frequency (3.0 GHz Xeon).
    pub cpu_hz: u64,
    /// Experiment-link rate (1 Gbps).
    pub exp_link_bps: u64,
    /// Experiment-link propagation delay (same-rack switched Ethernet).
    pub exp_link_prop: SimDuration,
    /// Control-LAN port rate (dedicated 100 Mbps Ethernet).
    pub ctrl_lan_bps: u64,
    /// Control-LAN base switch latency.
    pub ctrl_lan_latency: SimDuration,
    /// Control-LAN queueing-jitter mean (limits NTP accuracy to ~200 µs).
    pub ctrl_lan_jitter: SimDuration,
    /// Guest memory size (256 MB per VM in §7).
    pub guest_mem_bytes: u64,
    /// Virtual disk image size (6 GB in §7).
    pub guest_disk_bytes: u64,
    /// Guest timer frequency (HZ=100: usleep(10 ms) rounds to ~20 ms,
    /// matching Fig 4's 20 ms iteration baseline).
    pub guest_hz: u32,
    /// Hypervisor shared-info time-page update period (Xen uses ~1 ms
    /// granularity for guest timers, §4.4).
    pub shared_page_period: SimDuration,
    /// Host clock drift magnitude, ppm (commodity crystals: tens of ppm).
    pub clock_drift_ppm: f64,
    /// Disk profile for the two local SCSI disks.
    pub disk: DiskProfile,
    /// Compression ratio applied to memory images for transfer (zero pages
    /// and text compress well; calibrated so a 256 MB image moves over the
    /// control net in ~8 s as §7.2 reports).
    pub mem_image_compression: f64,
}

impl Default for Pc3000 {
    fn default() -> Self {
        Pc3000 {
            cpu_hz: 3_000_000_000,
            exp_link_bps: 1_000_000_000,
            exp_link_prop: SimDuration::from_micros(20),
            ctrl_lan_bps: 100_000_000,
            ctrl_lan_latency: SimDuration::from_micros(40),
            ctrl_lan_jitter: SimDuration::from_micros(60),
            guest_mem_bytes: 256 << 20,
            guest_disk_bytes: 6 << 30,
            guest_hz: 100,
            shared_page_period: SimDuration::from_millis(1),
            clock_drift_ppm: 40.0,
            disk: DiskProfile::pc3000_scsi(),
            mem_image_compression: 0.36,
        }
    }
}

impl Pc3000 {
    /// Guest timer tick period (1/HZ).
    pub fn tick(&self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.guest_hz as u64)
    }

    /// Compressed wire size of the guest memory image.
    pub fn mem_image_wire_bytes(&self) -> u64 {
        (self.guest_mem_bytes as f64 * self.mem_image_compression) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::transmission_time;

    #[test]
    fn tick_is_10ms_at_hz100() {
        let p = Pc3000::default();
        assert_eq!(p.tick(), SimDuration::from_millis(10));
    }

    #[test]
    fn memory_image_moves_in_about_8_seconds() {
        // §7.2: "The initial swap-in took eight seconds when the base
        // system image was cached."
        let p = Pc3000::default();
        let t = transmission_time(p.mem_image_wire_bytes(), p.ctrl_lan_bps);
        let secs = t.as_secs_f64();
        assert!((6.0..10.0).contains(&secs), "memory image transfer {secs}s");
    }
}
