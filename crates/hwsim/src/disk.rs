//! A mechanical disk service-time model (10k-RPM SCSI class).
//!
//! The branching-storage evaluation (paper Fig 8/9) depends on *where* I/O
//! lands: redo-log COW turns random writes into appends, read-before-write
//! doubles mechanical work, and metadata regions distributed over the disk
//! add seeks. A position-aware seek + rotation + transfer model reproduces
//! those relative costs without simulating platters in detail.

use sim::{transmission_time, SimDuration, SimRng, SimTime};

/// Static characteristics of a disk.
#[derive(Clone, Debug)]
pub struct DiskProfile {
    /// Single-track (minimum) seek time.
    pub min_seek: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub max_seek: SimDuration,
    /// Spindle speed, used for rotational latency (avg = half rotation).
    pub rpm: u32,
    /// Media transfer rate in bytes per second.
    pub transfer_bps: u64,
    /// Total capacity in blocks.
    pub blocks: u64,
    /// Block size in bytes.
    pub block_size: u32,
}

impl DiskProfile {
    /// The 146 GB 10,000 RPM SCSI disks in Emulab pc3000 nodes.
    pub fn pc3000_scsi() -> Self {
        DiskProfile {
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(9),
            rpm: 10_000,
            transfer_bps: 70_000_000,
            blocks: 146_000_000_000 / 4096,
            block_size: 4096,
        }
    }

    /// Duration of one full platter rotation.
    pub fn rotation(&self) -> SimDuration {
        SimDuration::from_nanos(60_000_000_000 / self.rpm as u64)
    }
}

/// The kind of a disk request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskOp {
    Read,
    Write,
}

/// A request against the disk: `nblocks` starting at `block`.
#[derive(Clone, Copy, Debug)]
pub struct DiskRequest {
    pub op: DiskOp,
    pub block: u64,
    pub nblocks: u64,
}

/// A disk with head-position state; computes per-request service times.
///
/// The model: a request at the current head position streams at the media
/// rate (track-buffer hit); otherwise it pays a concave seek (square root of
/// cylinder distance, the standard approximation) plus a uniformly random
/// rotational delay, then streams.
#[derive(Clone, Debug)]
pub struct Disk {
    profile: DiskProfile,
    head: u64,
    /// Running totals for instrumentation.
    pub stats: DiskStats,
}

/// Cumulative disk activity counters.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub blocks_read: u64,
    pub blocks_written: u64,
    pub busy: SimDuration,
    pub seeks: u64,
}

impl Disk {
    /// Creates a disk with its head parked at block 0.
    pub fn new(profile: DiskProfile) -> Self {
        Disk {
            profile,
            head: 0,
            stats: DiskStats::default(),
        }
    }

    /// The disk's profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Current head position (block number).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Computes the service time for `req`, updating head position and
    /// stats. `rng` supplies the rotational phase.
    ///
    /// # Panics
    ///
    /// Panics if the request runs past the end of the disk.
    pub fn service(&mut self, rng: &mut SimRng, req: DiskRequest) -> SimDuration {
        assert!(
            req.block + req.nblocks <= self.profile.blocks,
            "disk request out of range: {} + {} > {}",
            req.block,
            req.nblocks,
            self.profile.blocks
        );
        assert!(req.nblocks > 0, "empty disk request");
        let mut t = SimDuration::ZERO;
        if req.block != self.head {
            t += self.seek_time(req.block);
            // Random rotational phase: uniform in [0, one rotation).
            let rot = self.profile.rotation().as_nanos();
            t += SimDuration::from_nanos(rng.range_u64(0, rot));
            self.stats.seeks += 1;
        }
        let bytes = req.nblocks * self.profile.block_size as u64;
        t += transmission_time(bytes, self.profile.transfer_bps * 8);
        self.head = req.block + req.nblocks;
        match req.op {
            DiskOp::Read => {
                self.stats.reads += 1;
                self.stats.blocks_read += req.nblocks;
            }
            DiskOp::Write => {
                self.stats.writes += 1;
                self.stats.blocks_written += req.nblocks;
            }
        }
        self.stats.busy += t;
        t
    }

    fn seek_time(&self, target: u64) -> SimDuration {
        let dist = self.head.abs_diff(target);
        if dist == 0 {
            return SimDuration::ZERO;
        }
        let frac = (dist as f64 / self.profile.blocks as f64).sqrt();
        let min = self.profile.min_seek.as_nanos() as f64;
        let max = self.profile.max_seek.as_nanos() as f64;
        SimDuration::from_nanos((min + (max - min) * frac).round() as u64)
    }
}

/// A FIFO disk queue tracking when the device becomes free.
///
/// Hosts push requests as they arrive; the queue serializes them and reports
/// each request's completion time so the owner can schedule completion
/// events.
#[derive(Clone, Debug)]
pub struct DiskQueue {
    disk: Disk,
    free_at: SimTime,
}

impl DiskQueue {
    /// Wraps a disk in a FIFO queue.
    pub fn new(disk: Disk) -> Self {
        DiskQueue {
            disk,
            free_at: SimTime::ZERO,
        }
    }

    /// Submits a request at time `now`; returns its completion time.
    pub fn submit(&mut self, now: SimTime, rng: &mut SimRng, req: DiskRequest) -> SimTime {
        let start = self.free_at.max(now);
        let svc = self.disk.service(rng, req);
        self.free_at = start + svc;
        self.free_at
    }

    /// True if no request is in service at `now`.
    pub fn idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Time at which the device drains, given no further submissions.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// The underlying disk (for stats).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> Disk {
        Disk::new(DiskProfile {
            min_seek: SimDuration::from_millis(1),
            max_seek: SimDuration::from_millis(9),
            rpm: 10_000,
            transfer_bps: 70_000_000,
            blocks: 1_000_000,
            block_size: 4096,
        })
    }

    #[test]
    fn sequential_access_streams_at_media_rate() {
        let mut d = small_disk();
        let mut rng = SimRng::from_seed(1);
        // Position the head, then stream.
        let _ = d.service(&mut rng, DiskRequest { op: DiskOp::Write, block: 0, nblocks: 1 });
        let t = d.service(
            &mut rng,
            DiskRequest { op: DiskOp::Write, block: 1, nblocks: 1024 },
        );
        let expect = 1024.0 * 4096.0 / 70e6;
        assert!((t.as_secs_f64() - expect).abs() / expect < 0.01, "t={t}");
        assert_eq!(d.stats.seeks, 0, "sequential run must not seek");
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut d = small_disk();
        let mut rng = SimRng::from_seed(1);
        let t = d.service(
            &mut rng,
            DiskRequest { op: DiskOp::Read, block: 500_000, nblocks: 1 },
        );
        // At least the minimum seek; far more than pure transfer.
        assert!(t >= SimDuration::from_millis(1), "t={t}");
        assert_eq!(d.stats.seeks, 1);
    }

    #[test]
    fn farther_seeks_cost_more() {
        let d1 = small_disk();
        let d2 = small_disk();
        let near = d1.seek_time(10_000);
        let far = d2.seek_time(900_000);
        assert!(far > near);
        assert!(far <= SimDuration::from_millis(9));
    }

    #[test]
    fn queue_serializes_requests() {
        let mut q = DiskQueue::new(small_disk());
        let mut rng = SimRng::from_seed(2);
        let now = SimTime::ZERO;
        let c1 = q.submit(now, &mut rng, DiskRequest { op: DiskOp::Write, block: 0, nblocks: 100 });
        let c2 = q.submit(now, &mut rng, DiskRequest { op: DiskOp::Write, block: 100, nblocks: 100 });
        assert!(c2 > c1, "second request must finish after first");
        assert!(!q.idle(now));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_request_panics() {
        let mut d = small_disk();
        let mut rng = SimRng::from_seed(3);
        let _ = d.service(
            &mut rng,
            DiskRequest { op: DiskOp::Read, block: 999_999, nblocks: 2 },
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut d = small_disk();
        let mut rng = SimRng::from_seed(4);
        let _ = d.service(&mut rng, DiskRequest { op: DiskOp::Write, block: 0, nblocks: 8 });
        let _ = d.service(&mut rng, DiskRequest { op: DiskOp::Read, block: 8, nblocks: 8 });
        assert_eq!(d.stats.blocks_written, 8);
        assert_eq!(d.stats.blocks_read, 8);
        assert!(d.stats.busy > SimDuration::ZERO);
    }
}
