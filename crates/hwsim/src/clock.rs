//! Drifting hardware clocks and the time-stamp counter (TSC).
//!
//! Each simulated host owns a [`HardwareClock`] whose reading diverges from
//! true simulation time by an initial offset plus frequency drift, and which
//! NTP (the `clocksync` crate) disciplines via step and slew adjustments —
//! the same `adjtime`-style interface a real kernel exposes. The residual
//! clock error *is* the checkpoint skew the paper measures (§4.3, §7.1), so
//! the clock model is the heart of the transparency evaluation.

use sim::{SimDuration, SimTime};

/// Nanoseconds, signed, for clock errors and adjustments.
pub type NanosI = i64;

/// A free-running hardware clock with frequency drift and discipline hooks.
///
/// The clock is piecewise linear in true time: at true instant `anchor` it
/// read `reading_ns`, advancing at `rate` clock-seconds per true second.
/// `rate` combines intrinsic drift with any NTP slew currently applied.
///
/// # Examples
///
/// ```
/// use hwsim::HardwareClock;
/// use sim::SimTime;
///
/// // A clock 1 ms ahead, gaining 50 µs per second (+50 ppm).
/// let clock = HardwareClock::new(1_000_000, 50.0);
/// let now = SimTime::from_nanos(10_000_000_000); // true t = 10 s
/// let err = clock.error_ns(now);
/// assert!((err - 1_500_000.0).abs() < 1.0); // 1 ms + 50 µs/s × 10 s
/// ```
#[derive(Clone, Debug)]
pub struct HardwareClock {
    anchor: SimTime,
    reading_ns: f64,
    intrinsic_rate: f64,
    slew_ppm: f64,
}

impl HardwareClock {
    /// Creates a clock with an initial offset from true time (ns) and a
    /// constant intrinsic drift in parts per million (positive = fast).
    pub fn new(initial_offset_ns: NanosI, drift_ppm: f64) -> Self {
        HardwareClock {
            anchor: SimTime::ZERO,
            reading_ns: initial_offset_ns as f64,
            intrinsic_rate: 1.0 + drift_ppm * 1e-6,
            slew_ppm: 0.0,
        }
    }

    fn rate(&self) -> f64 {
        self.intrinsic_rate + self.slew_ppm * 1e-6
    }

    fn reading_at(&self, now: SimTime) -> f64 {
        let dt = now.saturating_duration_since(self.anchor).as_nanos() as f64;
        self.reading_ns + dt * self.rate()
    }

    /// Folds elapsed true time into the stored reading, moving the anchor.
    fn advance_to(&mut self, now: SimTime) {
        self.reading_ns = self.reading_at(now);
        self.anchor = self.anchor.max(now);
    }

    /// Reads the clock at true time `now`, as nanoseconds since the epoch
    /// *according to this clock*.
    pub fn read_ns(&self, now: SimTime) -> f64 {
        self.reading_at(now)
    }

    /// Reads the clock as a [`SimTime`]-shaped value (clamped at zero).
    pub fn read(&self, now: SimTime) -> SimTime {
        SimTime::from_nanos(self.reading_at(now).max(0.0).round() as u64)
    }

    /// The clock's current error versus true time, in nanoseconds
    /// (positive = clock is ahead).
    pub fn error_ns(&self, now: SimTime) -> f64 {
        self.reading_at(now) - now.as_nanos() as f64
    }

    /// Applies a step adjustment of `delta_ns` (positive moves forward).
    pub fn step(&mut self, now: SimTime, delta_ns: f64) {
        self.advance_to(now);
        self.reading_ns += delta_ns;
    }

    /// Sets the slew component (ppm adjustment added to the intrinsic rate),
    /// replacing any previous slew. This mirrors `adjtimex` frequency mode.
    pub fn set_slew_ppm(&mut self, now: SimTime, slew_ppm: f64) {
        self.advance_to(now);
        self.slew_ppm = slew_ppm;
    }

    /// Current slew in ppm.
    pub fn slew_ppm(&self) -> f64 {
        self.slew_ppm
    }

    /// Returns the true time at which this clock will read `target_ns`.
    ///
    /// Used to schedule "checkpoint at (local clock) time T" events: the
    /// coordinator names a clock reading, each node converts it to a true
    /// event time through its own (imperfect) clock, and the conversion
    /// error is exactly the residual synchronization skew.
    ///
    /// # Panics
    ///
    /// Panics if the clock would never reach `target_ns` (non-positive
    /// rate), which cannot happen for realistic drift values.
    pub fn when_reads(&self, now: SimTime, target_ns: f64) -> SimTime {
        let rate = self.rate();
        assert!(rate > 0.0, "clock is stopped or running backwards");
        let cur = self.reading_at(now);
        if target_ns <= cur {
            return now;
        }
        let dt_true = (target_ns - cur) / rate;
        now + SimDuration::from_nanos(dt_true.round() as u64)
    }
}

/// A time-stamp counter: monotonically counting CPU cycles since boot.
///
/// Guests interpolate fine-grained time from the TSC between shared-page
/// updates (paper §4.2); the hypervisor virtualizes it across checkpoints by
/// maintaining an offset so the guest never sees the downtime.
#[derive(Clone, Debug)]
pub struct Tsc {
    boot: SimTime,
    hz: f64,
    drift_ppm: f64,
}

impl Tsc {
    /// Creates a TSC that started counting at `boot`, at `hz` nominal cycles
    /// per second with the given frequency error.
    pub fn new(boot: SimTime, hz: f64, drift_ppm: f64) -> Self {
        Tsc {
            boot,
            hz,
            drift_ppm,
        }
    }

    /// Nominal frequency in Hz.
    pub fn hz(&self) -> f64 {
        self.hz
    }

    /// Reads the raw cycle count at true time `now`.
    pub fn read(&self, now: SimTime) -> u64 {
        let dt = now.saturating_duration_since(self.boot).as_secs_f64();
        (dt * self.hz * (1.0 + self.drift_ppm * 1e-6)).round() as u64
    }

    /// Converts a cycle delta to nanoseconds at the nominal frequency —
    /// the same scale factor the guest kernel uses for interpolation.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.hz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn perfect_clock_tracks_truth() {
        let c = HardwareClock::new(0, 0.0);
        assert_eq!(c.error_ns(t(100.0)), 0.0);
        assert_eq!(c.read(t(5.0)), t(5.0));
    }

    #[test]
    fn drift_accumulates_linearly() {
        // +50 ppm: after 100 s the clock is 5 ms ahead.
        let c = HardwareClock::new(0, 50.0);
        let err = c.error_ns(t(100.0));
        assert!((err - 5_000_000.0).abs() < 1.0, "err={err}");
    }

    #[test]
    fn step_shifts_reading() {
        let mut c = HardwareClock::new(0, 0.0);
        c.step(t(10.0), -250_000.0);
        assert!((c.error_ns(t(10.0)) + 250_000.0).abs() < 1e-6);
    }

    #[test]
    fn slew_changes_rate_from_now_on() {
        let mut c = HardwareClock::new(0, 100.0);
        // At t=10 the clock is 1 ms ahead. Slew -100 ppm cancels drift.
        c.set_slew_ppm(t(10.0), -100.0);
        let e10 = c.error_ns(t(10.0));
        let e20 = c.error_ns(t(20.0));
        assert!((e10 - 1_000_000.0).abs() < 1.0);
        assert!((e20 - e10).abs() < 1.0, "error kept growing: {e10} -> {e20}");
    }

    #[test]
    fn when_reads_inverts_read() {
        let mut c = HardwareClock::new(123_456, 75.0);
        c.set_slew_ppm(t(3.0), -20.0);
        let now = t(5.0);
        let target = c.read_ns(now) + 2_000_000_000.0; // 2 clock-seconds ahead
        let fire = c.when_reads(now, target);
        let reading = c.read_ns(fire);
        assert!((reading - target).abs() < 10.0, "reading={reading} target={target}");
    }

    #[test]
    fn when_reads_past_target_fires_now() {
        let c = HardwareClock::new(0, 0.0);
        assert_eq!(c.when_reads(t(10.0), 1e9), t(10.0));
    }

    #[test]
    fn tsc_counts_cycles() {
        let tsc = Tsc::new(t(1.0), 3e9, 0.0);
        assert_eq!(tsc.read(t(2.0)), 3_000_000_000);
        assert!((tsc.cycles_to_ns(3_000_000) - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn two_drifting_clocks_diverge_as_expected() {
        // The checkpoint-skew mechanism: ±50 ppm clocks diverge 100 µs/s.
        let a = HardwareClock::new(0, 50.0);
        let b = HardwareClock::new(0, -50.0);
        let skew = (a.error_ns(t(1.0)) - b.error_ns(t(1.0))).abs();
        assert!((skew - 100_000.0).abs() < 1.0);
    }
}
