//! Hardware models for the simulated Emulab testbed.
//!
//! This crate supplies the physical substrate the paper's evaluation runs
//! on: drifting hardware clocks and TSCs ([`clock`]), a position-aware
//! mechanical disk model ([`disk`]), CPU sharing between dom0 and a guest
//! ([`cpu`]), raw links plus the shared control LAN ([`net`]), and the
//! pc3000 calibration profile ([`profile`]).

pub mod clock;
pub mod cpu;
pub mod disk;
pub mod net;
pub mod profile;

pub use clock::{HardwareClock, Tsc};
pub use cpu::SharedCpu;
pub use disk::{Disk, DiskOp, DiskProfile, DiskQueue, DiskRequest, DiskStats};
pub use net::{
    ControlLan, Endpoint, Frame, IfaceId, LanTransmit, Link, LinkDeliver, LinkTransmit, NodeAddr,
};
pub use profile::Pc3000;
