//! CPU work accounting shared between a guest vCPU and dom0.
//!
//! Xen on the pc3000 nodes runs the guest and the privileged domain on one
//! physical CPU; dom0 work (checkpoint state saving, management commands)
//! steals cycles from the guest. The paper's Fig 5 shows exactly this
//! residue: a CPU-bound guest loop stretches by up to ~27 ms around a
//! checkpoint, and even an `ls` in dom0 costs 5–7 ms. [`SharedCpu`] models
//! a strict-priority processor: dom0 work preempts guest work, and guest
//! bursts stretch by however much dom0 ran while they were in progress.

use sim::{SimDuration, SimTime};

/// A single physical CPU multiplexed between dom0 (high priority) and one
/// guest vCPU (low priority).
///
/// Dom0 reservations are recorded as busy intervals; a guest burst of pure
/// CPU work started at `t` completes once enough non-dom0 time has elapsed.
#[derive(Clone, Debug, Default)]
pub struct SharedCpu {
    /// Sorted, non-overlapping dom0-busy intervals (start, end).
    dom0_busy: Vec<(SimTime, SimTime)>,
    /// Total dom0 time consumed (for stats).
    pub dom0_total: SimDuration,
}

impl SharedCpu {
    /// Creates an idle CPU.
    pub fn new() -> Self {
        SharedCpu::default()
    }

    /// Reserves dom0 CPU time starting no earlier than `now`, queued behind
    /// any existing dom0 work. Returns the interval actually reserved.
    pub fn reserve_dom0(&mut self, now: SimTime, work: SimDuration) -> (SimTime, SimTime) {
        let start = self
            .dom0_busy
            .last()
            .map(|&(_, end)| end.max(now))
            .unwrap_or(now);
        let end = start + work;
        self.dom0_busy.push((start, end));
        self.dom0_total += work;
        (start, end)
    }

    /// Reserves `total` of dom0 work in `slice`-long pieces spaced `period`
    /// apart, starting at `from` — how the credit scheduler spreads
    /// low-priority background work instead of monopolizing the CPU.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is zero or longer than `period`.
    pub fn reserve_dom0_sliced(
        &mut self,
        from: SimTime,
        total: SimDuration,
        slice: SimDuration,
        period: SimDuration,
    ) {
        assert!(!slice.is_zero() && slice <= period, "bad slicing");
        let mut left = total;
        let mut t = from;
        while !left.is_zero() {
            let w = left.min(slice);
            let start = self
                .dom0_busy
                .last()
                .map(|&(_, end)| end.max(t))
                .unwrap_or(t);
            self.dom0_busy.push((start, start + w));
            self.dom0_total += w;
            left = left.saturating_sub(w);
            t = start + period;
        }
    }

    /// Computes when a guest burst of `work` CPU time started at `start`
    /// finishes, accounting for dom0 preemption.
    pub fn guest_completion(&self, start: SimTime, work: SimDuration) -> SimTime {
        let mut t = start;
        let mut left = work;
        loop {
            // Find the next dom0 interval that overlaps [t, t+left).
            let naive_end = t + left;
            let next = self
                .dom0_busy
                .iter()
                .filter(|&&(s, e)| e > t && s < naive_end)
                .min_by_key(|&&(s, _)| s);
            match next {
                None => return naive_end,
                Some(&(s, e)) => {
                    if s > t {
                        // Guest runs until preempted.
                        let ran = s - t;
                        left = left.saturating_sub(ran);
                    }
                    if left.is_zero() {
                        return s;
                    }
                    t = e; // Resume after dom0 finishes.
                }
            }
        }
    }

    /// Total dom0 time falling inside `[a, b)` — the "steal time" a guest
    /// observes over that window.
    pub fn dom0_time_in(&self, a: SimTime, b: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &(s, e) in &self.dom0_busy {
            let lo = s.max(a);
            let hi = e.min(b);
            if hi > lo {
                total += hi - lo;
            }
        }
        total
    }

    /// Discards bookkeeping for intervals entirely before `horizon`, so long
    /// runs don't accumulate unbounded history.
    pub fn forget_before(&mut self, horizon: SimTime) {
        self.dom0_busy.retain(|&(_, e)| e >= horizon);
    }

    /// True if dom0 has no queued or running work at `now`.
    pub fn dom0_idle(&self, now: SimTime) -> bool {
        self.dom0_busy.iter().all(|&(_, e)| e <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn unobstructed_burst_runs_at_full_speed() {
        let cpu = SharedCpu::new();
        assert_eq!(cpu.guest_completion(t(10), SimDuration::from_millis(5)), t(15));
    }

    #[test]
    fn dom0_interval_stretches_guest_burst() {
        let mut cpu = SharedCpu::new();
        // Dom0 busy 12–14 ms.
        cpu.reserve_dom0(t(12), SimDuration::from_millis(2));
        // Guest burst 10–15 ms of work: preempted for 2 ms → ends at 17 ms.
        assert_eq!(cpu.guest_completion(t(10), SimDuration::from_millis(5)), t(17));
    }

    #[test]
    fn burst_finishing_exactly_at_preemption_boundary() {
        let mut cpu = SharedCpu::new();
        cpu.reserve_dom0(t(15), SimDuration::from_millis(10));
        // Work fits exactly before dom0 starts.
        assert_eq!(cpu.guest_completion(t(10), SimDuration::from_millis(5)), t(15));
    }

    #[test]
    fn burst_started_inside_dom0_interval_waits() {
        let mut cpu = SharedCpu::new();
        cpu.reserve_dom0(t(10), SimDuration::from_millis(5));
        assert_eq!(cpu.guest_completion(t(12), SimDuration::from_millis(1)), t(16));
    }

    #[test]
    fn multiple_dom0_intervals_accumulate() {
        let mut cpu = SharedCpu::new();
        cpu.reserve_dom0(t(11), SimDuration::from_millis(1)); // 11–12
        cpu.reserve_dom0(t(14), SimDuration::from_millis(1)); // queued: 14–15
        let done = cpu.guest_completion(t(10), SimDuration::from_millis(4));
        // 1 ms run, 1 ms steal, 2 ms run, 1 ms steal, 1 ms run → ends 16 ms.
        assert_eq!(done, t(16));
    }

    #[test]
    fn dom0_reservations_queue_fifo() {
        let mut cpu = SharedCpu::new();
        let (s1, e1) = cpu.reserve_dom0(t(10), SimDuration::from_millis(5));
        let (s2, _e2) = cpu.reserve_dom0(t(11), SimDuration::from_millis(5));
        assert_eq!((s1, e1), (t(10), t(15)));
        assert_eq!(s2, t(15), "second dom0 job waits for the first");
    }

    #[test]
    fn steal_time_window_query() {
        let mut cpu = SharedCpu::new();
        cpu.reserve_dom0(t(10), SimDuration::from_millis(4));
        assert_eq!(cpu.dom0_time_in(t(11), t(13)), SimDuration::from_millis(2));
        assert_eq!(cpu.dom0_time_in(t(20), t(30)), SimDuration::ZERO);
    }

    #[test]
    fn forget_before_trims_history() {
        let mut cpu = SharedCpu::new();
        cpu.reserve_dom0(t(1), SimDuration::from_millis(1));
        cpu.reserve_dom0(t(100), SimDuration::from_millis(1));
        cpu.forget_before(t(50));
        assert_eq!(cpu.dom0_time_in(t(0), t(50)), SimDuration::ZERO);
        assert_eq!(cpu.dom0_time_in(t(100), t(102)), SimDuration::from_millis(1));
    }
}
