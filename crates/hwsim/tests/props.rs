//! Randomized property tests for the hardware models: clock inversion,
//! disk service-time sanity, and CPU-sharing conservation.
//!
//! Hand-rolled case generation driven by `SimRng`; gated behind the
//! `props` feature. Generation is deterministic per case index.
#![cfg(feature = "props")]

use hwsim::{Disk, DiskOp, DiskProfile, DiskRequest, HardwareClock, SharedCpu};
use sim::{SimDuration, SimRng, SimTime};

const CASES: u64 = 256;

/// `when_reads` inverts `read_ns` for any drift/offset/slew state:
/// scheduling a wakeup at a clock reading hits that reading.
#[test]
fn clock_when_reads_inverts_read() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0xC10C_14E4, case as u32);
        let offset_ns = g.range_u64(0, 100_000_000) as i64 - 50_000_000;
        let drift_ppm = g.range_f64(-200.0, 200.0);
        let slew_ppm = g.range_f64(-400.0, 400.0);
        let now_s = g.range_f64(0.0, 10_000.0);
        let ahead_s = g.range_f64(0.000001, 1_000.0);

        let mut c = HardwareClock::new(offset_ns, drift_ppm);
        let now = SimTime::from_nanos((now_s * 1e9) as u64);
        c.set_slew_ppm(now, slew_ppm);
        let target = c.read_ns(now) + ahead_s * 1e9;
        let fire = c.when_reads(now, target);
        assert!(fire >= now, "case {case}");
        let achieved = c.read_ns(fire);
        // Rounding to whole ns bounds the inversion error by ~1 tick.
        assert!(
            (achieved - target).abs() < 10.0,
            "case {case}: target {target} achieved {achieved}"
        );
    }
}

/// Clock error growth is linear in elapsed time at the configured rate
/// (no hidden state jumps).
#[test]
fn clock_error_is_linear() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0x11EA4, case as u32);
        let drift_ppm = g.range_f64(-200.0, 200.0);
        let dt_s = g.range_f64(0.0, 1_000.0);

        let c = HardwareClock::new(0, drift_ppm);
        let e1 = c.error_ns(SimTime::from_nanos((dt_s * 1e9) as u64));
        let expect = dt_s * 1e9 * drift_ppm * 1e-6;
        assert!(
            (e1 - expect).abs() < 2.0,
            "case {case}: err {e1} expect {expect}"
        );
    }
}

/// Disk service times: sequential runs cost exactly the transfer time;
/// any request costs at least the transfer time; completion ordering in
/// the queue is FIFO.
#[test]
fn disk_service_bounds() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0xD15C, case as u32);
        let n_reqs = g.range_u64(1, 40) as usize;
        let reqs: Vec<(u64, u64, bool)> = (0..n_reqs)
            .map(|_| {
                (
                    g.range_u64(0, 100_000),
                    g.range_u64(1, 64),
                    g.chance(0.5),
                )
            })
            .collect();

        let profile = DiskProfile {
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(9),
            rpm: 10_000,
            transfer_bps: 70_000_000,
            blocks: 200_000,
            block_size: 4096,
        };
        let mut disk = Disk::new(profile.clone());
        let mut rng = SimRng::from_seed(1);
        for (block, n, write) in reqs {
            let op = if write { DiskOp::Write } else { DiskOp::Read };
            let sequential = block == disk.head();
            let t = disk.service(&mut rng, DiskRequest { op, block, nblocks: n });
            let transfer = sim::transmission_time(n * 4096, profile.transfer_bps * 8);
            assert!(t >= transfer, "case {case}: service faster than media rate");
            if sequential {
                assert_eq!(t, transfer, "case {case}: sequential run paid a seek");
            } else {
                assert!(
                    t <= transfer + profile.max_seek + profile.rotation(),
                    "case {case}: service exceeded worst-case mechanics"
                );
            }
        }
    }
}

/// CPU sharing conserves work: a guest burst's completion time equals
/// start + work + exactly the dom0 time that overlapped it.
#[test]
fn cpu_sharing_conserves_work() {
    for case in 0..CASES {
        let mut g = SimRng::for_component(0xC9A, case as u32);
        let n_dom0 = g.range_u64(0, 20) as usize;
        let dom0: Vec<(u64, u64)> = (0..n_dom0)
            .map(|_| (g.range_u64(0, 1_000), g.range_u64(1, 50)))
            .collect();
        let start_ms = g.range_u64(0, 1_000);
        let work_ms = g.range_u64(1, 200);

        let mut cpu = SharedCpu::new();
        for (at, len) in dom0 {
            cpu.reserve_dom0(
                SimTime::ZERO + SimDuration::from_millis(at),
                SimDuration::from_millis(len),
            );
        }
        let start = SimTime::ZERO + SimDuration::from_millis(start_ms);
        let work = SimDuration::from_millis(work_ms);
        let done = cpu.guest_completion(start, work);
        let stolen = cpu.dom0_time_in(start, done);
        assert_eq!(done, start + work + stolen, "case {case}: work not conserved");
    }
}
