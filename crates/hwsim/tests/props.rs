//! Property-based tests for the hardware models: clock inversion, disk
//! service-time sanity, and CPU-sharing conservation.

use hwsim::{Disk, DiskOp, DiskProfile, DiskRequest, HardwareClock, SharedCpu};
use proptest::prelude::*;
use sim::{SimDuration, SimRng, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `when_reads` inverts `read_ns` for any drift/offset/slew state:
    /// scheduling a wakeup at a clock reading hits that reading.
    #[test]
    fn clock_when_reads_inverts_read(
        offset_ns in -50_000_000i64..50_000_000,
        drift_ppm in -200f64..200.0,
        slew_ppm in -400f64..400.0,
        now_s in 0f64..10_000.0,
        ahead_s in 0.000001f64..1_000.0,
    ) {
        let mut c = HardwareClock::new(offset_ns, drift_ppm);
        let now = SimTime::from_nanos((now_s * 1e9) as u64);
        c.set_slew_ppm(now, slew_ppm);
        let target = c.read_ns(now) + ahead_s * 1e9;
        let fire = c.when_reads(now, target);
        prop_assert!(fire >= now);
        let achieved = c.read_ns(fire);
        // Rounding to whole ns bounds the inversion error by ~1 tick.
        prop_assert!((achieved - target).abs() < 10.0,
            "target {target} achieved {achieved}");
    }

    /// Clock error growth is linear in elapsed time at the configured
    /// rate (no hidden state jumps).
    #[test]
    fn clock_error_is_linear(drift_ppm in -200f64..200.0, dt_s in 0f64..1_000.0) {
        let c = HardwareClock::new(0, drift_ppm);
        let e1 = c.error_ns(SimTime::from_nanos((dt_s * 1e9) as u64));
        let expect = dt_s * 1e9 * drift_ppm * 1e-6;
        prop_assert!((e1 - expect).abs() < 2.0, "err {e1} expect {expect}");
    }

    /// Disk service times: sequential runs cost exactly the transfer time;
    /// any request costs at least the transfer time; completion ordering
    /// in the queue is FIFO.
    #[test]
    fn disk_service_bounds(
        reqs in prop::collection::vec((0..100_000u64, 1..64u64, any::<bool>()), 1..40),
    ) {
        let profile = DiskProfile {
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(9),
            rpm: 10_000,
            transfer_bps: 70_000_000,
            blocks: 200_000,
            block_size: 4096,
        };
        let mut disk = Disk::new(profile.clone());
        let mut rng = SimRng::from_seed(1);
        for (block, n, write) in reqs {
            let op = if write { DiskOp::Write } else { DiskOp::Read };
            let sequential = block == disk.head();
            let t = disk.service(&mut rng, DiskRequest { op, block, nblocks: n });
            let transfer = sim::transmission_time(n * 4096, profile.transfer_bps * 8);
            prop_assert!(t >= transfer, "service faster than media rate");
            if sequential {
                prop_assert_eq!(t, transfer, "sequential run paid a seek");
            } else {
                prop_assert!(
                    t <= transfer + profile.max_seek + profile.rotation(),
                    "service exceeded worst-case mechanics"
                );
            }
        }
    }

    /// CPU sharing conserves work: a guest burst's completion time equals
    /// start + work + exactly the dom0 time that overlapped it.
    #[test]
    fn cpu_sharing_conserves_work(
        dom0 in prop::collection::vec((0..1_000u64, 1..50u64), 0..20),
        start_ms in 0..1_000u64,
        work_ms in 1..200u64,
    ) {
        let mut cpu = SharedCpu::new();
        for (at, len) in dom0 {
            cpu.reserve_dom0(
                SimTime::ZERO + SimDuration::from_millis(at),
                SimDuration::from_millis(len),
            );
        }
        let start = SimTime::ZERO + SimDuration::from_millis(start_ms);
        let work = SimDuration::from_millis(work_ms);
        let done = cpu.guest_completion(start, work);
        let stolen = cpu.dom0_time_in(start, done);
        prop_assert_eq!(done, start + work + stolen, "work not conserved");
    }
}
