//! Free-block elimination by filesystem snooping (§5.1).
//!
//! "We eliminate free blocks by implementing filesystem-specific plugins to
//! snoop on writes at the level below the guest system. A plugin constructs
//! a free-block metadata map that is consistent with respect to the data
//! blocks on the disk. We have implemented free block elimination for the
//! Linux ext3 filesystem."
//!
//! The [`Ext3Snoop`] watches every block write passing through the store;
//! when it sees an allocation-bitmap block it decodes it and updates its
//! shadow map. Because the shadow map is rebuilt from the very writes that
//! land on disk, it is consistent with on-disk state by construction — a
//! data block is only considered free if the *newest on-disk bitmap*
//! says so.

use std::collections::HashMap;

use ckptstore::{Dec, DecodeError, Enc};

use crate::block::{BitmapBlock, BlockData};

/// The ext3 snooping plugin: a shadow copy of the allocation bitmaps.
#[derive(Clone, Debug, Default)]
pub struct Ext3Snoop {
    bitmaps: HashMap<u32, BitmapBlock>,
    /// Bitmap-block writes observed.
    pub bitmap_writes: u64,
    /// Non-bitmap writes observed.
    pub data_writes: u64,
}

impl Ext3Snoop {
    /// Creates a snoop with no knowledge (all blocks assumed allocated).
    pub fn new() -> Self {
        Ext3Snoop::default()
    }

    /// Observes one block write below the guest.
    pub fn on_write(&mut self, _vba: u64, data: &BlockData) {
        match data {
            BlockData::Bitmap(b) => {
                self.bitmap_writes += 1;
                self.bitmaps.insert(b.group, b.clone());
            }
            _ => self.data_writes += 1,
        }
    }

    /// Whether `vba` is known-free per the newest snooped bitmaps.
    ///
    /// Unknown blocks (no bitmap observed for their group) are treated as
    /// allocated — elimination must never drop live data.
    pub fn is_free(&self, vba: u64) -> bool {
        self.bitmaps
            .values()
            .find_map(|b| b.covers_and_allocated(vba))
            .map(|allocated| !allocated)
            .unwrap_or(false)
    }

    /// Number of block groups with snooped bitmaps.
    pub fn groups_known(&self) -> usize {
        self.bitmaps.len()
    }

    /// Total allocated blocks across known groups.
    pub fn allocated_blocks(&self) -> u64 {
        self.bitmaps.values().map(|b| b.allocated_count() as u64).sum()
    }

    /// Serializes the snoop's shadow bitmaps (in group order) and counters.
    pub fn encode_wire(&self, e: &mut Enc) {
        let mut groups: Vec<&BitmapBlock> = self.bitmaps.values().collect();
        groups.sort_by_key(|b| b.group);
        e.seq(groups.len());
        for b in groups {
            b.encode_wire(e);
        }
        e.u64(self.bitmap_writes);
        e.u64(self.data_writes);
    }

    /// Inverse of [`Ext3Snoop::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = d.seq()?;
        let mut bitmaps = HashMap::with_capacity(n);
        for _ in 0..n {
            let b = BitmapBlock::decode_wire(d)?;
            if bitmaps.insert(b.group, b).is_some() {
                return Err(DecodeError::Invalid("duplicate snoop bitmap group"));
            }
        }
        let bitmap_writes = d.u64()?;
        let data_writes = d.u64()?;
        Ok(Ext3Snoop { bitmaps, bitmap_writes, data_writes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap(group: u32, start: u64, n: u32, allocated: &[u32]) -> BlockData {
        let mut b = BitmapBlock::new_free(group, start, n);
        for &i in allocated {
            b = b.with(i, true);
        }
        BlockData::Bitmap(b)
    }

    #[test]
    fn unknown_groups_are_conservatively_allocated() {
        let s = Ext3Snoop::new();
        assert!(!s.is_free(12345));
    }

    #[test]
    fn snooped_bitmap_classifies_blocks() {
        let mut s = Ext3Snoop::new();
        s.on_write(100, &bitmap(0, 1000, 100, &[0, 1, 2]));
        assert!(!s.is_free(1000));
        assert!(!s.is_free(1002));
        assert!(s.is_free(1003), "unallocated per bitmap");
        assert!(!s.is_free(2000), "outside any group");
    }

    #[test]
    fn newer_bitmap_write_supersedes_older() {
        let mut s = Ext3Snoop::new();
        s.on_write(100, &bitmap(0, 1000, 100, &[5]));
        assert!(!s.is_free(1005));
        // The file is deleted: a new bitmap marks block 5 free.
        s.on_write(100, &bitmap(0, 1000, 100, &[]));
        assert!(s.is_free(1005));
        assert_eq!(s.bitmap_writes, 2);
    }

    #[test]
    fn snoop_wire_round_trip() {
        use ckptstore::{Dec, Enc};
        let mut s = Ext3Snoop::new();
        s.on_write(1, &BlockData::Opaque(9));
        s.on_write(2, &bitmap(0, 0, 100, &[1, 2]));
        s.on_write(3, &bitmap(1, 100, 100, &[50]));
        let mut e = Enc::new();
        s.encode_wire(&mut e);
        let bytes = e.into_bytes();
        let back = Ext3Snoop::decode_wire(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.groups_known(), 2);
        assert_eq!(back.bitmap_writes, 2);
        assert_eq!(back.data_writes, 1);
        assert!(back.is_free(3));
        assert!(!back.is_free(1));
        assert!(!back.is_free(150));
    }

    #[test]
    fn counters_distinguish_write_kinds() {
        let mut s = Ext3Snoop::new();
        s.on_write(1, &BlockData::Opaque(9));
        s.on_write(2, &bitmap(0, 0, 10, &[]));
        assert_eq!(s.data_writes, 1);
        assert_eq!(s.bitmap_writes, 1);
        assert_eq!(s.groups_known(), 1);
    }
}
