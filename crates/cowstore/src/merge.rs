//! Offline delta merging with locality restoration (§5.3).
//!
//! "Over the course of several swap-outs and swap-ins, the aggregated delta
//! is repeatedly merged with a disk delta. Over time, data locality in
//! these branches may be lost... Thus, when we merge the disk and
//! aggregated deltas offline after a swap-out, we reorder blocks in the
//! aggregated delta to restore locality."
//!
//! The merge happens on the file server after swap-out, so its cost never
//! touches the experiment; callers that want to account for it get a size
//! summary back.

use sim::telemetry::names;
use sim::Telemetry;

use crate::block::DeltaMap;

/// Outcome statistics of a merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeStats {
    /// Blocks in the previous aggregated delta.
    pub old_agg_blocks: u64,
    /// Blocks in the incoming current delta.
    pub delta_blocks: u64,
    /// Blocks superseded (present in both; newest wins).
    pub superseded: u64,
    /// Blocks in the merged output.
    pub merged_blocks: u64,
}

impl MergeStats {
    /// Records this merge into the shared registry's `cowstore.*`
    /// counters (one seal plus its block movement).
    pub fn record(&self, t: &Telemetry) {
        t.inc(t.counter(names::COW_SEALS));
        t.add(t.counter(names::COW_SEAL_DELTA_BLOCKS), self.delta_blocks);
        t.add(t.counter(names::COW_SEAL_SUPERSEDED), self.superseded);
        t.add(t.counter(names::COW_SEAL_MERGED_BLOCKS), self.merged_blocks);
    }
}

/// Merges `current` into `agg`, newest content winning, and reorders the
/// result by vba so a later swap-in lays it out with locality.
pub fn merge_reorder(agg: &DeltaMap, current: &DeltaMap) -> (DeltaMap, MergeStats) {
    let mut out = DeltaMap::new();
    let mut superseded = 0u64;
    // Start from the old aggregate, then overlay the new delta; counting
    // collisions gives the superseded figure.
    let mut combined: Vec<(u64, crate::block::BlockData)> = Vec::new();
    for (vba, d) in agg.iter_log_order() {
        combined.push((vba, d.clone()));
    }
    for (vba, d) in current.iter_log_order() {
        if agg.get(vba).is_some() {
            superseded += 1;
        }
        combined.push((vba, d.clone()));
    }
    // Sort stably by vba; later entries (newest) overwrite on insert.
    combined.sort_by_key(|&(vba, _)| vba);
    for (vba, d) in combined {
        out.put(vba, d);
    }
    let stats = MergeStats {
        old_agg_blocks: agg.len() as u64,
        delta_blocks: current.len() as u64,
        superseded,
        merged_blocks: out.len() as u64,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockData;

    #[test]
    fn merge_prefers_newest_content() {
        let mut agg = DeltaMap::new();
        agg.put(1, BlockData::Opaque(10));
        agg.put(2, BlockData::Opaque(20));
        let mut cur = DeltaMap::new();
        cur.put(2, BlockData::Opaque(21));
        cur.put(3, BlockData::Opaque(30));
        let (merged, stats) = merge_reorder(&agg, &cur);
        assert_eq!(merged.get(1).unwrap().1, &BlockData::Opaque(10));
        assert_eq!(merged.get(2).unwrap().1, &BlockData::Opaque(21));
        assert_eq!(merged.get(3).unwrap().1, &BlockData::Opaque(30));
        assert_eq!(
            stats,
            MergeStats {
                old_agg_blocks: 2,
                delta_blocks: 2,
                superseded: 1,
                merged_blocks: 3
            }
        );
    }

    #[test]
    fn merged_output_is_vba_ordered() {
        let mut agg = DeltaMap::new();
        agg.put(9, BlockData::Opaque(9));
        agg.put(3, BlockData::Opaque(3));
        let mut cur = DeltaMap::new();
        cur.put(5, BlockData::Opaque(5));
        let (merged, _) = merge_reorder(&agg, &cur);
        let order: Vec<u64> = merged.iter_log_order().map(|(v, _)| v).collect();
        assert_eq!(order, vec![3, 5, 9], "locality-restoring order");
    }

    #[test]
    fn merging_empty_delta_is_identity() {
        let mut agg = DeltaMap::new();
        agg.put(1, BlockData::Opaque(1));
        let (merged, stats) = merge_reorder(&agg, &DeltaMap::new());
        assert_eq!(merged.len(), 1);
        assert_eq!(stats.superseded, 0);
    }
}
