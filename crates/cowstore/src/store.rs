//! The three-level branching store and its block-address translation.
//!
//! Fig 3 of the paper: a logical disk is stitched from an immutable golden
//! image (linear addressing, VBA == PBA), an immutable aggregated delta
//! (all changes from previous swap-ins, laid out in vba-sorted order for
//! locality), and a mutable current delta implemented as a redo log with a
//! hash index. Writes append to the log — "copy-on-write is always a
//! complete overwrite and never requires a read-before-write" — while the
//! pre-optimization LVM behaviour ([`CowMode::BranchOrig`]) pays the
//! read-before-write on every first touch of a chunk, and a raw disk
//! ([`CowMode::Base`]) is the Fig 8 baseline.
//!
//! Physical placement matters only for timing (the `hwsim` disk is a
//! service-time model; content lives in the maps here): the golden region
//! occupies the front of the disk, the aggregated delta and the redo log
//! follow, and on a *fresh* disk each log segment must update a metadata
//! region distributed far across the disk — the extra seeks behind the
//! paper's 17% fresh-disk overhead, which "disappears as the disk ages".

use std::collections::HashMap;
use std::sync::Arc;

use ckptstore::{Dec, DecodeError, Enc};
use hwsim::{DiskOp, DiskQueue, DiskRequest};
use sim::telemetry::names;
use sim::{SimRng, SimTime, Telemetry, TraceTag, TrackId};

use crate::block::{BlockData, DeltaMap};
use crate::freeblock::Ext3Snoop;
use crate::golden::GoldenImage;
use crate::merge::{merge_reorder, MergeStats};

/// Which copy-on-write strategy the store uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CowMode {
    /// Raw disk: reads/writes go straight to the vba (Fig 8 "Base").
    Base,
    /// Original LVM snapshot behaviour: chunk-granular COW with
    /// read-before-write on first touch (Fig 8 "Branch-Orig").
    BranchOrig {
        /// COW chunk size in blocks (LVM default chunking).
        chunk_blocks: u64,
    },
    /// The paper's redo-log branching storage (Fig 8 "Branch").
    Branch,
}

/// Physical layout and aging knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreLayout {
    /// Blocks in the golden region (= golden image capacity).
    pub golden_blocks: u64,
    /// Capacity reserved for the aggregated delta, in blocks.
    pub agg_cap: u64,
    /// Capacity reserved for the redo log / snapshot area, in blocks.
    pub log_cap: u64,
    /// A metadata region must be updated every this many fresh log
    /// appends (one log segment).
    pub meta_interval: u64,
    /// Fresh disk: metadata regions are spread across the whole disk and
    /// cost a long seek. Aged disk: they are already allocated next to the
    /// log and updates are nearly free.
    pub aged: bool,
}

impl StoreLayout {
    /// A layout sized for `golden`, with paper-calibrated segment size
    /// (4 MiB segments at 4 KiB blocks).
    pub fn for_image(golden: &GoldenImage) -> Self {
        StoreLayout {
            golden_blocks: golden.blocks(),
            agg_cap: golden.blocks() / 4,
            log_cap: golden.blocks() / 2,
            meta_interval: 1024,
            aged: false,
        }
    }

    fn agg_start(&self) -> u64 {
        self.golden_blocks
    }

    fn log_start(&self) -> u64 {
        self.golden_blocks + self.agg_cap
    }

    /// Physical address of the metadata region for log segment `seg` on a
    /// fresh disk: scattered pseudo-randomly over the golden region span.
    fn meta_block(&self, seg: u64) -> u64 {
        (seg.wrapping_mul(7919)) % self.golden_blocks.max(1)
    }
}

/// Counters for the experiment post-processing.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    pub reads: u64,
    pub writes: u64,
    pub log_appends: u64,
    pub log_overwrites: u64,
    pub meta_writes: u64,
    pub rbw_reads: u64,
    pub golden_reads: u64,
    pub agg_reads: u64,
    pub cur_reads: u64,
}

/// The branching store for one virtual disk.
///
/// # Examples
///
/// ```
/// use cowstore::{BlockData, BranchingStore, CowMode, GoldenImageBuilder, StoreLayout};
/// use std::sync::Arc;
///
/// let golden = Arc::new(GoldenImageBuilder::new("base", 1000, 4096, 7).build());
/// let layout = StoreLayout::for_image(&golden);
/// let mut store = BranchingStore::new(golden.clone(), CowMode::Branch, layout);
///
/// // Reads fall through to the golden image until written.
/// assert_eq!(store.peek(5), golden.read(5));
/// // (Timed writes go through `write_block` with a disk queue.)
/// ```
#[derive(Clone, Debug)]
pub struct BranchingStore {
    mode: CowMode,
    layout: StoreLayout,
    golden: Arc<GoldenImage>,
    agg: DeltaMap,
    agg_slots: HashMap<u64, u64>,
    cur: DeltaMap,
    /// BranchOrig: chunk index → chunk slot in the snapshot area.
    chunks: HashMap<u64, u64>,
    next_chunk_slot: u64,
    /// Base mode: raw writes by vba (content only; placement is linear).
    base_writes: HashMap<u64, BlockData>,
    appends_since_meta: u64,
    snoop: Option<Ext3Snoop>,
    /// Activity counters.
    pub stats: StoreStats,
    /// Trace handles, present once the hosting component attaches the
    /// shared registry. Not serialized; restore paths re-attach.
    tele: Option<CowTele>,
}

/// Telemetry handles of an attached [`BranchingStore`].
#[derive(Clone, Debug)]
struct CowTele {
    t: Telemetry,
    track: TrackId,
    ev_seal: TraceTag,
}

impl BranchingStore {
    /// Creates a store over `golden` with an empty aggregated delta.
    pub fn new(golden: Arc<GoldenImage>, mode: CowMode, layout: StoreLayout) -> Self {
        BranchingStore {
            mode,
            layout,
            golden,
            agg: DeltaMap::new(),
            agg_slots: HashMap::new(),
            cur: DeltaMap::new(),
            chunks: HashMap::new(),
            next_chunk_slot: 0,
            base_writes: HashMap::new(),
            appends_since_meta: 0,
            snoop: None,
            stats: StoreStats::default(),
            tele: None,
        }
    }

    /// Attaches the shared telemetry registry, putting this store's seal
    /// activity on the `cow` track of `host`. Idempotent.
    pub fn attach_telemetry(&mut self, t: &Telemetry, host: u32) {
        if self.tele.is_some() {
            return;
        }
        self.tele = Some(CowTele {
            t: t.clone(),
            track: t.track(host, names::TRACK_COW),
            ev_seal: t.trace_tag(names::EV_COW_SEAL),
        });
    }

    /// Installs an aggregated delta (swap-in path). Slots are assigned in
    /// vba-sorted order — the locality-restoring layout the offline merge
    /// produces (§5.3).
    pub fn install_aggregate(&mut self, agg: DeltaMap) {
        self.agg_slots.clear();
        for (slot, (vba, _)) in agg.sorted_by_vba().into_iter().enumerate() {
            self.agg_slots.insert(vba, slot as u64);
        }
        self.agg = agg;
    }

    /// Attaches the filesystem-snooping plugin (free-block elimination).
    pub fn set_snoop(&mut self, snoop: Ext3Snoop) {
        self.snoop = Some(snoop);
    }

    /// The snoop, if attached.
    pub fn snoop(&self) -> Option<&Ext3Snoop> {
        self.snoop.as_ref()
    }

    /// The store's block size.
    pub fn block_size(&self) -> u32 {
        self.golden.block_size()
    }

    /// Logical capacity in blocks.
    pub fn blocks(&self) -> u64 {
        self.golden.blocks()
    }

    /// The live current delta.
    pub fn current_delta(&self) -> &DeltaMap {
        &self.cur
    }

    /// The installed aggregated delta.
    pub fn aggregate(&self) -> &DeltaMap {
        &self.agg
    }

    /// Current COW mode.
    pub fn mode(&self) -> CowMode {
        self.mode
    }

    /// Reads block content without charging disk time (used by tests and
    /// by layers that account time themselves, e.g. the buffer cache).
    pub fn peek(&self, vba: u64) -> BlockData {
        assert!(vba < self.blocks(), "read out of range");
        if self.mode == CowMode::Base {
            return self
                .base_writes
                .get(&vba)
                .cloned()
                .unwrap_or_else(|| self.golden.read(vba));
        }
        if let Some((_, d)) = self.cur.get(vba) {
            return d.clone();
        }
        if let Some((_, d)) = self.agg.get(vba) {
            return d.clone();
        }
        self.golden.read(vba)
    }

    /// Physical block address a read of `vba` resolves to (for timing).
    fn read_location(&mut self, vba: u64) -> u64 {
        match self.mode {
            CowMode::Base => vba,
            CowMode::BranchOrig { chunk_blocks } => {
                if self.cur.get(vba).is_some() {
                    self.stats.cur_reads += 1;
                    let chunk = vba / chunk_blocks;
                    let slot = self.chunks[&chunk];
                    self.layout.log_start() + slot * chunk_blocks + (vba % chunk_blocks)
                } else if let Some(&slot) = self.agg_slots.get(&vba) {
                    self.stats.agg_reads += 1;
                    self.layout.agg_start() + slot
                } else {
                    self.stats.golden_reads += 1;
                    vba
                }
            }
            CowMode::Branch => {
                if let Some((slot, _)) = self.cur.get(vba) {
                    self.stats.cur_reads += 1;
                    self.layout.log_start() + slot as u64
                } else if let Some(&slot) = self.agg_slots.get(&vba) {
                    self.stats.agg_reads += 1;
                    self.layout.agg_start() + slot
                } else {
                    self.stats.golden_reads += 1;
                    vba
                }
            }
        }
    }

    /// Reads one block with disk timing; returns content and completion.
    pub fn read_block(
        &mut self,
        now: SimTime,
        vba: u64,
        dq: &mut DiskQueue,
        rng: &mut SimRng,
    ) -> (BlockData, SimTime) {
        self.stats.reads += 1;
        let data = self.peek(vba);
        let phys = self.read_location(vba);
        let done = dq.submit(
            now,
            rng,
            DiskRequest {
                op: DiskOp::Read,
                block: phys,
                nblocks: 1,
            },
        );
        (data, done)
    }

    /// Reads `n` consecutive blocks; returns contents and completion.
    pub fn read_run(
        &mut self,
        now: SimTime,
        vba: u64,
        n: u64,
        dq: &mut DiskQueue,
        rng: &mut SimRng,
    ) -> (Vec<BlockData>, SimTime) {
        assert!(n > 0, "empty read run");
        let mut out = Vec::with_capacity(n as usize);
        let mut done = now;
        for i in 0..n {
            let (d, t) = self.read_block(now, vba + i, dq, rng);
            out.push(d);
            done = t;
        }
        (out, done)
    }

    /// Writes one block with disk timing; returns completion.
    pub fn write_block(
        &mut self,
        now: SimTime,
        vba: u64,
        data: BlockData,
        dq: &mut DiskQueue,
        rng: &mut SimRng,
    ) -> SimTime {
        assert!(vba < self.blocks(), "write out of range");
        self.stats.writes += 1;
        if let Some(sn) = self.snoop.as_mut() {
            sn.on_write(vba, &data);
        }
        match self.mode {
            CowMode::Base => {
                self.base_writes.insert(vba, data);
                dq.submit(
                    now,
                    rng,
                    DiskRequest {
                        op: DiskOp::Write,
                        block: vba,
                        nblocks: 1,
                    },
                )
            }
            CowMode::Branch => {
                let (slot, fresh) = self.cur.put(vba, data);
                let phys = self.layout.log_start() + slot as u64;
                let mut done = dq.submit(
                    now,
                    rng,
                    DiskRequest {
                        op: DiskOp::Write,
                        block: phys,
                        nblocks: 1,
                    },
                );
                if fresh {
                    self.stats.log_appends += 1;
                    self.appends_since_meta += 1;
                    if self.appends_since_meta >= self.layout.meta_interval {
                        self.appends_since_meta = 0;
                        done = self.write_metadata(now, slot as u64, dq, rng);
                    }
                } else {
                    self.stats.log_overwrites += 1;
                }
                done
            }
            CowMode::BranchOrig { chunk_blocks } => {
                let chunk = vba / chunk_blocks;
                let mut done;
                if let Some(&slot) = self.chunks.get(&chunk) {
                    // Chunk already broken out: in-place write.
                    let phys = self.layout.log_start() + slot * chunk_blocks + (vba % chunk_blocks);
                    done = dq.submit(
                        now,
                        rng,
                        DiskRequest {
                            op: DiskOp::Write,
                            block: phys,
                            nblocks: 1,
                        },
                    );
                } else {
                    // First touch: read-before-write of the whole chunk
                    // from the lower level, then write it to the snapshot
                    // area, then a metadata update.
                    let slot = self.next_chunk_slot;
                    self.next_chunk_slot += 1;
                    self.chunks.insert(chunk, slot);
                    let origin = chunk * chunk_blocks;
                    self.stats.rbw_reads += 1;
                    let _ = dq.submit(
                        now,
                        rng,
                        DiskRequest {
                            op: DiskOp::Read,
                            block: origin.min(self.blocks() - 1),
                            nblocks: chunk_blocks.min(self.blocks() - origin.min(self.blocks() - 1)),
                        },
                    );
                    let phys = self.layout.log_start() + slot * chunk_blocks;
                    let _ = dq.submit(
                        now,
                        rng,
                        DiskRequest {
                            op: DiskOp::Write,
                            block: phys,
                            nblocks: chunk_blocks,
                        },
                    );
                    done = self.write_metadata(now, slot, dq, rng);
                    // Populate the current delta with the old chunk content
                    // so reads resolve correctly.
                    for i in 0..chunk_blocks {
                        let cvba = chunk * chunk_blocks + i;
                        if cvba < self.blocks() && cvba != vba && self.cur.get(cvba).is_none() {
                            let old = self.peek(cvba);
                            self.cur.put(cvba, old);
                        }
                    }
                    done = done.max(now);
                }
                self.cur.put(vba, data);
                done
            }
        }
    }

    /// Writes `datas.len()` consecutive blocks starting at `vba`.
    pub fn write_run(
        &mut self,
        now: SimTime,
        vba: u64,
        datas: Vec<BlockData>,
        dq: &mut DiskQueue,
        rng: &mut SimRng,
    ) -> SimTime {
        assert!(!datas.is_empty(), "empty write run");
        let mut done = now;
        for (i, d) in datas.into_iter().enumerate() {
            done = self.write_block(now, vba + i as u64, d, dq, rng);
        }
        done
    }

    fn write_metadata(
        &mut self,
        now: SimTime,
        seg_hint: u64,
        dq: &mut DiskQueue,
        rng: &mut SimRng,
    ) -> SimTime {
        self.stats.meta_writes += 1;
        let block = if self.layout.aged {
            // Aged disk: the metadata region neighbours the log — model as
            // a write right next to the current head (no long seek).
            dq.disk().head()
        } else {
            self.layout.meta_block(seg_hint / self.layout.meta_interval.max(1))
        };
        dq.submit(
            now,
            rng,
            DiskRequest {
                op: DiskOp::Write,
                block,
                nblocks: 1,
            },
        )
    }

    /// Returns the current delta with free blocks eliminated (if a snoop
    /// is attached), plus how many blocks elimination removed. This is the
    /// delta actually saved at swap-out (§5.1).
    pub fn filtered_delta(&self) -> (DeltaMap, u64) {
        let mut out = DeltaMap::new();
        let mut removed = 0;
        for (vba, data) in self.cur.iter_log_order() {
            let free = self
                .snoop
                .as_ref()
                .map(|s| s.is_free(vba) && !matches!(data, BlockData::Bitmap(_)))
                .unwrap_or(false);
            if free {
                removed += 1;
            } else {
                out.put(vba, data.clone());
            }
        }
        (out, removed)
    }

    /// Seals the current branch: merges the current delta into the
    /// aggregated delta (with locality reordering) and starts a fresh,
    /// empty branch — the device-level effect of a swap cycle or
    /// snapshot. `now` stamps the seal on the trace timeline when
    /// telemetry is attached (the merge itself is offline and free at
    /// experiment time, so the slice is zero-width).
    pub fn seal_branch(&mut self, now: SimTime) -> MergeStats {
        let cur = self.take_current_delta();
        let (merged, stats) = merge_reorder(&self.agg, &cur);
        self.install_aggregate(merged);
        if let Some(tele) = &self.tele {
            tele.t.trace_begin(tele.track, tele.ev_seal, now, stats.delta_blocks as i64);
            tele.t.trace_end(tele.track, tele.ev_seal, now, stats.merged_blocks as i64);
            stats.record(&tele.t);
        }
        stats
    }

    /// Takes the current delta, leaving it empty (swap-out completion).
    pub fn take_current_delta(&mut self) -> DeltaMap {
        self.chunks.clear();
        self.next_chunk_slot = 0;
        self.appends_since_meta = 0;
        std::mem::take(&mut self.cur)
    }

    /// Serializes the store's full device state — everything except the
    /// golden image, which is immutable, cached on physical nodes, and
    /// therefore never part of a checkpoint image (§5.1). The golden is
    /// identified by name so restore can validate it got the right one.
    pub fn encode_wire(&self, e: &mut Enc) {
        match self.mode {
            CowMode::Base => e.u8(0),
            CowMode::BranchOrig { chunk_blocks } => {
                e.u8(1);
                e.u64(chunk_blocks);
            }
            CowMode::Branch => e.u8(2),
        }
        e.u64(self.layout.golden_blocks);
        e.u64(self.layout.agg_cap);
        e.u64(self.layout.log_cap);
        e.u64(self.layout.meta_interval);
        e.bool(self.layout.aged);
        e.str(self.golden.name());
        e.u64(self.golden.blocks());
        e.u32(self.block_size());
        let bs = self.block_size();
        self.agg.encode_wire(e, bs);
        self.cur.encode_wire(e, bs);
        let mut chunk_pairs: Vec<(u64, u64)> =
            self.chunks.iter().map(|(&c, &s)| (c, s)).collect();
        chunk_pairs.sort_unstable();
        e.seq(chunk_pairs.len());
        for (chunk, slot) in chunk_pairs {
            e.u64(chunk);
            e.u64(slot);
        }
        e.u64(self.next_chunk_slot);
        // Base-mode raw writes travel as a delta map (vba-sorted so the
        // encoding is deterministic).
        let mut base = DeltaMap::new();
        let mut vbas: Vec<u64> = self.base_writes.keys().copied().collect();
        vbas.sort_unstable();
        for vba in vbas {
            base.put(vba, self.base_writes[&vba].clone());
        }
        base.encode_wire(e, bs);
        e.u64(self.appends_since_meta);
        match &self.snoop {
            Some(sn) => {
                e.bool(true);
                sn.encode_wire(e);
            }
            None => e.bool(false),
        }
        e.u64(self.stats.reads);
        e.u64(self.stats.writes);
        e.u64(self.stats.log_appends);
        e.u64(self.stats.log_overwrites);
        e.u64(self.stats.meta_writes);
        e.u64(self.stats.rbw_reads);
        e.u64(self.stats.golden_reads);
        e.u64(self.stats.agg_reads);
        e.u64(self.stats.cur_reads);
    }

    /// Inverse of [`BranchingStore::encode_wire`]. `golden` must be the
    /// image named in the encoding (the restore host's cached copy); the
    /// aggregate's slot layout is re-derived exactly as
    /// [`BranchingStore::install_aggregate`] assigned it.
    pub fn decode_wire(
        d: &mut Dec<'_>,
        golden: Arc<GoldenImage>,
    ) -> Result<Self, DecodeError> {
        let at = d.position();
        let mode = match d.u8()? {
            0 => CowMode::Base,
            1 => CowMode::BranchOrig { chunk_blocks: d.u64()? },
            2 => CowMode::Branch,
            tag => return Err(DecodeError::BadTag { at, tag, what: "cow mode" }),
        };
        let layout = StoreLayout {
            golden_blocks: d.u64()?,
            agg_cap: d.u64()?,
            log_cap: d.u64()?,
            meta_interval: d.u64()?,
            aged: d.bool()?,
        };
        let name = d.str()?;
        if name != golden.name() {
            return Err(DecodeError::Invalid("golden image name mismatch"));
        }
        if d.u64()? != golden.blocks() || d.u32()? != golden.block_size() {
            return Err(DecodeError::Invalid("golden image geometry mismatch"));
        }
        let bs = golden.block_size();
        let agg = DeltaMap::decode_wire(d, bs)?;
        let cur = DeltaMap::decode_wire(d, bs)?;
        let n = d.seq()?;
        let mut chunks = HashMap::with_capacity(n);
        for _ in 0..n {
            let chunk = d.u64()?;
            let slot = d.u64()?;
            if chunks.insert(chunk, slot).is_some() {
                return Err(DecodeError::Invalid("duplicate chunk entry"));
            }
        }
        let next_chunk_slot = d.u64()?;
        let base = DeltaMap::decode_wire(d, bs)?;
        let mut base_writes = HashMap::with_capacity(base.len());
        for (vba, data) in base.iter_log_order() {
            base_writes.insert(vba, data.clone());
        }
        let appends_since_meta = d.u64()?;
        let snoop = if d.bool()? { Some(Ext3Snoop::decode_wire(d)?) } else { None };
        let stats = StoreStats {
            reads: d.u64()?,
            writes: d.u64()?,
            log_appends: d.u64()?,
            log_overwrites: d.u64()?,
            meta_writes: d.u64()?,
            rbw_reads: d.u64()?,
            golden_reads: d.u64()?,
            agg_reads: d.u64()?,
            cur_reads: d.u64()?,
        };
        let mut store = BranchingStore::new(golden, mode, layout);
        store.install_aggregate(agg);
        store.cur = cur;
        store.chunks = chunks;
        store.next_chunk_slot = next_chunk_slot;
        store.base_writes = base_writes;
        store.appends_since_meta = appends_since_meta;
        store.snoop = snoop;
        store.stats = stats;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenImageBuilder;
    use hwsim::{Disk, DiskProfile};
    use sim::SimDuration;

    fn setup(mode: CowMode) -> (BranchingStore, DiskQueue, SimRng) {
        let golden = Arc::new(GoldenImageBuilder::new("base", 100_000, 4096, 1).build());
        let layout = StoreLayout {
            golden_blocks: 100_000,
            agg_cap: 25_000,
            log_cap: 50_000,
            meta_interval: 1024,
            aged: false,
        };
        let store = BranchingStore::new(golden, mode, layout);
        let disk = Disk::new(DiskProfile {
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(9),
            rpm: 10_000,
            transfer_bps: 70_000_000,
            blocks: 200_000,
            block_size: 4096,
        });
        (store, DiskQueue::new(disk), SimRng::from_seed(9))
    }

    #[test]
    fn unwritten_blocks_read_golden_content() {
        let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
        let golden_val = s.peek(42);
        let (d, _) = s.read_block(SimTime::ZERO, 42, &mut dq, &mut rng);
        assert_eq!(d, golden_val);
        assert_eq!(s.stats.golden_reads, 1);
    }

    #[test]
    fn read_your_writes_across_all_modes() {
        for mode in [
            CowMode::Base,
            CowMode::Branch,
            CowMode::BranchOrig { chunk_blocks: 64 },
        ] {
            let (mut s, mut dq, mut rng) = setup(mode);
            let now = SimTime::ZERO;
            s.write_block(now, 7, BlockData::Opaque(77), &mut dq, &mut rng);
            s.write_block(now, 7, BlockData::Opaque(78), &mut dq, &mut rng);
            s.write_block(now, 9, BlockData::Opaque(99), &mut dq, &mut rng);
            assert_eq!(s.peek(7), BlockData::Opaque(78), "{mode:?}");
            assert_eq!(s.peek(9), BlockData::Opaque(99), "{mode:?}");
            // Untouched neighbours still come from golden.
            assert_eq!(s.peek(8), s.golden.read(8), "{mode:?}");
        }
    }

    #[test]
    fn aggregate_level_resolves_between_cur_and_golden() {
        let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
        let mut agg = DeltaMap::new();
        agg.put(5, BlockData::Opaque(500));
        agg.put(6, BlockData::Opaque(600));
        s.install_aggregate(agg);
        assert_eq!(s.peek(5), BlockData::Opaque(500));
        // A current write shadows the aggregate.
        s.write_block(SimTime::ZERO, 5, BlockData::Opaque(501), &mut dq, &mut rng);
        assert_eq!(s.peek(5), BlockData::Opaque(501));
        // Timed read of the agg-resolved block accounts an agg read.
        let (_, _) = s.read_block(SimTime::ZERO, 6, &mut dq, &mut rng);
        assert_eq!(s.stats.agg_reads, 1);
    }

    #[test]
    fn branch_sequential_writes_do_not_read_before_write() {
        let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
        let now = SimTime::ZERO;
        for i in 0..100 {
            s.write_block(now, 1000 + i, BlockData::Opaque(i), &mut dq, &mut rng);
        }
        assert_eq!(s.stats.rbw_reads, 0);
        assert_eq!(dq.disk().stats.blocks_read, 0, "no reads at all");
        assert_eq!(s.stats.log_appends, 100);
    }

    #[test]
    fn branch_orig_pays_read_before_write_once_per_chunk() {
        let (mut s, mut dq, mut rng) = setup(CowMode::BranchOrig { chunk_blocks: 64 });
        let now = SimTime::ZERO;
        // 128 sequential blocks = 2 chunks.
        for i in 0..128 {
            s.write_block(now, 1000 + i, BlockData::Opaque(i), &mut dq, &mut rng);
        }
        // vba 1000 is not chunk-aligned (1000/64 = 15.6): touches chunks
        // 15..=17 → 3 chunk copies.
        assert_eq!(s.stats.rbw_reads, 3);
        assert!(dq.disk().stats.blocks_read >= 3 * 63, "chunks were read");
    }

    #[test]
    fn branch_is_much_faster_than_branch_orig_for_fresh_writes() {
        let n = 2048;
        let mut times = Vec::new();
        for mode in [CowMode::Branch, CowMode::BranchOrig { chunk_blocks: 64 }] {
            let (mut s, mut dq, mut rng) = setup(mode);
            let mut done = SimTime::ZERO;
            for i in 0..n {
                let _ = s.write_block(done, 4096 + i, BlockData::Opaque(i), &mut dq, &mut rng);
                done = dq.free_at();
            }
            times.push(done.as_secs_f64());
        }
        assert!(
            times[1] > times[0] * 2.0,
            "BranchOrig {:.3}s should be >2x Branch {:.3}s",
            times[1],
            times[0]
        );
    }

    #[test]
    fn metadata_writes_happen_every_interval_on_fresh_disk() {
        let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
        let now = SimTime::ZERO;
        for i in 0..2048 {
            s.write_block(now, i, BlockData::Opaque(i), &mut dq, &mut rng);
        }
        assert_eq!(s.stats.meta_writes, 2);
    }

    #[test]
    fn aged_disk_metadata_is_cheap() {
        let mut totals = Vec::new();
        for aged in [false, true] {
            let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
            s.layout.aged = aged;
            let mut done = SimTime::ZERO;
            for i in 0..8192 {
                s.write_block(done, i, BlockData::Opaque(i), &mut dq, &mut rng);
                done = dq.free_at();
            }
            totals.push(done.as_secs_f64());
        }
        assert!(
            totals[1] < totals[0],
            "aged {:.4}s must beat fresh {:.4}s",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn store_wire_round_trip_across_modes() {
        for mode in [
            CowMode::Base,
            CowMode::Branch,
            CowMode::BranchOrig { chunk_blocks: 64 },
        ] {
            let (mut s, mut dq, mut rng) = setup(mode);
            let now = SimTime::ZERO;
            let mut agg = DeltaMap::new();
            agg.put(5, BlockData::Opaque(500));
            agg.put(3, BlockData::Opaque(300));
            s.install_aggregate(agg);
            s.set_snoop(Ext3Snoop::new());
            for i in 0..50 {
                s.write_block(now, 1000 + i * 3, BlockData::Opaque(i), &mut dq, &mut rng);
            }
            s.write_block(now, 2, BlockData::Zero, &mut dq, &mut rng);

            let mut e = Enc::new();
            s.encode_wire(&mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let mut back = BranchingStore::decode_wire(&mut d, s.golden.clone()).unwrap();
            assert_eq!(d.remaining(), 0, "{mode:?}: trailing bytes");

            assert_eq!(back.mode(), mode);
            assert_eq!(back.stats.writes, s.stats.writes, "{mode:?}");
            assert_eq!(back.snoop().unwrap().data_writes, s.snoop().unwrap().data_writes);
            for vba in [2u64, 3, 5, 1000, 1003, 1147, 77_777] {
                assert_eq!(back.peek(vba), s.peek(vba), "{mode:?} vba {vba}");
            }
            // agg_slots re-derivation: timed reads resolve identically.
            let (_, _) = s.read_block(now, 3, &mut dq, &mut rng);
            let (_, _) = back.read_block(now, 3, &mut dq, &mut rng);
            assert_eq!(back.stats.agg_reads, s.stats.agg_reads, "{mode:?}");
        }
    }

    #[test]
    fn store_wire_rejects_wrong_golden() {
        let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
        s.write_block(SimTime::ZERO, 7, BlockData::Opaque(1), &mut dq, &mut rng);
        let mut e = Enc::new();
        s.encode_wire(&mut e);
        let bytes = e.into_bytes();

        let other = Arc::new(GoldenImageBuilder::new("other", 100_000, 4096, 1).build());
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            BranchingStore::decode_wire(&mut d, other),
            Err(DecodeError::Invalid("golden image name mismatch"))
        ));

        let wrong_geom = Arc::new(GoldenImageBuilder::new("base", 50_000, 4096, 1).build());
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            BranchingStore::decode_wire(&mut d, wrong_geom),
            Err(DecodeError::Invalid("golden image geometry mismatch"))
        ));
    }

    #[test]
    fn take_current_delta_resets_state() {
        let (mut s, mut dq, mut rng) = setup(CowMode::Branch);
        s.write_block(SimTime::ZERO, 3, BlockData::Opaque(1), &mut dq, &mut rng);
        let delta = s.take_current_delta();
        assert_eq!(delta.len(), 1);
        assert!(s.current_delta().is_empty());
        // Content falls back to golden after the delta is taken.
        assert_eq!(s.peek(3), s.golden.read(3));
    }
}
