//! Background data transfer for stateful swapping (§5.3).
//!
//! "To implement background data transfer, we take advantage of LVM mirror
//! volumes... By locating half of a mirror volume on a remote machine
//! across NFS, we get automatic remote redirection of reads and remote
//! mirroring of writes. The original implementation of LVM mirror volumes
//! synchronizes data aggressively... we added a rate-limiting function that
//! slows synchronization activity relative to normal system I/O."
//!
//! [`MirrorTransfer`] is the synchronization scheduler: it tracks which
//! blocks still need to move, paces them with a token-style
//! [`RateLimiter`], promotes on-demand blocks to the front (lazy copy-in
//! pages blocks "on first reference"), and re-queues blocks dirtied after
//! being copied (eager copy-out "blocks overwritten during pre-copy may be
//! sent more than once"). The owner performs the actual disk/network ops.

use std::collections::{HashSet, VecDeque};

use sim::{transmission_time, SimTime};

/// Paces a byte stream at a configured rate.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    bps: u64,
    available_at: SimTime,
}

impl RateLimiter {
    /// Creates a limiter at `bps` bytes *of payload* per second... rate is
    /// expressed in bits per second to match link conventions.
    pub fn new(bps: u64) -> Self {
        assert!(bps > 0, "zero-rate limiter");
        RateLimiter {
            bps,
            available_at: SimTime::ZERO,
        }
    }

    /// Reserves `bytes` of budget; returns when the transfer may start.
    pub fn acquire(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.available_at.max(now);
        self.available_at = start + transmission_time(bytes, self.bps);
        start
    }

    /// When the limiter next has budget.
    pub fn available_at(&self) -> SimTime {
        self.available_at
    }

    /// Changes the rate (e.g. back off while the guest is I/O-active).
    pub fn set_rate(&mut self, bps: u64) {
        assert!(bps > 0, "zero-rate limiter");
        self.bps = bps;
    }

    /// Current rate, bits per second.
    pub fn bps(&self) -> u64 {
        self.bps
    }
}

/// Transfer direction of a mirror synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Swap-in: remote → local, lazily.
    CopyIn,
    /// Swap-out: local → remote, eagerly (pre-copy).
    CopyOut,
}

/// The mirror-synchronization scheduler for one swap operation.
#[derive(Clone, Debug)]
pub struct MirrorTransfer {
    direction: Direction,
    pending: VecDeque<u64>,
    queued: HashSet<u64>,
    copied: HashSet<u64>,
    block_size: u32,
    limiter: RateLimiter,
    /// Blocks re-sent because they were dirtied after copy (CopyOut).
    pub dirty_requeues: u64,
    /// Blocks promoted by on-demand access (CopyIn).
    pub demand_promotions: u64,
}

impl MirrorTransfer {
    /// Creates a transfer over `blocks`, paced at `rate_bps`.
    pub fn new(direction: Direction, blocks: Vec<u64>, block_size: u32, rate_bps: u64) -> Self {
        let queued: HashSet<u64> = blocks.iter().copied().collect();
        MirrorTransfer {
            direction,
            pending: blocks.into(),
            queued,
            copied: HashSet::new(),
            block_size,
            limiter: RateLimiter::new(rate_bps),
            dirty_requeues: 0,
            demand_promotions: 0,
        }
    }

    /// Transfer direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Blocks still waiting to move.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    /// True when every queued block has been copied.
    pub fn done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Whether a block has already been synchronized.
    pub fn is_copied(&self, vba: u64) -> bool {
        self.copied.contains(&vba)
    }

    /// Pops the next block to move; returns it with the earliest start
    /// time the rate limiter allows.
    pub fn pop_next(&mut self, now: SimTime) -> Option<(u64, SimTime)> {
        let vba = self.pending.pop_front()?;
        self.queued.remove(&vba);
        let start = self.limiter.acquire(now, self.block_size as u64);
        Some((vba, start))
    }

    /// Marks a block as synchronized (owner finished its disk+net op).
    pub fn mark_copied(&mut self, vba: u64) {
        self.copied.insert(vba);
    }

    /// On-demand access during lazy copy-in: if the block is still queued,
    /// move it to the front (it will be fetched next, outside the rate
    /// limit budget — the guest is waiting on it). Returns true if the
    /// block still needs fetching.
    pub fn promote(&mut self, vba: u64) -> bool {
        if self.copied.contains(&vba) {
            return false;
        }
        if self.queued.contains(&vba) {
            // Move to front.
            if let Some(pos) = self.pending.iter().position(|&b| b == vba) {
                self.pending.remove(pos);
                self.pending.push_front(vba);
                self.demand_promotions += 1;
            }
            true
        } else {
            false
        }
    }

    /// A block was overwritten after being copied (eager copy-out): it
    /// must be sent again.
    ///
    /// # Panics
    ///
    /// Panics if called on a copy-in transfer.
    pub fn mark_dirty(&mut self, vba: u64) {
        assert_eq!(
            self.direction,
            Direction::CopyOut,
            "mark_dirty only applies to pre-copy"
        );
        if self.copied.remove(&vba) {
            self.dirty_requeues += 1;
            if self.queued.insert(vba) {
                self.pending.push_back(vba);
            }
        }
        // If still queued and not yet copied, nothing to do: the queued
        // copy will pick up the new content.
    }

    /// Mutable access to the pacing knob.
    pub fn limiter_mut(&mut self) -> &mut RateLimiter {
        &mut self.limiter
    }

    /// Copy-out write hook: a block was (re)written. If it was already
    /// copied it is re-queued; if it is brand new it joins the set; if it
    /// is still queued the queued copy will pick up the new content.
    ///
    /// # Panics
    ///
    /// Panics if called on a copy-in transfer.
    pub fn enqueue_or_dirty(&mut self, vba: u64) {
        assert_eq!(
            self.direction,
            Direction::CopyOut,
            "enqueue_or_dirty only applies to pre-copy"
        );
        if self.copied.remove(&vba) {
            self.dirty_requeues += 1;
        }
        if self.queued.insert(vba) {
            self.pending.push_back(vba);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn rate_limiter_paces_sequential_acquires() {
        // 8 Mbps = 1 byte/µs: 1000 bytes = 1 ms apart.
        let mut rl = RateLimiter::new(8_000_000);
        assert_eq!(rl.acquire(t(0), 1000), t(0));
        assert_eq!(rl.acquire(t(0), 1000), t(1));
        assert_eq!(rl.acquire(t(0), 1000), t(2));
        // After a long idle period, budget does not accumulate beyond now.
        assert_eq!(rl.acquire(t(100), 1000), t(100));
    }

    #[test]
    fn transfer_drains_in_order_with_pacing() {
        let mut m = MirrorTransfer::new(Direction::CopyOut, vec![10, 11, 12], 4096, 32_768_000);
        // 4096 B at 32.768 Mbps = 1 ms.
        let (b0, s0) = m.pop_next(t(0)).unwrap();
        let (b1, s1) = m.pop_next(t(0)).unwrap();
        assert_eq!((b0, b1), (10, 11));
        assert_eq!(s0, t(0));
        assert_eq!(s1, t(1));
        m.mark_copied(b0);
        m.mark_copied(b1);
        assert!(!m.done());
        let (b2, _) = m.pop_next(t(5)).unwrap();
        m.mark_copied(b2);
        assert!(m.done());
    }

    #[test]
    fn promote_moves_block_to_front() {
        let mut m = MirrorTransfer::new(Direction::CopyIn, vec![1, 2, 3, 4], 4096, 8_000_000);
        assert!(m.promote(3));
        let (next, _) = m.pop_next(t(0)).unwrap();
        assert_eq!(next, 3, "promoted block fetched first");
        assert_eq!(m.demand_promotions, 1);
    }

    #[test]
    fn promote_copied_block_is_noop() {
        let mut m = MirrorTransfer::new(Direction::CopyIn, vec![1], 4096, 8_000_000);
        let (b, _) = m.pop_next(t(0)).unwrap();
        m.mark_copied(b);
        assert!(!m.promote(1), "already local");
    }

    #[test]
    fn dirty_block_is_resent() {
        let mut m = MirrorTransfer::new(Direction::CopyOut, vec![1, 2], 4096, 8_000_000);
        let (b, _) = m.pop_next(t(0)).unwrap();
        m.mark_copied(b);
        m.mark_dirty(1);
        assert_eq!(m.dirty_requeues, 1);
        // Block 1 is queued again behind 2.
        let (n1, _) = m.pop_next(t(0)).unwrap();
        let (n2, _) = m.pop_next(t(0)).unwrap();
        assert_eq!((n1, n2), (2, 1));
        assert!(!m.is_copied(1));
    }

    #[test]
    fn dirtying_a_still_queued_block_does_not_duplicate() {
        let mut m = MirrorTransfer::new(Direction::CopyOut, vec![1, 2], 4096, 8_000_000);
        m.mark_dirty(1); // Not yet copied: queued copy picks up new content.
        assert_eq!(m.remaining(), 2);
        assert_eq!(m.dirty_requeues, 0);
    }

    #[test]
    #[should_panic(expected = "pre-copy")]
    fn mark_dirty_on_copy_in_panics() {
        let mut m = MirrorTransfer::new(Direction::CopyIn, vec![1], 4096, 8_000_000);
        m.mark_dirty(1);
    }
}
