//! Branching copy-on-write storage for stateful swapping (paper §5).
//!
//! Implements the paper's three-level logical disk (Fig 3): an immutable,
//! shareable **golden image** with linear addressing; an immutable
//! **aggregated delta** holding all changes from previous swap-ins, laid
//! out vba-sorted for locality; and a mutable **current delta** implemented
//! as a redo log with hash-index address translation. On top of the levels:
//! free-block elimination by ext3 bitmap snooping, rate-limited mirror
//! synchronization for background transfer, and offline merge with
//! locality-restoring reordering.
//!
//! Timing flows through the `hwsim` disk model: the same workload run
//! against [`CowMode::Base`], [`CowMode::BranchOrig`], and
//! [`CowMode::Branch`] reproduces the relative costs of paper Fig 8.

mod block;
mod freeblock;
mod golden;
mod merge;
mod mirror;
mod store;

pub use block::{BitmapBlock, BlockData, DeltaMap};
pub use freeblock::Ext3Snoop;
pub use golden::{GoldenImage, GoldenImageBuilder, GoldenStats};
pub use merge::{merge_reorder, MergeStats};
pub use mirror::{Direction, MirrorTransfer, RateLimiter};
pub use store::{BranchingStore, CowMode, StoreLayout, StoreStats};
