//! Block content representation and delta maps.
//!
//! The simulator does not shuffle real 4 KiB buffers around; a block's
//! content is a compact [`BlockData`] value that is enough to (a) verify
//! read-your-writes correctness, and (b) let the free-block-elimination
//! plugin *decode* filesystem allocation bitmaps exactly as the paper's
//! ext3 snooping plugin does below the guest (§5.1).

use std::collections::HashMap;
use std::sync::Arc;

use ckptstore::{Dec, DecodeError, Enc};

/// Content of one virtual disk block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BlockData {
    /// An all-zero block (never written, or explicitly zeroed).
    Zero,
    /// Arbitrary data identified by a fingerprint (stand-in for 4 KiB of
    /// payload; equality models bit-for-bit equality).
    Opaque(u64),
    /// An ext3-style block-allocation bitmap covering one block group.
    Bitmap(BitmapBlock),
}

impl BlockData {
    /// True if this is the zero block.
    pub fn is_zero(&self) -> bool {
        matches!(self, BlockData::Zero)
    }

    /// Serializes a single block value inline (fingerprints stay compact;
    /// bulk delta payloads go through [`DeltaMap::encode_wire`] instead,
    /// which emits chunk-aligned full-size records for dedup).
    pub fn encode_wire(&self, e: &mut Enc) {
        match self {
            BlockData::Zero => e.u8(0),
            BlockData::Opaque(fp) => {
                e.u8(1);
                e.u64(*fp);
            }
            BlockData::Bitmap(bm) => {
                e.u8(2);
                bm.encode_wire(e);
            }
        }
    }

    /// Inverse of [`BlockData::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let at = d.position();
        match d.u8()? {
            0 => Ok(BlockData::Zero),
            1 => Ok(BlockData::Opaque(d.u64()?)),
            2 => Ok(BlockData::Bitmap(BitmapBlock::decode_wire(d)?)),
            tag => Err(DecodeError::BadTag { at, tag, what: "block data" }),
        }
    }
}

/// An allocation bitmap for one block group.
///
/// Bit `i` set ⇔ block `group_start + i` is allocated. The words are
/// shared (`Arc`) because the same bitmap content is stored in the delta,
/// the snoop's shadow copy, and possibly several snapshots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitmapBlock {
    /// Index of the block group this bitmap describes.
    pub group: u32,
    /// First data block covered.
    pub group_start: u64,
    /// Number of blocks covered.
    pub group_blocks: u32,
    words: Arc<Vec<u64>>,
}

impl BitmapBlock {
    /// Creates an all-free bitmap for a group.
    pub fn new_free(group: u32, group_start: u64, group_blocks: u32) -> Self {
        let words = vec![0u64; group_blocks.div_ceil(64) as usize];
        BitmapBlock {
            group,
            group_start,
            group_blocks,
            words: Arc::new(words),
        }
    }

    /// Whether block-in-group `i` is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the group.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.group_blocks, "bit {i} outside group");
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns a copy with block-in-group `i` set to `allocated`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the group.
    pub fn with(&self, i: u32, allocated: bool) -> Self {
        assert!(i < self.group_blocks, "bit {i} outside group");
        let mut words = (*self.words).clone();
        if allocated {
            words[(i / 64) as usize] |= 1 << (i % 64);
        } else {
            words[(i / 64) as usize] &= !(1 << (i % 64));
        }
        BitmapBlock {
            words: Arc::new(words),
            ..self.clone()
        }
    }

    /// Number of allocated blocks in the group.
    pub fn allocated_count(&self) -> u32 {
        let mut n: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        // Mask padding bits beyond group_blocks.
        let excess = (self.words.len() as u32 * 64).saturating_sub(self.group_blocks);
        debug_assert!(excess < 64);
        if excess > 0 {
            if let Some(last) = self.words.last() {
                let pad_mask = !0u64 << (64 - excess);
                n -= (last & pad_mask).count_ones();
            }
        }
        n
    }

    /// Whether the *absolute* block number `vba` is allocated, if covered
    /// by this group.
    pub fn covers_and_allocated(&self, vba: u64) -> Option<bool> {
        if vba >= self.group_start && vba < self.group_start + self.group_blocks as u64 {
            Some(self.get((vba - self.group_start) as u32))
        } else {
            None
        }
    }

    /// Index of the first free block in the group, if any.
    pub fn first_free(&self) -> Option<u32> {
        (0..self.group_blocks).find(|&i| !self.get(i))
    }

    /// Serializes the bitmap (words inline, length-prefixed).
    pub fn encode_wire(&self, e: &mut Enc) {
        e.u32(self.group);
        e.u64(self.group_start);
        e.u32(self.group_blocks);
        e.seq(self.words.len());
        for w in self.words.iter() {
            e.u64(*w);
        }
    }

    /// Inverse of [`BitmapBlock::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let group = d.u32()?;
        let group_start = d.u64()?;
        let group_blocks = d.u32()?;
        let n = d.seq()?;
        if n != group_blocks.div_ceil(64) as usize {
            return Err(DecodeError::Invalid("bitmap word count"));
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(d.u64()?);
        }
        Ok(BitmapBlock { group, group_start, group_blocks, words: Arc::new(words) })
    }
}

/// An ordered map of dirty blocks: the in-memory index of a redo-log delta.
///
/// Keeps both the hash index (vba → slot) the paper describes ("writes
/// incur the cost of a single hash lookup to index into the log") and the
/// append order, which is the physical layout of the log on disk.
#[derive(Clone, Debug, Default)]
pub struct DeltaMap {
    index: HashMap<u64, usize>,
    entries: Vec<(u64, BlockData)>,
}

impl DeltaMap {
    /// Creates an empty delta.
    pub fn new() -> Self {
        DeltaMap::default()
    }

    /// Number of distinct blocks in the delta.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no blocks were written.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up a block; returns its log slot and content.
    pub fn get(&self, vba: u64) -> Option<(usize, &BlockData)> {
        self.index.get(&vba).map(|&slot| (slot, &self.entries[slot].1))
    }

    /// Inserts or overwrites a block. A fresh vba appends a new log slot;
    /// an overwrite reuses the existing slot (the log stores one live copy
    /// per block; superseded copies are reclaimed on merge). Returns the
    /// slot and whether it was newly appended.
    pub fn put(&mut self, vba: u64, data: BlockData) -> (usize, bool) {
        match self.index.get(&vba) {
            Some(&slot) => {
                self.entries[slot].1 = data;
                (slot, false)
            }
            None => {
                let slot = self.entries.len();
                self.entries.push((vba, data));
                self.index.insert(vba, slot);
                (slot, true)
            }
        }
    }

    /// Removes a block from the delta (free-block elimination).
    pub fn remove(&mut self, vba: u64) -> bool {
        if let Some(slot) = self.index.remove(&vba) {
            // Keep the entries vector slot as a tombstone so other slots
            // stay valid; merged/serialized output skips tombstones.
            self.entries[slot].1 = BlockData::Zero;
            self.entries[slot].0 = u64::MAX;
            true
        } else {
            false
        }
    }

    /// Iterates live `(vba, data)` pairs in log (append) order.
    pub fn iter_log_order(&self) -> impl Iterator<Item = (u64, &BlockData)> {
        self.entries
            .iter()
            .filter(|(vba, _)| *vba != u64::MAX)
            .map(|(vba, d)| (*vba, d))
    }

    /// Live `(vba, data)` pairs sorted by vba (locality-restoring order).
    pub fn sorted_by_vba(&self) -> Vec<(u64, BlockData)> {
        let mut v: Vec<(u64, BlockData)> = self
            .iter_log_order()
            .map(|(vba, d)| (vba, d.clone()))
            .collect();
        v.sort_by_key(|&(vba, _)| vba);
        v
    }

    /// All live vbas (unsorted).
    pub fn vbas(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }

    /// Delta payload size in bytes for a given block size.
    pub fn byte_size(&self, block_size: u32) -> u64 {
        self.len() as u64 * block_size as u64
    }

    /// Serializes the delta in two sections.
    ///
    /// The *meta* section records the full log — every slot's vba and a
    /// content tag, with tombstones and bitmap/zero payloads inline. The
    /// *data* section, padded to a `block_size` boundary, then carries
    /// one exactly-`block_size`-byte record per live opaque block in log
    /// order: the 8-byte fingerprint followed by a fill synthesized
    /// deterministically from it (the simulator's stand-in for the
    /// block's 4 KiB payload). Because the log is append-only and records
    /// are chunk-aligned, a child delta's encoding shares every parent
    /// block's chunks — which is what the content-addressed store dedups.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a positive multiple of 16.
    pub fn encode_wire(&self, e: &mut Enc, block_size: u32) {
        assert!(block_size >= 16 && block_size.is_multiple_of(16), "bad block size");
        e.seq(self.entries.len());
        for (vba, data) in &self.entries {
            e.u64(*vba);
            if *vba == u64::MAX {
                e.u8(0); // Tombstone (eliminated block); no payload anywhere.
                continue;
            }
            match data {
                BlockData::Zero => e.u8(1),
                BlockData::Opaque(_) => e.u8(2), // Payload in the data section.
                BlockData::Bitmap(bm) => {
                    e.u8(3);
                    bm.encode_wire(e);
                }
            }
        }
        e.pad_to(block_size as usize);
        for (vba, data) in &self.entries {
            if *vba == u64::MAX {
                continue;
            }
            if let BlockData::Opaque(fp) = data {
                synth_block_record(e, *fp, block_size);
            }
        }
    }

    /// Inverse of [`DeltaMap::encode_wire`].
    pub fn decode_wire(d: &mut Dec<'_>, block_size: u32) -> Result<Self, DecodeError> {
        let n = d.seq()?;
        let mut entries: Vec<(u64, BlockData)> = Vec::with_capacity(n);
        // Slots whose payload lives in the data section, in log order.
        let mut opaque_slots = Vec::new();
        for slot in 0..n {
            let vba = d.u64()?;
            let at = d.position();
            match d.u8()? {
                0 => {
                    if vba != u64::MAX {
                        return Err(DecodeError::Invalid("tombstone with a live vba"));
                    }
                    entries.push((u64::MAX, BlockData::Zero));
                }
                1 => entries.push((vba, BlockData::Zero)),
                2 => {
                    opaque_slots.push(slot);
                    entries.push((vba, BlockData::Opaque(0))); // Patched below.
                }
                3 => entries.push((vba, BlockData::Bitmap(BitmapBlock::decode_wire(d)?))),
                tag => return Err(DecodeError::BadTag { at, tag, what: "block data" }),
            }
        }
        d.align_to(block_size as usize)?;
        for slot in opaque_slots {
            let fp = read_block_record(d, block_size)?;
            entries[slot].1 = BlockData::Opaque(fp);
        }
        let mut index = HashMap::with_capacity(entries.len());
        for (slot, (vba, _)) in entries.iter().enumerate() {
            if *vba != u64::MAX {
                index.insert(*vba, slot);
            }
        }
        Ok(DeltaMap { index, entries })
    }
}

/// Writes one data-section block record: the fingerprint plus a
/// SplitMix64 fill expanded from it, exactly `block_size` bytes total.
fn synth_block_record(e: &mut Enc, fp: u64, block_size: u32) {
    e.u64(fp);
    let mut state = fp;
    for _ in 0..(block_size as usize / 8 - 1) {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        e.u64(z ^ (z >> 31));
    }
}

/// Reads one block record back, returning the fingerprint. The fill is
/// skipped — the store's content hash already guards its integrity.
fn read_block_record(d: &mut Dec<'_>, block_size: u32) -> Result<u64, DecodeError> {
    let fp = d.u64()?;
    d.raw(block_size as usize - 8)?;
    Ok(fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_roundtrip() {
        let b = BitmapBlock::new_free(0, 1000, 200);
        assert!(!b.get(5));
        let b2 = b.with(5, true);
        assert!(b2.get(5));
        assert!(!b.get(5), "original is immutable");
        assert_eq!(b2.allocated_count(), 1);
    }

    #[test]
    fn bitmap_absolute_lookup() {
        let b = BitmapBlock::new_free(0, 1000, 200).with(10, true);
        assert_eq!(b.covers_and_allocated(1010), Some(true));
        assert_eq!(b.covers_and_allocated(1011), Some(false));
        assert_eq!(b.covers_and_allocated(999), None);
        assert_eq!(b.covers_and_allocated(1200), None);
    }

    #[test]
    fn bitmap_allocated_count_ignores_padding() {
        // 10-block group: padding bits in the single word must not count.
        let mut b = BitmapBlock::new_free(0, 0, 10);
        for i in 0..10 {
            b = b.with(i, true);
        }
        assert_eq!(b.allocated_count(), 10);
    }

    #[test]
    fn first_free_scans_in_order() {
        let b = BitmapBlock::new_free(0, 0, 4).with(0, true).with(1, true);
        assert_eq!(b.first_free(), Some(2));
        let full = b.with(2, true).with(3, true);
        assert_eq!(full.first_free(), None);
    }

    #[test]
    fn delta_overwrite_reuses_slot() {
        let mut d = DeltaMap::new();
        let (s1, fresh1) = d.put(42, BlockData::Opaque(1));
        let (s2, fresh2) = d.put(42, BlockData::Opaque(2));
        assert!(fresh1 && !fresh2);
        assert_eq!(s1, s2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(42).unwrap().1, &BlockData::Opaque(2));
    }

    #[test]
    fn delta_log_order_preserved() {
        let mut d = DeltaMap::new();
        d.put(5, BlockData::Opaque(50));
        d.put(1, BlockData::Opaque(10));
        d.put(9, BlockData::Opaque(90));
        let order: Vec<u64> = d.iter_log_order().map(|(v, _)| v).collect();
        assert_eq!(order, vec![5, 1, 9]);
        let sorted: Vec<u64> = d.sorted_by_vba().into_iter().map(|(v, _)| v).collect();
        assert_eq!(sorted, vec![1, 5, 9]);
    }

    #[test]
    fn delta_remove_tombstones() {
        let mut d = DeltaMap::new();
        d.put(5, BlockData::Opaque(50));
        d.put(6, BlockData::Opaque(60));
        assert!(d.remove(5));
        assert!(!d.remove(5));
        assert_eq!(d.len(), 1);
        assert!(d.get(5).is_none());
        let order: Vec<u64> = d.iter_log_order().map(|(v, _)| v).collect();
        assert_eq!(order, vec![6]);
    }

    #[test]
    fn delta_byte_size() {
        let mut d = DeltaMap::new();
        d.put(1, BlockData::Opaque(1));
        d.put(2, BlockData::Opaque(2));
        assert_eq!(d.byte_size(4096), 8192);
    }

    fn delta_eq(a: &DeltaMap, b: &DeltaMap) {
        let av: Vec<_> = a.iter_log_order().map(|(v, d)| (v, d.clone())).collect();
        let bv: Vec<_> = b.iter_log_order().map(|(v, d)| (v, d.clone())).collect();
        assert_eq!(av, bv);
        assert_eq!(a.entries.len(), b.entries.len(), "tombstones preserved");
    }

    #[test]
    fn delta_wire_round_trip_with_all_content_kinds() {
        let mut d = DeltaMap::new();
        d.put(5, BlockData::Opaque(0xAB));
        d.put(1, BlockData::Zero);
        d.put(9, BlockData::Bitmap(BitmapBlock::new_free(2, 4000, 100).with(7, true)));
        d.put(12, BlockData::Opaque(0xCD));
        d.remove(5); // Tombstone mid-log.

        let mut e = Enc::new();
        d.encode_wire(&mut e, 4096);
        let bytes = e.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = DeltaMap::decode_wire(&mut dec, 4096).unwrap();
        delta_eq(&d, &back);
        assert_eq!(back.get(9).unwrap().1, d.get(9).unwrap().1);
        assert!(back.get(5).is_none());
    }

    #[test]
    fn delta_encoding_is_append_stable() {
        // A child delta that extends the parent's log shares every byte
        // of the parent's data section — the dedup-bearing property.
        let mut parent = DeltaMap::new();
        for i in 0..20u64 {
            parent.put(i * 7, BlockData::Opaque(i + 100));
        }
        let mut child = parent.clone();
        child.put(999, BlockData::Opaque(7777));

        let (mut ep, mut ec) = (Enc::new(), Enc::new());
        parent.encode_wire(&mut ep, 4096);
        child.encode_wire(&mut ec, 4096);
        let (pb, cb) = (ep.into_bytes(), ec.into_bytes());
        // Data sections start at the first 4096 boundary; the parent's
        // whole data section is a prefix of the child's.
        assert_eq!(pb[4096..], cb[4096..4096 + (pb.len() - 4096)]);
    }

    #[test]
    fn delta_wire_truncation_is_typed_error() {
        let mut d = DeltaMap::new();
        d.put(1, BlockData::Opaque(42));
        let mut e = Enc::new();
        d.encode_wire(&mut e, 4096);
        let mut bytes = e.into_bytes();
        bytes.truncate(bytes.len() - 100);
        let mut dec = Dec::new(&bytes);
        assert!(DeltaMap::decode_wire(&mut dec, 4096).is_err());
    }
}
