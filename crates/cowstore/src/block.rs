//! Block content representation and delta maps.
//!
//! The simulator does not shuffle real 4 KiB buffers around; a block's
//! content is a compact [`BlockData`] value that is enough to (a) verify
//! read-your-writes correctness, and (b) let the free-block-elimination
//! plugin *decode* filesystem allocation bitmaps exactly as the paper's
//! ext3 snooping plugin does below the guest (§5.1).

use std::collections::HashMap;
use std::sync::Arc;

/// Content of one virtual disk block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BlockData {
    /// An all-zero block (never written, or explicitly zeroed).
    Zero,
    /// Arbitrary data identified by a fingerprint (stand-in for 4 KiB of
    /// payload; equality models bit-for-bit equality).
    Opaque(u64),
    /// An ext3-style block-allocation bitmap covering one block group.
    Bitmap(BitmapBlock),
}

impl BlockData {
    /// True if this is the zero block.
    pub fn is_zero(&self) -> bool {
        matches!(self, BlockData::Zero)
    }
}

/// An allocation bitmap for one block group.
///
/// Bit `i` set ⇔ block `group_start + i` is allocated. The words are
/// shared (`Arc`) because the same bitmap content is stored in the delta,
/// the snoop's shadow copy, and possibly several snapshots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitmapBlock {
    /// Index of the block group this bitmap describes.
    pub group: u32,
    /// First data block covered.
    pub group_start: u64,
    /// Number of blocks covered.
    pub group_blocks: u32,
    words: Arc<Vec<u64>>,
}

impl BitmapBlock {
    /// Creates an all-free bitmap for a group.
    pub fn new_free(group: u32, group_start: u64, group_blocks: u32) -> Self {
        let words = vec![0u64; group_blocks.div_ceil(64) as usize];
        BitmapBlock {
            group,
            group_start,
            group_blocks,
            words: Arc::new(words),
        }
    }

    /// Whether block-in-group `i` is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the group.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.group_blocks, "bit {i} outside group");
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns a copy with block-in-group `i` set to `allocated`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the group.
    pub fn with(&self, i: u32, allocated: bool) -> Self {
        assert!(i < self.group_blocks, "bit {i} outside group");
        let mut words = (*self.words).clone();
        if allocated {
            words[(i / 64) as usize] |= 1 << (i % 64);
        } else {
            words[(i / 64) as usize] &= !(1 << (i % 64));
        }
        BitmapBlock {
            words: Arc::new(words),
            ..self.clone()
        }
    }

    /// Number of allocated blocks in the group.
    pub fn allocated_count(&self) -> u32 {
        let mut n: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        // Mask padding bits beyond group_blocks.
        let excess = (self.words.len() as u32 * 64).saturating_sub(self.group_blocks);
        debug_assert!(excess < 64);
        if excess > 0 {
            if let Some(last) = self.words.last() {
                let pad_mask = !0u64 << (64 - excess);
                n -= (last & pad_mask).count_ones();
            }
        }
        n
    }

    /// Whether the *absolute* block number `vba` is allocated, if covered
    /// by this group.
    pub fn covers_and_allocated(&self, vba: u64) -> Option<bool> {
        if vba >= self.group_start && vba < self.group_start + self.group_blocks as u64 {
            Some(self.get((vba - self.group_start) as u32))
        } else {
            None
        }
    }

    /// Index of the first free block in the group, if any.
    pub fn first_free(&self) -> Option<u32> {
        (0..self.group_blocks).find(|&i| !self.get(i))
    }
}

/// An ordered map of dirty blocks: the in-memory index of a redo-log delta.
///
/// Keeps both the hash index (vba → slot) the paper describes ("writes
/// incur the cost of a single hash lookup to index into the log") and the
/// append order, which is the physical layout of the log on disk.
#[derive(Clone, Debug, Default)]
pub struct DeltaMap {
    index: HashMap<u64, usize>,
    entries: Vec<(u64, BlockData)>,
}

impl DeltaMap {
    /// Creates an empty delta.
    pub fn new() -> Self {
        DeltaMap::default()
    }

    /// Number of distinct blocks in the delta.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no blocks were written.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up a block; returns its log slot and content.
    pub fn get(&self, vba: u64) -> Option<(usize, &BlockData)> {
        self.index.get(&vba).map(|&slot| (slot, &self.entries[slot].1))
    }

    /// Inserts or overwrites a block. A fresh vba appends a new log slot;
    /// an overwrite reuses the existing slot (the log stores one live copy
    /// per block; superseded copies are reclaimed on merge). Returns the
    /// slot and whether it was newly appended.
    pub fn put(&mut self, vba: u64, data: BlockData) -> (usize, bool) {
        match self.index.get(&vba) {
            Some(&slot) => {
                self.entries[slot].1 = data;
                (slot, false)
            }
            None => {
                let slot = self.entries.len();
                self.entries.push((vba, data));
                self.index.insert(vba, slot);
                (slot, true)
            }
        }
    }

    /// Removes a block from the delta (free-block elimination).
    pub fn remove(&mut self, vba: u64) -> bool {
        if let Some(slot) = self.index.remove(&vba) {
            // Keep the entries vector slot as a tombstone so other slots
            // stay valid; merged/serialized output skips tombstones.
            self.entries[slot].1 = BlockData::Zero;
            self.entries[slot].0 = u64::MAX;
            true
        } else {
            false
        }
    }

    /// Iterates live `(vba, data)` pairs in log (append) order.
    pub fn iter_log_order(&self) -> impl Iterator<Item = (u64, &BlockData)> {
        self.entries
            .iter()
            .filter(|(vba, _)| *vba != u64::MAX)
            .map(|(vba, d)| (*vba, d))
    }

    /// Live `(vba, data)` pairs sorted by vba (locality-restoring order).
    pub fn sorted_by_vba(&self) -> Vec<(u64, BlockData)> {
        let mut v: Vec<(u64, BlockData)> = self
            .iter_log_order()
            .map(|(vba, d)| (vba, d.clone()))
            .collect();
        v.sort_by_key(|&(vba, _)| vba);
        v
    }

    /// All live vbas (unsorted).
    pub fn vbas(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }

    /// Delta payload size in bytes for a given block size.
    pub fn byte_size(&self, block_size: u32) -> u64 {
        self.len() as u64 * block_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_roundtrip() {
        let b = BitmapBlock::new_free(0, 1000, 200);
        assert!(!b.get(5));
        let b2 = b.with(5, true);
        assert!(b2.get(5));
        assert!(!b.get(5), "original is immutable");
        assert_eq!(b2.allocated_count(), 1);
    }

    #[test]
    fn bitmap_absolute_lookup() {
        let b = BitmapBlock::new_free(0, 1000, 200).with(10, true);
        assert_eq!(b.covers_and_allocated(1010), Some(true));
        assert_eq!(b.covers_and_allocated(1011), Some(false));
        assert_eq!(b.covers_and_allocated(999), None);
        assert_eq!(b.covers_and_allocated(1200), None);
    }

    #[test]
    fn bitmap_allocated_count_ignores_padding() {
        // 10-block group: padding bits in the single word must not count.
        let mut b = BitmapBlock::new_free(0, 0, 10);
        for i in 0..10 {
            b = b.with(i, true);
        }
        assert_eq!(b.allocated_count(), 10);
    }

    #[test]
    fn first_free_scans_in_order() {
        let b = BitmapBlock::new_free(0, 0, 4).with(0, true).with(1, true);
        assert_eq!(b.first_free(), Some(2));
        let full = b.with(2, true).with(3, true);
        assert_eq!(full.first_free(), None);
    }

    #[test]
    fn delta_overwrite_reuses_slot() {
        let mut d = DeltaMap::new();
        let (s1, fresh1) = d.put(42, BlockData::Opaque(1));
        let (s2, fresh2) = d.put(42, BlockData::Opaque(2));
        assert!(fresh1 && !fresh2);
        assert_eq!(s1, s2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(42).unwrap().1, &BlockData::Opaque(2));
    }

    #[test]
    fn delta_log_order_preserved() {
        let mut d = DeltaMap::new();
        d.put(5, BlockData::Opaque(50));
        d.put(1, BlockData::Opaque(10));
        d.put(9, BlockData::Opaque(90));
        let order: Vec<u64> = d.iter_log_order().map(|(v, _)| v).collect();
        assert_eq!(order, vec![5, 1, 9]);
        let sorted: Vec<u64> = d.sorted_by_vba().into_iter().map(|(v, _)| v).collect();
        assert_eq!(sorted, vec![1, 5, 9]);
    }

    #[test]
    fn delta_remove_tombstones() {
        let mut d = DeltaMap::new();
        d.put(5, BlockData::Opaque(50));
        d.put(6, BlockData::Opaque(60));
        assert!(d.remove(5));
        assert!(!d.remove(5));
        assert_eq!(d.len(), 1);
        assert!(d.get(5).is_none());
        let order: Vec<u64> = d.iter_log_order().map(|(v, _)| v).collect();
        assert_eq!(order, vec![6]);
    }

    #[test]
    fn delta_byte_size() {
        let mut d = DeltaMap::new();
        d.put(1, BlockData::Opaque(1));
        d.put(2, BlockData::Opaque(2));
        assert_eq!(d.byte_size(4096), 8192);
    }
}
