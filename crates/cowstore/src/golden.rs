//! Golden (base) filesystem images.
//!
//! "Nodes within and across experiments use a relatively small set of base
//! filesystem images, which can be cached on the experimental nodes and
//! shared across experiments" (§5.1). A golden image is immutable, uses
//! linear addressing (VBA == PBA, Fig 3), and is shared by every virtual
//! machine on a physical node.

use std::collections::HashMap;
use std::sync::Arc;

use crate::block::BlockData;

/// An immutable base image.
///
/// Content is synthesized deterministically from the image seed, with an
/// explicit overlay for blocks written by the image builder (mkfs, base
/// system population). Synthesizing content keeps a "6 GB image" from
/// costing 6 GB of host memory.
#[derive(Clone, Debug)]
pub struct GoldenImage {
    name: String,
    blocks: u64,
    block_size: u32,
    seed: u64,
    explicit: Arc<HashMap<u64, BlockData>>,
    /// Fraction of the raw size the compressed (Frisbee-style) image takes
    /// on the wire; base FC4 images compress well.
    pub compression: f64,
}

/// Size summary of a golden image, for telemetry and transfer costing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GoldenStats {
    /// Capacity in blocks.
    pub blocks: u64,
    /// Blocks explicitly written by the builder (the rest synthesize).
    pub explicit: u64,
    /// Raw image bytes.
    pub byte_size: u64,
    /// Compressed on-the-wire bytes.
    pub wire_size: u64,
}

impl GoldenImage {
    /// The raw image size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.blocks * self.block_size as u64
    }

    /// Size summary (telemetry, cache accounting).
    pub fn stats(&self) -> GoldenStats {
        GoldenStats {
            blocks: self.blocks,
            explicit: self.explicit.len() as u64,
            byte_size: self.byte_size(),
            wire_size: self.wire_size(),
        }
    }

    /// The compressed on-the-wire size (image download cost).
    pub fn wire_size(&self) -> u64 {
        (self.byte_size() as f64 * self.compression) as u64
    }

    /// Image name (for the cache key on physical nodes).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Reads a block. Blocks never touched by the builder synthesize
    /// deterministic content from the seed.
    ///
    /// # Panics
    ///
    /// Panics if `vba` is out of range.
    pub fn read(&self, vba: u64) -> BlockData {
        assert!(vba < self.blocks, "golden read out of range");
        if let Some(d) = self.explicit.get(&vba) {
            return d.clone();
        }
        // SplitMix-style hash of (seed, vba) as the block fingerprint.
        let mut z = self.seed ^ vba.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        BlockData::Opaque(z)
    }
}

/// Builds a golden image by writing blocks before sealing it.
#[derive(Debug)]
pub struct GoldenImageBuilder {
    name: String,
    blocks: u64,
    block_size: u32,
    seed: u64,
    explicit: HashMap<u64, BlockData>,
    compression: f64,
}

impl GoldenImageBuilder {
    /// Starts a new image of `blocks` × `block_size`.
    pub fn new(name: &str, blocks: u64, block_size: u32, seed: u64) -> Self {
        GoldenImageBuilder {
            name: name.to_string(),
            blocks,
            block_size,
            seed,
            explicit: HashMap::new(),
            compression: 0.12,
        }
    }

    /// Sets the compression ratio used for transfer costing.
    pub fn compression(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "bad compression ratio");
        self.compression = ratio;
        self
    }

    /// Writes a block into the image (mkfs / base-system population).
    ///
    /// # Panics
    ///
    /// Panics if `vba` is out of range.
    pub fn write(&mut self, vba: u64, data: BlockData) {
        assert!(vba < self.blocks, "golden write out of range");
        self.explicit.insert(vba, data);
    }

    /// Seals the image.
    pub fn build(self) -> GoldenImage {
        GoldenImage {
            name: self.name,
            blocks: self.blocks,
            block_size: self.block_size,
            seed: self.seed,
            explicit: Arc::new(self.explicit),
            compression: self.compression,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_content_is_deterministic() {
        let img = GoldenImageBuilder::new("fc4", 1000, 4096, 7).build();
        assert_eq!(img.read(5), img.read(5));
        assert_ne!(img.read(5), img.read(6));
    }

    #[test]
    fn explicit_writes_override_synthesis() {
        let mut b = GoldenImageBuilder::new("fc4", 1000, 4096, 7);
        b.write(3, BlockData::Opaque(42));
        let img = b.build();
        assert_eq!(img.read(3), BlockData::Opaque(42));
    }

    #[test]
    fn sizes_and_compression() {
        let img = GoldenImageBuilder::new("fc4", 1000, 4096, 7)
            .compression(0.25)
            .build();
        assert_eq!(img.byte_size(), 4_096_000);
        assert_eq!(img.wire_size(), 1_024_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_read_panics() {
        let img = GoldenImageBuilder::new("fc4", 10, 4096, 7).build();
        let _ = img.read(10);
    }
}
